#include "profiler/profiler.hpp"

#include <cstdio>

namespace xrp::profiler {

std::string Profiler::format(const std::string& var) const {
    std::string out;
    for (const Record& r : records(var)) {
        auto ns = r.t.time_since_epoch().count();
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s %lld %06lld ", var.c_str(),
                      static_cast<long long>(ns / 1000000000),
                      static_cast<long long>((ns / 1000) % 1000000));
        out += buf;
        out += r.payload;
        out += '\n';
    }
    return out;
}

}  // namespace xrp::profiler
