// Profiling points (§8.2).
//
// "XORP contains a simple profiling mechanism which permits the insertion
// of profiling points anywhere in the code. Each profiling point is
// associated with a profiling variable, and these variables are
// configured by an external program xorp_profiler using XRLs. Enabling a
// profiling point causes a time stamped record to be stored":
//
//     route_ribin 1097173928 664085 add 10.0.1.0/24
//
// Two APIs:
//   - record(var, payload): legacy, pays a map lookup per call;
//   - point(var) -> ProfilePoint handle: the lookup is paid once at wiring
//     time, so the per-call disabled cost is a pointer check — and callers
//     can guard on handle.enabled() *before* building the payload string,
//     which is where the real cost of a disabled point used to be.
// Each point stores at most kMaxRecordsPerPoint records; beyond that,
// records are dropped (counted), so an enabled point left running cannot
// grow without bound. Records carry the event-loop clock, so they work on
// virtual time too. The Figures 10-12 benchmark drives its eight points
// ("Entering BGP" ... "Entering kernel") through this machinery, exactly
// like the paper.
#ifndef XRP_PROFILER_PROFILER_HPP
#define XRP_PROFILER_PROFILER_HPP

#include <map>
#include <string>
#include <vector>

#include "ev/eventloop.hpp"

namespace xrp::profiler {

struct Record {
    ev::TimePoint t;
    std::string payload;  // e.g. "add 10.0.1.0/24"
};

class Profiler {
    struct Point {
        bool enabled = false;
        std::vector<Record> records;
        uint64_t dropped = 0;
    };

public:
    explicit Profiler(ev::EventLoop& loop) : loop_(loop) {}

    // Per-point record ceiling (the cap exists so an enabled point on a
    // hot path degrades to counting, not to unbounded memory).
    static constexpr size_t kMaxRecordsPerPoint = 1 << 20;

    // A resolved profiling point. Default-constructed handles are inert;
    // live ones stay valid for the Profiler's lifetime (map nodes are
    // stable). Copyable and cheap.
    class ProfilePoint {
    public:
        ProfilePoint() = default;
        bool enabled() const { return p_ != nullptr && p_->enabled; }
        void record(std::string payload) const {
            if (enabled()) prof_->append(*p_, std::move(payload));
        }

    private:
        friend class Profiler;
        ProfilePoint(Profiler* prof, Point* p) : prof_(prof), p_(p) {}
        Profiler* prof_ = nullptr;
        Point* p_ = nullptr;
    };

    // Declares (idempotently) and resolves a profiling variable.
    ProfilePoint point(const std::string& var) {
        return ProfilePoint(this, &points_[var]);
    }

    // Declares a profiling variable; idempotent.
    void add_point(const std::string& var) { points_[var]; }

    void enable(const std::string& var) { points_[var].enabled = true; }
    void disable(const std::string& var) {
        auto it = points_.find(var);
        if (it != points_.end()) it->second.enabled = false;
    }
    bool enabled(const std::string& var) const {
        auto it = points_.find(var);
        return it != points_.end() && it->second.enabled;
    }

    // Legacy hot-path call (map lookup per call); prefer point() handles.
    void record(const std::string& var, std::string payload) {
        auto it = points_.find(var);
        if (it == points_.end() || !it->second.enabled) return;
        append(it->second, std::move(payload));
    }

    // Records discarded at the cap for `var` (0 if unknown).
    uint64_t dropped(const std::string& var) const {
        auto it = points_.find(var);
        return it == points_.end() ? 0 : it->second.dropped;
    }

    const std::vector<Record>& records(const std::string& var) const {
        static const std::vector<Record> kEmpty;
        auto it = points_.find(var);
        return it == points_.end() ? kEmpty : it->second.records;
    }

    void clear(const std::string& var) {
        auto it = points_.find(var);
        if (it != points_.end()) {
            it->second.records.clear();
            it->second.dropped = 0;
        }
    }
    void clear_all() {
        for (auto& [name, p] : points_) {
            p.records.clear();
            p.dropped = 0;
        }
    }

    std::vector<std::string> point_names() const {
        std::vector<std::string> out;
        for (const auto& [name, p] : points_) out.push_back(name);
        return out;
    }

    // Formats records in the paper's textual form:
    // "<var> <seconds> <microseconds> <payload>".
    std::string format(const std::string& var) const;

private:
    void append(Point& p, std::string payload) {
        if (p.records.size() >= kMaxRecordsPerPoint) {
            ++p.dropped;
            return;
        }
        p.records.push_back({loop_.now(), std::move(payload)});
    }

    ev::EventLoop& loop_;
    std::map<std::string, Point> points_;
};

}  // namespace xrp::profiler

#endif
