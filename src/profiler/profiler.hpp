// Profiling points (§8.2).
//
// "XORP contains a simple profiling mechanism which permits the insertion
// of profiling points anywhere in the code. Each profiling point is
// associated with a profiling variable, and these variables are
// configured by an external program xorp_profiler using XRLs. Enabling a
// profiling point causes a time stamped record to be stored":
//
//     route_ribin 1097173928 664085 add 10.0.1.0/24
//
// A disabled point costs one map-cached pointer check; records carry the
// event-loop clock, so they work on virtual time too. The Figures 10-12
// benchmark drives its eight points ("Entering BGP" ... "Entering
// kernel") through this machinery, exactly like the paper.
#ifndef XRP_PROFILER_PROFILER_HPP
#define XRP_PROFILER_PROFILER_HPP

#include <map>
#include <string>
#include <vector>

#include "ev/eventloop.hpp"

namespace xrp::profiler {

struct Record {
    ev::TimePoint t;
    std::string payload;  // e.g. "add 10.0.1.0/24"
};

class Profiler {
public:
    explicit Profiler(ev::EventLoop& loop) : loop_(loop) {}

    // Declares a profiling variable; idempotent.
    void add_point(const std::string& var) { points_[var]; }

    void enable(const std::string& var) { points_[var].enabled = true; }
    void disable(const std::string& var) {
        auto it = points_.find(var);
        if (it != points_.end()) it->second.enabled = false;
    }
    bool enabled(const std::string& var) const {
        auto it = points_.find(var);
        return it != points_.end() && it->second.enabled;
    }

    // The hot-path call; sampling when enabled, no-op otherwise.
    void record(const std::string& var, std::string payload) {
        auto it = points_.find(var);
        if (it == points_.end() || !it->second.enabled) return;
        it->second.records.push_back({loop_.now(), std::move(payload)});
    }

    const std::vector<Record>& records(const std::string& var) const {
        static const std::vector<Record> kEmpty;
        auto it = points_.find(var);
        return it == points_.end() ? kEmpty : it->second.records;
    }

    void clear(const std::string& var) {
        auto it = points_.find(var);
        if (it != points_.end()) it->second.records.clear();
    }
    void clear_all() {
        for (auto& [name, p] : points_) p.records.clear();
    }

    std::vector<std::string> point_names() const {
        std::vector<std::string> out;
        for (const auto& [name, p] : points_) out.push_back(name);
        return out;
    }

    // Formats records in the paper's textual form:
    // "<var> <seconds> <microseconds> <payload>".
    std::string format(const std::string& var) const;

private:
    struct Point {
        bool enabled = false;
        std::vector<Record> records;
    };

    ev::EventLoop& loop_;
    std::map<std::string, Point> points_;
};

}  // namespace xrp::profiler

#endif
