// Cross-thread in-process protocol family ("xring"): XRLs between
// components of the same address space that live on *different* event-loop
// threads.
//
// The paper's §6 point is that protocol families are pluggable and hide
// the transport: components written against XRLs never know whether a peer
// is a function call away or a process away. This family exploits exactly
// that to take the router multi-core with zero locks in protocol code.
// Each directed (sender, receiver) pairing owns a Conduit: a bounded
// lock-free SPSC ring of serialized request frames one way and a second
// SPSC ring carrying the reply frames back. Frames reuse the binary wire
// codec (wire.hpp) including the optional trace trailer, so tracing,
// method keys, and argument validation behave identically to stcp — an
// xring XRL *is* an XRL, just cheaper.
//
// Wakeups: each endpoint parks its event loop in poll(2); the producer
// rings an eventfd after pushing, so an idle component thread wakes in
// microseconds and a busy one absorbs whole batches per wakeup. The
// eventfds crossing the boundary are dup()s owned by the Conduit itself,
// so a write after the peer died hits a still-open-but-unwatched
// description, never a recycled descriptor.
//
// Failure model: a receiver that unregisters (component death) marks the
// conduit closed and rings every attached sender; senders fail their
// in-flight calls with kTransportFailed — a *hard* failure, which is what
// the reliable call contract's failover and dead-target reporting key on.
// Ring-full is backpressure, not failure: requests queue in the sender's
// backlog exactly as the TCP channel does behind its window.
#ifndef XRP_IPC_XRING_HPP
#define XRP_IPC_XRING_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ev/eventloop.hpp"
#include "ipc/dispatcher.hpp"
#include "ipc/sockets.hpp"
#include "ipc/wire.hpp"

namespace xrp::ipc {

// Bounded lock-free single-producer/single-consumer ring of serialized
// frames. Producer and consumer must each be one thread (per ring); the
// two may freely differ. Capacity is rounded up to a power of two.
class SpscRing {
public:
    explicit SpscRing(size_t capacity);
    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    // Producer side. False = ring full (caller keeps ownership of frame).
    bool push(std::vector<uint8_t>&& frame);
    // Consumer side. False = ring empty.
    bool pop(std::vector<uint8_t>& out);

    bool empty() const {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }
    size_t capacity() const { return slots_.size(); }

    // Wakeup handshake (Dekker with seq_cst fences), closing the classic
    // lost-wakeup race: a producer that merely checks "was the ring empty?"
    // can race a consumer finishing its drain — the consumer misses the new
    // frame AND the producer skips the wakeup, stranding the frame until
    // the next push. Instead the consumer *parks* (try_park: set flag, re-
    // check emptiness) before sleeping, and the producer *claims* the wake
    // after pushing (claim_wake: fence, exchange flag). The fences order
    // the flag store against the emptiness re-check on one side and the
    // slot publish against the flag read on the other, so at least one of
    // them sees the other: either the consumer keeps draining or the
    // producer rings the eventfd. Claiming clears the flag, so a burst of
    // pushes against a parked consumer costs one syscall, not one each.
    void unpark() { parked_.store(false, std::memory_order_relaxed); }
    bool try_park() {
        parked_.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (empty()) return true;
        parked_.store(false, std::memory_order_relaxed);
        return false;
    }
    bool claim_wake() {
        std::atomic_thread_fence(std::memory_order_seq_cst);
        return parked_.exchange(false, std::memory_order_relaxed);
    }

private:
    std::vector<std::vector<uint8_t>> slots_;
    size_t mask_;
    // Separate cache lines: the producer writes tail_, the consumer head_.
    alignas(64) std::atomic<uint64_t> head_{0};  // next slot to pop
    alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to fill
    // Starts parked: the first push must ring (the consumer has never run).
    alignas(64) std::atomic<bool> parked_{true};
};

// One directed sender->receiver pairing. Shared (via shared_ptr) between
// the sender's XringChannel and the receiver's XringPort so either side
// may die first.
struct XringConduit {
    explicit XringConduit(size_t cap) : req(cap), resp(cap) {}

    SpscRing req;   // sender thread produces, receiver thread consumes
    SpscRing resp;  // receiver thread produces, sender thread consumes
    Fd receiver_wake;  // dup of the port's eventfd; rung after req.push
    Fd sender_wake;    // dup of the channel's eventfd; rung after resp.push
    std::atomic<bool> receiver_open{true};
    std::atomic<bool> sender_open{true};

    void ring_receiver() const;
    void ring_sender() const;
};

class XringPort;

// Per-Plexus registry of xring receiver ports, keyed by instance name
// (the family address, same convention as "inproc"). All methods are
// thread-safe: senders connect from their own threads.
class XringHub {
public:
    XringHub() = default;
    XringHub(const XringHub&) = delete;
    XringHub& operator=(const XringHub&) = delete;

    void add(XringPort* port);
    void remove(const std::string& address);
    // Builds a conduit to `address`, registering `sender_wake_dup` (a dup
    // the conduit takes ownership of) for reply wakeups. Null when no such
    // port exists — the sender fails the call kTransportFailed.
    std::shared_ptr<XringConduit> connect(const std::string& address,
                                          Fd sender_wake_dup);

private:
    std::mutex mu_;
    std::map<std::string, XringPort*> ports_;
};

// Receiver endpoint: owned by the XrlRouter, lives on the component's home
// loop. Drains request rings of every attached conduit on wakeup,
// dispatches on the home-loop thread, and pushes replies back.
class XringPort {
public:
    XringPort(ev::EventLoop& loop, XrlDispatcher& dispatcher, XringHub& hub,
              std::string address);
    ~XringPort();
    XringPort(const XringPort&) = delete;
    XringPort& operator=(const XringPort&) = delete;

    bool ok() const { return wake_.valid(); }
    const std::string& address() const { return address_; }

    // Called by the hub (any thread) under its lock.
    std::shared_ptr<XringConduit> attach(Fd sender_wake_dup);

    // Default ring capacity (frames) per direction per conduit.
    static constexpr size_t kRingSlots = 1024;

private:
    void on_wake();
    void drain(const std::shared_ptr<XringConduit>& c);
    void drain_once(const std::shared_ptr<XringConduit>& c);
    void queue_reply(const std::shared_ptr<XringConduit>& c,
                     std::vector<uint8_t>&& frame);
    void flush_overflow();

    ev::EventLoop& loop_;
    XrlDispatcher& dispatcher_;
    XringHub& hub_;
    std::string address_;
    Fd wake_;  // eventfd registered as a reader on loop_

    std::mutex mu_;  // guards conduits_ membership (attach is cross-thread)
    std::vector<std::shared_ptr<XringConduit>> conduits_;

    // Replies that found their resp ring full wait here (home thread only)
    // and retry on a short timer until the sender drains.
    std::deque<std::pair<std::shared_ptr<XringConduit>, std::vector<uint8_t>>>
        overflow_;
    ev::Timer overflow_timer_;
};

// Sender endpoint: one per (sender router, receiver address), created
// lazily by XrlRouter::dispatch_raw on the sender's home loop, mirroring
// TcpChannel's shape — pending map keyed by sequence number, bounded
// in-flight window with a user-space backlog behind it.
class XringChannel {
public:
    XringChannel(ev::EventLoop& loop, XringHub& hub,
                 const std::string& address);
    ~XringChannel();
    XringChannel(const XringChannel&) = delete;
    XringChannel& operator=(const XringChannel&) = delete;

    void send(const std::string& keyed_method, const xrl::XrlArgs& args,
              ResponseCallback done);

    static constexpr size_t kMaxOutstanding = 512;

    bool broken() const { return broken_; }
    size_t pending_count() const { return pending_.size(); }
    size_t backlog_count() const { return backlog_.size(); }

private:
    struct Queued {
        uint32_t seq;
        std::vector<uint8_t> frame;
        ResponseCallback done;
        ev::TimePoint t0{};
    };

    void on_wake();
    void pump_backlog();
    // Consumes `q` only on success (returns true); on a full ring `q` is
    // left intact for the backlog.
    bool push_frame(Queued& q);
    void fail_all(const xrl::XrlError& err);

    ev::EventLoop& loop_;
    Fd wake_;  // eventfd registered as a reader on loop_
    std::shared_ptr<XringConduit> conduit_;
    bool broken_ = false;
    uint32_t next_seq_ = 1;
    struct Pending {
        ResponseCallback done;
        ev::TimePoint t0{};
    };
    std::map<uint32_t, Pending> pending_;
    std::deque<Queued> backlog_;
};

}  // namespace xrp::ipc

#endif
