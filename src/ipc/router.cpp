#include "ipc/router.hpp"

#include <cmath>
#include <cstdio>
#include <functional>

#include "ipc/common_xrl.hpp"
#include "ipc/fault_xrl.hpp"
#include "ipc/finder_client.hpp"
#include "ipc/telemetry_xrl.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

namespace {

// Handles bound once on first use; every hot-path touch below is a cached
// pointer check plus a relaxed atomic op (disabled registry: just the
// check).
struct IpcMetrics {
    telemetry::Counter* sends_inproc;
    telemetry::Counter* sends_stcp;
    telemetry::Counter* sends_sudp;
    telemetry::Counter* sends_xring;
    telemetry::Counter* resolve_failures;
    telemetry::Counter* retries;
    telemetry::Counter* failovers;
    telemetry::Counter* attempt_timeouts;
    telemetry::Counter* deadline_hits;
    telemetry::Counter* late_responses;
    telemetry::Counter* ignored_errors;
    telemetry::Counter* targets_reported_dead;
    telemetry::Histogram* lat_inproc;

    static const IpcMetrics& get() {
        static IpcMetrics m = [] {
            auto& r = telemetry::Registry::global();
            IpcMetrics x;
            x.sends_inproc =
                r.counter("xrl_sends_total{family=\"inproc\"}");
            x.sends_stcp = r.counter("xrl_sends_total{family=\"stcp\"}");
            x.sends_sudp = r.counter("xrl_sends_total{family=\"sudp\"}");
            x.sends_xring = r.counter("xrl_sends_total{family=\"xring\"}");
            x.resolve_failures = r.counter("xrl_resolve_failures_total");
            x.retries = r.counter("xrl_call_retries_total");
            x.failovers = r.counter("xrl_call_failovers_total");
            x.attempt_timeouts = r.counter("xrl_call_attempt_timeouts_total");
            x.deadline_hits = r.counter("xrl_call_deadline_hits_total");
            x.late_responses = r.counter("xrl_call_late_responses_total");
            x.ignored_errors = r.counter("xrl_ignored_errors_total");
            x.targets_reported_dead =
                r.counter("xrl_targets_reported_dead_total");
            x.lat_inproc =
                r.histogram("xrl_latency_ns{family=\"inproc\"}");
            return x;
        }();
        return m;
    }
};

}  // namespace

// One in-flight reliable call. Owned by shared_ptr: the state machine's
// timers and response callbacks all reference it; finish_call() releases
// the timers (and with them the last long-lived references).
struct XrlRouter::CallState {
    xrl::Xrl xrl;
    CallOptions opts;
    ResponseCallback done;
    ev::TimePoint deadline_at{};
    // Resolutions snapshot for the current cycle; failover walks res_index
    // through it. Each new cycle re-resolves (the failing entry was
    // invalidated, so a restarted target is picked up).
    std::vector<finder::Resolution> resolutions;
    size_t res_index = 0;
    uint32_t cycles_used = 0;
    // Bumped per attempt; responses carrying a stale generation are late
    // (their attempt already timed out) and are counted, then discarded.
    uint64_t generation = 0;
    ev::Timer attempt_timer;
    ev::Timer backoff_timer;
    bool finished = false;
    // True while every failure was a hard transport failure (refused,
    // killed channel). Timeouts clear it: slow is not dead, and death
    // must never be declared on loss alone (§ classic failure-detector
    // caution — under injected drops this would amputate live targets).
    bool hard_failure_only = true;
    xrl::XrlError last_err;
    telemetry::TraceContext trace{};
};

XrlRouter::XrlRouter(Plexus& plexus, std::string cls, bool sole)
    : XrlRouter(plexus, plexus.loop, std::move(cls), sole) {}

XrlRouter::XrlRouter(Plexus& plexus, ev::EventLoop& home, std::string cls,
                     bool sole)
    : plexus_(plexus), home_loop_(home), cls_(std::move(cls)), sole_(sole) {
    // Deterministic per-class seed: chaos runs replay bit-for-bit.
    prng_ = 0x9e3779b97f4a7c15ull ^ std::hash<std::string>{}(cls_);
    if (prng_ == 0) prng_ = 1;
    // A component on its own loop cannot offer inproc (synchronous
    // dispatch would run handlers on the caller's thread); it is reachable
    // over xring instead.
    if (threaded()) xring_enabled_ = true;
}

XrlRouter::~XrlRouter() {
    if (!instance_.empty()) {
        if (intra_registered_) plexus_.intra.remove(instance_);
        if (finder_client_) {
            // Best-effort: a clean exit removes the registration so the
            // master sees an orderly departure (death watch fires, the
            // name is freed). If the master is already gone, so be it.
            finder_client_->unregister_target(instance_);
        } else {
            plexus_.finder.unregister_target(instance_);
        }
    }
    if (invalidate_listener_id_ != 0)
        plexus_.finder.remove_invalidate_listener(invalidate_listener_id_);
}

std::string XrlRouter::tcp_address() const {
    return tcp_listener_ && tcp_listener_->ok() ? tcp_listener_->address()
                                                : std::string{};
}

void XrlRouter::enable_tcp() {
    if (!tcp_listener_)
        tcp_listener_ = std::make_unique<TcpListener>(home_loop_, dispatcher_);
}

void XrlRouter::enable_udp() {
    if (!udp_listener_)
        udp_listener_ = std::make_unique<UdpListener>(home_loop_, dispatcher_);
}

bool XrlRouter::finalize() {
    if (finalized_) return true;
    // Every component self-hosts observability and chaos control: the
    // telemetry/1.0 and fault/1.0 interfaces are served over the same IPC
    // they report on / sabotage. common/0.1 makes every component
    // uniformly identifiable and health-probeable (the supervisor's
    // get_status probes land here unless the component bound its own).
    bind_common_xrls(dispatcher_, cls_);
    bind_telemetry_xrls(dispatcher_);
    bind_fault_xrls(dispatcher_, plexus_.faults);
    if (remote()) return finalize_remote();
    auto instance = plexus_.finder.register_target(cls_, sole_);
    if (!instance) return false;
    instance_ = *instance;
    secret_ = plexus_.finder.instance_secret(instance_);

    std::map<std::string, std::string> families;
    if (!threaded()) {
        // Inproc's synchronous dispatch requires caller and callee to
        // share a loop (thread); a threaded component must not offer it.
        plexus_.intra.add(instance_, &dispatcher_);
        intra_registered_ = true;
        families["inproc"] = instance_;
    }
    if (xring_enabled_) {
        xring_port_ = std::make_unique<XringPort>(home_loop_, dispatcher_,
                                                  plexus_.xring, instance_);
        if (xring_port_->ok()) families["xring"] = instance_;
    }
    if (tcp_listener_ && tcp_listener_->ok())
        families["stcp"] = tcp_listener_->address();
    if (udp_listener_ && udp_listener_->ok())
        families["sudp"] = udp_listener_->address();

    for (const std::string& method : dispatcher_.method_names()) {
        std::string key =
            plexus_.finder.register_method(instance_, method, families);
        dispatcher_.set_method_key(method, key);
    }

    // Drop cached resolutions whenever any instance of a class goes away;
    // the next send re-resolves (§6.2 cache invalidation).
    // The listener may fire from whichever thread unregisters the class
    // (e.g. a component thread tearing down its router) — hence the lock.
    invalidate_listener_id_ = plexus_.finder.add_invalidate_listener(
        [this](const std::string& cls) {
            std::lock_guard<std::mutex> lk(resolve_mu_);
            for (auto it = resolve_cache_.begin();
                 it != resolve_cache_.end();) {
                // Cache keys are "target|full_method"; match on target
                // class or exact instance prefix.
                const std::string& k = it->first;
                if (k.compare(0, cls.size(), cls) == 0 &&
                    (k.size() == cls.size() || k[cls.size()] == '|' ||
                     k[cls.size()] == '-'))
                    it = resolve_cache_.erase(it);
                else
                    ++it;
            }
        });

    finalized_ = true;
    return true;
}

bool XrlRouter::finalize_remote() {
    // Child-process registration: everything goes through the master
    // Finder over stcp. Only socket families are offered — inproc and
    // xring addresses are meaningless outside this address space.
    finder_client_ = std::make_unique<FinderClient>(plexus_.finder_address);
    auto reg = finder_client_->register_target(cls_, sole_);
    if (!reg) return false;
    instance_ = reg->instance;
    secret_ = reg->secret;

    std::map<std::string, std::string> families;
    if (tcp_listener_ && tcp_listener_->ok())
        families["stcp"] = tcp_listener_->address();
    if (udp_listener_ && udp_listener_->ok())
        families["sudp"] = udp_listener_->address();

    const std::vector<std::string> methods = dispatcher_.method_names();
    const std::vector<std::string> keys =
        finder_client_->register_methods(instance_, methods, families);
    if (keys.size() != methods.size()) return false;
    for (size_t i = 0; i < methods.size(); ++i)
        dispatcher_.set_method_key(methods[i], keys[i]);

    // No invalidation push crosses the process boundary; stale cache
    // entries are dropped per-call by handle_attempt_failure instead.
    finalized_ = true;
    return true;
}

std::optional<std::vector<finder::Resolution>> XrlRouter::resolve(
    const xrl::Xrl& xrl, xrl::XrlError* err) {
    const std::string cache_key = xrl.target() + "|" + xrl.full_method();
    {
        std::lock_guard<std::mutex> lk(resolve_mu_);
        auto it = resolve_cache_.find(cache_key);
        if (it != resolve_cache_.end()) {
            if (it->second.empty()) {
                if (err)
                    *err = xrl::XrlError(xrl::ErrorCode::kResolveFailed,
                                         "no transports");
                return std::nullopt;
            }
            return it->second;
        }
    }
    // Miss: ask the Finder with the cache lock released (lock order is
    // always resolve_mu_ strictly inside or outside Finder calls, never
    // held across one — the Finder takes its own lock and may call our
    // invalidation listener, which takes resolve_mu_).
    std::optional<std::vector<finder::Resolution>> resolutions;
    if (finder_client_) {
        // Remote mode: a blocking round trip to the master. Typed errors
        // (kTargetDead especially) pass through so the call contract
        // fails exactly as fast as it would against a local Finder. Drop
        // in-address-space families — the master's own components
        // register inproc endpoints we cannot reach from this process.
        resolutions = finder_client_->resolve(xrl.target(), xrl.full_method(),
                                              instance_, secret_, err);
        if (resolutions)
            std::erase_if(*resolutions, [](const finder::Resolution& r) {
                return r.family != "stcp" && r.family != "sudp";
            });
    } else {
        resolutions = plexus_.finder.resolve(
            xrl.target(), xrl.full_method(), instance_, err, secret_);
    }
    if (!resolutions) return std::nullopt;
    {
        std::lock_guard<std::mutex> lk(resolve_mu_);
        resolve_cache_[cache_key] = *resolutions;
    }
    if (resolutions->empty()) {
        if (err)
            *err = xrl::XrlError(xrl::ErrorCode::kResolveFailed,
                                 "no transports");
        return std::nullopt;
    }
    return std::move(*resolutions);
}

void XrlRouter::invalidate_cached(const xrl::Xrl& xrl) {
    std::lock_guard<std::mutex> lk(resolve_mu_);
    resolve_cache_.erase(xrl.target() + "|" + xrl.full_method());
}

void XrlRouter::dispatch_via(const std::string& target,
                             const finder::Resolution& res,
                             const xrl::XrlArgs& args, ResponseCallback done) {
    if (plexus_.faults.active()) {
        // The injector decides the send's fate; `deliver` carries copies
        // so a delayed/duplicated dispatch outlives this frame. The home
        // loop rides along so delayed/held deliveries of a threaded
        // component fire on its thread, not the Plexus loop's.
        plexus_.faults.intercept(
            target, res.family,
            [this, res, args](ResponseCallback cb) {
                dispatch_raw(res, args, std::move(cb));
            },
            std::move(done), &home_loop_);
        return;
    }
    dispatch_raw(res, args, std::move(done));
}

void XrlRouter::dispatch_raw(const finder::Resolution& res,
                             const xrl::XrlArgs& args, ResponseCallback done) {
    const IpcMetrics& m = IpcMetrics::get();
    if (res.family == "inproc") {
        m.sends_inproc->inc();
        // Intra dispatch is synchronous, so latency is measured around the
        // call itself and the callee runs under the deepened trace context
        // (nested sends inherit it straight off this stack).
        if (telemetry::tracing_enabled()) {
            telemetry::TraceContext ctx = telemetry::Tracer::current();
            if (ctx.valid()) {
                telemetry::TraceContext hop = ctx.next_hop();
                telemetry::Tracer::global().record(
                    hop, home_loop_.now(), "dispatch",
                    "inproc " + res.keyed_method);
                telemetry::Tracer::Scope scope(hop);
                if (telemetry::enabled()) {
                    const ev::TimePoint t0 = home_loop_.now();
                    plexus_.intra.send(res.address, res.keyed_method, args,
                                       std::move(done));
                    m.lat_inproc->observe_always(home_loop_.now() - t0);
                } else {
                    plexus_.intra.send(res.address, res.keyed_method, args,
                                       std::move(done));
                }
                return;
            }
        }
        if (telemetry::enabled()) {
            const ev::TimePoint t0 = home_loop_.now();
            plexus_.intra.send(res.address, res.keyed_method, args,
                               std::move(done));
            m.lat_inproc->observe_always(home_loop_.now() - t0);
        } else {
            plexus_.intra.send(res.address, res.keyed_method, args,
                               std::move(done));
        }
        return;
    }
    if (res.family == "xring") {
        m.sends_xring->inc();
        auto& ch = xring_channels_[res.address];
        if (!ch || ch->broken()) {
            // (Re)connect: the target may have restarted under the same
            // instance name, and a stale broken channel must not wedge us.
            // If the port is simply gone, the fresh channel is born broken
            // and send() fails the call hard (kTransportFailed) — which is
            // what failover and dead-target detection key on.
            ch = std::make_unique<XringChannel>(home_loop_, plexus_.xring,
                                                res.address);
        }
        ch->send(res.keyed_method, args, std::move(done));
        return;
    }
    if (res.family == "stcp") {
        m.sends_stcp->inc();
        auto& ch = tcp_channels_[res.address];
        if (!ch) ch = std::make_unique<TcpChannel>(home_loop_, res.address);
        if (ch->broken()) {
            // Recreate once: the target may have restarted on the same
            // address, and a stale broken channel must not wedge us.
            ch = std::make_unique<TcpChannel>(home_loop_, res.address);
        }
        ch->send(res.keyed_method, args, std::move(done));
        return;
    }
    if (res.family == "sudp") {
        m.sends_sudp->inc();
        auto& ch = udp_channels_[res.address];
        if (!ch) ch = std::make_unique<UdpChannel>(home_loop_, res.address);
        ch->send(res.keyed_method, args, std::move(done));
        return;
    }
    home_loop_.defer([done = std::move(done), family = res.family] {
        done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                           "unknown family: " + family),
             {});
    });
}

bool XrlRouter::call(const xrl::Xrl& xrl, const CallOptions& opts,
                     ResponseCallback done) {
    if (!plexus_.reliability_enabled)
        return send_unreliable(xrl, std::move(done));
    auto st = std::make_shared<CallState>();
    st->xrl = xrl;
    st->opts = opts;
    if (st->opts.retry.max_attempts == 0) st->opts.retry.max_attempts = 1;
    st->done = std::move(done);
    st->deadline_at = home_loop_.now() + st->opts.deadline;
    if (telemetry::tracing_enabled()) {
        // An explicit per-call context (CallOptions::with_trace) wins;
        // otherwise inherit the ambient one, or root a new trace if this
        // call is not already under one (i.e. not issued from inside a
        // traced dispatch). Each attempt records its own "send" event
        // under this context — a retry IS a resend.
        telemetry::TraceContext ctx = st->opts.trace;
        if (!ctx.valid()) ctx = telemetry::Tracer::current();
        if (!ctx.valid()) ctx = telemetry::Tracer::global().begin_trace();
        st->trace = ctx;
    }
    begin_cycle(st);
    return true;
}

void XrlRouter::call_oneway(const xrl::Xrl& xrl, const CallOptions& opts) {
    // One-way means the caller has no recovery, not that failures vanish:
    // they are counted and logged so a misbehaving dependency is visible.
    if (!plexus_.reliability_enabled) {
        // Legacy baseline: fire once, immediately, no queueing — call()
        // degrades itself, but the queue must not serialize here either
        // (a dropped send never completes, which would wedge the queue).
        call(xrl, opts,
             [caller = cls_, target = xrl.target(),
              method = xrl.full_method()](const xrl::XrlError& e,
                                          const xrl::XrlArgs&) {
                 if (e.ok()) return;
                 IpcMetrics::get().ignored_errors->inc();
                 std::fprintf(stderr,
                              "[xrl] %s: one-way call %s/%s failed: %s\n",
                              caller.c_str(), target.c_str(), method.c_str(),
                              e.str().c_str());
             });
        return;
    }
    oneway_queues_[xrl.target()].q.emplace_back(xrl, opts);
    pump_oneway(xrl.target());
}

void XrlRouter::pump_oneway(const std::string& target) {
    OnewayQueue& oq = oneway_queues_[target];
    if (oq.pumping) return;
    oq.pumping = true;
    // Iterative, not recursive: an inproc call completes inline, so the
    // completion callback's pump_oneway() re-entry hits the guard above
    // and this loop issues the next call — a 146k-deep queue must not
    // become 146k-deep recursion.
    while (!oq.in_flight && !oq.q.empty()) {
        oq.in_flight = true;
        auto [x, o] = std::move(oq.q.front());
        oq.q.pop_front();
        call(x, o,
             [this, caller = cls_, target, method = x.full_method()](
                 const xrl::XrlError& e, const xrl::XrlArgs&) {
                 if (!e.ok()) {
                     IpcMetrics::get().ignored_errors->inc();
                     std::fprintf(
                         stderr, "[xrl] %s: one-way call %s/%s failed: %s\n",
                         caller.c_str(), target.c_str(), method.c_str(),
                         e.str().c_str());
                 }
                 OnewayQueue& done_q = oneway_queues_[target];
                 done_q.in_flight = false;
                 pump_oneway(target);
             });
    }
    oq.pumping = false;
}

void XrlRouter::begin_cycle(const std::shared_ptr<CallState>& st) {
    if (st->finished) return;
    xrl::XrlError err;
    std::optional<std::vector<finder::Resolution>> resolutions =
        resolve(st->xrl, &err);
    if (!resolutions) {
        IpcMetrics::get().resolve_failures->inc();
        if (err.code() == xrl::ErrorCode::kTargetDead) {
            // The Finder already knows: fail fast and typed, no probing.
            finish_call(st, err, {});
            return;
        }
        // Resolution failure happens strictly before execution, so it is
        // retryable regardless of idempotency (the target may register a
        // moment from now).
        handle_attempt_failure(st, err, /*may_have_executed=*/false);
        return;
    }
    st->resolutions.clear();
    if (preferred_family_.empty()) {
        st->resolutions = std::move(*resolutions);
    } else {
        for (const finder::Resolution& r : *resolutions)
            if (r.family == preferred_family_) st->resolutions.push_back(r);
        if (st->resolutions.empty()) {
            finish_call(st,
                        xrl::XrlError(xrl::ErrorCode::kResolveFailed,
                                      "family " + preferred_family_ +
                                          " not offered by target"),
                        {});
            return;
        }
    }
    st->res_index = 0;
    start_attempt(st);
}

void XrlRouter::start_attempt(const std::shared_ptr<CallState>& st) {
    if (st->finished) return;
    const ev::TimePoint now = home_loop_.now();
    if (now >= st->deadline_at) {
        IpcMetrics::get().deadline_hits->inc();
        std::string note =
            "call deadline expired: " + st->xrl.target() + "/" +
            st->xrl.full_method();
        if (!st->last_err.ok()) note += "; last error: " + st->last_err.str();
        finish_call(st, xrl::XrlError(xrl::ErrorCode::kTimeout, note), {});
        return;
    }
    // Each attempt gets the configured budget, clamped by what is left of
    // the overall deadline — the deadline needs no timer of its own.
    ev::Duration budget = st->opts.attempt_timeout;
    if (st->deadline_at - now < budget) budget = st->deadline_at - now;
    const uint64_t gen = ++st->generation;
    st->attempt_timer = home_loop_.set_timer(
        budget, [this, st, gen] { on_attempt_timeout(st, gen); });
    const finder::Resolution res = st->resolutions[st->res_index];
    ResponseCallback cb = [this, st, gen](const xrl::XrlError& e,
                                          const xrl::XrlArgs& a) {
        on_response(st, gen, e, a);
    };
    if (telemetry::tracing_enabled() && st->trace.valid()) {
        telemetry::Tracer::global().record(
            st->trace, now, "send",
            res.family + " " + st->xrl.target() + "/" +
                st->xrl.full_method());
        telemetry::Tracer::Scope scope(st->trace);
        dispatch_via(st->xrl.target(), res, st->xrl.args(), std::move(cb));
        return;
    }
    dispatch_via(st->xrl.target(), res, st->xrl.args(), std::move(cb));
}

void XrlRouter::on_response(const std::shared_ptr<CallState>& st,
                            uint64_t gen, const xrl::XrlError& err,
                            const xrl::XrlArgs& args) {
    if (st->finished || gen != st->generation) {
        // The attempt this reply answers was abandoned; exactly-once
        // delivery to `done` wins over a late answer.
        IpcMetrics::get().late_responses->inc();
        return;
    }
    st->attempt_timer.unschedule();
    if (err.ok() || !xrl::is_transport_error(err.code())) {
        // Success — or an answer from (or past) the callee: retrying a
        // kCommandFailed would re-run application work for the same
        // deterministic outcome. Final either way.
        finish_call(st, err, args);
        return;
    }
    // kTimeout from a channel's own backstop means the request left this
    // host — it may have executed.
    handle_attempt_failure(
        st, err,
        /*may_have_executed=*/err.code() == xrl::ErrorCode::kTimeout);
}

void XrlRouter::on_attempt_timeout(const std::shared_ptr<CallState>& st,
                                   uint64_t gen) {
    if (st->finished || gen != st->generation) return;
    // Invalidate the generation so the reply, if it ever lands, is
    // counted late and discarded rather than completing a moved-on call.
    st->generation++;
    IpcMetrics::get().attempt_timeouts->inc();
    const std::string family = st->res_index < st->resolutions.size()
                                   ? st->resolutions[st->res_index].family
                                   : std::string("?");
    handle_attempt_failure(
        st,
        xrl::XrlError(xrl::ErrorCode::kTimeout,
                      "attempt timed out (" + family + ")"),
        /*may_have_executed=*/true);
}

void XrlRouter::handle_attempt_failure(const std::shared_ptr<CallState>& st,
                                       const xrl::XrlError& err,
                                       bool may_have_executed) {
    st->last_err = err;
    if (err.code() != xrl::ErrorCode::kTransportFailed &&
        err.code() != xrl::ErrorCode::kTargetDead)
        st->hard_failure_only = false;
    // Whatever resolution this attempt used is suspect; the next dispatch
    // must re-resolve through the Finder (§6.2 cache invalidation).
    invalidate_cached(st->xrl);
    if (may_have_executed && !st->opts.idempotent) {
        // The request may have run on the callee; re-dispatching a
        // non-idempotent method could execute it twice. Surface instead.
        finish_call(st,
                    xrl::XrlError(xrl::ErrorCode::kTimeout,
                                  "timed out; not retried (call not marked "
                                  "idempotent): " +
                                      err.str()),
                    {});
        return;
    }
    // Failover hops within a cycle are free: same request, next transport.
    if (st->opts.failover && st->res_index + 1 < st->resolutions.size()) {
        st->res_index++;
        IpcMetrics::get().failovers->inc();
        if (telemetry::journal_enabled())
            telemetry::Journal::current().record(
                home_loop_.now(), telemetry::JournalKind::kCallFailover,
                plexus_.node, "ipc", st->xrl.target(),
                st->xrl.full_method());
        start_attempt(st);
        return;
    }
    st->cycles_used++;
    if (st->cycles_used >= st->opts.retry.max_attempts) {
        if (st->hard_failure_only) {
            // Every transport refused outright across every attempt:
            // that is death, not slowness. Tell the Finder so dependents
            // fail fast (kTargetDead) instead of rediscovering it one
            // timeout at a time.
            IpcMetrics::get().targets_reported_dead->inc();
            if (finder_client_)
                finder_client_->report_dead(st->xrl.target());
            else
                plexus_.finder.report_dead(st->xrl.target());
        }
        finish_call(st, err, {});
        return;
    }
    const ev::Duration backoff = backoff_for(st->opts.retry, st->cycles_used);
    if (home_loop_.now() + backoff >= st->deadline_at) {
        IpcMetrics::get().deadline_hits->inc();
        finish_call(st,
                    xrl::XrlError(xrl::ErrorCode::kTimeout,
                                  "deadline leaves no room to retry; last "
                                  "error: " +
                                      err.str()),
                    {});
        return;
    }
    IpcMetrics::get().retries->inc();
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            home_loop_.now(), telemetry::JournalKind::kCallRetry,
            plexus_.node, "ipc", st->xrl.target(), st->xrl.full_method(),
            static_cast<int64_t>(st->cycles_used));
    st->backoff_timer =
        home_loop_.set_timer(backoff, [this, st] { begin_cycle(st); });
}

void XrlRouter::finish_call(const std::shared_ptr<CallState>& st,
                            const xrl::XrlError& err,
                            const xrl::XrlArgs& args) {
    if (st->finished) return;
    st->finished = true;
    st->attempt_timer.unschedule();
    st->backoff_timer.unschedule();
    ResponseCallback done = std::move(st->done);
    st->done = nullptr;
    if (done) done(err, args);
}

ev::Duration XrlRouter::backoff_for(const RetryPolicy& p, uint32_t cycle) {
    double ns = static_cast<double>(p.initial_backoff.count());
    for (uint32_t i = 1; i < cycle; ++i) ns *= p.multiplier;
    ns = std::min(ns, static_cast<double>(p.max_backoff.count()));
    if (p.jitter > 0) {
        const double u = static_cast<double>(rnd() % 10000) / 10000.0;
        ns *= 1.0 + p.jitter * (2.0 * u - 1.0);
    }
    if (ns < 1.0) ns = 1.0;
    return ev::Duration(static_cast<ev::Duration::rep>(ns));
}

uint64_t XrlRouter::rnd() {
    // splitmix64, same generator the fault injector uses.
    uint64_t z = (prng_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

bool XrlRouter::send_unreliable(const xrl::Xrl& xrl, ResponseCallback done) {
    // The pre-contract semantics, kept for A/B comparison in chaos tests:
    // one dispatch, first resolution, no loop-enforced timeout.
    xrl::XrlError err;
    std::optional<std::vector<finder::Resolution>> resolutions =
        resolve(xrl, &err);
    const finder::Resolution* res = nullptr;
    if (resolutions) {
        if (preferred_family_.empty()) {
            res = &resolutions->front();
        } else {
            for (const finder::Resolution& r : *resolutions)
                if (r.family == preferred_family_) {
                    res = &r;
                    break;
                }
            if (res == nullptr)
                err = xrl::XrlError(
                    xrl::ErrorCode::kResolveFailed,
                    "family " + preferred_family_ + " not offered by target");
        }
    }
    if (res == nullptr) {
        IpcMetrics::get().resolve_failures->inc();
        home_loop_.defer([done = std::move(done), err] { done(err, {}); });
        return true;
    }
    if (telemetry::tracing_enabled()) {
        auto& tracer = telemetry::Tracer::global();
        telemetry::TraceContext ctx = telemetry::Tracer::current();
        if (!ctx.valid()) ctx = tracer.begin_trace();
        tracer.record(ctx, home_loop_.now(), "send",
                      res->family + " " + xrl.target() + "/" +
                          xrl.full_method());
        telemetry::Tracer::Scope scope(ctx);
        dispatch_via(xrl.target(), *res, xrl.args(), std::move(done));
        return true;
    }
    dispatch_via(xrl.target(), *res, xrl.args(), std::move(done));
    return true;
}

std::string XrlRouter::debug_state() const {
    std::string out = instance_ + ":";
    for (const auto& [addr, ch] : tcp_channels_) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      " ch[%s] pend=%zu wbuf=%zu rbuf=%zu conn=%d brk=%d wa=%d;",
                      addr.c_str(), ch->pending_count(), ch->wbuf_bytes(),
                      ch->rbuf_bytes(), ch->connecting() ? 1 : 0,
                      ch->broken() ? 1 : 0, ch->writer_armed() ? 1 : 0);
        out += buf;
    }
    if (tcp_listener_) {
        auto [w, r] = tcp_listener_->buffered_bytes();
        char buf[128];
        std::snprintf(buf, sizeof buf, " lsn conns=%zu wbuf=%zu rbuf=%zu;",
                      tcp_listener_->connection_count(), w, r);
        out += buf;
    }
    for (const auto& [addr, ch] : xring_channels_) {
        char buf[192];
        std::snprintf(buf, sizeof buf, " xr[%s] pend=%zu backlog=%zu brk=%d;",
                      addr.c_str(), ch->pending_count(), ch->backlog_count(),
                      ch->broken() ? 1 : 0);
        out += buf;
    }
    for (const auto& [tgt, oq] : oneway_queues_) {
        if (oq.q.empty() && !oq.in_flight) continue;
        char buf[128];
        std::snprintf(buf, sizeof buf, " ow[%s] q=%zu inflight=%d;",
                      tgt.c_str(), oq.q.size(), oq.in_flight ? 1 : 0);
        out += buf;
    }
    return out;
}

}  // namespace xrp::ipc
