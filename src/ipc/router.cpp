#include "ipc/router.hpp"

#include "ipc/telemetry_xrl.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

namespace {

// Handles bound once on first use; every hot-path touch below is a cached
// pointer check plus a relaxed atomic op (disabled registry: just the
// check).
struct IpcMetrics {
    telemetry::Counter* sends_inproc;
    telemetry::Counter* sends_stcp;
    telemetry::Counter* sends_sudp;
    telemetry::Counter* resolve_failures;
    telemetry::Histogram* lat_inproc;

    static const IpcMetrics& get() {
        static IpcMetrics m = [] {
            auto& r = telemetry::Registry::global();
            IpcMetrics x;
            x.sends_inproc =
                r.counter("xrl_sends_total{family=\"inproc\"}");
            x.sends_stcp = r.counter("xrl_sends_total{family=\"stcp\"}");
            x.sends_sudp = r.counter("xrl_sends_total{family=\"sudp\"}");
            x.resolve_failures = r.counter("xrl_resolve_failures_total");
            x.lat_inproc =
                r.histogram("xrl_latency_ns{family=\"inproc\"}");
            return x;
        }();
        return m;
    }
};

}  // namespace

XrlRouter::XrlRouter(Plexus& plexus, std::string cls, bool sole)
    : plexus_(plexus), cls_(std::move(cls)), sole_(sole) {}

XrlRouter::~XrlRouter() {
    if (!instance_.empty()) {
        plexus_.intra.remove(instance_);
        plexus_.finder.unregister_target(instance_);
    }
    if (invalidate_listener_id_ != 0)
        plexus_.finder.remove_invalidate_listener(invalidate_listener_id_);
}

void XrlRouter::enable_tcp() {
    if (!tcp_listener_)
        tcp_listener_ = std::make_unique<TcpListener>(plexus_.loop, dispatcher_);
}

void XrlRouter::enable_udp() {
    if (!udp_listener_)
        udp_listener_ = std::make_unique<UdpListener>(plexus_.loop, dispatcher_);
}

bool XrlRouter::finalize() {
    if (finalized_) return true;
    // Every component self-hosts observability: the telemetry/1.0 interface
    // is served over the same IPC it reports on.
    bind_telemetry_xrls(dispatcher_);
    auto instance = plexus_.finder.register_target(cls_, sole_);
    if (!instance) return false;
    instance_ = *instance;
    secret_ = plexus_.finder.instance_secret(instance_);
    plexus_.intra.add(instance_, &dispatcher_);

    std::map<std::string, std::string> families;
    families["inproc"] = instance_;
    if (tcp_listener_ && tcp_listener_->ok())
        families["stcp"] = tcp_listener_->address();
    if (udp_listener_ && udp_listener_->ok())
        families["sudp"] = udp_listener_->address();

    for (const std::string& method : dispatcher_.method_names()) {
        std::string key =
            plexus_.finder.register_method(instance_, method, families);
        dispatcher_.set_method_key(method, key);
    }

    // Drop cached resolutions whenever any instance of a class goes away;
    // the next send re-resolves (§6.2 cache invalidation).
    invalidate_listener_id_ = plexus_.finder.add_invalidate_listener(
        [this](const std::string& cls) {
            for (auto it = resolve_cache_.begin();
                 it != resolve_cache_.end();) {
                // Cache keys are "target|full_method"; match on target
                // class or exact instance prefix.
                const std::string& k = it->first;
                if (k.compare(0, cls.size(), cls) == 0 &&
                    (k.size() == cls.size() || k[cls.size()] == '|' ||
                     k[cls.size()] == '-'))
                    it = resolve_cache_.erase(it);
                else
                    ++it;
            }
        });

    finalized_ = true;
    return true;
}

const finder::Resolution* XrlRouter::resolve(const xrl::Xrl& xrl,
                                             xrl::XrlError* err) {
    const std::string cache_key = xrl.target() + "|" + xrl.full_method();
    auto it = resolve_cache_.find(cache_key);
    if (it == resolve_cache_.end()) {
        auto resolutions = plexus_.finder.resolve(
            xrl.target(), xrl.full_method(), instance_, err, secret_);
        if (!resolutions) return nullptr;
        it = resolve_cache_.emplace(cache_key, std::move(*resolutions)).first;
    }
    const auto& resolutions = it->second;
    if (!preferred_family_.empty()) {
        for (const auto& r : resolutions)
            if (r.family == preferred_family_) return &r;
        if (err)
            *err = xrl::XrlError(
                xrl::ErrorCode::kResolveFailed,
                "family " + preferred_family_ + " not offered by target");
        return nullptr;
    }
    if (resolutions.empty()) {
        if (err)
            *err = xrl::XrlError(xrl::ErrorCode::kResolveFailed,
                                 "no transports");
        return nullptr;
    }
    return &resolutions.front();
}

void XrlRouter::dispatch_via(const finder::Resolution& res,
                             const xrl::XrlArgs& args, ResponseCallback done) {
    const IpcMetrics& m = IpcMetrics::get();
    if (res.family == "inproc") {
        m.sends_inproc->inc();
        // Intra dispatch is synchronous, so latency is measured around the
        // call itself and the callee runs under the deepened trace context
        // (nested sends inherit it straight off this stack).
        if (telemetry::tracing_enabled()) {
            telemetry::TraceContext ctx = telemetry::Tracer::current();
            if (ctx.valid()) {
                telemetry::TraceContext hop = ctx.next_hop();
                telemetry::Tracer::global().record(
                    hop, plexus_.loop.now(), "dispatch",
                    "inproc " + res.keyed_method);
                telemetry::Tracer::Scope scope(hop);
                if (telemetry::enabled()) {
                    const ev::TimePoint t0 = plexus_.loop.now();
                    plexus_.intra.send(res.address, res.keyed_method, args,
                                       std::move(done));
                    m.lat_inproc->observe_always(plexus_.loop.now() - t0);
                } else {
                    plexus_.intra.send(res.address, res.keyed_method, args,
                                       std::move(done));
                }
                return;
            }
        }
        if (telemetry::enabled()) {
            const ev::TimePoint t0 = plexus_.loop.now();
            plexus_.intra.send(res.address, res.keyed_method, args,
                               std::move(done));
            m.lat_inproc->observe_always(plexus_.loop.now() - t0);
        } else {
            plexus_.intra.send(res.address, res.keyed_method, args,
                               std::move(done));
        }
        return;
    }
    if (res.family == "stcp") {
        m.sends_stcp->inc();
        auto& ch = tcp_channels_[res.address];
        if (!ch) ch = std::make_unique<TcpChannel>(plexus_.loop, res.address);
        if (ch->broken()) {
            // Recreate once: the target may have restarted on the same
            // address, and a stale broken channel must not wedge us.
            ch = std::make_unique<TcpChannel>(plexus_.loop, res.address);
        }
        ch->send(res.keyed_method, args, std::move(done));
        return;
    }
    if (res.family == "sudp") {
        m.sends_sudp->inc();
        auto& ch = udp_channels_[res.address];
        if (!ch) ch = std::make_unique<UdpChannel>(plexus_.loop, res.address);
        ch->send(res.keyed_method, args, std::move(done));
        return;
    }
    plexus_.loop.defer([done = std::move(done), family = res.family] {
        done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                           "unknown family: " + family),
             {});
    });
}

bool XrlRouter::send(const xrl::Xrl& xrl, ResponseCallback done) {
    xrl::XrlError err;
    const finder::Resolution* res = resolve(xrl, &err);
    if (res == nullptr) {
        IpcMetrics::get().resolve_failures->inc();
        plexus_.loop.defer([done = std::move(done), err] { done(err, {}); });
        return true;
    }
    if (telemetry::tracing_enabled()) {
        // Root a new trace if this send is not already under one (i.e. not
        // issued from inside a traced dispatch).
        auto& tracer = telemetry::Tracer::global();
        telemetry::TraceContext ctx = telemetry::Tracer::current();
        if (!ctx.valid()) ctx = tracer.begin_trace();
        tracer.record(ctx, plexus_.loop.now(), "send",
                      res->family + " " + xrl.target() + "/" +
                          xrl.full_method());
        telemetry::Tracer::Scope scope(ctx);
        dispatch_via(*res, xrl.args(), std::move(done));
        return true;
    }
    dispatch_via(*res, xrl.args(), std::move(done));
    return true;
}

std::string XrlRouter::debug_state() const {
    std::string out = instance_ + ":";
    for (const auto& [addr, ch] : tcp_channels_) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      " ch[%s] pend=%zu wbuf=%zu rbuf=%zu conn=%d brk=%d wa=%d;",
                      addr.c_str(), ch->pending_count(), ch->wbuf_bytes(),
                      ch->rbuf_bytes(), ch->connecting() ? 1 : 0,
                      ch->broken() ? 1 : 0, ch->writer_armed() ? 1 : 0);
        out += buf;
    }
    if (tcp_listener_) {
        auto [w, r] = tcp_listener_->buffered_bytes();
        char buf[128];
        std::snprintf(buf, sizeof buf, " lsn conns=%zu wbuf=%zu rbuf=%zu;",
                      tcp_listener_->connection_count(), w, r);
        out += buf;
    }
    return out;
}

}  // namespace xrp::ipc
