// Intra-process protocol family: XRLs between components in the same
// address space dispatch as direct method calls through a registry, with
// no marshaling (§6.3). This is the fastest family (Figure 9) and the
// default for co-located components; because every call still flows
// through dispatch + key check, components keep exactly the same coupling
// properties as over TCP.
#ifndef XRP_IPC_INTRA_HPP
#define XRP_IPC_INTRA_HPP

#include <map>
#include <string>

#include "ipc/dispatcher.hpp"
#include "ipc/wire.hpp"

namespace xrp::ipc {

class IntraProcessRegistry {
public:
    IntraProcessRegistry() = default;
    IntraProcessRegistry(const IntraProcessRegistry&) = delete;
    IntraProcessRegistry& operator=(const IntraProcessRegistry&) = delete;

    // `address` is the component instance name. The dispatcher must
    // outlive the registration (the router unregisters in its dtor).
    void add(const std::string& address, XrlDispatcher* dispatcher) {
        endpoints_[address] = dispatcher;
    }
    void remove(const std::string& address) { endpoints_.erase(address); }

    XrlDispatcher* find(const std::string& address) const {
        auto it = endpoints_.find(address);
        return it == endpoints_.end() ? nullptr : it->second;
    }

    // Direct-call send: dispatches synchronously on the callee. Arguments
    // are still marshalled through the wire codec — XORP's in-process
    // family does the same, which is why the paper's Figure 9 shows intra
    // and TCP converging as argument counts grow: both pay marshalling.
    // It also guarantees the callee can never alias the caller's data.
    void send(const std::string& address, const std::string& keyed_method,
              const xrl::XrlArgs& args, ResponseCallback done) const {
        XrlDispatcher* d = find(address);
        if (d == nullptr) {
            done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "no intra-process endpoint: " + address),
                 {});
            return;
        }
        std::vector<uint8_t> buf;
        encode_args(args, buf);
        WireReader reader(buf.data(), buf.size());
        auto copied = decode_args(reader);
        if (!copied) {
            done(xrl::XrlError(xrl::ErrorCode::kInternalError,
                               "intra-process marshalling failed"),
                 {});
            return;
        }
        d->dispatch(keyed_method, *copied, std::move(done));
    }

private:
    std::map<std::string, XrlDispatcher*> endpoints_;
};

}  // namespace xrp::ipc

#endif
