// The telemetry/1.0 XRL face: every component exposes its process-wide
// metrics registry and the tracer over the same IPC they instrument —
// observability is self-hosted, there is no side channel. XrlRouter
// binds these handlers in finalize(), so any finalized target (bgp, rib,
// fea, even the finder) answers:
//
//   list_metrics              — registered metric keys
//   get_metric ? name         — one metric's exposition lines
//   snapshot                  — full Prometheus-style text exposition
//   metrics_enable ? on       — flip the registry-wide enable flag
//   trace_enable ? on         — flip call tracing
//   trace_dump                — formatted trace ring contents
//   trace_dump_json           — same ring as JSON-lines (machine-readable)
//   trace_clear               — drop buffered trace events
//   journal_enable ? on       — flip the structured event journal
//   journal_dump_json         — journal ring as JSON-lines
//   journal_clear             — drop buffered journal events
//
// Registry and Tracer are process singletons, so asking any one target
// yields the whole process's view; in a multi-process deployment each
// process answers for itself, exactly like XORP's per-process profiler.
#ifndef XRP_IPC_TELEMETRY_XRL_HPP
#define XRP_IPC_TELEMETRY_XRL_HPP

#include "ipc/dispatcher.hpp"

namespace xrp::ipc {

inline constexpr const char* kTelemetryIdl = R"(
interface telemetry/1.0 {
    list_metrics -> names:txt;
    get_metric ? name:txt -> found:bool & text:txt;
    snapshot -> text:txt;
    metrics_enable ? on:bool -> enabled:bool;
    trace_enable ? on:bool -> enabled:bool;
    trace_dump -> count:u32 & dropped:u32 & text:txt;
    trace_dump_json -> count:u32 & dropped:u32 & text:txt;
    trace_clear -> ok:bool;
    journal_enable ? on:bool -> enabled:bool;
    journal_dump_json -> count:u32 & dropped:u32 & text:txt;
    journal_clear -> ok:bool;
}
)";

// Adds the telemetry/1.0 interface + handlers to `d` (idempotent: a
// second call finds the methods already present and leaves them alone).
void bind_telemetry_xrls(XrlDispatcher& d);

}  // namespace xrp::ipc

#endif
