#include "ipc/finder_client.hpp"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <sstream>

#include "ipc/finder_xrl.hpp"
#include "ipc/tcp.hpp"
#include "ipc/wire.hpp"

namespace xrp::ipc {

using xrl::XrlArgs;
using xrl::XrlError;

namespace {

void set_transport_err(XrlError* err, const std::string& what) {
    if (err != nullptr)
        *err = XrlError(xrl::ErrorCode::kTransportFailed,
                        "finder: " + what + ": " + strerror(errno));
}

}  // namespace

FinderClient::FinderClient(std::string address, int timeout_ms)
    : address_(std::move(address)), timeout_ms_(timeout_ms) {}

bool FinderClient::connect() {
    fd_.reset();
    auto sa = parse_inet_address(address_);
    if (!sa) return false;
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return false;
    timeval tv;
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = (timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&*sa), sizeof *sa) !=
        0)
        return false;
    set_nodelay(fd.get());
    fd_ = std::move(fd);
    return true;
}

bool FinderClient::send_all(const uint8_t* data, size_t len) {
    size_t off = 0;
    while (off < len) {
        // MSG_NOSIGNAL: a Finder that died mid-write must surface EPIPE,
        // not kill this process with SIGPIPE.
        ssize_t n = ::send(fd_.get(), data + off, len - off, MSG_NOSIGNAL);
        if (n <= 0) return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool FinderClient::recv_exact(uint8_t* data, size_t len) {
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::recv(fd_.get(), data + off, len - off, 0);
        if (n <= 0) return false;  // timeout, reset, or orderly close
        off += static_cast<size_t>(n);
    }
    return true;
}

std::optional<XrlArgs> FinderClient::rpc_once(const std::string& full_method,
                                              const XrlArgs& args,
                                              XrlError* err) {
    RequestFrame req;
    req.seq = seq_++;
    req.method = full_method;
    req.args = args;
    std::vector<uint8_t> body;
    encode_request(req, body);
    uint32_t len = static_cast<uint32_t>(body.size());
    uint8_t hdr[4] = {static_cast<uint8_t>(len), static_cast<uint8_t>(len >> 8),
                      static_cast<uint8_t>(len >> 16),
                      static_cast<uint8_t>(len >> 24)};
    if (!send_all(hdr, 4) || !send_all(body.data(), body.size())) {
        set_transport_err(err, "send failed");
        fd_.reset();
        return std::nullopt;
    }
    if (!recv_exact(hdr, 4)) {
        set_transport_err(err, "recv failed");
        fd_.reset();
        return std::nullopt;
    }
    uint32_t rlen = static_cast<uint32_t>(hdr[0]) |
                    (static_cast<uint32_t>(hdr[1]) << 8) |
                    (static_cast<uint32_t>(hdr[2]) << 16) |
                    (static_cast<uint32_t>(hdr[3]) << 24);
    if (rlen > kMaxFrameBytes) {
        if (err != nullptr)
            *err = XrlError(xrl::ErrorCode::kTransportFailed,
                            "finder: oversized frame");
        fd_.reset();
        return std::nullopt;
    }
    std::vector<uint8_t> rbody(rlen);
    if (!recv_exact(rbody.data(), rlen)) {
        set_transport_err(err, "recv failed");
        fd_.reset();
        return std::nullopt;
    }
    RequestFrame req_unused;
    ResponseFrame resp;
    auto kind = decode_frame(rbody.data(), rlen, req_unused, resp);
    if (!kind || *kind != FrameKind::kResponse || resp.seq != req.seq) {
        if (err != nullptr)
            *err = XrlError(xrl::ErrorCode::kTransportFailed,
                            "finder: bad response frame");
        fd_.reset();
        return std::nullopt;
    }
    if (!resp.error.ok()) {
        if (err != nullptr) *err = resp.error;
        return std::nullopt;
    }
    return std::move(resp.args);
}

std::optional<XrlArgs> FinderClient::rpc(const std::string& full_method,
                                         const XrlArgs& args, XrlError* err) {
    XrlError first_err;
    if (fd_.valid()) {
        if (auto out = rpc_once(full_method, args, &first_err)) return out;
        // An application error is final; only transport failures earn the
        // reconnect below (the Finder may have restarted on this address).
        if (first_err.code() != xrl::ErrorCode::kTransportFailed) {
            if (err != nullptr) *err = first_err;
            return std::nullopt;
        }
    }
    if (!connect()) {
        set_transport_err(err, "connect to " + address_ + " failed");
        return std::nullopt;
    }
    return rpc_once(full_method, args, err);
}

std::optional<FinderClient::Registration> FinderClient::register_target(
    const std::string& cls, bool sole, XrlError* err) {
    XrlArgs args;
    args.add("cls", cls).add("sole", sole);
    auto out = rpc("finder/1.0/register_target", args, err);
    if (!out) return std::nullopt;
    Registration reg;
    reg.instance = out->get_text("instance").value_or("");
    reg.secret = out->get_text("secret").value_or("");
    if (reg.instance.empty()) return std::nullopt;
    return reg;
}

std::vector<std::string> FinderClient::register_methods(
    const std::string& instance, const std::vector<std::string>& methods,
    const std::map<std::string, std::string>& families) {
    std::string joined;
    for (const std::string& m : methods) {
        if (!joined.empty()) joined += '\n';
        joined += m;
    }
    XrlArgs args;
    args.add("instance", instance)
        .add("methods", joined)
        .add("families", encode_families(families));
    auto out = rpc("finder/1.0/register_methods", args);
    std::vector<std::string> keys;
    if (!out) return keys;
    std::istringstream lines(out->get_text("keys").value_or(""));
    std::string key;
    while (std::getline(lines, key)) keys.push_back(key);
    keys.resize(methods.size());
    return keys;
}

void FinderClient::unregister_target(const std::string& instance) {
    XrlArgs args;
    args.add("instance", instance);
    rpc("finder/1.0/unregister_target", args);
}

void FinderClient::report_dead(const std::string& target) {
    XrlArgs args;
    args.add("target", target);
    rpc("finder/1.0/report_dead", args);
}

std::optional<std::vector<finder::Resolution>> FinderClient::resolve(
    const std::string& target, const std::string& full_method,
    const std::string& caller, const std::string& secret, XrlError* err) {
    XrlArgs args;
    args.add("target", target)
        .add("method", full_method)
        .add("caller", caller)
        .add("secret", secret);
    auto out = rpc("finder/1.0/resolve_all", args, err);
    if (!out) return std::nullopt;
    return decode_resolutions(out->get_text("resolutions").value_or(""));
}

bool FinderClient::target_exists(const std::string& cls) {
    XrlArgs args;
    args.add("target", cls);
    auto out = rpc("finder/1.0/target_exists", args);
    return out && out->get_bool("exists").value_or(false);
}

}  // namespace xrp::ipc
