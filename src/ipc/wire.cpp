#include "ipc/wire.hpp"

#include <cstring>

namespace xrp::ipc {

namespace {

void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void put_u16(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<uint8_t>& out, uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_str16(std::vector<uint8_t>& out, const std::string& s) {
    put_u16(out, static_cast<uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}
void put_bytes32(std::vector<uint8_t>& out, const std::vector<uint8_t>& b) {
    put_u32(out, static_cast<uint32_t>(b.size()));
    out.insert(out.end(), b.begin(), b.end());
}

void encode_atom(const xrl::XrlAtom& a, std::vector<uint8_t>& out) {
    put_u8(out, static_cast<uint8_t>(a.type()));
    put_str16(out, a.name());
    struct Visitor {
        std::vector<uint8_t>& out;
        void operator()(uint32_t v) { put_u32(out, v); }
        void operator()(int32_t v) { put_u32(out, static_cast<uint32_t>(v)); }
        void operator()(uint64_t v) { put_u64(out, v); }
        void operator()(bool v) { put_u8(out, v ? 1 : 0); }
        void operator()(const std::string& v) {
            put_u32(out, static_cast<uint32_t>(v.size()));
            out.insert(out.end(), v.begin(), v.end());
        }
        void operator()(net::IPv4 v) { put_u32(out, v.to_host()); }
        void operator()(net::IPv4Net v) {
            put_u32(out, v.masked_addr().to_host());
            put_u8(out, static_cast<uint8_t>(v.prefix_len()));
        }
        void operator()(const net::IPv6& v) {
            put_u64(out, v.hi());
            put_u64(out, v.lo());
        }
        void operator()(const net::IPv6Net& v) {
            put_u64(out, v.masked_addr().hi());
            put_u64(out, v.masked_addr().lo());
            put_u8(out, static_cast<uint8_t>(v.prefix_len()));
        }
        void operator()(const net::Mac& v) {
            out.insert(out.end(), v.octets().begin(), v.octets().end());
        }
        void operator()(const std::vector<uint8_t>& v) { put_bytes32(out, v); }
        void operator()(const xrl::XrlAtomList& v) {
            put_u16(out, static_cast<uint16_t>(v.size()));
            for (const auto& item : v) encode_atom(item, out);
        }
    };
    std::visit(Visitor{out}, a.value());
}

std::optional<xrl::XrlAtom> decode_atom(WireReader& r) {
    auto type = r.u8();
    if (!type || *type > static_cast<uint8_t>(xrl::AtomType::kList))
        return std::nullopt;
    auto name = r.str16();
    if (!name) return std::nullopt;
    switch (static_cast<xrl::AtomType>(*type)) {
        case xrl::AtomType::kU32: {
            auto v = r.u32();
            if (!v) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), *v);
        }
        case xrl::AtomType::kI32: {
            auto v = r.u32();
            if (!v) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), static_cast<int32_t>(*v));
        }
        case xrl::AtomType::kU64: {
            auto v = r.u64();
            if (!v) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), *v);
        }
        case xrl::AtomType::kBool: {
            auto v = r.u8();
            if (!v) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), *v != 0);
        }
        case xrl::AtomType::kText: {
            auto len = r.u32();
            if (!len) return std::nullopt;
            std::string s(*len, '\0');
            if (!r.take(s.data(), *len)) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), std::move(s));
        }
        case xrl::AtomType::kIPv4: {
            auto v = r.u32();
            if (!v) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), net::IPv4(*v));
        }
        case xrl::AtomType::kIPv4Net: {
            auto v = r.u32();
            auto len = r.u8();
            if (!v || !len || *len > 32) return std::nullopt;
            return xrl::XrlAtom(std::move(*name),
                                net::IPv4Net(net::IPv4(*v), *len));
        }
        case xrl::AtomType::kIPv6: {
            auto hi = r.u64();
            auto lo = r.u64();
            if (!hi || !lo) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), net::IPv6(*hi, *lo));
        }
        case xrl::AtomType::kIPv6Net: {
            auto hi = r.u64();
            auto lo = r.u64();
            auto len = r.u8();
            if (!hi || !lo || !len || *len > 128) return std::nullopt;
            return xrl::XrlAtom(std::move(*name),
                                net::IPv6Net(net::IPv6(*hi, *lo), *len));
        }
        case xrl::AtomType::kMac: {
            std::array<uint8_t, 6> o;
            if (!r.take(o.data(), o.size())) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), net::Mac(o));
        }
        case xrl::AtomType::kBinary: {
            auto v = r.bytes32();
            if (!v) return std::nullopt;
            return xrl::XrlAtom(std::move(*name), std::move(*v));
        }
        case xrl::AtomType::kList: {
            auto count = r.u16();
            if (!count) return std::nullopt;
            xrl::XrlAtomList items;
            items.reserve(*count);
            for (uint16_t i = 0; i < *count; ++i) {
                auto item = decode_atom(r);
                if (!item) return std::nullopt;
                items.push_back(std::move(*item));
            }
            return xrl::XrlAtom(std::move(*name), std::move(items));
        }
    }
    return std::nullopt;
}

}  // namespace

bool WireReader::take(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
}

std::optional<uint8_t> WireReader::u8() {
    uint8_t v;
    if (!take(&v, 1)) return std::nullopt;
    return v;
}
std::optional<uint16_t> WireReader::u16() {
    uint8_t b[2];
    if (!take(b, 2)) return std::nullopt;
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
}
std::optional<uint32_t> WireReader::u32() {
    uint8_t b[4];
    if (!take(b, 4)) return std::nullopt;
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
}
std::optional<uint64_t> WireReader::u64() {
    uint8_t b[8];
    if (!take(b, 8)) return std::nullopt;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
}
std::optional<std::string> WireReader::str16() {
    auto len = u16();
    if (!len) return std::nullopt;
    std::string s(*len, '\0');
    if (!take(s.data(), *len)) return std::nullopt;
    return s;
}
std::optional<std::vector<uint8_t>> WireReader::bytes32() {
    auto len = u32();
    if (!len || *len > remaining()) return std::nullopt;
    std::vector<uint8_t> v(*len);
    if (!take(v.data(), *len)) return std::nullopt;
    return v;
}

void encode_args(const xrl::XrlArgs& args, std::vector<uint8_t>& out) {
    put_u16(out, static_cast<uint16_t>(args.size()));
    for (const auto& a : args.atoms()) encode_atom(a, out);
}

std::optional<xrl::XrlArgs> decode_args(WireReader& r) {
    auto count = r.u16();
    if (!count) return std::nullopt;
    xrl::XrlArgs args;
    for (uint16_t i = 0; i < *count; ++i) {
        auto a = decode_atom(r);
        if (!a) return std::nullopt;
        args.add(std::move(*a));
    }
    return args;
}

void encode_request(const RequestFrame& f, std::vector<uint8_t>& out) {
    put_u8(out, static_cast<uint8_t>(FrameKind::kRequest));
    put_u32(out, f.seq);
    put_str16(out, f.method);
    encode_args(f.args, out);
    if (f.trace.valid()) {
        put_u8(out, kTraceMarker);
        put_u64(out, f.trace.trace_id);
        put_u32(out, f.trace.hop);
    }
}

void encode_response(const ResponseFrame& f, std::vector<uint8_t>& out) {
    put_u8(out, static_cast<uint8_t>(FrameKind::kResponse));
    put_u32(out, f.seq);
    put_u8(out, static_cast<uint8_t>(f.error.code()));
    put_str16(out, f.error.note());
    encode_args(f.args, out);
}

std::optional<FrameKind> decode_frame(const uint8_t* data, size_t size,
                                      RequestFrame& req, ResponseFrame& resp) {
    WireReader r(data, size);
    auto kind = r.u8();
    if (!kind) return std::nullopt;
    if (*kind == static_cast<uint8_t>(FrameKind::kRequest)) {
        auto seq = r.u32();
        auto method = r.str16();
        if (!seq || !method) return std::nullopt;
        auto args = decode_args(r);
        if (!args) return std::nullopt;
        telemetry::TraceContext trace;
        if (r.remaining() != 0) {
            // Only the optional trace trailer may follow the args.
            auto marker = r.u8();
            auto id = r.u64();
            auto hop = r.u32();
            if (!marker || *marker != kTraceMarker || !id || !hop ||
                r.remaining() != 0)
                return std::nullopt;
            trace.trace_id = *id;
            trace.hop = *hop;
        }
        req.seq = *seq;
        req.method = std::move(*method);
        req.args = std::move(*args);
        req.trace = trace;
        return FrameKind::kRequest;
    }
    if (*kind == static_cast<uint8_t>(FrameKind::kResponse)) {
        auto seq = r.u32();
        auto code = r.u8();
        auto note = r.str16();
        if (!seq || !code || !note ||
            *code > static_cast<uint8_t>(xrl::ErrorCode::kTargetDead))
            return std::nullopt;
        auto args = decode_args(r);
        if (!args || r.remaining() != 0) return std::nullopt;
        resp.seq = *seq;
        resp.error =
            xrl::XrlError(static_cast<xrl::ErrorCode>(*code), std::move(*note));
        resp.args = std::move(*args);
        return FrameKind::kResponse;
    }
    return std::nullopt;
}

}  // namespace xrp::ipc
