#include "ipc/dispatcher.hpp"

#include "finder/key.hpp"
#include "xrl/method_name.hpp"

namespace xrp::ipc {

namespace {

// Rejections that never reach a handler, bucketed by cause.
struct RejectMetrics {
    telemetry::Counter* no_such_method;
    telemetry::Counter* bad_key;
    telemetry::Counter* bad_args;

    static const RejectMetrics& get() {
        static RejectMetrics m = [] {
            auto& r = telemetry::Registry::global();
            RejectMetrics x;
            x.no_such_method = r.counter(
                "xrl_dispatch_rejects_total{kind=\"no_such_method\"}");
            x.bad_key =
                r.counter("xrl_dispatch_rejects_total{kind=\"bad_key\"}");
            x.bad_args =
                r.counter("xrl_dispatch_rejects_total{kind=\"bad_args\"}");
            return x;
        }();
        return m;
    }
};

}  // namespace

void XrlDispatcher::add_interface(xrl::InterfaceSpec spec) {
    std::string ikey = spec.name() + "/" + spec.version();
    specs_[ikey] = std::move(spec);
    // Re-link any handlers that were added before their spec.
    const xrl::InterfaceSpec& s = specs_[ikey];
    for (auto& [full, m] : methods_) {
        auto name = xrl::MethodName::parse(full);
        if (name && name->interface_key() == ikey)
            m.spec = s.find_method(name->method);
    }
}

const xrl::MethodSpec* XrlDispatcher::find_spec(
    const std::string& full_method) const {
    auto name = xrl::MethodName::parse(full_method);
    if (!name) return nullptr;
    auto it = specs_.find(name->interface_key());
    if (it == specs_.end()) return nullptr;
    return it->second.find_method(name->method);
}

void XrlDispatcher::add_handler(const std::string& full_method,
                                MethodHandler h) {
    Method& m = methods_[full_method];
    m.sync = std::move(h);
    m.spec = find_spec(full_method);
}

void XrlDispatcher::add_async_handler(const std::string& full_method,
                                      AsyncMethodHandler h) {
    Method& m = methods_[full_method];
    m.async = std::move(h);
    m.spec = find_spec(full_method);
}

void XrlDispatcher::set_method_key(const std::string& full_method,
                                   const std::string& key) {
    auto it = methods_.find(full_method);
    if (it != methods_.end()) it->second.key = key;
}

std::vector<std::string> XrlDispatcher::method_names() const {
    std::vector<std::string> out;
    out.reserve(methods_.size());
    for (const auto& [name, m] : methods_) out.push_back(name);
    return out;
}

void XrlDispatcher::dispatch(const std::string& keyed_method,
                             const xrl::XrlArgs& in,
                             ResponseCallback done) const {
    auto [method, key] = finder::split_keyed_method(keyed_method);
    auto it = methods_.find(method);
    if (it == methods_.end()) {
        RejectMetrics::get().no_such_method->inc();
        done(xrl::XrlError(xrl::ErrorCode::kNoSuchMethod, method), {});
        return;
    }
    const Method& m = it->second;
    if (m.calls == nullptr) {
        auto& reg = telemetry::Registry::global();
        m.calls = reg.counter(
            telemetry::metric_key("xrl_calls_total", {{"method", method}}));
        m.errors = reg.counter(
            telemetry::metric_key("xrl_errors_total", {{"method", method}}));
    }
    m.calls->inc();
    if (require_keys_ && !m.key.empty() && key != m.key) {
        // Caller did not get this method name from the Finder.
        RejectMetrics::get().bad_key->inc();
        done(xrl::XrlError(xrl::ErrorCode::kBadKey, method), {});
        return;
    }
    if (m.spec != nullptr) {
        xrl::XrlError verr = m.spec->validate_inputs(in);
        if (!verr.ok()) {
            RejectMetrics::get().bad_args->inc();
            done(verr, {});
            return;
        }
    }
    if (m.async) {
        // Async completions bypass the error counter: the handler owns
        // `done` and we will not wrap it on the hot path.
        m.async(in, std::move(done));
        return;
    }
    if (m.sync) {
        xrl::XrlArgs out;
        xrl::XrlError err = m.sync(in, out);
        if (!err.ok()) m.errors->inc();
        done(err, out);
        return;
    }
    done(xrl::XrlError(xrl::ErrorCode::kInternalError, "no handler"), {});
}

}  // namespace xrp::ipc
