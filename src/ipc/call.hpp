// The reliable XRL call contract (sender side).
//
// The paper sells XRLs as the *only* coupling between components, which
// makes every robustness property of the router reduce to how one XRL
// call behaves when the far side is slow, dead, or restarting. A bare
// send(Xrl, callback) cannot express that; CallOptions can:
//
//   deadline         — total wall budget for the call, all attempts and
//                      failovers included. Always enforced, uniformly,
//                      through the event loop: a never-replying handler
//                      produces kTimeout on inproc, sTCP and sUDP alike.
//   attempt_timeout  — budget for a single dispatch over one transport;
//                      when it expires the attempt is abandoned (a late
//                      reply is discarded) and the contract moves on.
//   retry            — exponential backoff with jitter between retry
//                      cycles, bounded by max_attempts.
//   idempotent       — gates every retry path that could execute the
//                      method twice. A non-idempotent call still fails
//                      over / retries when the transport failed *before*
//                      the request can have run (connection refused,
//                      resolve failure); after a timeout the request may
//                      have executed, so only idempotent calls continue.
//   failover         — on failure, invalidate the cached resolution and
//                      try the next preference-ordered finder::Resolution
//                      (e.g. stcp after inproc) before burning a retry.
//
// Every attempt's failure invalidates the sender's resolution-cache entry
// so the next dispatch re-resolves through the Finder and can land on a
// restarted instance. A call that exhausts the contract against hard
// transport failures reports the target dead to the Finder, which pushes
// a target-down invalidation to every dependent — subsequent callers get
// an immediate, typed kTargetDead instead of a silent hang.
#ifndef XRP_IPC_CALL_HPP
#define XRP_IPC_CALL_HPP

#include <chrono>
#include <cstdint>

#include "ev/clock.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

struct RetryPolicy {
    // Total dispatch cycles (1 = no retry). Failover hops within one
    // cycle do not consume attempts; backoff retries do.
    uint32_t max_attempts = 3;
    ev::Duration initial_backoff = std::chrono::milliseconds(10);
    double multiplier = 2.0;
    ev::Duration max_backoff = std::chrono::seconds(1);
    // Each backoff is scaled by a uniform factor in [1-jitter, 1+jitter]
    // so synchronized callers don't retry in lockstep.
    double jitter = 0.5;
};

struct CallOptions {
    ev::Duration deadline = std::chrono::seconds(30);
    ev::Duration attempt_timeout = std::chrono::seconds(2);
    RetryPolicy retry;
    bool idempotent = false;
    bool failover = true;
    // Explicit trace context for this logical call. When valid it wins
    // over the ambient thread-local context, so callers can pin a causal
    // chain across deferred work (a queued one-way send runs long after
    // the originating stack unwound). Every attempt — retries and
    // failover hops included — records under this one id/hop: a retry is
    // a resend of the same logical call, not a new trace.
    telemetry::TraceContext trace{};

    // Process defaults, once adjusted by environment knobs (used by the
    // CI chaos pass to shrink timeouts): XRP_CALL_DEADLINE_MS,
    // XRP_CALL_ATTEMPT_TIMEOUT_MS.
    static const CallOptions& defaults();

    // One dispatch, first resolution only — the old send() semantics for
    // callers that do their own recovery (still deadline-bounded).
    static CallOptions fire_once() {
        CallOptions o = defaults();
        o.retry.max_attempts = 1;
        o.failover = false;
        return o;
    }

    // The contract for route pushes and other safely re-appliable calls.
    static CallOptions reliable() {
        CallOptions o = defaults();
        o.idempotent = true;
        return o;
    }

    CallOptions& with_deadline(ev::Duration d) {
        deadline = d;
        return *this;
    }
    CallOptions& with_attempt_timeout(ev::Duration d) {
        attempt_timeout = d;
        return *this;
    }
    CallOptions& with_attempts(uint32_t n) {
        retry.max_attempts = n;
        return *this;
    }
    CallOptions& mark_idempotent(bool b = true) {
        idempotent = b;
        return *this;
    }
    CallOptions& no_failover() {
        failover = false;
        return *this;
    }
    CallOptions& with_trace(telemetry::TraceContext ctx) {
        trace = ctx;
        return *this;
    }
};

}  // namespace xrp::ipc

#endif
