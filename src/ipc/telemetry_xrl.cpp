#include "ipc/telemetry_xrl.hpp"

#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

using xrl::XrlArgs;
using xrl::XrlError;

void bind_telemetry_xrls(XrlDispatcher& d) {
    if (d.has_method("telemetry/1.0/snapshot")) return;
    d.add_interface(*xrl::InterfaceSpec::parse(kTelemetryIdl));

    d.add_handler("telemetry/1.0/list_metrics",
                  [](const XrlArgs&, XrlArgs& out) {
                      std::string names;
                      for (const std::string& n :
                           telemetry::Registry::global().names()) {
                          names += n;
                          names += '\n';
                      }
                      out.add("names", std::move(names));
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/get_metric",
                  [](const XrlArgs& in, XrlArgs& out) {
                      std::string text = telemetry::Registry::global()
                                             .expose_one(*in.get_text("name"));
                      out.add("found", !text.empty());
                      out.add("text", std::move(text));
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/snapshot",
                  [](const XrlArgs&, XrlArgs& out) {
                      out.add("text", telemetry::Registry::global().expose());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/metrics_enable",
                  [](const XrlArgs& in, XrlArgs& out) {
                      telemetry::set_enabled(*in.get_bool("on"));
                      out.add("enabled", telemetry::enabled());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/trace_enable",
                  [](const XrlArgs& in, XrlArgs& out) {
                      telemetry::Tracer::global().set_enabled(
                          *in.get_bool("on"));
                      out.add("enabled", telemetry::Tracer::global().enabled());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/trace_dump",
                  [](const XrlArgs&, XrlArgs& out) {
                      auto& t = telemetry::Tracer::global();
                      out.add("count", static_cast<uint32_t>(t.event_count()));
                      out.add("dropped", static_cast<uint32_t>(t.dropped()));
                      out.add("text", t.format());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/trace_dump_json",
                  [](const XrlArgs&, XrlArgs& out) {
                      auto& t = telemetry::Tracer::global();
                      out.add("count", static_cast<uint32_t>(t.event_count()));
                      out.add("dropped", static_cast<uint32_t>(t.dropped()));
                      out.add("text", t.format_jsonl());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/trace_clear",
                  [](const XrlArgs&, XrlArgs& out) {
                      telemetry::Tracer::global().clear();
                      out.add("ok", true);
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/journal_enable",
                  [](const XrlArgs& in, XrlArgs& out) {
                      telemetry::Journal::global().set_enabled(
                          *in.get_bool("on"));
                      out.add("enabled", telemetry::journal_enabled());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/journal_dump_json",
                  [](const XrlArgs&, XrlArgs& out) {
                      auto& j = telemetry::Journal::global();
                      out.add("count", static_cast<uint32_t>(j.event_count()));
                      out.add("dropped", static_cast<uint32_t>(j.dropped()));
                      out.add("text", j.to_jsonl());
                      return XrlError::okay();
                  });
    d.add_handler("telemetry/1.0/journal_clear",
                  [](const XrlArgs&, XrlArgs& out) {
                      telemetry::Journal::global().clear();
                      out.add("ok", true);
                      return XrlError::okay();
                  });
}

}  // namespace xrp::ipc
