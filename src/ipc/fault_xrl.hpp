// The fault/1.0 XRL face: scripts the transport fault injector over the
// same IPC it sabotages. Bound on every finalized component (like
// telemetry/1.0), so a test harness — or an operator reproducing a field
// failure — can address any target and shape the faults its Plexus
// injects:
//
//   set_plan ? scope:txt & drop_permille:u32 & delay_permille:u32
//            & delay_min_ms:u32 & delay_max_ms:u32
//            & duplicate_permille:u32 & reorder_permille:u32
//            & kill_channel:bool & drop_first:u32 -> ok:bool
//   set_seed ? value:u32 -> ok:bool
//   clear    -> ok:bool
//   clear_target ? scope:txt -> removed:bool
//   list_plan -> count:u32 & plans:txt
//   stats    -> drops:u32 & delays:u32 & duplicates:u32
//             & reorders:u32 & kills:u32
//
// `scope` selects the plan slot: "" or "default" for the process-wide
// default, "family:stcp" for one protocol family, "target:bgp" for one
// target class (most specific wins; see fault.hpp). clear_target removes
// exactly one slot — the kill-chaos tests lift the kill on a restarted
// component without disturbing the ambient drop/delay plan — and
// list_plan renders every installed slot, one line each.
//
// The injector is per-Plexus, so in a multi-router simulation each
// simulated host is scripted independently — exactly the granularity a
// partition or flaky-link scenario needs.
#ifndef XRP_IPC_FAULT_XRL_HPP
#define XRP_IPC_FAULT_XRL_HPP

#include "ipc/dispatcher.hpp"
#include "ipc/fault.hpp"

namespace xrp::ipc {

inline constexpr const char* kFaultIdl = R"(
interface fault/1.0 {
    set_plan ? scope:txt & drop_permille:u32 & delay_permille:u32 & delay_min_ms:u32 & delay_max_ms:u32 & duplicate_permille:u32 & reorder_permille:u32 & kill_channel:bool & drop_first:u32 -> ok:bool;
    set_seed ? value:u32 -> ok:bool;
    clear -> ok:bool;
    clear_target ? scope:txt -> removed:bool;
    list_plan -> count:u32 & plans:txt;
    stats -> drops:u32 & delays:u32 & duplicates:u32 & reorders:u32 & kills:u32;
}
)";

// Adds the fault/1.0 interface + handlers to `d`, controlling `inj`.
// Idempotent: a second call leaves the existing binding alone. The
// injector must outlive the dispatcher (both live on the Plexus/router).
void bind_fault_xrls(XrlDispatcher& d, FaultInjector& inj);

}  // namespace xrp::ipc

#endif
