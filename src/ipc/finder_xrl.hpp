// The Finder's own XRL face and the kill protocol family (§6.3).
//
// "There is also a special Finder protocol family permitting the Finder
// to be addressable through XRLs, just as any other XORP component.
// Finally, there exists a kill protocol family, which is capable of
// sending just one message type — a UNIX signal — to components within a
// host."
//
// bind_finder_xrl() registers a "finder" target whose methods proxy the
// Finder object, so management tooling (call_xrl scripts, the Router
// Manager) can query resolution state over ordinary XRLs — and, with
// `tcp`, so components in OTHER PROCESSES can register and resolve over
// stcp. The remote face carries the full broker protocol:
//
//   register_target / register_methods / unregister_target — a child
//   process's XrlRouter registers its class, methods, and transport
//   addresses here instead of in a (nonexistent) local Finder; the reply
//   carries the assigned instance name and the §7 caller secret.
//
//   resolve_all — the remote counterpart of Finder::resolve(): returns
//   the full preference-ordered resolution list and propagates typed
//   errors (kTargetDead in particular) so a remote caller's reliable-call
//   contract fails exactly as fast as a local one's.
//
//   report_dead — a remote caller that exhausted the call contract
//   reports the corpse, firing death watches and cache invalidation in
//   the master process (where the Supervisor lives).
//
// The face's own dispatcher does not require method keys: it is the
// bootstrap endpoint — a caller cannot know any key before it has
// resolved something, and resolution itself goes through this face.
//
// KillFamily delivers "signals" to co-hosted components: each component
// registers a handler; senders address components by instance name. In
// the multi-process original this wraps kill(2); in-process it invokes
// the handler through the event loop, preserving the asynchronous
// semantics. (Real processes are signalled directly via
// rtrmgr::ProcessHost::kill, which wraps kill(2) proper.)
#ifndef XRP_IPC_FINDER_XRL_HPP
#define XRP_IPC_FINDER_XRL_HPP

#include <csignal>

#include "ipc/router.hpp"

namespace xrp::ipc {

inline constexpr const char* kFinderIdl = R"(
interface finder/1.0 {
    resolve_xrl ? target:txt & method:txt
        -> ok:bool & family:txt & address:txt & keyed_method:txt;
    resolve_all ? target:txt & method:txt & caller:txt & secret:txt
        -> count:u32 & resolutions:txt;
    register_target ? cls:txt & sole:bool -> instance:txt & secret:txt;
    register_methods ? instance:txt & methods:txt & families:txt -> keys:txt;
    unregister_target ? instance:txt;
    report_dead ? target:txt;
    target_exists ? target:txt -> exists:bool;
    get_target_count -> count:u32;
}
)";

// Wire helpers shared by the face (encode) and FinderClient (decode).
// Resolutions: one per line, "family<SP>address<SP>keyed_method".
// Families:    semicolon-separated "family=address" pairs.
std::string encode_resolutions(const std::vector<finder::Resolution>& res);
std::vector<finder::Resolution> decode_resolutions(const std::string& text);
std::string encode_families(const std::map<std::string, std::string>& fams);
std::map<std::string, std::string> decode_families(const std::string& text);

// Creates (and returns) the Finder's XrlRouter, bound to plexus.finder.
// Keep the returned router alive as long as the face should exist. With
// `tcp`, the face listens on stcp so other processes can reach it; the
// listen address is XrlRouter::tcp_address() on the returned router.
std::unique_ptr<XrlRouter> bind_finder_xrl(Plexus& plexus, bool tcp = false);

class KillFamily {
public:
    using SignalHandler = std::function<void(int signo)>;

    explicit KillFamily(ev::EventLoop& loop) : loop_(loop) {}

    // A component registers to receive signals under its instance name.
    void register_target(const std::string& instance, SignalHandler handler) {
        handlers_[instance] = std::move(handler);
    }
    void unregister_target(const std::string& instance) {
        handlers_.erase(instance);
    }

    // Delivers asynchronously (like a real signal). Returns false if the
    // target is unknown.
    bool kill(const std::string& instance, int signo = SIGTERM) {
        auto it = handlers_.find(instance);
        if (it == handlers_.end()) return false;
        loop_.defer([handler = it->second, signo] { handler(signo); });
        return true;
    }

    size_t target_count() const { return handlers_.size(); }

private:
    ev::EventLoop& loop_;
    std::map<std::string, SignalHandler> handlers_;
};

}  // namespace xrp::ipc

#endif
