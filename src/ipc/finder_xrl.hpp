// The Finder's own XRL face and the kill protocol family (§6.3).
//
// "There is also a special Finder protocol family permitting the Finder
// to be addressable through XRLs, just as any other XORP component.
// Finally, there exists a kill protocol family, which is capable of
// sending just one message type — a UNIX signal — to components within a
// host."
//
// bind_finder_xrl() registers a "finder" target whose methods proxy the
// Finder object, so management tooling (call_xrl scripts, the Router
// Manager) can query resolution state over ordinary XRLs.
//
// KillFamily delivers "signals" to co-hosted components: each component
// registers a handler; senders address components by instance name. In
// the multi-process original this wraps kill(2); in-process it invokes
// the handler through the event loop, preserving the asynchronous
// semantics.
#ifndef XRP_IPC_FINDER_XRL_HPP
#define XRP_IPC_FINDER_XRL_HPP

#include <csignal>

#include "ipc/router.hpp"

namespace xrp::ipc {

inline constexpr const char* kFinderIdl = R"(
interface finder/1.0 {
    resolve_xrl ? target:txt & method:txt
        -> ok:bool & family:txt & address:txt & keyed_method:txt;
    target_exists ? target:txt -> exists:bool;
    get_target_count -> count:u32;
}
)";

// Creates (and returns) the Finder's XrlRouter, bound to plexus.finder.
// Keep the returned router alive as long as the face should exist.
std::unique_ptr<XrlRouter> bind_finder_xrl(Plexus& plexus);

class KillFamily {
public:
    using SignalHandler = std::function<void(int signo)>;

    explicit KillFamily(ev::EventLoop& loop) : loop_(loop) {}

    // A component registers to receive signals under its instance name.
    void register_target(const std::string& instance, SignalHandler handler) {
        handlers_[instance] = std::move(handler);
    }
    void unregister_target(const std::string& instance) {
        handlers_.erase(instance);
    }

    // Delivers asynchronously (like a real signal). Returns false if the
    // target is unknown.
    bool kill(const std::string& instance, int signo = SIGTERM) {
        auto it = handlers_.find(instance);
        if (it == handlers_.end()) return false;
        loop_.defer([handler = it->second, signo] { handler(signo); });
        return true;
    }

    size_t target_count() const { return handlers_.size(); }

private:
    ev::EventLoop& loop_;
    std::map<std::string, SignalHandler> handlers_;
};

}  // namespace xrp::ipc

#endif
