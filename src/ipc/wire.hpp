// Binary wire codec for XRLs (§6.1: "internally XRLs are encoded more
// efficiently" than the textual form).
//
// All integers are little-endian. An encoded frame is:
//   request:  u8 kind=1 | u32 seq | u16 method_len | method | args [trace]
//   response: u8 kind=2 | u32 seq | u8 error_code | u16 note_len | note | args
// and an encoded args block is:
//   u16 count | count * atom
//   atom: u8 type | u16 name_len | name | value
// TCP prepends a u32 frame length; UDP uses one datagram per frame.
//
// [trace] is an optional 13-byte trailer on requests only:
//   u8 marker='T' | u64 trace_id | u32 hop
// carrying the telemetry trace context across process/transport hops.
// Frames without the trailer decode exactly as before (backward
// compatible); a request whose tail is neither empty nor a well-formed
// trailer is malformed.
#ifndef XRP_IPC_WIRE_HPP
#define XRP_IPC_WIRE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"
#include "xrl/args.hpp"
#include "xrl/error.hpp"

namespace xrp::ipc {

enum class FrameKind : uint8_t { kRequest = 1, kResponse = 2 };

// First byte of the optional request trace trailer.
inline constexpr uint8_t kTraceMarker = 0x54;  // 'T'

struct RequestFrame {
    uint32_t seq = 0;
    std::string method;  // keyed full method, e.g. "bgp/1.0/set_local_as#ab12..."
    xrl::XrlArgs args;
    // Invalid (trace_id 0) unless the caller is tracing; encoded as the
    // optional trailer described above.
    telemetry::TraceContext trace;
};

struct ResponseFrame {
    uint32_t seq = 0;
    xrl::XrlError error;
    xrl::XrlArgs args;
};

// Appends to `out`; never fails (all atom states are encodable).
void encode_args(const xrl::XrlArgs& args, std::vector<uint8_t>& out);
void encode_request(const RequestFrame& f, std::vector<uint8_t>& out);
void encode_response(const ResponseFrame& f, std::vector<uint8_t>& out);

// Cursor-based decoding; returns nullopt on truncated or malformed input.
class WireReader {
public:
    WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

    std::optional<uint8_t> u8();
    std::optional<uint16_t> u16();
    std::optional<uint32_t> u32();
    std::optional<uint64_t> u64();
    std::optional<std::string> str16();
    std::optional<std::vector<uint8_t>> bytes32();
    bool take(void* out, size_t n);
    size_t remaining() const { return size_ - pos_; }

private:
    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
};

std::optional<xrl::XrlArgs> decode_args(WireReader& r);
// Decodes a frame (without any transport length prefix). Returns the kind
// and fills exactly one of the two out-params.
std::optional<FrameKind> decode_frame(const uint8_t* data, size_t size,
                                      RequestFrame& req, ResponseFrame& resp);

}  // namespace xrp::ipc

#endif
