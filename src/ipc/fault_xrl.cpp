#include "ipc/fault_xrl.hpp"

namespace xrp::ipc {

using xrl::XrlArgs;
using xrl::XrlError;

void bind_fault_xrls(XrlDispatcher& d, FaultInjector& inj) {
    if (d.has_method("fault/1.0/set_plan")) return;
    d.add_interface(*xrl::InterfaceSpec::parse(kFaultIdl));

    FaultInjector* fi = &inj;
    d.add_handler(
        "fault/1.0/set_plan", [fi](const XrlArgs& in, XrlArgs& out) {
            FaultInjector::Plan p;
            p.drop_permille = *in.get_u32("drop_permille");
            p.delay_permille = *in.get_u32("delay_permille");
            p.delay_min = std::chrono::milliseconds(*in.get_u32("delay_min_ms"));
            p.delay_max = std::chrono::milliseconds(*in.get_u32("delay_max_ms"));
            p.duplicate_permille = *in.get_u32("duplicate_permille");
            p.reorder_permille = *in.get_u32("reorder_permille");
            p.kill_channel = *in.get_bool("kill_channel");
            p.drop_first = *in.get_u32("drop_first");
            const std::string scope = *in.get_text("scope");
            if (scope.empty() || scope == "default") {
                fi->set_default_plan(p);
            } else if (scope.rfind("family:", 0) == 0) {
                fi->set_family_plan(scope.substr(7), p);
            } else if (scope.rfind("target:", 0) == 0) {
                fi->set_target_plan(scope.substr(7), p);
            } else {
                return XrlError::command_failed(
                    "bad scope '" + scope +
                    "' (want default, family:<f>, or target:<cls>)");
            }
            out.add("ok", true);
            return XrlError::okay();
        });
    d.add_handler("fault/1.0/set_seed", [fi](const XrlArgs& in, XrlArgs& out) {
        fi->seed(*in.get_u32("value"));
        out.add("ok", true);
        return XrlError::okay();
    });
    d.add_handler("fault/1.0/clear", [fi](const XrlArgs&, XrlArgs& out) {
        fi->clear();
        out.add("ok", true);
        return XrlError::okay();
    });
    d.add_handler("fault/1.0/clear_target",
                  [fi](const XrlArgs& in, XrlArgs& out) {
                      const std::string scope = *in.get_text("scope");
                      if (!scope.empty() && scope != "default" &&
                          scope.rfind("family:", 0) != 0 &&
                          scope.rfind("target:", 0) != 0)
                          return XrlError::command_failed(
                              "bad scope '" + scope +
                              "' (want default, family:<f>, or target:<cls>)");
                      out.add("removed", fi->clear_scope(scope));
                      return XrlError::okay();
                  });
    d.add_handler("fault/1.0/list_plan", [fi](const XrlArgs&, XrlArgs& out) {
        out.add("count", static_cast<uint32_t>(fi->list_plans().size()));
        out.add("plans", fi->describe_plans());
        return XrlError::okay();
    });
    d.add_handler("fault/1.0/stats", [fi](const XrlArgs&, XrlArgs& out) {
        const FaultInjector::Stats& s = fi->stats();
        out.add("drops", static_cast<uint32_t>(s.drops));
        out.add("delays", static_cast<uint32_t>(s.delays));
        out.add("duplicates", static_cast<uint32_t>(s.duplicates));
        out.add("reorders", static_cast<uint32_t>(s.reorders));
        out.add("kills", static_cast<uint32_t>(s.kills));
        return XrlError::okay();
    });
}

}  // namespace xrp::ipc
