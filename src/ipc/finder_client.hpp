// FinderClient: a component process's line to the master Finder.
//
// In the paper's deployment every process except the Router Manager
// bootstraps the same way: connect to the Finder's well-known endpoint,
// register the component's class, methods, and transport addresses, and
// from then on resolve every generic XRL through that connection. This
// client is that bootstrap path. It is deliberately SYNCHRONOUS — a
// small blocking RPC over one stcp connection with send/receive
// timeouts — because every use is either boot-time (register before the
// event loop runs), a resolution-cache miss (rare, and the caller's
// reliable-call contract already budgets for resolution latency), or
// teardown (unregister on exit). Building an async client would drag
// the whole call contract into the bootstrap it exists to set up.
//
// The wire format is the ordinary XRL frame codec (wire.hpp) over a
// length-framed TCP stream — the same bytes an XrlRouter-to-XrlRouter
// stcp call uses — so the Finder face needs no special transport.
//
// Reconnects: each RPC reconnects once if the connection is down or dies
// mid-call. A Finder that stays unreachable surfaces kTransportFailed;
// callers decide whether to retry (component boot spins on
// register_target; resolution misses just fail the call attempt).
#ifndef XRP_IPC_FINDER_CLIENT_HPP
#define XRP_IPC_FINDER_CLIENT_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "finder/finder.hpp"
#include "ipc/sockets.hpp"
#include "xrl/args.hpp"
#include "xrl/error.hpp"

namespace xrp::ipc {

class FinderClient {
public:
    // `address` is the master Finder face's stcp listen address
    // ("127.0.0.1:port"); `timeout_ms` bounds each blocking send/recv.
    explicit FinderClient(std::string address, int timeout_ms = 2000);

    const std::string& address() const { return address_; }
    bool connected() const { return fd_.valid(); }

    struct Registration {
        std::string instance;
        std::string secret;  // §7 caller-authentication secret
    };
    // Registers a target class; nullopt if the Finder refused (sole-class
    // conflict) or is unreachable (distinguish via *err).
    std::optional<Registration> register_target(const std::string& cls,
                                                bool sole,
                                                xrl::XrlError* err = nullptr);
    // Registers all methods in one round trip; returns per-method keys in
    // input order (empty on transport failure).
    std::vector<std::string> register_methods(
        const std::string& instance, const std::vector<std::string>& methods,
        const std::map<std::string, std::string>& families);
    void unregister_target(const std::string& instance);
    void report_dead(const std::string& target);
    // Remote Finder::resolve(): full preference-ordered list, typed
    // errors (kTargetDead passes through) in *err.
    std::optional<std::vector<finder::Resolution>> resolve(
        const std::string& target, const std::string& full_method,
        const std::string& caller, const std::string& secret,
        xrl::XrlError* err = nullptr);
    bool target_exists(const std::string& cls);

    // One blocking request/response round trip (the typed calls above are
    // wrappers). nullopt + *err on transport failure; a response carrying
    // an application error yields nullopt with that error in *err.
    std::optional<xrl::XrlArgs> rpc(const std::string& full_method,
                                    const xrl::XrlArgs& args,
                                    xrl::XrlError* err = nullptr);

private:
    bool connect();
    bool send_all(const uint8_t* data, size_t len);
    bool recv_exact(uint8_t* data, size_t len);
    std::optional<xrl::XrlArgs> rpc_once(const std::string& full_method,
                                         const xrl::XrlArgs& args,
                                         xrl::XrlError* err);

    std::string address_;
    int timeout_ms_;
    Fd fd_;
    uint32_t seq_ = 1;
};

}  // namespace xrp::ipc

#endif
