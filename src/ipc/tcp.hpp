// TCP protocol family ("stcp"): length-framed XRL frames over loopback
// TCP, fully pipelined (§6.3, §8.1).
//
// Pipelining is the property the paper's Figure 9 isolates: a sender may
// have many requests outstanding (the benchmark uses a window of 100) and
// responses are matched by sequence number, so throughput is not bounded
// by round-trip time. Everything is nonblocking and driven off the event
// loop; there are no threads.
#ifndef XRP_IPC_TCP_HPP
#define XRP_IPC_TCP_HPP

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ev/eventloop.hpp"
#include "ipc/dispatcher.hpp"
#include "ipc/sockets.hpp"
#include "ipc/wire.hpp"

namespace xrp::ipc {

// Upper bound on a single frame; anything larger is a protocol violation
// and kills the connection.
inline constexpr size_t kMaxFrameBytes = 16 * 1024 * 1024;

class TcpListener {
public:
    TcpListener(ev::EventLoop& loop, XrlDispatcher& dispatcher);
    ~TcpListener();
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    bool ok() const { return listen_fd_.valid(); }
    // "127.0.0.1:port" — the address registered with the Finder.
    const std::string& address() const { return address_; }
    size_t connection_count() const { return conns_.size(); }
    // Debug introspection: total unflushed response bytes + unparsed input.
    std::pair<size_t, size_t> buffered_bytes() const {
        size_t w = 0, r = 0;
        for (const auto& [fd, c] : conns_) {
            w += c->wbuf.size() - c->woff;
            r += c->rbuf.size();
        }
        return {w, r};
    }

private:
    struct Connection : std::enable_shared_from_this<Connection> {
        Connection(TcpListener& owner, Fd fd) : owner(owner), fd(std::move(fd)) {}
        TcpListener& owner;
        Fd fd;
        std::vector<uint8_t> rbuf;
        std::vector<uint8_t> wbuf;
        size_t woff = 0;
        bool writer_armed = false;
        bool closed = false;
    };

    void on_accept();
    void on_readable(const std::shared_ptr<Connection>& c);
    void on_writable(const std::shared_ptr<Connection>& c);
    void process_frames(const std::shared_ptr<Connection>& c);
    void queue_response(const std::shared_ptr<Connection>& c,
                        const ResponseFrame& resp);
    void flush(const std::shared_ptr<Connection>& c);
    void close_connection(const std::shared_ptr<Connection>& c);

    ev::EventLoop& loop_;
    XrlDispatcher& dispatcher_;
    Fd listen_fd_;
    std::string address_;
    std::map<int, std::shared_ptr<Connection>> conns_;
};

// Sender side: one channel per (remote address); created lazily by the
// XrlRouter and kept for the router's lifetime.
class TcpChannel {
public:
    TcpChannel(ev::EventLoop& loop, const std::string& address);
    ~TcpChannel();
    TcpChannel(const TcpChannel&) = delete;
    TcpChannel& operator=(const TcpChannel&) = delete;

    // Pipelined up to a bounded window: requests beyond kMaxOutstanding
    // queue in user space and go out as responses return. Unbounded
    // pipelining would dump megabytes into one TCP connection during
    // table loads, collapsing into zero-window persist-timer lockstep on
    // some stacks; a bounded window keeps the pipe full without that.
    void send(const std::string& keyed_method, const xrl::XrlArgs& args,
              ResponseCallback done);

    static constexpr size_t kMaxOutstanding = 256;

    bool broken() const { return broken_; }
    size_t pending_count() const { return pending_.size(); }
    // Debug introspection for stall diagnosis.
    size_t wbuf_bytes() const { return wbuf_.size() - woff_; }
    size_t rbuf_bytes() const { return rbuf_.size(); }
    bool connecting() const { return connecting_; }
    bool writer_armed() const { return writer_armed_; }

private:
    void on_connect_writable();
    void on_readable();
    void on_writable();
    void flush();
    void pump_backlog();
    void fail_all(const xrl::XrlError& err);

    ev::EventLoop& loop_;
    Fd fd_;
    bool connecting_ = false;
    bool broken_ = false;
    bool writer_armed_ = false;
    uint32_t next_seq_ = 1;
    std::vector<uint8_t> rbuf_;
    std::vector<uint8_t> wbuf_;
    size_t woff_ = 0;
    // t0 is the send() call time, so the latency histogram measures what the
    // caller experienced (including any backlog wait), not just the wire.
    struct Pending {
        ResponseCallback done;
        ev::TimePoint t0{};
    };
    std::map<uint32_t, Pending> pending_;
    // Requests awaiting a window slot: pre-encoded frame + seq + callback.
    struct Queued {
        uint32_t seq;
        std::vector<uint8_t> frame;  // length-prefixed
        ResponseCallback done;
        ev::TimePoint t0{};
    };
    std::deque<Queued> backlog_;
};

}  // namespace xrp::ipc

#endif
