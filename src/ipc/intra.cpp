#include "ipc/intra.hpp"

// IntraProcessRegistry is header-only; this TU anchors it in the build.
namespace xrp::ipc {}
