// Receiver-side XRL dispatch.
//
// A dispatcher owns a component's method table. Incoming calls arrive as
// a keyed method name plus arguments; the dispatcher verifies the Finder
// key (§7 — rejects callers that bypassed resolution), validates the
// arguments against the method's IDL spec when one was registered, and
// invokes the handler. Handlers come in two flavours: synchronous (the
// common case — compute and return) and asynchronous (complete later via
// callback; used where the answer itself depends on other XRLs).
#ifndef XRP_IPC_DISPATCHER_HPP
#define XRP_IPC_DISPATCHER_HPP

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "telemetry/metrics.hpp"
#include "xrl/args.hpp"
#include "xrl/error.hpp"
#include "xrl/idl.hpp"

namespace xrp::ipc {

using ResponseCallback =
    std::function<void(const xrl::XrlError&, const xrl::XrlArgs&)>;
// Synchronous handler: fill `out`, return the error status.
using MethodHandler =
    std::function<xrl::XrlError(const xrl::XrlArgs& in, xrl::XrlArgs& out)>;
// Asynchronous handler: complete by invoking `done` exactly once.
using AsyncMethodHandler =
    std::function<void(const xrl::XrlArgs& in, ResponseCallback done)>;

class XrlDispatcher {
public:
    XrlDispatcher() = default;
    XrlDispatcher(const XrlDispatcher&) = delete;
    XrlDispatcher& operator=(const XrlDispatcher&) = delete;

    // Registers an interface spec; methods of registered interfaces have
    // their inputs validated before the handler runs.
    void add_interface(xrl::InterfaceSpec spec);

    // `full_method` is "iface/version/method".
    void add_handler(const std::string& full_method, MethodHandler h);
    void add_async_handler(const std::string& full_method,
                           AsyncMethodHandler h);

    // Set by the router after Finder registration.
    void set_method_key(const std::string& full_method,
                        const std::string& key);
    // When true (default), calls must carry the correct key. Disabled in
    // some unit tests that poke the dispatcher directly.
    void set_require_keys(bool require) { require_keys_ = require; }

    bool has_method(const std::string& full_method) const {
        return methods_.count(full_method) != 0;
    }
    std::vector<std::string> method_names() const;

    // Dispatches `keyed_method` ("iface/1.0/m#key"). `done` is invoked
    // exactly once, possibly synchronously.
    void dispatch(const std::string& keyed_method, const xrl::XrlArgs& in,
                  ResponseCallback done) const;

private:
    struct Method {
        MethodHandler sync;
        AsyncMethodHandler async;
        std::string key;
        const xrl::MethodSpec* spec = nullptr;  // into specs_
        // Per-method telemetry handles, bound lazily on first dispatch so
        // registration cost is paid once, never per call. Mutable because
        // dispatch() is logically const.
        mutable telemetry::Counter* calls = nullptr;
        mutable telemetry::Counter* errors = nullptr;
    };

    const xrl::MethodSpec* find_spec(const std::string& full_method) const;

    std::map<std::string, Method> methods_;
    // Keyed by "iface/version"; stable addresses (node-based map) so
    // Method::spec pointers stay valid.
    std::map<std::string, xrl::InterfaceSpec> specs_;
    bool require_keys_ = true;
};

}  // namespace xrp::ipc

#endif
