#include "ipc/tcp.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

namespace {

// Cached handles (see router.cpp); shared by channel and listener sides.
struct TcpMetrics {
    telemetry::Counter* tx_bytes;
    telemetry::Counter* rx_bytes;
    telemetry::Histogram* latency;

    static const TcpMetrics& get() {
        static TcpMetrics m = [] {
            auto& r = telemetry::Registry::global();
            TcpMetrics x;
            x.tx_bytes =
                r.counter("xrl_wire_bytes_total{dir=\"tx\",family=\"stcp\"}");
            x.rx_bytes =
                r.counter("xrl_wire_bytes_total{dir=\"rx\",family=\"stcp\"}");
            x.latency = r.histogram("xrl_latency_ns{family=\"stcp\"}");
            return x;
        }();
        return m;
    }
};

void append_frame(std::vector<uint8_t>& buf, const std::vector<uint8_t>& body) {
    uint32_t len = static_cast<uint32_t>(body.size());
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<uint8_t>(len >> (8 * i)));
    buf.insert(buf.end(), body.begin(), body.end());
}

// Extracts one length-framed body from buf starting at offset; returns
// {consumed, body_size} or {0, 0} if incomplete, {SIZE_MAX, 0} on
// oversized frame.
std::pair<size_t, size_t> peek_frame(const std::vector<uint8_t>& buf,
                                     size_t off) {
    if (buf.size() - off < 4) return {0, 0};
    uint32_t len = static_cast<uint32_t>(buf[off]) |
                   (static_cast<uint32_t>(buf[off + 1]) << 8) |
                   (static_cast<uint32_t>(buf[off + 2]) << 16) |
                   (static_cast<uint32_t>(buf[off + 3]) << 24);
    if (len > kMaxFrameBytes) return {SIZE_MAX, 0};
    if (buf.size() - off - 4 < len) return {0, 0};
    return {4 + len, len};
}

}  // namespace

// ---- TcpListener ------------------------------------------------------

TcpListener::TcpListener(ev::EventLoop& loop, XrlDispatcher& dispatcher)
    : loop_(loop), dispatcher_(dispatcher), listen_fd_(make_tcp_listener()) {
    if (!listen_fd_.valid()) return;
    address_ = local_address_string(listen_fd_.get());
    loop_.add_reader(listen_fd_.get(), [this] { on_accept(); });
}

TcpListener::~TcpListener() {
    if (listen_fd_.valid()) loop_.remove_reader(listen_fd_.get());
    // Close every connection; shared_ptrs held by in-flight async handler
    // callbacks stay alive but see `closed` and drop their responses.
    for (auto& [fd, c] : conns_) {
        loop_.remove_reader(fd);
        if (c->writer_armed) loop_.remove_writer(fd);
        c->closed = true;
    }
}

void TcpListener::on_accept() {
    while (true) {
        int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (fd < 0) return;  // EAGAIN or error: done for now
        set_nonblocking(fd);
        set_nodelay(fd);
        auto c = std::make_shared<Connection>(*this, Fd(fd));
        conns_[fd] = c;
        loop_.add_reader(fd, [this, c] { on_readable(c); });
    }
}

void TcpListener::on_readable(const std::shared_ptr<Connection>& c) {
    if (c->closed) return;
    char buf[16384];
    while (true) {
        ssize_t n = ::read(c->fd.get(), buf, sizeof buf);
        if (n > 0) {
            // Keep reading until EAGAIN: some poll(2) layers behave
            // edge-triggered, so a short read must not end the drain.
            TcpMetrics::get().rx_bytes->inc(static_cast<uint64_t>(n));
            c->rbuf.insert(c->rbuf.end(), buf, buf + n);
        } else if (n == 0) {
            close_connection(c);
            return;
        } else {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            close_connection(c);
            return;
        }
    }
    process_frames(c);
}

void TcpListener::process_frames(const std::shared_ptr<Connection>& c) {
    size_t off = 0;
    while (!c->closed) {
        auto [consumed, body_len] = peek_frame(c->rbuf, off);
        if (consumed == SIZE_MAX) {
            close_connection(c);
            return;
        }
        if (consumed == 0) break;
        RequestFrame req;
        ResponseFrame resp_unused;
        auto kind = decode_frame(c->rbuf.data() + off + 4, body_len, req,
                                 resp_unused);
        off += consumed;
        if (!kind || *kind != FrameKind::kRequest) {
            close_connection(c);
            return;
        }
        const uint32_t seq = req.seq;
        // Dispatch; the completion may run now (sync handler) or later
        // (async). Either way the response is queued on this connection if
        // it is still open. Scoping the carried trace context around the
        // dispatch lets the handler's own nested sends join the trace.
        telemetry::Tracer::global().record(req.trace, loop_.now(), "dispatch",
                                           "stcp " + req.method);
        telemetry::Tracer::Scope trace_scope(req.trace);
        std::weak_ptr<Connection> weak = c;
        dispatcher_.dispatch(
            req.method, req.args,
            [this, weak, seq](const xrl::XrlError& err,
                              const xrl::XrlArgs& out) {
                auto conn = weak.lock();
                if (!conn || conn->closed) return;
                ResponseFrame resp;
                resp.seq = seq;
                resp.error = err;
                resp.args = out;
                queue_response(conn, resp);
            });
    }
    if (off > 0 && !c->closed)
        c->rbuf.erase(c->rbuf.begin(),
                      c->rbuf.begin() + static_cast<ptrdiff_t>(off));
}

void TcpListener::queue_response(const std::shared_ptr<Connection>& c,
                                 const ResponseFrame& resp) {
    std::vector<uint8_t> body;
    encode_response(resp, body);
    append_frame(c->wbuf, body);
    flush(c);
}

void TcpListener::flush(const std::shared_ptr<Connection>& c) {
    while (c->woff < c->wbuf.size()) {
        // MSG_NOSIGNAL: a peer PROCESS that died (SIGKILL) leaves a
        // half-closed socket; writing to it must surface EPIPE here, not
        // raise SIGPIPE and kill us alongside it.
        ssize_t n = ::send(c->fd.get(), c->wbuf.data() + c->woff,
                           c->wbuf.size() - c->woff, MSG_NOSIGNAL);
        if (n > 0) {
            TcpMetrics::get().tx_bytes->inc(static_cast<uint64_t>(n));
            c->woff += static_cast<size_t>(n);
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
        } else {
            close_connection(c);
            return;
        }
    }
    if (c->woff == c->wbuf.size()) {
        c->wbuf.clear();
        c->woff = 0;
        if (c->writer_armed) {
            loop_.remove_writer(c->fd.get());
            c->writer_armed = false;
        }
    } else if (!c->writer_armed) {
        c->writer_armed = true;
        loop_.add_writer(c->fd.get(), [this, c] { on_writable(c); });
    }
}

void TcpListener::on_writable(const std::shared_ptr<Connection>& c) {
    if (!c->closed) flush(c);
}

void TcpListener::close_connection(const std::shared_ptr<Connection>& c) {
    if (c->closed) return;
    c->closed = true;
    loop_.remove_reader(c->fd.get());
    if (c->writer_armed) loop_.remove_writer(c->fd.get());
    conns_.erase(c->fd.get());
}

// ---- TcpChannel -------------------------------------------------------

TcpChannel::TcpChannel(ev::EventLoop& loop, const std::string& address)
    : loop_(loop) {
    auto sa = parse_inet_address(address);
    if (!sa) {
        broken_ = true;
        return;
    }
    fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd_.valid()) {
        broken_ = true;
        return;
    }
    set_nonblocking(fd_.get());
    set_nodelay(fd_.get());
    int rc = ::connect(fd_.get(), reinterpret_cast<sockaddr*>(&*sa), sizeof *sa);
    if (rc == 0) {
        loop_.add_reader(fd_.get(), [this] { on_readable(); });
    } else if (errno == EINPROGRESS) {
        connecting_ = true;
        writer_armed_ = true;
        loop_.add_writer(fd_.get(), [this] { on_connect_writable(); });
    } else {
        broken_ = true;
        fd_.reset();
    }
}

TcpChannel::~TcpChannel() {
    if (fd_.valid()) {
        loop_.remove_reader(fd_.get());
        if (writer_armed_) loop_.remove_writer(fd_.get());
    }
}

void TcpChannel::on_connect_writable() {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len);
    loop_.remove_writer(fd_.get());
    writer_armed_ = false;
    connecting_ = false;
    if (err != 0) {
        fail_all(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               std::strerror(err)));
        return;
    }
    loop_.add_reader(fd_.get(), [this] { on_readable(); });
    flush();
}

void TcpChannel::send(const std::string& keyed_method,
                      const xrl::XrlArgs& args, ResponseCallback done) {
    if (broken_) {
        // Fail asynchronously so callers see uniform completion ordering.
        loop_.defer([done = std::move(done)] {
            done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "channel broken"),
                 {});
        });
        return;
    }
    RequestFrame req;
    req.seq = next_seq_++;
    req.method = keyed_method;
    req.args = args;
    // Carry the caller's trace (if any) across the wire, one hop deeper.
    if (telemetry::TraceContext ctx = telemetry::Tracer::current();
        ctx.valid())
        req.trace = ctx.next_hop();
    std::vector<uint8_t> body;
    encode_request(req, body);
    const ev::TimePoint t0 = loop_.now();
    if (pending_.size() >= kMaxOutstanding) {
        Queued q;
        q.seq = req.seq;
        append_frame(q.frame, body);
        q.done = std::move(done);
        q.t0 = t0;
        backlog_.push_back(std::move(q));
        return;
    }
    append_frame(wbuf_, body);
    pending_[req.seq] = Pending{std::move(done), t0};
    if (!connecting_) flush();
}

void TcpChannel::pump_backlog() {
    bool queued_any = false;
    while (!backlog_.empty() && pending_.size() < kMaxOutstanding) {
        Queued q = std::move(backlog_.front());
        backlog_.pop_front();
        wbuf_.insert(wbuf_.end(), q.frame.begin(), q.frame.end());
        pending_[q.seq] = Pending{std::move(q.done), q.t0};
        queued_any = true;
    }
    if (queued_any && !connecting_) flush();
}

void TcpChannel::flush() {
    while (woff_ < wbuf_.size()) {
        // MSG_NOSIGNAL (see listener note): EPIPE from a SIGKILLed peer
        // must fail the pending calls, not signal this process.
        ssize_t n = ::send(fd_.get(), wbuf_.data() + woff_,
                           wbuf_.size() - woff_, MSG_NOSIGNAL);
        if (n > 0) {
            TcpMetrics::get().tx_bytes->inc(static_cast<uint64_t>(n));
            woff_ += static_cast<size_t>(n);
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
        } else {
            // ECONNRESET/EPIPE here IS the prompt dead-peer signal: every
            // pending call fails kTransportFailed immediately — the
            // reliable-call contract reports the target dead without
            // waiting out a per-attempt timer.
            fail_all(xrl::XrlError(
                xrl::ErrorCode::kTransportFailed,
                std::string("write failed: ") + std::strerror(errno)));
            return;
        }
    }
    if (woff_ == wbuf_.size()) {
        wbuf_.clear();
        woff_ = 0;
        if (writer_armed_) {
            loop_.remove_writer(fd_.get());
            writer_armed_ = false;
        }
    } else if (!writer_armed_) {
        writer_armed_ = true;
        loop_.add_writer(fd_.get(), [this] { on_writable(); });
    }
}

void TcpChannel::on_writable() {
    if (!broken_) flush();
}

void TcpChannel::on_readable() {
    char buf[16384];
    while (true) {
        ssize_t n = ::read(fd_.get(), buf, sizeof buf);
        if (n > 0) {
            // Drain to EAGAIN (see listener note about edge-triggered poll).
            TcpMetrics::get().rx_bytes->inc(static_cast<uint64_t>(n));
            rbuf_.insert(rbuf_.end(), buf, buf + n);
        } else if (n == 0) {
            // Orderly close from the peer: its process exited (or its
            // listener was destroyed). Fail everything now — the kernel
            // told us the peer is gone, no probe timeout needed.
            fail_all(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                                   "connection closed by peer"));
            return;
        } else {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            fail_all(xrl::XrlError(
                xrl::ErrorCode::kTransportFailed,
                std::string("read failed: ") + std::strerror(errno)));
            return;
        }
    }
    size_t off = 0;
    while (true) {
        auto [consumed, body_len] = peek_frame(rbuf_, off);
        if (consumed == SIZE_MAX) {
            fail_all(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                                   "oversized frame"));
            return;
        }
        if (consumed == 0) break;
        RequestFrame req_unused;
        ResponseFrame resp;
        auto kind =
            decode_frame(rbuf_.data() + off + 4, body_len, req_unused, resp);
        off += consumed;
        if (!kind || *kind != FrameKind::kResponse) {
            fail_all(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                                   "bad frame"));
            return;
        }
        auto it = pending_.find(resp.seq);
        if (it != pending_.end()) {
            TcpMetrics::get().latency->observe(loop_.now() - it->second.t0);
            ResponseCallback cb = std::move(it->second.done);
            pending_.erase(it);
            cb(resp.error, resp.args);
        }
    }
    if (off > 0)
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(off));
    pump_backlog();
}

void TcpChannel::fail_all(const xrl::XrlError& err) {
    if (broken_) return;
    broken_ = true;
    if (fd_.valid()) {
        loop_.remove_reader(fd_.get());
        if (writer_armed_) loop_.remove_writer(fd_.get());
        writer_armed_ = false;
        fd_.reset();
    }
    auto pending = std::move(pending_);
    pending_.clear();
    auto backlog = std::move(backlog_);
    backlog_.clear();
    for (auto& [seq, p] : pending) p.done(err, {});
    for (auto& q : backlog) q.done(err, {});
}

}  // namespace xrp::ipc
