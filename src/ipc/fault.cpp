#include "ipc/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"
#include "xrl/error.hpp"

namespace xrp::ipc {

namespace {

struct FaultMetrics {
    telemetry::Counter* drops;
    telemetry::Counter* delays;
    telemetry::Counter* duplicates;
    telemetry::Counter* reorders;
    telemetry::Counter* kills;

    static const FaultMetrics& get() {
        static FaultMetrics m = [] {
            auto& r = telemetry::Registry::global();
            FaultMetrics x;
            x.drops = r.counter("xrl_faults_injected_total{kind=\"drop\"}");
            x.delays = r.counter("xrl_faults_injected_total{kind=\"delay\"}");
            x.duplicates =
                r.counter("xrl_faults_injected_total{kind=\"duplicate\"}");
            x.reorders =
                r.counter("xrl_faults_injected_total{kind=\"reorder\"}");
            x.kills = r.counter("xrl_faults_injected_total{kind=\"kill\"}");
            return x;
        }();
        return m;
    }
};

}  // namespace

void FaultInjector::set_default_plan(const Plan& p) {
    std::lock_guard<std::mutex> lk(mu_);
    default_plan_ = p;
    have_default_ = true;
    active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::set_target_plan(const std::string& cls, const Plan& p) {
    std::lock_guard<std::mutex> lk(mu_);
    by_target_[cls] = p;
    active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::set_family_plan(const std::string& family, const Plan& p) {
    std::lock_guard<std::mutex> lk(mu_);
    by_family_[family] = p;
    active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::clear() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        by_target_.clear();
        by_family_.clear();
        have_default_ = false;
        default_plan_ = Plan{};
        active_.store(false, std::memory_order_relaxed);
    }
    flush_held();
}

bool FaultInjector::clear_scope(const std::string& scope) {
    bool removed = false;
    bool still_active;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (scope.empty() || scope == "default") {
            removed = have_default_;
            have_default_ = false;
            default_plan_ = Plan{};
        } else if (scope.rfind("family:", 0) == 0) {
            removed = by_family_.erase(scope.substr(7)) > 0;
        } else if (scope.rfind("target:", 0) == 0) {
            removed = by_target_.erase(scope.substr(7)) > 0;
        }
        recompute_active();
        still_active = active_.load(std::memory_order_relaxed);
    }
    if (!still_active) flush_held();
    return removed;
}

std::vector<std::pair<std::string, FaultInjector::Plan>>
FaultInjector::list_plans() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, Plan>> out;
    if (have_default_) out.emplace_back("default", default_plan_);
    for (const auto& [family, p] : by_family_)
        out.emplace_back("family:" + family, p);
    for (const auto& [cls, p] : by_target_)
        out.emplace_back("target:" + cls, p);
    return out;
}

std::string FaultInjector::describe_plans() const {
    std::string out;
    for (const auto& [scope, p] : list_plans()) {
        char buf[256];
        std::snprintf(
            buf, sizeof buf,
            "%s drop=%u delay=%u[%lld..%lldms] dup=%u reorder=%u kill=%d "
            "drop_first=%u\n",
            scope.c_str(), p.drop_permille, p.delay_permille,
            static_cast<long long>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    p.delay_min)
                    .count()),
            static_cast<long long>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    p.delay_max)
                    .count()),
            p.duplicate_permille, p.reorder_permille, p.kill_channel ? 1 : 0,
            p.drop_first);
        out += buf;
    }
    return out;
}

void FaultInjector::configure_from_env() {
    const char* seed_v = std::getenv("XRP_FAULT_SEED");
    const char* drop_v = std::getenv("XRP_FAULT_DROP_PERMILLE");
    const char* delay_v = std::getenv("XRP_FAULT_DELAY_MS");
    if (seed_v == nullptr && drop_v == nullptr && delay_v == nullptr) return;
    if (seed_v != nullptr) seed(std::strtoull(seed_v, nullptr, 10));
    Plan p;
    if (drop_v != nullptr)
        p.drop_permille = static_cast<uint32_t>(std::atoi(drop_v));
    if (delay_v != nullptr) {
        long ms = std::atol(delay_v);
        if (ms > 0) {
            p.delay_permille = 1000;
            p.delay_min = ev::Duration{};
            p.delay_max = std::chrono::milliseconds(ms);
        }
    }
    if (!p.trivial()) set_default_plan(p);
}

// Most specific plan wins outright: a per-target plan shadows family and
// default plans (so a trivial per-target plan acts as an exemption).
FaultInjector::Plan* FaultInjector::plan_for(const std::string& target,
                                             const std::string& family) {
    auto t = by_target_.find(target);
    if (t != by_target_.end()) return &t->second;
    auto f = by_family_.find(family);
    if (f != by_family_.end()) return &f->second;
    if (have_default_) return &default_plan_;
    return nullptr;
}

uint64_t FaultInjector::rnd() {
    // splitmix64: tiny, seedable, good enough for fault scheduling.
    uint64_t z = (prng_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

bool FaultInjector::roll(uint32_t permille) {
    if (permille == 0) return false;
    if (permille >= 1000) return true;
    return rnd() % 1000 < permille;
}

void FaultInjector::journal_fault(const std::string& target,
                                  const char* action) {
    if (loop_ == nullptr || !telemetry::journal_enabled()) return;
    telemetry::Journal::current().record(
        loop_->now(), telemetry::JournalKind::kFaultInjected, node_, "faults",
        target, action);
}

void FaultInjector::flush_held() {
    std::deque<Held> held;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (held_.empty()) return;
        held.swap(held_);
    }
    // Fire outside the lock (a delivery may recurse into intercept), each
    // thunk on the loop it was intercepted from — post() is thread-safe
    // and keeps the release shallow-stacked even same-thread.
    for (auto& h : held) {
        if (h.loop != nullptr)
            h.loop->post([fire = std::move(h.fire)]() mutable { fire(); });
        else
            h.fire();
    }
}

void FaultInjector::intercept(const std::string& target,
                              const std::string& family,
                              std::function<void(ResponseCallback)> deliver,
                              ResponseCallback done,
                              ev::EventLoop* caller_loop) {
    ev::EventLoop* cl = caller_loop != nullptr ? caller_loop : loop_;
    enum class Verdict { kClean, kKill, kDrop, kHold, kFire };
    Verdict v = Verdict::kClean;
    bool dup = false;
    bool delayed = false;
    ev::Duration delay{};
    ev::Duration release_after{};
    {
        // Decision phase under the lock (plans, PRNG, stats); the chosen
        // action runs after release so deliveries can nest.
        std::lock_guard<std::mutex> lk(mu_);
        Plan* p = (active() && cl != nullptr) ? plan_for(target, family)
                                              : nullptr;
        if (p != nullptr && !p->trivial()) {
            if (p->kill_channel) {
                v = Verdict::kKill;
                stats_.kills++;
            } else if (p->drop_first > 0 || roll(p->drop_permille)) {
                if (p->drop_first > 0) --p->drop_first;
                v = Verdict::kDrop;
                stats_.drops++;
            } else {
                dup = roll(p->duplicate_permille);
                if (dup) stats_.duplicates++;
                if (roll(p->delay_permille)) {
                    delayed = true;
                    stats_.delays++;
                    delay = p->delay_min;
                    const auto span = p->delay_max - p->delay_min;
                    if (span.count() > 0)
                        delay += ev::Duration(static_cast<ev::Duration::rep>(
                            rnd() % (span.count() + 1)));
                }
                if (roll(p->reorder_permille)) {
                    v = Verdict::kHold;
                    stats_.reorders++;
                    // Held until the next send passes it (or the backstop
                    // fires so a quiet wire cannot strand it), plus any
                    // rolled delay.
                    release_after =
                        delay + std::max<ev::Duration>(
                                    p->delay_max, std::chrono::milliseconds(2));
                } else {
                    v = Verdict::kFire;
                }
            }
        }
    }

    if (v == Verdict::kClean) {
        deliver(std::move(done));
        return;
    }
    if (v == Verdict::kKill) {
        FaultMetrics::get().kills->inc();
        journal_fault(target, "kill");
        cl->defer([done = std::move(done)] {
            done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "fault injection: channel killed"),
                 {});
        });
        flush_held();
        return;
    }
    if (v == Verdict::kDrop) {
        FaultMetrics::get().drops->inc();
        journal_fault(target, "drop");
        // Swallowed whole: `done` never fires, exactly like a lost
        // datagram. The caller's attempt timer is the only way out.
        flush_held();
        return;
    }

    if (delayed) {
        FaultMetrics::get().delays->inc();
        journal_fault(target, "delay");
    }
    if (dup) {
        FaultMetrics::get().duplicates->inc();
        journal_fault(target, "duplicate");
    }

    auto fire = [deliver = std::move(deliver), done = std::move(done),
                 dup]() mutable {
        if (dup)
            deliver([](const xrl::XrlError&, const xrl::XrlArgs&) {});
        deliver(std::move(done));
    };

    if (v == Verdict::kHold) {
        FaultMetrics::get().reorders->inc();
        journal_fault(target, "reorder");
        {
            std::lock_guard<std::mutex> lk(mu_);
            held_.push_back({std::move(fire), cl});
        }
        // Backstop on the caller's loop (intercept runs on the caller's
        // thread); a redundant flush is a cheap no-op.
        cl->defer_after(release_after, [this] { flush_held(); });
        return;
    }

    if (delay.count() > 0) {
        cl->defer_after(delay, std::move(fire));
        flush_held();
        return;
    }
    // No fault rolled for this send (or just a duplicate): deliver
    // synchronously so the injector is transparent to latency-sensitive
    // paths, then release anything a reorder was holding behind us.
    fire();
    flush_held();
}

}  // namespace xrp::ipc
