#include "ipc/xring.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

namespace {

// Cached handles (see router.cpp). Counters/histograms are relaxed
// atomics, so sender and receiver threads may hit them concurrently.
struct XringMetrics {
    telemetry::Counter* tx_frames;
    telemetry::Counter* rx_frames;
    telemetry::Counter* wakeups;
    telemetry::Counter* ring_full;
    telemetry::Histogram* latency;

    static const XringMetrics& get() {
        static XringMetrics m = [] {
            auto& r = telemetry::Registry::global();
            XringMetrics x;
            x.tx_frames =
                r.counter("xrl_wire_frames_total{dir=\"tx\",family=\"xring\"}");
            x.rx_frames =
                r.counter("xrl_wire_frames_total{dir=\"rx\",family=\"xring\"}");
            x.wakeups = r.counter("xring_wakeups_total");
            x.ring_full = r.counter("xring_ring_full_total");
            x.latency = r.histogram("xrl_latency_ns{family=\"xring\"}");
            return x;
        }();
        return m;
    }
};

size_t round_up_pow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

Fd make_eventfd() { return Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)); }

void ring_fd(int fd) {
    if (fd < 0) return;
    const uint64_t one = 1;
    // EAGAIN (counter saturated) already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof one);
}

void drain_fd(int fd) {
    uint64_t n;
    while (::read(fd, &n, sizeof n) > 0) {
    }
}

}  // namespace

// ---- SpscRing ---------------------------------------------------------

SpscRing::SpscRing(size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

bool SpscRing::push(std::vector<uint8_t>&& frame) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false;  // full
    slots_[tail & mask_] = std::move(frame);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
}

bool SpscRing::pop(std::vector<uint8_t>& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
}

// ---- XringConduit -----------------------------------------------------

void XringConduit::ring_receiver() const { ring_fd(receiver_wake.get()); }
void XringConduit::ring_sender() const { ring_fd(sender_wake.get()); }

// ---- XringHub ---------------------------------------------------------

void XringHub::add(XringPort* port) {
    std::lock_guard<std::mutex> lock(mu_);
    ports_[port->address()] = port;
}

void XringHub::remove(const std::string& address) {
    std::lock_guard<std::mutex> lock(mu_);
    ports_.erase(address);
}

std::shared_ptr<XringConduit> XringHub::connect(const std::string& address,
                                                Fd sender_wake_dup) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ports_.find(address);
    if (it == ports_.end()) return nullptr;
    return it->second->attach(std::move(sender_wake_dup));
}

// ---- XringPort --------------------------------------------------------

XringPort::XringPort(ev::EventLoop& loop, XrlDispatcher& dispatcher,
                     XringHub& hub, std::string address)
    : loop_(loop),
      dispatcher_(dispatcher),
      hub_(hub),
      address_(std::move(address)),
      wake_(make_eventfd()) {
    if (!wake_.valid()) return;
    loop_.add_reader(wake_.get(), [this] { on_wake(); });
    hub_.add(this);
}

XringPort::~XringPort() {
    // Unpublish first so no sender can attach mid-teardown, then close
    // every conduit and ring its sender: their in-flight calls fail hard
    // (kTransportFailed), which is what failover/dead-target logic expects.
    hub_.remove(address_);
    std::vector<std::shared_ptr<XringConduit>> conduits;
    {
        std::lock_guard<std::mutex> lock(mu_);
        conduits.swap(conduits_);
    }
    for (const auto& c : conduits) {
        c->receiver_open.store(false, std::memory_order_release);
        c->ring_sender();
    }
    if (wake_.valid()) loop_.remove_reader(wake_.get());
}

std::shared_ptr<XringConduit> XringPort::attach(Fd sender_wake_dup) {
    auto c = std::make_shared<XringConduit>(kRingSlots);
    c->receiver_wake = Fd(::dup(wake_.get()));
    c->sender_wake = std::move(sender_wake_dup);
    std::lock_guard<std::mutex> lock(mu_);
    conduits_.push_back(c);
    return c;
}

void XringPort::on_wake() {
    drain_fd(wake_.get());
    XringMetrics::get().wakeups->inc();
    std::vector<std::shared_ptr<XringConduit>> conduits;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Reap conduits whose sender died and whose requests are drained.
        std::erase_if(conduits_, [](const auto& c) {
            return !c->sender_open.load(std::memory_order_acquire) &&
                   c->req.empty();
        });
        conduits = conduits_;
    }
    for (const auto& c : conduits) drain(c);
    flush_overflow();
}

void XringPort::drain(const std::shared_ptr<XringConduit>& c) {
    c->req.unpark();
    bool more = true;
    while (more) {
        drain_once(c);
        // Park before returning to poll(2); try_park's re-check catches a
        // frame pushed while we were finishing the previous pass.
        more = !c->req.try_park();
    }
}

void XringPort::drain_once(const std::shared_ptr<XringConduit>& c) {
    std::vector<uint8_t> frame;
    while (c->req.pop(frame)) {
        XringMetrics::get().rx_frames->inc();
        RequestFrame req;
        ResponseFrame resp_unused;
        auto kind =
            decode_frame(frame.data(), frame.size(), req, resp_unused);
        if (!kind || *kind != FrameKind::kRequest) continue;  // malformed
        const uint32_t seq = req.seq;
        telemetry::Tracer::global().record(req.trace, loop_.now(), "dispatch",
                                           "xring " + req.method);
        telemetry::Tracer::Scope trace_scope(req.trace);
        // The completion may run now (sync handler) or later (async); the
        // conduit outlives the port, and a reply after either side closed
        // is dropped before touching port state (`this` is only safe while
        // receiver_open — the port's destructor clears it on this thread).
        dispatcher_.dispatch(
            req.method, req.args,
            [this, c, seq](const xrl::XrlError& err, const xrl::XrlArgs& out) {
                if (!c->receiver_open.load(std::memory_order_acquire) ||
                    !c->sender_open.load(std::memory_order_acquire))
                    return;
                ResponseFrame resp;
                resp.seq = seq;
                resp.error = err;
                resp.args = out;
                std::vector<uint8_t> body;
                encode_response(resp, body);
                queue_reply(c, std::move(body));
            });
    }
}

void XringPort::queue_reply(const std::shared_ptr<XringConduit>& c,
                            std::vector<uint8_t>&& frame) {
    if (overflow_.empty()) {
        std::vector<uint8_t> copy = std::move(frame);
        if (c->resp.push(std::move(copy))) {
            // Only a parked consumer needs the syscall: one that is still
            // draining will reach this frame without another wakeup.
            if (c->resp.claim_wake()) c->ring_sender();
            return;
        }
        XringMetrics::get().ring_full->inc();
        overflow_.emplace_back(c, std::move(copy));
    } else {
        overflow_.emplace_back(c, std::move(frame));
    }
    if (!overflow_timer_.scheduled())
        overflow_timer_ = loop_.set_timer(std::chrono::milliseconds(1),
                                          [this] { flush_overflow(); });
}

void XringPort::flush_overflow() {
    while (!overflow_.empty()) {
        auto& [c, frame] = overflow_.front();
        if (!c->sender_open.load(std::memory_order_acquire)) {
            overflow_.pop_front();
            continue;
        }
        std::vector<uint8_t> body = std::move(frame);
        if (!c->resp.push(std::move(body))) {
            overflow_.front().second = std::move(body);
            overflow_timer_ = loop_.set_timer(std::chrono::milliseconds(1),
                                              [this] { flush_overflow(); });
            return;
        }
        if (c->resp.claim_wake()) c->ring_sender();
        overflow_.pop_front();
    }
}

// ---- XringChannel -----------------------------------------------------

XringChannel::XringChannel(ev::EventLoop& loop, XringHub& hub,
                           const std::string& address)
    : loop_(loop), wake_(make_eventfd()) {
    if (!wake_.valid()) {
        broken_ = true;
        return;
    }
    loop_.add_reader(wake_.get(), [this] { on_wake(); });
    conduit_ = hub.connect(address, Fd(::dup(wake_.get())));
    if (!conduit_) broken_ = true;
}

XringChannel::~XringChannel() {
    if (conduit_) {
        conduit_->sender_open.store(false, std::memory_order_release);
        conduit_->ring_receiver();  // let the port reap the conduit
    }
    if (wake_.valid()) loop_.remove_reader(wake_.get());
}

void XringChannel::send(const std::string& keyed_method,
                        const xrl::XrlArgs& args, ResponseCallback done) {
    if (broken_) {
        // Fail asynchronously so callers see uniform completion ordering.
        loop_.defer([done = std::move(done)] {
            done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "xring channel broken"),
                 {});
        });
        return;
    }
    if (!conduit_->receiver_open.load(std::memory_order_acquire)) {
        fail_all(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "xring receiver gone"));
        loop_.defer([done = std::move(done)] {
            done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "xring receiver gone"),
                 {});
        });
        return;
    }
    RequestFrame req;
    req.seq = next_seq_++;
    req.method = keyed_method;
    req.args = args;
    // Carry the caller's trace (if any) across the thread hop.
    if (telemetry::TraceContext ctx = telemetry::Tracer::current();
        ctx.valid())
        req.trace = ctx.next_hop();
    Queued q;
    q.seq = req.seq;
    encode_request(req, q.frame);
    q.done = std::move(done);
    q.t0 = loop_.now();
    if (!backlog_.empty() || pending_.size() >= kMaxOutstanding ||
        !push_frame(q))
        backlog_.push_back(std::move(q));
}

bool XringChannel::push_frame(Queued& q) {
    std::vector<uint8_t> frame = std::move(q.frame);
    if (!conduit_->req.push(std::move(frame))) {
        q.frame = std::move(frame);  // keep for the backlog
        XringMetrics::get().ring_full->inc();
        return false;
    }
    XringMetrics::get().tx_frames->inc();
    pending_[q.seq] = Pending{std::move(q.done), q.t0};
    if (conduit_->req.claim_wake()) conduit_->ring_receiver();
    return true;
}

void XringChannel::on_wake() {
    drain_fd(wake_.get());
    if (broken_) return;
    conduit_->resp.unpark();
    bool more = true;
    while (more) {
        std::vector<uint8_t> frame;
        while (conduit_->resp.pop(frame)) {
            RequestFrame req_unused;
            ResponseFrame resp;
            auto kind =
                decode_frame(frame.data(), frame.size(), req_unused, resp);
            if (!kind || *kind != FrameKind::kResponse)
                continue;  // malformed
            auto it = pending_.find(resp.seq);
            if (it == pending_.end()) continue;
            XringMetrics::get().latency->observe(loop_.now() - it->second.t0);
            ResponseCallback cb = std::move(it->second.done);
            pending_.erase(it);
            cb(resp.error, resp.args);
        }
        more = !conduit_->resp.try_park();
    }
    if (!conduit_->receiver_open.load(std::memory_order_acquire)) {
        fail_all(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "xring receiver gone"));
        return;
    }
    pump_backlog();
}

void XringChannel::pump_backlog() {
    while (!backlog_.empty() && pending_.size() < kMaxOutstanding) {
        if (!push_frame(backlog_.front()))
            return;  // ring full again; responses will re-pump
        backlog_.pop_front();
    }
}

void XringChannel::fail_all(const xrl::XrlError& err) {
    if (broken_) return;
    broken_ = true;
    auto pending = std::move(pending_);
    pending_.clear();
    auto backlog = std::move(backlog_);
    backlog_.clear();
    for (auto& [seq, p] : pending) p.done(err, {});
    for (auto& q : backlog) q.done(err, {});
}

}  // namespace xrp::ipc
