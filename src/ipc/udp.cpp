#include "ipc/udp.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xrp::ipc {

namespace {
constexpr size_t kMaxDatagram = 65507;

// Cached handles (see router.cpp); shared by channel and listener sides.
struct UdpMetrics {
    telemetry::Counter* tx_bytes;
    telemetry::Counter* rx_bytes;
    telemetry::Counter* timeouts;
    telemetry::Histogram* latency;

    static const UdpMetrics& get() {
        static UdpMetrics m = [] {
            auto& r = telemetry::Registry::global();
            UdpMetrics x;
            x.tx_bytes =
                r.counter("xrl_wire_bytes_total{dir=\"tx\",family=\"sudp\"}");
            x.rx_bytes =
                r.counter("xrl_wire_bytes_total{dir=\"rx\",family=\"sudp\"}");
            x.timeouts = r.counter("xrl_timeouts_total{family=\"sudp\"}");
            x.latency = r.histogram("xrl_latency_ns{family=\"sudp\"}");
            return x;
        }();
        return m;
    }
};

}  // namespace

// ---- UdpListener ------------------------------------------------------

UdpListener::UdpListener(ev::EventLoop& loop, XrlDispatcher& dispatcher)
    : loop_(loop), dispatcher_(dispatcher), fd_(make_udp_socket()) {
    if (!fd_.valid()) return;
    address_ = local_address_string(fd_.get());
    loop_.add_reader(fd_.get(), [this] { on_readable(); });
}

UdpListener::~UdpListener() {
    if (fd_.valid()) loop_.remove_reader(fd_.get());
}

void UdpListener::on_readable() {
    uint8_t buf[kMaxDatagram];
    while (true) {
        sockaddr_in peer{};
        socklen_t plen = sizeof peer;
        ssize_t n = ::recvfrom(fd_.get(), buf, sizeof buf, 0,
                               reinterpret_cast<sockaddr*>(&peer), &plen);
        if (n <= 0) return;  // EAGAIN or error: drained
        UdpMetrics::get().rx_bytes->inc(static_cast<uint64_t>(n));
        RequestFrame req;
        ResponseFrame resp_unused;
        auto kind =
            decode_frame(buf, static_cast<size_t>(n), req, resp_unused);
        if (!kind || *kind != FrameKind::kRequest) continue;  // drop garbage
        const uint32_t seq = req.seq;
        telemetry::Tracer::global().record(req.trace, loop_.now(), "dispatch",
                                           "sudp " + req.method);
        telemetry::Tracer::Scope trace_scope(req.trace);
        // UDP handlers must complete synchronously enough that the peer
        // address capture below stays valid; we copy it into the lambda.
        dispatcher_.dispatch(
            req.method, req.args,
            [this, peer, plen, seq](const xrl::XrlError& err,
                                    const xrl::XrlArgs& out) {
                ResponseFrame resp;
                resp.seq = seq;
                resp.error = err;
                resp.args = out;
                std::vector<uint8_t> body;
                encode_response(resp, body);
                if (body.size() <= kMaxDatagram) {
                    ::sendto(fd_.get(), body.data(), body.size(), 0,
                             reinterpret_cast<const sockaddr*>(&peer), plen);
                    UdpMetrics::get().tx_bytes->inc(body.size());
                }
            });
    }
}

// ---- UdpChannel -------------------------------------------------------

UdpChannel::UdpChannel(ev::EventLoop& loop, const std::string& address,
                       ev::Duration timeout)
    : loop_(loop), fd_(make_udp_socket()), timeout_(timeout) {
    auto sa = parse_inet_address(address);
    if (!sa || !fd_.valid()) {
        broken_ = true;
        return;
    }
    if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&*sa), sizeof *sa) !=
        0) {
        broken_ = true;
        return;
    }
    loop_.add_reader(fd_.get(), [this] { on_readable(); });
}

UdpChannel::~UdpChannel() {
    if (fd_.valid()) loop_.remove_reader(fd_.get());
}

void UdpChannel::send(const std::string& keyed_method,
                      const xrl::XrlArgs& args, ResponseCallback done) {
    if (broken_) {
        loop_.defer([done = std::move(done)] {
            done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                               "channel broken"),
                 {});
        });
        return;
    }
    RequestFrame req;
    req.seq = next_seq_++;
    req.method = keyed_method;
    req.args = args;
    if (telemetry::TraceContext ctx = telemetry::Tracer::current();
        ctx.valid())
        req.trace = ctx.next_hop();
    Pending p;
    p.seq = req.seq;
    encode_request(req, p.datagram);
    p.done = std::move(done);
    p.t0 = loop_.now();
    queue_.push_back(std::move(p));
    pump();
}

void UdpChannel::pump() {
    if (in_flight_ || queue_.empty() || broken_) return;
    const Pending& head = queue_.front();
    if (head.datagram.size() > kMaxDatagram) {
        ResponseCallback done = std::move(queue_.front().done);
        queue_.pop_front();
        done(xrl::XrlError(xrl::ErrorCode::kTransportFailed,
                           "request exceeds datagram size"),
             {});
        pump();
        return;
    }
    ::send(fd_.get(), head.datagram.data(), head.datagram.size(), 0);
    UdpMetrics::get().tx_bytes->inc(head.datagram.size());
    in_flight_ = true;
    timeout_timer_ = loop_.set_timer(timeout_, [this] { on_timeout(); });
}

void UdpChannel::on_readable() {
    uint8_t buf[kMaxDatagram];
    while (true) {
        ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
        if (n <= 0) return;
        UdpMetrics::get().rx_bytes->inc(static_cast<uint64_t>(n));
        RequestFrame req_unused;
        ResponseFrame resp;
        auto kind =
            decode_frame(buf, static_cast<size_t>(n), req_unused, resp);
        if (!kind || *kind != FrameKind::kResponse) continue;
        if (!in_flight_ || queue_.empty() || resp.seq != queue_.front().seq)
            continue;  // stale response (e.g. after a timeout)
        UdpMetrics::get().latency->observe(loop_.now() - queue_.front().t0);
        ResponseCallback done = std::move(queue_.front().done);
        queue_.pop_front();
        in_flight_ = false;
        timeout_timer_.unschedule();
        done(resp.error, resp.args);
        pump();
    }
}

void UdpChannel::on_timeout() {
    if (!in_flight_ || queue_.empty()) return;
    UdpMetrics::get().timeouts->inc();
    ResponseCallback done = std::move(queue_.front().done);
    queue_.pop_front();
    in_flight_ = false;
    // kTimeout, not kTransportFailed: the request left this host, so it
    // may well have executed — the call contract must not blindly retry
    // non-idempotent methods past this point.
    done(xrl::XrlError(xrl::ErrorCode::kTimeout, "request timed out"), {});
    pump();
}

}  // namespace xrp::ipc
