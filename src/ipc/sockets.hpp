// Small RAII + parsing helpers shared by the TCP and UDP families.
#ifndef XRP_IPC_SOCKETS_HPP
#define XRP_IPC_SOCKETS_HPP

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace xrp::ipc {

// Owning file descriptor (Core Guidelines R.1: RAII for resources).
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
    Fd& operator=(Fd&& o) noexcept;
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    ~Fd() { reset(); }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release() { return std::exchange(fd_, -1); }
    void reset(int fd = -1);

private:
    int fd_ = -1;
};

bool set_nonblocking(int fd);
bool set_nodelay(int fd);

// "127.0.0.1:16878" -> sockaddr_in.
std::optional<sockaddr_in> parse_inet_address(const std::string& address);
// Formats the bound local address of `fd` as "ip:port".
std::string local_address_string(int fd);

// Creates a nonblocking listening TCP socket on 127.0.0.1, ephemeral port.
Fd make_tcp_listener();
// Creates a nonblocking UDP socket bound to 127.0.0.1, ephemeral port.
Fd make_udp_socket();

}  // namespace xrp::ipc

#endif
