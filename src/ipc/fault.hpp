// FaultInjector: deterministic chaos for the XRL transport layer.
//
// Reliability claims are only as good as the failures they were tested
// against, so the transport layer carries a first-class fault hook: every
// outbound dispatch (all three families, uniformly) is offered to the
// Plexus's injector, which may drop it (no reply ever — exercises the
// call contract's timeout path), delay it, deliver it twice (exercises
// at-least-once semantics at receivers), reorder it behind the next send,
// or kill it outright as if the channel died. Plans are scriptable per
// target class, per protocol family, or as a process-wide default —
// programmatically, through the fault/1.0 XRL face, or from the
// environment (the CI chaos pass).
//
// Determinism: all probabilistic decisions come from one seeded
// splitmix64 stream, so a failing chaos run replays exactly from its
// seed. The drop_first counter drops the next N matching sends with no
// randomness at all — the building block for pinpoint loss tests.
#ifndef XRP_IPC_FAULT_HPP
#define XRP_IPC_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ev/eventloop.hpp"
#include "ipc/dispatcher.hpp"

namespace xrp::ipc {

class FaultInjector {
public:
    struct Plan {
        uint32_t drop_permille = 0;       // P(request vanishes)
        uint32_t delay_permille = 0;      // P(request is delayed)
        ev::Duration delay_min{};         // uniform in [delay_min,
        ev::Duration delay_max{};         //             delay_max]
        uint32_t duplicate_permille = 0;  // P(request delivered twice)
        uint32_t reorder_permille = 0;    // P(held behind the next send)
        bool kill_channel = false;        // every send fails kTransportFailed
        uint32_t drop_first = 0;          // drop the next N sends, surely

        bool trivial() const {
            return drop_permille == 0 && delay_permille == 0 &&
                   duplicate_permille == 0 && reorder_permille == 0 &&
                   !kill_channel && drop_first == 0;
        }
    };

    struct Stats {
        uint64_t drops = 0;
        uint64_t delays = 0;
        uint64_t duplicates = 0;
        uint64_t reorders = 0;
        uint64_t kills = 0;
    };

    FaultInjector() = default;
    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    // Set by the owning Plexus; delayed/reordered deliveries run on it.
    void bind_loop(ev::EventLoop* loop) { loop_ = loop; }
    // Router identity stamped on journal events; empty = unbound.
    void set_node(std::string node) { node_ = std::move(node); }

    void seed(uint64_t s) {
        std::lock_guard<std::mutex> lk(mu_);
        prng_ = s ? s : 1;
    }
    void set_default_plan(const Plan& p);
    void set_target_plan(const std::string& cls, const Plan& p);
    void set_family_plan(const std::string& family, const Plan& p);
    void clear();

    // Surgical reset: removes just one plan slot, leaving the others
    // armed — a chaos test lifts the kill on one target without undoing
    // the ambient drop/delay plan. `scope` uses the fault/1.0 syntax:
    // "default", "family:<f>", or "target:<cls>". Unknown scopes are a
    // no-op returning false.
    bool clear_scope(const std::string& scope);

    // Introspection: every installed plan as (scope, plan) pairs, in
    // default -> family -> target order (the inverse of match precedence,
    // which is most-specific-first; see plan_for).
    std::vector<std::pair<std::string, Plan>> list_plans() const;
    // Human/XRL-readable one-line-per-plan rendering of list_plans().
    std::string describe_plans() const;

    // Reads XRP_FAULT_SEED / XRP_FAULT_DROP_PERMILLE / XRP_FAULT_DELAY_MS
    // into the default plan (delay probability 100% with a uniform
    // [0, delay_ms] jitter). Called once per Plexus; a no-op when none of
    // the variables are set.
    void configure_from_env();

    bool active() const { return active_.load(std::memory_order_relaxed); }
    // Copy, not reference: another thread may be rolling faults.
    Stats stats() const {
        std::lock_guard<std::mutex> lk(mu_);
        return stats_;
    }

    // Routes one outbound dispatch through the injector. `deliver`
    // performs the real transport dispatch with whatever completion
    // callback the injector threads through. With no matching plan and no
    // fault rolled, the dispatch runs synchronously, exactly as if the
    // injector were absent. A dropped send is never delivered and never
    // completes `done` — the caller's timeout is the only way out.
    // Callers should bypass the injector entirely while !active().
    //
    // Thread use: one injector serves every component thread of its
    // Plexus. `caller_loop` is the calling component's home loop (null =
    // the Plexus loop, the single-thread legacy): delayed and reordered
    // deliveries are scheduled on it, so a fault never makes a dispatch
    // jump threads. Plans, stats, and the PRNG are mutex-guarded; the
    // fault decision holds the lock, the delivery never does.
    void intercept(const std::string& target, const std::string& family,
                   std::function<void(ResponseCallback)> deliver,
                   ResponseCallback done,
                   ev::EventLoop* caller_loop = nullptr);

private:
    struct Held {
        std::function<void()> fire;  // delivery thunk awaiting release
        ev::EventLoop* loop;         // caller's home loop — fires here
    };

    // All four require mu_ held by the caller.
    Plan* plan_for(const std::string& target, const std::string& family);
    uint64_t rnd();
    bool roll(uint32_t permille);
    void recompute_active() {
        active_.store(have_default_ || !by_target_.empty() ||
                          !by_family_.empty(),
                      std::memory_order_relaxed);
    }

    void flush_held();
    void journal_fault(const std::string& target, const char* action);

    ev::EventLoop* loop_ = nullptr;
    std::string node_;
    std::atomic<bool> active_{false};
    mutable std::mutex mu_;
    uint64_t prng_ = 0x9e3779b97f4a7c15ull;
    Plan default_plan_;
    bool have_default_ = false;
    std::map<std::string, Plan> by_target_;
    std::map<std::string, Plan> by_family_;
    Stats stats_;
    std::deque<Held> held_;  // reordered sends awaiting release
};

}  // namespace xrp::ipc

#endif
