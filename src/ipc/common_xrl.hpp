// The common/0.1 XRL face: the minimal interface every component speaks
// (XORP ships the same one). Auto-bound on every finalized XrlRouter, it
// gives any caller a uniform way to identify a target and — the part the
// supervision subsystem is built on — probe its liveness:
//
//   get_target_name -> name:txt
//   get_version     -> version:txt
//   get_status      -> status:u32 & reason:txt
//
// `status` uses the XORP process-status vocabulary, reduced to what the
// supervisor consumes: 2 = READY. A component that wants to report a
// richer status (starting, shutting down, degraded) installs its own
// provider before finalize(); the default answers READY as long as the
// dispatcher is answering at all — which is exactly the "is this
// component alive" question a health probe asks.
#ifndef XRP_IPC_COMMON_XRL_HPP
#define XRP_IPC_COMMON_XRL_HPP

#include <functional>
#include <string>

#include "ipc/dispatcher.hpp"

namespace xrp::ipc {

inline constexpr uint32_t kProcessReady = 2;

inline constexpr const char* kCommonIdl = R"(
interface common/0.1 {
    get_target_name -> name:txt;
    get_version -> version:txt;
    get_status -> status:u32 & reason:txt;
}
)";

// Fills (status, reason); installed by components with non-trivial health.
using StatusProvider = std::function<void(uint32_t& status, std::string& reason)>;

// Adds common/0.1 to `d`, answering for component class `cls`.
// Idempotent: a second call (or a component that bound its own common/0.1
// first) leaves the existing binding alone.
void bind_common_xrls(XrlDispatcher& d, const std::string& cls,
                      StatusProvider status = nullptr);

}  // namespace xrp::ipc

#endif
