// XrlProxy: the §7 argument-restricting intermediary.
//
// "We can envisage taking this approach even further, and restricting the
// range of arguments that a process can use for a particular XRL method.
// This would require an XRL intermediary, but the flexibility of our XRL
// resolution mechanism makes installing such an XRL proxy rather simple."
//
// A proxy registers as its own target class and forwards exposed methods
// to a real target — but only when the per-method argument constraint
// accepts the arguments. Combined with Finder ACLs (deny the untrusted
// caller direct access to the real target, allow it the proxy), an
// experimental process can be limited not just to a set of methods but to
// a range of argument values.
#ifndef XRP_IPC_PROXY_HPP
#define XRP_IPC_PROXY_HPP

#include <functional>
#include <map>

#include "ipc/router.hpp"
#include "xrl/method_name.hpp"

namespace xrp::ipc {

class XrlProxy {
public:
    // Accepts the arguments or rejects the call (with a note).
    using ArgConstraint =
        std::function<bool(const xrl::XrlArgs& args, std::string* why)>;

    // `proxy_cls` is the class callers address; `real_target` is where
    // accepted calls are forwarded.
    XrlProxy(Plexus& plexus, std::string proxy_cls, std::string real_target)
        : router_(plexus, std::move(proxy_cls), true),
          real_target_(std::move(real_target)) {}

    // Exposes `iface/version/method` through the proxy under the same
    // method name, gated by `constraint` (null = pass-through). Malformed
    // method names are rejected here, at registration, instead of
    // producing a mangled forward on the first call.
    bool expose(const std::string& full_method,
                ArgConstraint constraint = nullptr) {
        auto name = xrl::MethodName::parse(full_method);
        if (!name) return false;
        router_.add_async_handler(
            full_method,
            [this, name = *name, constraint](const xrl::XrlArgs& in,
                                             ResponseCallback done) {
                std::string why = "argument constraint rejected the call";
                if (constraint && !constraint(in, &why)) {
                    done(xrl::XrlError(xrl::ErrorCode::kCommandFailed,
                                       name.full() + ": " + why),
                         {});
                    return;
                }
                // Forward fire-once: recovery (retries, failover) belongs
                // to the end caller's own contract, not to the middleman —
                // stacking retry loops would multiply attempts.
                router_.call(
                    xrl::Xrl(std::string("finder"), real_target_, name.iface,
                             name.version, name.method, in),
                    CallOptions::fire_once(), std::move(done));
            });
        return true;
    }

    bool finalize() { return router_.finalize(); }
    const std::string& instance() const { return router_.instance(); }
    XrlRouter& router() { return router_; }

private:
    XrlRouter router_;
    std::string real_target_;
};

}  // namespace xrp::ipc

#endif
