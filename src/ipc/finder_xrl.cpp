#include "ipc/finder_xrl.hpp"

namespace xrp::ipc {

using xrl::XrlArgs;
using xrl::XrlError;

std::unique_ptr<XrlRouter> bind_finder_xrl(Plexus& plexus) {
    auto router = std::make_unique<XrlRouter>(plexus, "finder", true);
    router->add_interface(*xrl::InterfaceSpec::parse(kFinderIdl));
    finder::Finder& finder = plexus.finder;

    router->add_handler(
        "finder/1.0/resolve_xrl",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            XrlError err;
            auto res = finder.resolve(*in.get_text("target"),
                                      *in.get_text("method"), "", &err);
            bool ok = res.has_value() && !res->empty();
            out.add("ok", ok);
            out.add("family", ok ? res->front().family : std::string{});
            out.add("address", ok ? res->front().address : std::string{});
            out.add("keyed_method",
                    ok ? res->front().keyed_method : std::string{});
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/target_exists",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            out.add("exists", finder.target_exists(*in.get_text("target")));
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/get_target_count",
        [&finder](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(finder.target_count()));
            return XrlError::okay();
        });

    router->finalize();
    return router;
}

}  // namespace xrp::ipc
