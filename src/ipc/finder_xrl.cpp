#include "ipc/finder_xrl.hpp"

#include <sstream>

namespace xrp::ipc {

using xrl::XrlArgs;
using xrl::XrlError;

std::string encode_resolutions(const std::vector<finder::Resolution>& res) {
    std::string out;
    for (const finder::Resolution& r : res) {
        if (!out.empty()) out += '\n';
        out += r.family + ' ' + r.address + ' ' + r.keyed_method;
    }
    return out;
}

std::vector<finder::Resolution> decode_resolutions(const std::string& text) {
    std::vector<finder::Resolution> out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        size_t a = line.find(' ');
        size_t b = a == std::string::npos ? a : line.find(' ', a + 1);
        if (b == std::string::npos) continue;
        finder::Resolution r;
        r.family = line.substr(0, a);
        r.address = line.substr(a + 1, b - a - 1);
        r.keyed_method = line.substr(b + 1);
        out.push_back(std::move(r));
    }
    return out;
}

std::string encode_families(const std::map<std::string, std::string>& fams) {
    std::string out;
    for (const auto& [family, address] : fams) {
        if (!out.empty()) out += ';';
        out += family + '=' + address;
    }
    return out;
}

std::map<std::string, std::string> decode_families(const std::string& text) {
    std::map<std::string, std::string> out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t end = text.find(';', pos);
        if (end == std::string::npos) end = text.size();
        size_t eq = text.find('=', pos);
        if (eq != std::string::npos && eq < end)
            out[text.substr(pos, eq - pos)] =
                text.substr(eq + 1, end - eq - 1);
        pos = end + 1;
    }
    return out;
}

std::unique_ptr<XrlRouter> bind_finder_xrl(Plexus& plexus, bool tcp) {
    auto router = std::make_unique<XrlRouter>(plexus, "finder", true);
    router->add_interface(*xrl::InterfaceSpec::parse(kFinderIdl));
    // Bootstrap endpoint: a remote component cannot hold any method key
    // before it has talked to the Finder, so this face alone accepts
    // unkeyed calls. Everything else still requires keys.
    router->dispatcher().set_require_keys(false);
    if (tcp) router->enable_tcp();
    finder::Finder& finder = plexus.finder;

    router->add_handler(
        "finder/1.0/resolve_xrl",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            XrlError err;
            auto res = finder.resolve(*in.get_text("target"),
                                      *in.get_text("method"), "", &err);
            bool ok = res.has_value() && !res->empty();
            out.add("ok", ok);
            out.add("family", ok ? res->front().family : std::string{});
            out.add("address", ok ? res->front().address : std::string{});
            out.add("keyed_method",
                    ok ? res->front().keyed_method : std::string{});
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/resolve_all",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            // Full preference list + typed error passthrough: a dead
            // target must come back as kTargetDead, not a generic
            // failure, so the remote caller's contract fails fast.
            XrlError err;
            auto res = finder.resolve(*in.get_text("target"),
                                      *in.get_text("method"),
                                      *in.get_text("caller"), &err,
                                      *in.get_text("secret"));
            if (!res)
                return err.ok() ? XrlError(xrl::ErrorCode::kResolveFailed,
                                           "no such target/method")
                                : err;
            out.add("count", static_cast<uint32_t>(res->size()));
            out.add("resolutions", encode_resolutions(*res));
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/register_target",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            auto instance = finder.register_target(*in.get_text("cls"),
                                                   *in.get_bool("sole"));
            if (!instance)
                return XrlError::command_failed(
                    "class has a live sole instance");
            out.add("instance", *instance);
            out.add("secret", finder.instance_secret(*instance));
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/register_methods",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            const std::string instance = *in.get_text("instance");
            auto families = decode_families(*in.get_text("families"));
            std::istringstream lines(*in.get_text("methods"));
            std::string method, keys;
            bool first = true;
            while (std::getline(lines, method)) {
                if (method.empty()) continue;
                if (!first) keys += '\n';
                first = false;
                keys += finder.register_method(instance, method, families);
            }
            out.add("keys", keys);
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/unregister_target",
        [&finder](const XrlArgs& in, XrlArgs&) {
            finder.unregister_target(*in.get_text("instance"));
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/report_dead",
        [&finder](const XrlArgs& in, XrlArgs&) {
            finder.report_dead(*in.get_text("target"));
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/target_exists",
        [&finder](const XrlArgs& in, XrlArgs& out) {
            out.add("exists", finder.target_exists(*in.get_text("target")));
            return XrlError::okay();
        });
    router->add_handler(
        "finder/1.0/get_target_count",
        [&finder](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(finder.target_count()));
            return XrlError::okay();
        });

    router->finalize();
    return router;
}

}  // namespace xrp::ipc
