#include "ipc/common_xrl.hpp"

namespace xrp::ipc {

using xrl::XrlArgs;
using xrl::XrlError;

void bind_common_xrls(XrlDispatcher& d, const std::string& cls,
                      StatusProvider status) {
    if (d.has_method("common/0.1/get_status")) return;
    d.add_interface(*xrl::InterfaceSpec::parse(kCommonIdl));

    d.add_handler("common/0.1/get_target_name",
                  [cls](const XrlArgs&, XrlArgs& out) {
                      out.add("name", cls);
                      return XrlError::okay();
                  });
    d.add_handler("common/0.1/get_version", [](const XrlArgs&, XrlArgs& out) {
        out.add("version", std::string("xrp/0.1"));
        return XrlError::okay();
    });
    d.add_handler("common/0.1/get_status",
                  [status](const XrlArgs&, XrlArgs& out) {
                      uint32_t st = kProcessReady;
                      std::string reason = "READY";
                      if (status) status(st, reason);
                      out.add("status", st);
                      out.add("reason", reason);
                      return XrlError::okay();
                  });
}

}  // namespace xrp::ipc
