#include "ipc/call.hpp"

#include <cstdlib>

namespace xrp::ipc {

namespace {

ev::Duration env_ms(const char* name, ev::Duration fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    long ms = std::atol(v);
    if (ms <= 0) return fallback;
    return std::chrono::milliseconds(ms);
}

}  // namespace

const CallOptions& CallOptions::defaults() {
    static const CallOptions opts = [] {
        CallOptions o;
        o.deadline = env_ms("XRP_CALL_DEADLINE_MS", o.deadline);
        o.attempt_timeout =
            env_ms("XRP_CALL_ATTEMPT_TIMEOUT_MS", o.attempt_timeout);
        // Backoff must stay below the attempt timeout or retries under
        // chaos take longer than the faults they heal.
        if (o.retry.initial_backoff > o.attempt_timeout / 2)
            o.retry.initial_backoff = o.attempt_timeout / 2;
        return o;
    }();
    return opts;
}

}  // namespace xrp::ipc
