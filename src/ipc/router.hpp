// XrlRouter: the per-component IPC facade (what XORP calls by the same
// name). A component creates one router, declares its interfaces and
// handlers, enables the transports it wants to be reachable over, and
// finalizes — which registers everything with the Finder and makes the
// component addressable. Outbound, the router resolves generic XRLs
// through the Finder (with a client-side cache invalidated on Finder
// push), picks a protocol family, and sends.
//
// Plexus bundles the three singletons a "router process" shares: the
// event loop, the Finder, and the intra-process endpoint registry. One
// Plexus ~= one XORP router instance; tests build several in one address
// space to simulate multi-router topologies.
#ifndef XRP_IPC_ROUTER_HPP
#define XRP_IPC_ROUTER_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ev/eventloop.hpp"
#include "finder/finder.hpp"
#include "ipc/dispatcher.hpp"
#include "ipc/intra.hpp"
#include "ipc/tcp.hpp"
#include "ipc/udp.hpp"

namespace xrp::ipc {

struct Plexus {
    explicit Plexus(ev::Clock& clock)
        : owned_loop_(std::make_unique<ev::EventLoop>(clock)),
          loop(*owned_loop_) {}
    // Shares an external loop: several Plexuses (= several simulated
    // router hosts) can then run in one simulation on one virtual clock.
    explicit Plexus(ev::EventLoop& shared_loop) : loop(shared_loop) {}

    std::unique_ptr<ev::EventLoop> owned_loop_;
    ev::EventLoop& loop;
    finder::Finder finder;
    IntraProcessRegistry intra;
};

class XrlRouter {
public:
    // `cls` is the component class ("bgp", "rib", ...). With `sole`, a
    // second instance of the class is refused by the Finder.
    XrlRouter(Plexus& plexus, std::string cls, bool sole = false);
    ~XrlRouter();
    XrlRouter(const XrlRouter&) = delete;
    XrlRouter& operator=(const XrlRouter&) = delete;

    // ---- receiver side -------------------------------------------------
    void add_interface(xrl::InterfaceSpec spec) {
        dispatcher_.add_interface(std::move(spec));
    }
    void add_handler(const std::string& full_method, MethodHandler h) {
        dispatcher_.add_handler(full_method, std::move(h));
    }
    void add_async_handler(const std::string& full_method,
                           AsyncMethodHandler h) {
        dispatcher_.add_async_handler(full_method, std::move(h));
    }

    // Transports this component is reachable over. Intra-process is always
    // enabled; TCP/UDP listeners are created on demand.
    void enable_tcp();
    void enable_udp();

    // Registers target + methods with the Finder. Call after all handlers
    // are added; later-added handlers are registered incrementally.
    bool finalize();
    bool finalized() const { return finalized_; }

    const std::string& instance() const { return instance_; }
    Plexus& plexus() { return plexus_; }
    ev::EventLoop& loop() { return plexus_.loop; }

    // ---- sender side -----------------------------------------------------
    // Sends a generic XRL; `done` fires exactly once. Returns false (and
    // does not fire `done`) only on gross misuse (unresolved router).
    bool send(const xrl::Xrl& xrl, ResponseCallback done);

    // Fire-and-forget convenience: logs nothing, drops the reply. For
    // notifications where the caller has no failure handling anyway.
    void send_ignore(const xrl::Xrl& xrl) {
        send(xrl, [](const xrl::XrlError&, const xrl::XrlArgs&) {});
    }

    // Force every outbound call onto one family (benchmarks use this to
    // compare transports); empty string restores automatic choice.
    void set_preferred_family(std::string family) {
        preferred_family_ = std::move(family);
    }

    XrlDispatcher& dispatcher() { return dispatcher_; }

    size_t resolution_cache_size() const { return resolve_cache_.size(); }

    // Debug introspection for stall diagnosis.
    std::string debug_state() const;

private:
    struct Channel;  // type-erased sender

    const finder::Resolution* resolve(const xrl::Xrl& xrl,
                                      xrl::XrlError* err);
    void dispatch_via(const finder::Resolution& res, const xrl::XrlArgs& args,
                      ResponseCallback done);

    Plexus& plexus_;
    std::string cls_;
    std::string instance_;
    std::string secret_;  // §7 caller-authentication secret from the Finder
    bool sole_;
    bool finalized_ = false;
    XrlDispatcher dispatcher_;

    std::unique_ptr<TcpListener> tcp_listener_;
    std::unique_ptr<UdpListener> udp_listener_;

    std::map<std::string, std::unique_ptr<TcpChannel>> tcp_channels_;
    std::map<std::string, std::unique_ptr<UdpChannel>> udp_channels_;

    // target + full_method -> resolutions (preference-ordered).
    std::map<std::string, std::vector<finder::Resolution>> resolve_cache_;
    uint64_t invalidate_listener_id_ = 0;
    std::string preferred_family_;
};

}  // namespace xrp::ipc

#endif
