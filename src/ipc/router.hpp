// XrlRouter: the per-component IPC facade (what XORP calls by the same
// name). A component creates one router, declares its interfaces and
// handlers, enables the transports it wants to be reachable over, and
// finalizes — which registers everything with the Finder and makes the
// component addressable. Outbound, the router resolves generic XRLs
// through the Finder (with a client-side cache invalidated on Finder
// push), picks a protocol family, and sends.
//
// Plexus bundles the three singletons a "router process" shares: the
// event loop, the Finder, and the intra-process endpoint registry. One
// Plexus ~= one XORP router instance; tests build several in one address
// space to simulate multi-router topologies.
#ifndef XRP_IPC_ROUTER_HPP
#define XRP_IPC_ROUTER_HPP

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ev/eventloop.hpp"
#include "finder/finder.hpp"
#include "ipc/call.hpp"
#include "ipc/dispatcher.hpp"
#include "ipc/fault.hpp"
#include "ipc/intra.hpp"
#include "ipc/tcp.hpp"
#include "ipc/udp.hpp"
#include "ipc/xring.hpp"

namespace xrp::ipc {

class FinderClient;  // blocking remote-Finder RPC (finder_client.hpp)

struct Plexus {
    explicit Plexus(ev::Clock& clock)
        : owned_loop_(std::make_unique<ev::EventLoop>(clock)),
          loop(*owned_loop_) {
        init();
    }
    // Shares an external loop: several Plexuses (= several simulated
    // router hosts) can then run in one simulation on one virtual clock.
    explicit Plexus(ev::EventLoop& shared_loop) : loop(shared_loop) {
        init();
    }

    std::unique_ptr<ev::EventLoop> owned_loop_;
    ev::EventLoop& loop;
    finder::Finder finder;
    IntraProcessRegistry intra;
    // Cross-thread in-process family: components whose home loop runs on
    // its own thread register here and reach each other over SPSC rings.
    XringHub xring;
    // Chaos hook: every outbound XRL dispatch of every router in this
    // Plexus passes through the injector (inert until given a plan).
    FaultInjector faults;
    // Escape hatch for experiments: when false, call() degrades to the
    // legacy fire-once send with no timeout, retry, or failover — the
    // baseline the chaos tests compare the contract against.
    bool reliability_enabled = true;
    // Router identity ("r12") stamped on journal events emitted by this
    // Plexus's components; empty when the simulation has a single router.
    std::string node;
    // Remote-Finder mode: when set ("127.0.0.1:port" of the master
    // process's Finder face), this Plexus belongs to a CHILD PROCESS of a
    // multi-process router. Its local `finder` member stays empty; every
    // XrlRouter instead registers and resolves through a FinderClient
    // aimed here, and components are reachable over stcp/sudp only.
    std::string finder_address;

private:
    void init() {
        faults.bind_loop(&loop);
        faults.configure_from_env();
    }
};

class XrlRouter {
public:
    // `cls` is the component class ("bgp", "rib", ...). With `sole`, a
    // second instance of the class is refused by the Finder.
    XrlRouter(Plexus& plexus, std::string cls, bool sole = false);
    // Threaded variant: the component lives on `home` — its own event
    // loop, typically run by its own thread (rtrmgr::ComponentThread).
    // All call-contract timers run on the home loop, inproc (synchronous
    // direct dispatch) is NOT offered, and the component is reachable
    // over "xring" instead: same-process callers on other threads talk to
    // it through lock-free SPSC rings.
    XrlRouter(Plexus& plexus, ev::EventLoop& home, std::string cls,
              bool sole = false);
    ~XrlRouter();
    XrlRouter(const XrlRouter&) = delete;
    XrlRouter& operator=(const XrlRouter&) = delete;

    // ---- receiver side -------------------------------------------------
    void add_interface(xrl::InterfaceSpec spec) {
        dispatcher_.add_interface(std::move(spec));
    }
    void add_handler(const std::string& full_method, MethodHandler h) {
        dispatcher_.add_handler(full_method, std::move(h));
    }
    void add_async_handler(const std::string& full_method,
                           AsyncMethodHandler h) {
        dispatcher_.add_async_handler(full_method, std::move(h));
    }

    // Transports this component is reachable over. Intra-process is
    // enabled whenever the component shares the Plexus loop; TCP/UDP
    // listeners are created on demand. enable_xring() additionally offers
    // the SPSC-ring family (implied — and inproc dropped — when the
    // component has its own home loop; explicit for same-loop components
    // that want to be reachable from threaded peers or benchmarks).
    void enable_tcp();
    void enable_udp();
    void enable_xring() { xring_enabled_ = true; }

    // Registers target + methods with the Finder. Call after all handlers
    // are added; later-added handlers are registered incrementally.
    bool finalize();
    bool finalized() const { return finalized_; }

    const std::string& instance() const { return instance_; }
    Plexus& plexus() { return plexus_; }
    // True when this router registers/resolves through a remote master
    // Finder (plexus.finder_address set) instead of the local one.
    bool remote() const { return !plexus_.finder_address.empty(); }
    // The stcp listen address ("127.0.0.1:port"), empty unless
    // enable_tcp() succeeded. The Router Manager passes its Finder face's
    // address to child processes through this.
    std::string tcp_address() const;
    // The component's home loop: plexus.loop unless constructed with an
    // explicit one. Everything the router schedules runs here.
    ev::EventLoop& loop() { return home_loop_; }
    bool threaded() const { return &home_loop_ != &plexus_.loop; }

    // ---- sender side -----------------------------------------------------
    // The reliable call contract (see ipc/call.hpp): resolves, dispatches,
    // enforces the per-attempt timeout and overall deadline through the
    // event loop (uniformly across inproc/stcp/sudp), fails over across
    // preference-ordered resolutions, retries with backoff when the
    // options permit, and reports targets dead to the Finder when hard
    // transport failures exhaust the contract. `done` fires exactly once.
    // Returns false (and does not fire `done`) only on gross misuse.
    bool call(const xrl::Xrl& xrl, const CallOptions& opts,
              ResponseCallback done);

    // Compatibility wrapper: call() under CallOptions::defaults().
    bool send(const xrl::Xrl& xrl, ResponseCallback done) {
        return call(xrl, CallOptions::defaults(), done);
    }

    // One-way notification: the caller has no failure handling, but
    // failures are never silent — they are counted
    // (xrl_ignored_errors_total) and logged with the caller, target, and
    // error so dropped notifications show up in triage instead of
    // vanishing. Replaces the old send_ignore().
    //
    // One-way calls to the same target are serialized through an output
    // queue: at most one is on the wire at a time, the next starts when it
    // completes. Two reasons. First, a bulk stream (a full-table FIB
    // download is ~146k pushes) must not pile up inside a pipelined
    // channel faster than the receiver drains it — with minutes of queued
    // work behind it, every call would blow its per-attempt timer while
    // queued and the retries would amplify the very backlog that caused
    // them. Second, the queue keeps one-way streams FIFO per target even
    // across retries: an add can never overtake the delete ahead of it.
    // A call's deadline starts when it is dequeued, not when it is queued
    // (the queue is a send buffer, not part of the call).
    void call_oneway(const xrl::Xrl& xrl,
                     const CallOptions& opts = CallOptions::defaults());

    // Force every outbound call onto one family (benchmarks use this to
    // compare transports); empty string restores automatic choice.
    void set_preferred_family(std::string family) {
        preferred_family_ = std::move(family);
    }

    XrlDispatcher& dispatcher() { return dispatcher_; }

    size_t resolution_cache_size() const {
        std::lock_guard<std::mutex> lk(resolve_mu_);
        return resolve_cache_.size();
    }

    // Debug introspection for stall diagnosis.
    std::string debug_state() const;

private:
    struct CallState;  // one in-flight reliable call (defined in .cpp)

    // Returns the full preference-ordered resolution list, by value: the
    // cache behind it is shared with the Finder's invalidation listener
    // (which may run from another thread), so callers get a snapshot
    // instead of a pointer into a map another thread may mutate.
    std::optional<std::vector<finder::Resolution>> resolve(
        const xrl::Xrl& xrl, xrl::XrlError* err);
    void invalidate_cached(const xrl::Xrl& xrl);
    // finalize() when plexus.finder_address is set: register target and
    // methods with the master process's Finder over stcp.
    bool finalize_remote();

    // Call-contract state machine.
    void begin_cycle(const std::shared_ptr<CallState>& st);
    void start_attempt(const std::shared_ptr<CallState>& st);
    void on_response(const std::shared_ptr<CallState>& st, uint64_t gen,
                     const xrl::XrlError& err, const xrl::XrlArgs& args);
    void on_attempt_timeout(const std::shared_ptr<CallState>& st,
                            uint64_t gen);
    void handle_attempt_failure(const std::shared_ptr<CallState>& st,
                                const xrl::XrlError& err,
                                bool may_have_executed);
    void finish_call(const std::shared_ptr<CallState>& st,
                     const xrl::XrlError& err, const xrl::XrlArgs& args);
    ev::Duration backoff_for(const RetryPolicy& p, uint32_t cycle);
    uint64_t rnd();

    // Per-target one-way output queue (see call_oneway).
    struct OnewayQueue {
        std::deque<std::pair<xrl::Xrl, CallOptions>> q;
        bool in_flight = false;
        bool pumping = false;  // re-entrancy guard: inproc completes inline
    };
    void pump_oneway(const std::string& target);

    // Legacy fire-once path (reliability_enabled == false).
    bool send_unreliable(const xrl::Xrl& xrl, ResponseCallback done);

    // dispatch_via threads the send through the Plexus fault injector
    // (when active) before dispatch_raw performs the family dispatch.
    void dispatch_via(const std::string& target,
                      const finder::Resolution& res, const xrl::XrlArgs& args,
                      ResponseCallback done);
    void dispatch_raw(const finder::Resolution& res, const xrl::XrlArgs& args,
                      ResponseCallback done);

    Plexus& plexus_;
    // The loop the component lives on; == plexus_.loop unless the threaded
    // ctor was used. All timers, dispatches, and callbacks run here.
    ev::EventLoop& home_loop_;
    std::string cls_;
    std::string instance_;
    std::string secret_;  // §7 caller-authentication secret from the Finder
    bool sole_;
    bool finalized_ = false;
    bool xring_enabled_ = false;
    bool intra_registered_ = false;
    XrlDispatcher dispatcher_;

    std::unique_ptr<TcpListener> tcp_listener_;
    std::unique_ptr<UdpListener> udp_listener_;
    std::unique_ptr<XringPort> xring_port_;
    // Remote mode only: the blocking line to the master Finder. Used from
    // the home loop thread (registration at finalize, resolution-cache
    // misses, death reports, unregistration at destruction).
    std::unique_ptr<FinderClient> finder_client_;

    std::map<std::string, std::unique_ptr<TcpChannel>> tcp_channels_;
    std::map<std::string, std::unique_ptr<UdpChannel>> udp_channels_;
    std::map<std::string, std::unique_ptr<XringChannel>> xring_channels_;

    std::map<std::string, OnewayQueue> oneway_queues_;

    // target + full_method -> resolutions (preference-ordered). Guarded by
    // resolve_mu_: the Finder's invalidation push may arrive from the
    // registering component's thread, not ours. Never held across a Finder
    // call (the Finder has its own lock; fixed order avoids deadlock).
    mutable std::mutex resolve_mu_;
    std::map<std::string, std::vector<finder::Resolution>> resolve_cache_;
    uint64_t invalidate_listener_id_ = 0;
    std::string preferred_family_;
    // Backoff-jitter PRNG. Seeded deterministically per router so chaos
    // runs replay; calls are serialized by the single-threaded loop.
    uint64_t prng_ = 0;
};

}  // namespace xrp::ipc

#endif
