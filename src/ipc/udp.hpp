// UDP protocol family ("sudp"): one datagram per request, one per
// response, and — deliberately — *no pipelining*: the channel is
// stop-and-wait, exactly like XORP's first-prototype UDP family that the
// paper keeps around to illustrate what pipelining buys (Figure 9 shows
// it well below TCP even on the same host).
#ifndef XRP_IPC_UDP_HPP
#define XRP_IPC_UDP_HPP

#include <deque>
#include <string>

#include "ev/eventloop.hpp"
#include "ipc/dispatcher.hpp"
#include "ipc/sockets.hpp"
#include "ipc/wire.hpp"

namespace xrp::ipc {

class UdpListener {
public:
    UdpListener(ev::EventLoop& loop, XrlDispatcher& dispatcher);
    ~UdpListener();
    UdpListener(const UdpListener&) = delete;
    UdpListener& operator=(const UdpListener&) = delete;

    bool ok() const { return fd_.valid(); }
    const std::string& address() const { return address_; }

private:
    void on_readable();

    ev::EventLoop& loop_;
    XrlDispatcher& dispatcher_;
    Fd fd_;
    std::string address_;
};

class UdpChannel {
public:
    UdpChannel(ev::EventLoop& loop, const std::string& address,
               ev::Duration timeout = std::chrono::seconds(2));
    ~UdpChannel();
    UdpChannel(const UdpChannel&) = delete;
    UdpChannel& operator=(const UdpChannel&) = delete;

    // Stop-and-wait: requests queue locally; at most one is on the wire.
    void send(const std::string& keyed_method, const xrl::XrlArgs& args,
              ResponseCallback done);

    bool broken() const { return broken_; }

private:
    struct Pending {
        uint32_t seq;
        std::vector<uint8_t> datagram;
        ResponseCallback done;
        // send() call time: the latency histogram includes queue wait, so
        // it reflects what the caller experienced under stop-and-wait.
        ev::TimePoint t0{};
    };

    void pump();
    void on_readable();
    void on_timeout();

    ev::EventLoop& loop_;
    Fd fd_;
    ev::Duration timeout_;
    bool broken_ = false;
    bool in_flight_ = false;
    uint32_t next_seq_ = 1;
    std::deque<Pending> queue_;
    ev::Timer timeout_timer_;
};

}  // namespace xrp::ipc

#endif
