#include "ipc/sockets.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace xrp::ipc {

Fd& Fd::operator=(Fd&& o) noexcept {
    if (this != &o) {
        reset();
        fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
}

void Fd::reset(int fd) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

bool set_nonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) {
    int one = 1;
    return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) == 0;
}

std::optional<sockaddr_in> parse_inet_address(const std::string& address) {
    size_t colon = address.rfind(':');
    if (colon == std::string::npos) return std::nullopt;
    std::string host = address.substr(0, colon);
    int port = std::atoi(address.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return std::nullopt;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1)
        return std::nullopt;
    return sa;
}

std::string local_address_string(int fd) {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0)
        return {};
    char host[INET_ADDRSTRLEN];
    ::inet_ntop(AF_INET, &sa.sin_addr, host, sizeof host);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s:%u", host, ntohs(sa.sin_port));
    return buf;
}

namespace {

Fd make_bound_socket(int type) {
    Fd fd(::socket(AF_INET, type, 0));
    if (!fd.valid()) return {};
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;  // ephemeral
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0)
        return {};
    if (!set_nonblocking(fd.get())) return {};
    return fd;
}

}  // namespace

Fd make_tcp_listener() {
    Fd fd = make_bound_socket(SOCK_STREAM);
    if (!fd.valid()) return {};
    if (::listen(fd.get(), 64) != 0) return {};
    return fd;
}

Fd make_udp_socket() { return make_bound_socket(SOCK_DGRAM); }

}  // namespace xrp::ipc
