// The policy VM: executes a compiled Program against one route.
//
// Execution is a pure function of (program, route): no clocks, no
// randomness, no external state — the property FilterStage's consistency
// argument rests on. Type errors at runtime (comparing a prefix with a
// bool, storing text into metric) reject the route and record a
// diagnostic rather than crashing the router; a misconfigured policy must
// never take the process down (§1's robustness bar).
#ifndef XRP_POLICY_VM_HPP
#define XRP_POLICY_VM_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "policy/program.hpp"
#include "stage/route.hpp"

namespace xrp::policy {

enum class Verdict { kAccept, kReject };

// Protocol-specific attribute extension: BGP binds localpref/med/aspath
// attributes stored in Route::attrs. Return nullopt / false for unknown
// names; the VM then reports a bad-attribute diagnostic.
template <class A>
struct AttributeBinding {
    std::function<std::optional<Value>(const stage::Route<A>&,
                                       const std::string& name)>
        load;
    std::function<bool(stage::Route<A>&, const std::string& name,
                       const Value& v)>
        store;
};

template <class A>
class Vm {
public:
    explicit Vm(AttributeBinding<A> binding = {})
        : binding_(std::move(binding)) {}

    // Runs the program; may modify `route` (stores, tag-add). On any type
    // or attribute error the route is rejected and last_error() is set.
    Verdict run(const Program& prog, stage::Route<A>& route) {
        error_.clear();
        for (const Term& term : prog.terms) {
            stack_.clear();
            std::optional<Verdict> v = run_term(term, route);
            if (!error_.empty()) return Verdict::kReject;
            if (v) return *v;
        }
        return prog.default_accept ? Verdict::kAccept : Verdict::kReject;
    }

    const std::string& last_error() const { return error_; }

private:
    using RouteT = stage::Route<A>;

    std::optional<Verdict> run_term(const Term& term, RouteT& route) {
        for (const Instr& in : term.instrs) {
            switch (in.op) {
                case OpCode::kPush:
                    stack_.push_back(in.operand);
                    break;
                case OpCode::kLoad: {
                    auto v = load(route, in.name);
                    if (!v) {
                        error_ = term.name + ": unknown attribute '" +
                                 in.name + "'";
                        return std::nullopt;
                    }
                    stack_.push_back(std::move(*v));
                    break;
                }
                case OpCode::kStore: {
                    auto v = pop();
                    if (!v) return stack_underflow(term);
                    if (!store(route, in.name, *v)) {
                        error_ = term.name + ": cannot store attribute '" +
                                 in.name + "'";
                        return std::nullopt;
                    }
                    break;
                }
                case OpCode::kEq:
                case OpCode::kNe: {
                    auto b = pop();
                    auto a = pop();
                    if (!a || !b) return stack_underflow(term);
                    bool eq = *a == *b;
                    stack_.push_back(in.op == OpCode::kEq ? eq : !eq);
                    break;
                }
                case OpCode::kLt:
                case OpCode::kLe:
                case OpCode::kGt:
                case OpCode::kGe: {
                    auto b = pop();
                    auto a = pop();
                    if (!a || !b) return stack_underflow(term);
                    auto na = std::get_if<uint32_t>(&*a);
                    auto nb = std::get_if<uint32_t>(&*b);
                    if (na == nullptr || nb == nullptr) {
                        error_ = term.name + ": ordering needs u32 operands";
                        return std::nullopt;
                    }
                    bool r = in.op == OpCode::kLt   ? *na < *nb
                             : in.op == OpCode::kLe ? *na <= *nb
                             : in.op == OpCode::kGt ? *na > *nb
                                                    : *na >= *nb;
                    stack_.push_back(r);
                    break;
                }
                case OpCode::kAnd:
                case OpCode::kOr: {
                    auto b = pop_bool(term);
                    auto a = pop_bool(term);
                    if (!a || !b) return std::nullopt;
                    stack_.push_back(in.op == OpCode::kAnd ? (*a && *b)
                                                           : (*a || *b));
                    break;
                }
                case OpCode::kNot: {
                    auto a = pop_bool(term);
                    if (!a) return std::nullopt;
                    stack_.push_back(!*a);
                    break;
                }
                case OpCode::kContains: {
                    auto b = pop();
                    auto a = pop();
                    if (!a || !b) return stack_underflow(term);
                    auto r = contains(*a, *b);
                    if (!r) {
                        error_ = term.name + ": bad operands for contains";
                        return std::nullopt;
                    }
                    stack_.push_back(*r);
                    break;
                }
                case OpCode::kTagAdd: {
                    auto v = pop();
                    if (!v) return stack_underflow(term);
                    auto s = std::get_if<std::string>(&*v);
                    if (s == nullptr) {
                        error_ = term.name + ": tag-add needs txt";
                        return std::nullopt;
                    }
                    route.tags.push_back(*s);
                    break;
                }
                case OpCode::kTagPresent: {
                    auto v = pop();
                    if (!v) return stack_underflow(term);
                    auto s = std::get_if<std::string>(&*v);
                    if (s == nullptr) {
                        error_ = term.name + ": tag-present needs txt";
                        return std::nullopt;
                    }
                    bool present = false;
                    for (const auto& t : route.tags)
                        if (t == *s) present = true;
                    stack_.push_back(present);
                    break;
                }
                case OpCode::kAccept:
                    return Verdict::kAccept;
                case OpCode::kReject:
                    return Verdict::kReject;
                case OpCode::kOnFalseNext:
                case OpCode::kOnFalseAccept:
                case OpCode::kOnFalseReject: {
                    auto a = pop_bool(term);
                    if (!a) return std::nullopt;
                    if (!*a) {
                        if (in.op == OpCode::kOnFalseNext) return term_done();
                        return in.op == OpCode::kOnFalseAccept
                                   ? Verdict::kAccept
                                   : Verdict::kReject;
                    }
                    break;
                }
            }
        }
        return std::nullopt;  // fall through to next term
    }

    // ---- helpers -----------------------------------------------------
    std::optional<Verdict> term_done() { return std::nullopt; }

    std::optional<Verdict> stack_underflow(const Term& term) {
        error_ = term.name + ": stack underflow";
        return std::nullopt;
    }

    std::optional<Value> pop() {
        if (stack_.empty()) return std::nullopt;
        Value v = std::move(stack_.back());
        stack_.pop_back();
        return v;
    }

    std::optional<bool> pop_bool(const Term& term) {
        auto v = pop();
        if (!v) {
            error_ = term.name + ": stack underflow";
            return std::nullopt;
        }
        auto b = std::get_if<bool>(&*v);
        if (b == nullptr) {
            error_ = term.name + ": expected bool";
            return std::nullopt;
        }
        return *b;
    }

    static std::optional<bool> contains(const Value& a, const Value& b) {
        if (auto an = std::get_if<net::IPv4Net>(&a)) {
            if (auto bn = std::get_if<net::IPv4Net>(&b))
                return an->contains(*bn);
            if (auto ba = std::get_if<net::IPv4>(&b))
                return an->contains(*ba);
        }
        if (auto an6 = std::get_if<net::IPv6Net>(&a)) {
            if (auto bn6 = std::get_if<net::IPv6Net>(&b))
                return an6->contains(*bn6);
            if (auto ba6 = std::get_if<net::IPv6>(&b))
                return an6->contains(*ba6);
        }
        return std::nullopt;
    }

    std::optional<Value> load(const RouteT& route, const std::string& name) {
        if (name == "prefix") return Value(route.net);
        if (name == "prefix-len") return Value(route.net.prefix_len());
        if (name == "nexthop") return Value(route.nexthop);
        if (name == "metric") return Value(route.metric);
        if (name == "admin-distance") return Value(route.admin_distance);
        if (name == "igp-metric") return Value(route.igp_metric);
        if (name == "protocol") return Value(route.protocol);
        if (binding_.load) return binding_.load(route, name);
        return std::nullopt;
    }

    bool store(RouteT& route, const std::string& name, const Value& v) {
        if (name == "metric") {
            auto n = std::get_if<uint32_t>(&v);
            if (n == nullptr) return false;
            route.metric = *n;
            return true;
        }
        if (name == "admin-distance") {
            auto n = std::get_if<uint32_t>(&v);
            if (n == nullptr) return false;
            route.admin_distance = *n;
            return true;
        }
        if (name == "nexthop") {
            auto a = std::get_if<A>(&v);
            if (a == nullptr) return false;
            route.nexthop = *a;
            return true;
        }
        if (binding_.store) return binding_.store(route, name, v);
        return false;
    }

    AttributeBinding<A> binding_;
    std::vector<Value> stack_;
    std::string error_;
};

// Adapts a compiled program into a FilterStage filter. The program is
// shared (policies are swapped atomically by replacing the filter).
template <class A>
std::function<bool(stage::Route<A>&)> make_filter(
    std::shared_ptr<const Program> prog, AttributeBinding<A> binding = {}) {
    return [prog = std::move(prog),
            binding = std::move(binding)](stage::Route<A>& r) {
        Vm<A> vm(binding);
        return vm.run(*prog, r) == Verdict::kAccept;
    };
}

}  // namespace xrp::policy

#endif
