// The policy stack language (§8.3).
//
// "Our policy framework consists of three new BGP stages and two new RIB
// stages, each of which supports a common simple stack language for
// operating on routes." This is that language. A policy is a list of
// *terms*; each term is straight-line stack code over a route's
// attributes ending (optionally) in accept/reject; a route falls through
// to the next term unless a term decides. Programs are pure functions of
// the route, which is what lets them run inside FilterStages without
// breaking stage consistency.
//
// Textual syntax (whitespace-insensitive, '#' comments):
//
//   term block-martians {
//       push ipv4net 10.0.0.0/8;
//       load prefix;
//       contains;            # 10/8 contains prefix?
//       onfalse next;
//       reject;
//   }
//   term boost-short {
//       load metric; push u32 5; le; onfalse next;
//       push u32 200; store localpref;
//       accept;
//   }
//
// Generic attributes every route supports: prefix, prefix-len, nexthop,
// metric, admin-distance, igp-metric, protocol. Protocols may bind more
// (BGP adds localpref, med, aspath-len, origin, community membership) via
// an AttributeBinding passed to the VM.
#ifndef XRP_POLICY_PROGRAM_HPP
#define XRP_POLICY_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/ipnet.hpp"

namespace xrp::policy {

using Value = std::variant<uint32_t, bool, std::string, net::IPv4,
                           net::IPv4Net, net::IPv6, net::IPv6Net>;

std::string value_str(const Value& v);

enum class OpCode : uint8_t {
    kPush,     // push literal operand
    kLoad,     // push attribute named by `name`
    kStore,    // pop value into attribute named by `name`
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kContains,     // [a b] -> bool: a contains b (nets/addresses)
    kTagAdd,       // pop txt, append to the route's tag list
    kTagPresent,   // pop txt, push bool
    kAccept,       // terminate policy: accept
    kReject,       // terminate policy: reject
    kOnFalseNext,  // pop bool; false -> skip to next term
    kOnFalseAccept,
    kOnFalseReject,
};

struct Instr {
    OpCode op;
    Value operand{};   // kPush only
    std::string name;  // kLoad / kStore only
};

struct Term {
    std::string name;
    std::vector<Instr> instrs;
};

struct Program {
    std::vector<Term> terms;
    // Verdict when no term decides.
    bool default_accept = true;
};

}  // namespace xrp::policy

#endif
