// Compiles policy text into a Program. See program.hpp for the grammar.
#ifndef XRP_POLICY_COMPILER_HPP
#define XRP_POLICY_COMPILER_HPP

#include <optional>
#include <string>
#include <string_view>

#include "policy/program.hpp"

namespace xrp::policy {

// Returns nullopt and fills `error` on syntax problems.
std::optional<Program> compile(std::string_view text,
                               std::string* error = nullptr);

}  // namespace xrp::policy

#endif
