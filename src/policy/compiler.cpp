#include "policy/compiler.hpp"

#include <cctype>
#include <charconv>
#include <map>

namespace xrp::policy {

std::string value_str(const Value& v) {
    struct Visitor {
        std::string operator()(uint32_t x) const { return std::to_string(x); }
        std::string operator()(bool x) const { return x ? "true" : "false"; }
        std::string operator()(const std::string& x) const { return x; }
        std::string operator()(net::IPv4 x) const { return x.str(); }
        std::string operator()(net::IPv4Net x) const { return x.str(); }
        std::string operator()(const net::IPv6& x) const { return x.str(); }
        std::string operator()(const net::IPv6Net& x) const { return x.str(); }
    };
    return std::visit(Visitor{}, v);
}

namespace {

struct Tokenizer {
    std::string_view text;
    size_t pos = 0;

    void skip() {
        while (pos < text.size()) {
            if (std::isspace(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            } else if (text[pos] == '#') {
                while (pos < text.size() && text[pos] != '\n') ++pos;
            } else {
                break;
            }
        }
    }

    std::string next() {
        skip();
        if (pos >= text.size()) return {};
        char c = text[pos];
        if (c == '{' || c == '}' || c == ';') {
            ++pos;
            return std::string(1, c);
        }
        size_t start = pos;
        while (pos < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[pos])) &&
               text[pos] != '{' && text[pos] != '}' && text[pos] != ';' &&
               text[pos] != '#')
            ++pos;
        return std::string(text.substr(start, pos - start));
    }

    std::string peek() {
        size_t saved = pos;
        std::string t = next();
        pos = saved;
        return t;
    }
};

const std::map<std::string, OpCode, std::less<>> kSimpleOps = {
    {"eq", OpCode::kEq},        {"ne", OpCode::kNe},
    {"lt", OpCode::kLt},        {"le", OpCode::kLe},
    {"gt", OpCode::kGt},        {"ge", OpCode::kGe},
    {"and", OpCode::kAnd},      {"or", OpCode::kOr},
    {"not", OpCode::kNot},      {"contains", OpCode::kContains},
    {"tag-add", OpCode::kTagAdd}, {"tag-present", OpCode::kTagPresent},
    {"accept", OpCode::kAccept}, {"reject", OpCode::kReject},
};

std::optional<Value> parse_literal(const std::string& type,
                                   const std::string& text) {
    if (type == "u32") {
        uint32_t v{};
        auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
        if (ec != std::errc{} || p != text.data() + text.size())
            return std::nullopt;
        return Value(v);
    }
    if (type == "bool") {
        if (text == "true") return Value(true);
        if (text == "false") return Value(false);
        return std::nullopt;
    }
    if (type == "txt") return Value(text);
    if (type == "ipv4") {
        auto a = net::IPv4::parse(text);
        if (!a) return std::nullopt;
        return Value(*a);
    }
    if (type == "ipv4net") {
        auto a = net::IPv4Net::parse(text);
        if (!a) return std::nullopt;
        return Value(*a);
    }
    if (type == "ipv6") {
        auto a = net::IPv6::parse(text);
        if (!a) return std::nullopt;
        return Value(*a);
    }
    if (type == "ipv6net") {
        auto a = net::IPv6Net::parse(text);
        if (!a) return std::nullopt;
        return Value(*a);
    }
    return std::nullopt;
}

bool fail(std::string* error, std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
}

bool compile_term(Tokenizer& tok, Term& term, std::string* error) {
    if (tok.next() != "{") return fail(error, "expected '{' after term name");
    while (true) {
        std::string word = tok.next();
        if (word == "}") return true;
        if (word.empty()) return fail(error, "unexpected end of policy");

        Instr instr;
        if (auto it = kSimpleOps.find(word); it != kSimpleOps.end()) {
            instr.op = it->second;
        } else if (word == "push") {
            std::string type = tok.next();
            std::string lit = tok.next();
            auto v = parse_literal(type, lit);
            if (!v)
                return fail(error, "bad literal: push " + type + " " + lit);
            instr.op = OpCode::kPush;
            instr.operand = std::move(*v);
        } else if (word == "load" || word == "store") {
            instr.op = word == "load" ? OpCode::kLoad : OpCode::kStore;
            instr.name = tok.next();
            if (instr.name.empty() || instr.name == ";")
                return fail(error, word + " requires an attribute name");
        } else if (word == "onfalse") {
            std::string action = tok.next();
            if (action == "next") instr.op = OpCode::kOnFalseNext;
            else if (action == "accept") instr.op = OpCode::kOnFalseAccept;
            else if (action == "reject") instr.op = OpCode::kOnFalseReject;
            else return fail(error, "onfalse requires next|accept|reject");
        } else {
            return fail(error, "unknown instruction: " + word);
        }
        term.instrs.push_back(std::move(instr));
        if (tok.peek() == ";") tok.next();
    }
}

}  // namespace

std::optional<Program> compile(std::string_view text, std::string* error) {
    Tokenizer tok{text};
    Program prog;
    while (true) {
        std::string word = tok.next();
        if (word.empty()) break;
        if (word == "default") {
            std::string v = tok.next();
            if (v == "accept") prog.default_accept = true;
            else if (v == "reject") prog.default_accept = false;
            else {
                if (error) *error = "default requires accept|reject";
                return std::nullopt;
            }
            if (tok.peek() == ";") tok.next();
            continue;
        }
        if (word != "term") {
            if (error) *error = "expected 'term', got '" + word + "'";
            return std::nullopt;
        }
        Term term;
        term.name = tok.next();
        if (term.name.empty() || term.name == "{") {
            if (error) *error = "term requires a name";
            return std::nullopt;
        }
        if (!compile_term(tok, term, error)) return std::nullopt;
        prog.terms.push_back(std::move(term));
    }
    return prog;
}

}  // namespace xrp::policy
