// Structured event journal: the observability spine of the scenario
// harness. Components append typed, monotonic-timestamped records —
// route install/withdraw, FIB write, LSA flood, supervisor
// death/restart/breaker, injected fault, XRL retry/failover — and the
// convergence analyzer replays them to reconstruct what the network was
// doing in between the moments a test happened to look.
//
// Same discipline as the metrics registry: process-global singleton,
// disabled by default, and the disabled hot path is one relaxed atomic
// load plus a branch (`journal_enabled()`), so instrumented code costs
// nothing when nobody is watching. Callers pass their own loop's
// timestamp — in a multi-router simulation every component runs on one
// VirtualClock loop, so journal order and timestamp order agree.
//
// Threading: record()/events()/clear() are safe from any thread — every
// ring mutation happens under one mutex, and seq numbers stay globally
// ordered under concurrent producers (the 4-thread hammer test pins
// this). When journal order must be isolated per unit of work instead
// of interleaved — scenario_runner running matrix cells on a thread
// pool — a thread installs its own Journal with set_thread_override();
// instrumented code reaches the journal through Journal::current(), so
// everything that thread's cell does lands in the cell's journal while
// other threads keep writing to their own (or the global one).
#ifndef XRP_TELEMETRY_JOURNAL_HPP
#define XRP_TELEMETRY_JOURNAL_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ev/clock.hpp"

namespace xrp::telemetry {

enum class JournalKind : uint8_t {
    kRouteInstall,   // RIB accepted a route          subject=prefix detail=proto:nexthop value=metric
    kRouteWithdraw,  // RIB removed a route           subject=prefix detail=proto
    kFibAdd,         // FEA wrote a forwarding entry  subject=prefix detail=nexthop:ifname
    kFibDelete,      // FEA removed an entry          subject=prefix
    kLsaFlood,       // OSPF (re)flooded an LSA       subject=lsa key detail=ifname value=seqno
    kDeath,          // supervisor observed a death   subject=component detail=reason
    kRestart,        // supervisor restarted it       subject=component value=attempt
    kBreakerTrip,    // restart breaker gave up       subject=component value=attempts
    kFaultInjected,  // injector perturbed a send     subject=target detail=action
    kCallRetry,      // reliable call re-sent         subject=target detail=method value=attempt
    kCallFailover,   // reliable call switched ep     subject=target detail=method
    kProcessOutput,  // child process wrote a line    subject=component detail=line
    kProcessExit,    // child process was reaped      subject=component detail=status value=pid
};

// Stable machine-readable name ("route_install", "fib_add", ...) used by
// the JSON-lines export and matched by the analyzer. Never renumber or
// rename: committed scenario output references these strings.
const char* journal_kind_name(JournalKind k);

struct JournalEvent {
    uint64_t seq = 0;     // global append order, never reused
    ev::TimePoint t{};    // caller's loop time at the hook site
    JournalKind kind = JournalKind::kRouteInstall;
    std::string node;       // router identity ("r12"), empty if unbound
    std::string component;  // "rib", "fea", "ospf", "supervisor", ...
    std::string subject;    // what it happened to (prefix, LSA, target)
    std::string detail;     // free-form qualifier (nexthop, reason, action)
    int64_t value = 0;      // numeric payload (metric, attempt, seqno)

    // One compact JSON object, no trailing newline.
    std::string to_json() const;
};

namespace detail {
// Count of currently-enabled Journal instances. The hot-path guard at
// hook sites is "is ANY journal on?" — one relaxed load, no mutex. It
// can be true when only some other thread's journal is recording; the
// per-instance flag inside record() settles it, so a pool cell turning
// its private journal off can never silence a concurrent cell's.
inline std::atomic<int> g_journal_enabled_count{0};
}  // namespace detail

inline bool journal_enabled() {
    return detail::g_journal_enabled_count.load(std::memory_order_relaxed) > 0;
}

class Journal {
public:
    static constexpr size_t kDefaultCapacity = 1 << 16;

    static Journal& global();

    // The journal instrumented code should append to: the calling
    // thread's override when one is installed, else the global journal.
    static Journal& current();
    // Installs `j` as this thread's journal (nullptr restores the
    // global). Returns the previous override so scopes can nest.
    static Journal* set_thread_override(Journal* j);

    // Public constructor: scenario cells build private journals and
    // install them per worker thread via set_thread_override().
    Journal() { ring_.reserve(kDefaultCapacity); }
    // Balances the enabled-journal count if an owner forgets to disable.
    ~Journal() { set_enabled(false); }
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    // Per-instance: enabling/disabling this journal never affects what
    // another thread's journal records. Idempotent.
    void set_enabled(bool on);
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    // Resize the bounded ring; keeps the newest events that fit.
    void set_capacity(size_t cap);
    size_t capacity() const;

    // Append one event. No-op while disabled (hooks additionally guard
    // with journal_enabled() so argument construction is skipped too).
    void record(ev::TimePoint t, JournalKind kind, std::string_view node,
                std::string_view component, std::string_view subject,
                std::string_view detail = {}, int64_t value = 0);

    // Snapshot of retained events in append order (oldest first).
    std::vector<JournalEvent> events() const;
    size_t event_count() const;

    // Events evicted by the bounded ring since the last clear().
    uint64_t dropped() const;

    void clear();

    // JSON-lines export: one event per line, oldest first.
    std::string to_jsonl() const;

private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<JournalEvent> ring_;  // circular once full
    size_t cap_ = kDefaultCapacity;
    size_t head_ = 0;    // index of oldest event once wrapped
    bool wrapped_ = false;
    uint64_t next_seq_ = 1;
    uint64_t dropped_ = 0;
};

}  // namespace xrp::telemetry

#endif
