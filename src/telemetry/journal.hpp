// Structured event journal: the observability spine of the scenario
// harness. Components append typed, monotonic-timestamped records —
// route install/withdraw, FIB write, LSA flood, supervisor
// death/restart/breaker, injected fault, XRL retry/failover — and the
// convergence analyzer replays them to reconstruct what the network was
// doing in between the moments a test happened to look.
//
// Same discipline as the metrics registry: process-global singleton,
// disabled by default, and the disabled hot path is one relaxed atomic
// load plus a branch (`journal_enabled()`), so instrumented code costs
// nothing when nobody is watching. Callers pass their own loop's
// timestamp — in a multi-router simulation every component runs on one
// VirtualClock loop, so journal order and timestamp order agree.
#ifndef XRP_TELEMETRY_JOURNAL_HPP
#define XRP_TELEMETRY_JOURNAL_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ev/clock.hpp"

namespace xrp::telemetry {

enum class JournalKind : uint8_t {
    kRouteInstall,   // RIB accepted a route          subject=prefix detail=proto:nexthop value=metric
    kRouteWithdraw,  // RIB removed a route           subject=prefix detail=proto
    kFibAdd,         // FEA wrote a forwarding entry  subject=prefix detail=nexthop:ifname
    kFibDelete,      // FEA removed an entry          subject=prefix
    kLsaFlood,       // OSPF (re)flooded an LSA       subject=lsa key detail=ifname value=seqno
    kDeath,          // supervisor observed a death   subject=component detail=reason
    kRestart,        // supervisor restarted it       subject=component value=attempt
    kBreakerTrip,    // restart breaker gave up       subject=component value=attempts
    kFaultInjected,  // injector perturbed a send     subject=target detail=action
    kCallRetry,      // reliable call re-sent         subject=target detail=method value=attempt
    kCallFailover,   // reliable call switched ep     subject=target detail=method
};

// Stable machine-readable name ("route_install", "fib_add", ...) used by
// the JSON-lines export and matched by the analyzer. Never renumber or
// rename: committed scenario output references these strings.
const char* journal_kind_name(JournalKind k);

struct JournalEvent {
    uint64_t seq = 0;     // global append order, never reused
    ev::TimePoint t{};    // caller's loop time at the hook site
    JournalKind kind = JournalKind::kRouteInstall;
    std::string node;       // router identity ("r12"), empty if unbound
    std::string component;  // "rib", "fea", "ospf", "supervisor", ...
    std::string subject;    // what it happened to (prefix, LSA, target)
    std::string detail;     // free-form qualifier (nexthop, reason, action)
    int64_t value = 0;      // numeric payload (metric, attempt, seqno)

    // One compact JSON object, no trailing newline.
    std::string to_json() const;
};

namespace detail {
// Inline mirror of Journal::global()'s enabled flag so the hot-path
// check never takes the singleton's mutex (same trick as g_tracing).
inline std::atomic<bool> g_journal_enabled{false};
}  // namespace detail

inline bool journal_enabled() {
    return detail::g_journal_enabled.load(std::memory_order_relaxed);
}

class Journal {
public:
    static constexpr size_t kDefaultCapacity = 1 << 16;

    static Journal& global();

    void set_enabled(bool on);
    bool enabled() const { return journal_enabled(); }

    // Resize the bounded ring; keeps the newest events that fit.
    void set_capacity(size_t cap);
    size_t capacity() const;

    // Append one event. No-op while disabled (hooks additionally guard
    // with journal_enabled() so argument construction is skipped too).
    void record(ev::TimePoint t, JournalKind kind, std::string_view node,
                std::string_view component, std::string_view subject,
                std::string_view detail = {}, int64_t value = 0);

    // Snapshot of retained events in append order (oldest first).
    std::vector<JournalEvent> events() const;
    size_t event_count() const;

    // Events evicted by the bounded ring since the last clear().
    uint64_t dropped() const;

    void clear();

    // JSON-lines export: one event per line, oldest first.
    std::string to_jsonl() const;

private:
    Journal() { ring_.reserve(kDefaultCapacity); }

    mutable std::mutex mu_;
    std::vector<JournalEvent> ring_;  // circular once full
    size_t cap_ = kDefaultCapacity;
    size_t head_ = 0;    // index of oldest event once wrapped
    bool wrapped_ = false;
    uint64_t next_seq_ = 1;
    uint64_t dropped_ = 0;
};

}  // namespace xrp::telemetry

#endif
