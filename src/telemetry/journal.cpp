#include "telemetry/journal.hpp"

#include "telemetry/json.hpp"

namespace xrp::telemetry {

const char* journal_kind_name(JournalKind k) {
    switch (k) {
        case JournalKind::kRouteInstall: return "route_install";
        case JournalKind::kRouteWithdraw: return "route_withdraw";
        case JournalKind::kFibAdd: return "fib_add";
        case JournalKind::kFibDelete: return "fib_delete";
        case JournalKind::kLsaFlood: return "lsa_flood";
        case JournalKind::kDeath: return "death";
        case JournalKind::kRestart: return "restart";
        case JournalKind::kBreakerTrip: return "breaker_trip";
        case JournalKind::kFaultInjected: return "fault_injected";
        case JournalKind::kCallRetry: return "call_retry";
        case JournalKind::kCallFailover: return "call_failover";
        case JournalKind::kProcessOutput: return "process_output";
        case JournalKind::kProcessExit: return "process_exit";
    }
    return "unknown";
}

std::string JournalEvent::to_json() const {
    std::string out;
    out += "{\"seq\":";
    out += std::to_string(seq);
    out += ",\"t_ns\":";
    out += std::to_string(t.time_since_epoch().count());
    out += ",\"kind\":\"";
    out += journal_kind_name(kind);
    out += "\",\"node\":";
    json::escape_string(out, node);
    out += ",\"component\":";
    json::escape_string(out, component);
    out += ",\"subject\":";
    json::escape_string(out, subject);
    if (!detail.empty()) {
        out += ",\"detail\":";
        json::escape_string(out, detail);
    }
    if (value != 0) {
        out += ",\"value\":";
        out += std::to_string(value);
    }
    out += '}';
    return out;
}

Journal& Journal::global() {
    static Journal j;
    return j;
}

namespace {
thread_local Journal* g_journal_override = nullptr;
}  // namespace

Journal& Journal::current() {
    return g_journal_override != nullptr ? *g_journal_override : global();
}

Journal* Journal::set_thread_override(Journal* j) {
    Journal* prev = g_journal_override;
    g_journal_override = j;
    return prev;
}

void Journal::set_enabled(bool on) {
    const bool was = enabled_.exchange(on, std::memory_order_relaxed);
    if (was == on) return;
    detail::g_journal_enabled_count.fetch_add(on ? 1 : -1,
                                              std::memory_order_relaxed);
}

void Journal::set_capacity(size_t cap) {
    if (cap == 0) cap = 1;
    std::lock_guard<std::mutex> lk(mu_);
    // Linearize into append order, then keep the newest `cap`.
    std::vector<JournalEvent> linear;
    linear.reserve(ring_.size());
    if (wrapped_) {
        for (size_t i = head_; i < ring_.size(); ++i)
            linear.push_back(std::move(ring_[i]));
        for (size_t i = 0; i < head_; ++i) linear.push_back(std::move(ring_[i]));
    } else {
        linear = std::move(ring_);
    }
    if (linear.size() > cap) {
        dropped_ += linear.size() - cap;
        linear.erase(linear.begin(),
                     linear.begin() + static_cast<ptrdiff_t>(linear.size() - cap));
    }
    cap_ = cap;
    ring_ = std::move(linear);
    head_ = 0;
    wrapped_ = false;
}

size_t Journal::capacity() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cap_;
}

void Journal::record(ev::TimePoint t, JournalKind kind, std::string_view node,
                     std::string_view component, std::string_view subject,
                     std::string_view detail, int64_t value) {
    if (!enabled()) return;
    JournalEvent ev;
    ev.t = t;
    ev.kind = kind;
    ev.node.assign(node);
    ev.component.assign(component);
    ev.subject.assign(subject);
    ev.detail.assign(detail);
    ev.value = value;

    std::lock_guard<std::mutex> lk(mu_);
    ev.seq = next_seq_++;
    if (!wrapped_ && ring_.size() < cap_) {
        ring_.push_back(std::move(ev));
        return;
    }
    // Ring is full: overwrite the oldest slot.
    if (!wrapped_) wrapped_ = true;
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
}

std::vector<JournalEvent> Journal::events() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<JournalEvent> out;
    out.reserve(ring_.size());
    if (wrapped_) {
        for (size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
        for (size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
    } else {
        out = ring_;
    }
    return out;
}

size_t Journal::event_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.size();
}

uint64_t Journal::dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
}

void Journal::clear() {
    std::lock_guard<std::mutex> lk(mu_);
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    dropped_ = 0;
    // seq keeps counting: "same event, new number" is never ambiguous
    // across clears within one process.
}

std::string Journal::to_jsonl() const {
    std::vector<JournalEvent> snap = events();
    std::string out;
    for (const JournalEvent& e : snap) {
        out += e.to_json();
        out += '\n';
    }
    return out;
}

}  // namespace xrp::telemetry
