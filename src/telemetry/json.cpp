#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

namespace xrp::json {

Value& Value::set(const std::string& key, Value v) {
    type_ = Type::kObject;
    for (auto& [k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return existing;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return obj_.back().second;
}

const Value* Value::find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_)
        if (k == key) return &v;
    return nullptr;
}

void escape_string(std::string& out, std::string_view s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

namespace {

void write_number(std::string& out, double d) {
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    // Integers (the common case: counts, nanoseconds) print exactly.
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", d);
    out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
    switch (type_) {
        case Type::kNull: out += "null"; return;
        case Type::kBool: out += bool_ ? "true" : "false"; return;
        case Type::kNumber: write_number(out, num_); return;
        case Type::kString: escape_string(out, str_); return;
        case Type::kArray: {
            if (arr_.empty()) {
                out += "[]";
                return;
            }
            // Arrays of scalars stay on one line even when pretty-printing
            // (CDF point lists would otherwise explode vertically).
            bool scalar_only = true;
            for (const Value& v : arr_)
                if (v.is_array() || v.is_object()) scalar_only = false;
            out += '[';
            bool first = true;
            for (const Value& v : arr_) {
                if (!first) out += indent > 0 && scalar_only ? ", " : ",";
                if (!scalar_only) newline_indent(out, indent, depth + 1);
                v.write(out, scalar_only ? 0 : indent, depth + 1);
                first = false;
            }
            if (!scalar_only) newline_indent(out, indent, depth);
            out += ']';
            return;
        }
        case Type::kObject: {
            if (obj_.empty()) {
                out += "{}";
                return;
            }
            out += '{';
            bool first = true;
            for (const auto& [k, v] : obj_) {
                if (!first) out += ',';
                newline_indent(out, indent, depth + 1);
                escape_string(out, k);
                out += indent > 0 ? ": " : ":";
                v.write(out, indent, depth + 1);
                first = false;
            }
            newline_indent(out, indent, depth);
            out += '}';
            return;
        }
    }
}

std::string Value::dump() const {
    std::string out;
    write(out, 0, 0);
    return out;
}

std::string Value::dump_pretty() const {
    std::string out;
    write(out, 2, 0);
    out += '\n';
    return out;
}

// ---- parser ---------------------------------------------------------------

namespace {

struct Parser {
    std::string_view s;
    size_t i = 0;

    void skip_ws() {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                                s[i] == '\r'))
            ++i;
    }
    bool eat(char c) {
        skip_ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    bool literal(std::string_view lit) {
        if (s.substr(i, lit.size()) != lit) return false;
        i += lit.size();
        return true;
    }

    bool parse_string(std::string& out) {
        if (!eat('"')) return false;
        while (i < s.size()) {
            char c = s[i++];
            if (c == '"') return true;
            if (c == '\\') {
                if (i >= s.size()) return false;
                char e = s[i++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (i + 4 > s.size()) return false;
                        unsigned code = 0;
                        for (int k = 0; k < 4; ++k) {
                            char h = s[i++];
                            code <<= 4;
                            if (h >= '0' && h <= '9')
                                code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f')
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F')
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            else
                                return false;
                        }
                        // UTF-8 encode the BMP code point (journal strings
                        // only ever escape control chars, but be correct).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xc0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        } else {
                            out += static_cast<char>(0xe0 | (code >> 12));
                            out += static_cast<char>(0x80 |
                                                     ((code >> 6) & 0x3f));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        }
                        break;
                    }
                    default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;  // unterminated
    }

    bool parse_value(Value& out, int depth) {
        if (depth > 64) return false;
        skip_ws();
        if (i >= s.size()) return false;
        char c = s[i];
        if (c == 'n') {
            if (!literal("null")) return false;
            out = Value();
            return true;
        }
        if (c == 't') {
            if (!literal("true")) return false;
            out = Value(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false")) return false;
            out = Value(false);
            return true;
        }
        if (c == '"') {
            std::string str;
            if (!parse_string(str)) return false;
            out = Value(std::move(str));
            return true;
        }
        if (c == '[') {
            ++i;
            out = Value::array();
            skip_ws();
            if (eat(']')) return true;
            while (true) {
                Value v;
                if (!parse_value(v, depth + 1)) return false;
                out.push_back(std::move(v));
                if (eat(']')) return true;
                if (!eat(',')) return false;
            }
        }
        if (c == '{') {
            ++i;
            out = Value::object();
            skip_ws();
            if (eat('}')) return true;
            while (true) {
                skip_ws();
                std::string key;
                if (!parse_string(key)) return false;
                if (!eat(':')) return false;
                Value v;
                if (!parse_value(v, depth + 1)) return false;
                out.set(key, std::move(v));
                if (eat('}')) return true;
                if (!eat(',')) return false;
            }
        }
        // number
        size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
        while (i < s.size() &&
               ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' || s[i] == 'e' ||
                s[i] == 'E' || s[i] == '-' || s[i] == '+'))
            ++i;
        if (i == start) return false;
        std::string num(s.substr(start, i - start));
        char* end = nullptr;
        double d = std::strtod(num.c_str(), &end);
        if (end == nullptr || *end != '\0') return false;
        out = Value(d);
        return true;
    }
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
    Parser p{text};
    Value v;
    if (!p.parse_value(v, 0)) return std::nullopt;
    p.skip_ws();
    if (p.i != text.size()) return std::nullopt;
    return v;
}

}  // namespace xrp::json
