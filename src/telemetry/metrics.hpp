// Metrics registry (the §8.2 philosophy, generalized): profiling must be
// near-free when off, and observation must never perturb the observed
// router. Three instrument kinds:
//
//   Counter   — monotonic event count (calls, errors, bytes);
//   Gauge     — instantaneous level (routes in flight, queue depth);
//   Histogram — fixed power-of-two latency buckets with p50/p95/p99
//               extraction, no allocation on observe().
//
// Handles are stable pointers obtained once at setup (registration takes a
// mutex; nothing hot does). The hot path is a pointer check plus a relaxed
// atomic op: components are single-threaded per event loop, so atomics are
// only there to make cross-loop aggregation (several Plexuses in one test
// process) well-defined, never contended.
//
// Every instrument checks the registry-wide enabled flag through a cached
// pointer, so a disabled registry costs exactly one predictable branch per
// site — the property bench_telemetry_overhead proves.
#ifndef XRP_TELEMETRY_METRICS_HPP
#define XRP_TELEMETRY_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ev/clock.hpp"

namespace xrp::telemetry {

namespace detail {
// Mirror of Registry::global().enabled(): lets the free enabled() below
// answer with one relaxed load, no singleton init guard.
inline std::atomic<bool> g_global_enabled{true};
}  // namespace detail

class Registry;

class Counter {
public:
    void inc(uint64_t n = 1) {
        if (!enabled_->load(std::memory_order_relaxed)) return;
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    friend class Registry;
    explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
    std::atomic<uint64_t> v_{0};
    const std::atomic<bool>* enabled_;
};

class Gauge {
public:
    void set(int64_t v) {
        if (!enabled_->load(std::memory_order_relaxed)) return;
        v_.store(v, std::memory_order_relaxed);
    }
    void add(int64_t n = 1) {
        if (!enabled_->load(std::memory_order_relaxed)) return;
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    void sub(int64_t n = 1) { add(-n); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    friend class Registry;
    explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
    std::atomic<int64_t> v_{0};
    const std::atomic<bool>* enabled_;
};

// Fixed log2 buckets over nanoseconds: bucket i counts observations in
// [2^i, 2^(i+1)) ns; bucket 0 includes everything below 1ns (and negative
// durations from clock quirks), the last bucket everything >= ~4.3s.
class Histogram {
public:
    static constexpr size_t kBuckets = 32;

    void observe(ev::Duration d) {
        if (!enabled_->load(std::memory_order_relaxed)) return;
        observe_always(d);
    }
    // For sites that already guarded on Registry::enabled() (they had to
    // read a clock before observing; no point re-checking).
    void observe_always(ev::Duration d) {
        int64_t ns = d.count();
        size_t b = 0;
        if (ns > 0) {
            b = static_cast<size_t>(64 - __builtin_clzll(
                                             static_cast<uint64_t>(ns))) -
                1;
            if (b >= kBuckets) b = kBuckets - 1;
            sum_ns_.fetch_add(static_cast<uint64_t>(ns),
                              std::memory_order_relaxed);
        }
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
    uint64_t bucket(size_t i) const {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    // Upper-bound estimate of the q-quantile in nanoseconds (q in [0,1]):
    // the upper edge of the bucket where the cumulative count crosses q.
    uint64_t quantile_ns(double q) const;
    uint64_t p50_ns() const { return quantile_ns(0.50); }
    uint64_t p95_ns() const { return quantile_ns(0.95); }
    uint64_t p99_ns() const { return quantile_ns(0.99); }

    // Full latency CDF: one point per occupied bucket, cumulative counts,
    // le_ns = the bucket's inclusive upper edge (2^(i+1)-1). Empty buckets
    // are skipped — the cumulative count is unchanged there, so the CDF
    // loses nothing and BENCH_*.json stays compact.
    struct CdfPoint {
        uint64_t le_ns = 0;
        uint64_t cum = 0;
    };
    std::vector<CdfPoint> cdf() const;

private:
    friend class Registry;
    explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_ns_{0};
    const std::atomic<bool>* enabled_;
};

// Renders `name` + label pairs as the canonical exposition key:
//   name{k1="v1",k2="v2"}
std::string metric_key(const std::string& name,
                       const std::vector<std::pair<std::string, std::string>>&
                           labels);

class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    // The process-wide default registry every instrumentation site uses.
    static Registry& global();

    // Get-or-create; the returned pointer is stable for the registry's
    // lifetime. `key` is the full exposition key (use metric_key() for
    // labelled metrics). Kind mismatches on an existing key return the
    // existing instrument of the requested kind or, if the key belongs to
    // another kind, a distinct instrument under key+"!<kind>" — misuse is
    // survivable, never fatal.
    Counter* counter(const std::string& key);
    Gauge* gauge(const std::string& key);
    Histogram* histogram(const std::string& key);

    void set_enabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
        if (this == &global())
            detail::g_global_enabled.store(on, std::memory_order_relaxed);
    }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    std::vector<std::string> names() const;

    // One metric formatted as exposition lines ("" if unknown).
    std::string expose_one(const std::string& key) const;
    // Full Prometheus-style text exposition:
    //   name{label="v"} value
    // histograms additionally expose _count, _sum_ns, _p50_ns, _p95_ns,
    // _p99_ns lines, then cumulative _bucket{le="<ns>"} lines (occupied
    // buckets only) ending with _bucket{le="+Inf"} — the full CDF.
    std::string expose() const;

    // Drops every registered instrument (invalidates handles — tests only,
    // between fixtures that re-create their instrumented objects).
    void reset();
    // Zeroes values but keeps handles valid.
    void zero();

private:
    struct Entry {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    static void expose_entry(const std::string& key, const Entry& e,
                             std::string& out);

    mutable std::mutex mu_;  // registration + exposition only, never hot
    std::map<std::string, Entry> metrics_;
    std::atomic<bool> enabled_{true};
};

inline bool enabled() {
    return detail::g_global_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) { Registry::global().set_enabled(on); }

}  // namespace xrp::telemetry

#endif
