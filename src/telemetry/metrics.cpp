#include "telemetry/metrics.hpp"

#include <cstdio>

namespace xrp::telemetry {

uint64_t Histogram::quantile_ns(double q) const {
    uint64_t total = count();
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
    if (target == 0) target = 1;
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        cum += bucket(i);
        if (cum >= target) {
            // Upper edge of bucket i: 2^(i+1) - 1 ns (bucket 0 holds <=1ns).
            if (i >= 63) return UINT64_MAX;
            return (uint64_t{1} << (i + 1)) - 1;
        }
    }
    return UINT64_MAX;
}

std::vector<Histogram::CdfPoint> Histogram::cdf() const {
    std::vector<CdfPoint> out;
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        uint64_t b = bucket(i);
        if (b == 0) continue;
        cum += b;
        out.push_back({(uint64_t{1} << (i + 1)) - 1, cum});
    }
    return out;
}

std::string metric_key(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
    if (labels.empty()) return name;
    std::string out = name + "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += "=\"";
        // Escape the exposition format's specials.
        for (char c : v) {
            if (c == '\\' || c == '"') out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        out += '"';
    }
    out += '}';
    return out;
}

Registry& Registry::global() {
    static Registry* r = new Registry();  // immortal: handles never dangle
    return *r;
}

Counter* Registry::counter(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = &metrics_[key];
    if (!e->counter && (e->gauge || e->histogram))
        e = &metrics_[key + "!counter"];  // kind collision: keep both alive
    if (!e->counter) e->counter.reset(new Counter(&enabled_));
    return e->counter.get();
}

Gauge* Registry::gauge(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = &metrics_[key];
    if (!e->gauge && (e->counter || e->histogram))
        e = &metrics_[key + "!gauge"];
    if (!e->gauge) e->gauge.reset(new Gauge(&enabled_));
    return e->gauge.get();
}

Histogram* Registry::histogram(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = &metrics_[key];
    if (!e->histogram && (e->counter || e->gauge))
        e = &metrics_[key + "!histogram"];
    if (!e->histogram) e->histogram.reset(new Histogram(&enabled_));
    return e->histogram.get();
}

std::vector<std::string> Registry::names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto& [key, e] : metrics_) out.push_back(key);
    return out;
}

void Registry::expose_entry(const std::string& key, const Entry& e,
                            std::string& out) {
    char buf[160];
    // Labelled keys are "name{...}"; suffixes go on the name part.
    size_t brace = key.find('{');
    std::string name = key.substr(0, brace);
    std::string labels =
        brace == std::string::npos ? "" : key.substr(brace);
    if (e.counter) {
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(e.counter->value()));
        out += key;
        out += buf;
    }
    if (e.gauge) {
        std::snprintf(buf, sizeof buf, " %lld\n",
                      static_cast<long long>(e.gauge->value()));
        out += key;
        out += buf;
    }
    if (e.histogram) {
        const Histogram& h = *e.histogram;
        auto line = [&](const char* suffix, uint64_t v) {
            out += name;
            out += suffix;
            out += labels;
            std::snprintf(buf, sizeof buf, " %llu\n",
                          static_cast<unsigned long long>(v));
            out += buf;
        };
        line("_count", h.count());
        line("_sum_ns", h.sum_ns());
        line("_p50_ns", h.p50_ns());
        line("_p95_ns", h.p95_ns());
        line("_p99_ns", h.p99_ns());
        // Cumulative bucket counts (the CDF), appended after the summary
        // lines so consumers keyed on "starts with _count" keep working.
        // The le label merges into any existing label set.
        auto bucket_line = [&](const char* le, uint64_t v) {
            out += name;
            out += "_bucket";
            if (labels.empty()) {
                out += "{le=\"";
                out += le;
                out += "\"}";
            } else {
                out.append(labels, 0, labels.size() - 1);
                out += ",le=\"";
                out += le;
                out += "\"}";
            }
            std::snprintf(buf, sizeof buf, " %llu\n",
                          static_cast<unsigned long long>(v));
            out += buf;
        };
        for (const Histogram::CdfPoint& p : h.cdf()) {
            char le[24];
            std::snprintf(le, sizeof le, "%llu",
                          static_cast<unsigned long long>(p.le_ns));
            bucket_line(le, p.cum);
        }
        if (h.count() > 0) bucket_line("+Inf", h.count());
    }
}

std::string Registry::expose_one(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(key);
    if (it == metrics_.end()) return {};
    std::string out;
    expose_entry(key, it->second, out);
    return out;
}

std::string Registry::expose() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [key, e] : metrics_) expose_entry(key, e, out);
    return out;
}

void Registry::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.clear();
}

void Registry::zero() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, e] : metrics_) {
        if (e.counter) e.counter->v_.store(0, std::memory_order_relaxed);
        if (e.gauge) e.gauge->v_.store(0, std::memory_order_relaxed);
        if (e.histogram) {
            for (auto& b : e.histogram->buckets_)
                b.store(0, std::memory_order_relaxed);
            e.histogram->count_.store(0, std::memory_order_relaxed);
            e.histogram->sum_ns_.store(0, std::memory_order_relaxed);
        }
    }
}

}  // namespace xrp::telemetry
