// XRL call tracing: the paper's Figures 10–12 follow one route's journey
// through eight profiling points across three processes. This generalizes
// that: a trace id plus hop count rides along with every XRL request (an
// optional trailer in the binary wire format), so any causally-linked
// chain of calls — BGP → RIB → FEA for a route add — can be reassembled
// afterwards as one trace with per-hop timestamps, whatever mixture of
// protocol families the hops used.
//
// Mechanics: a thread_local "current context" holds the trace the code is
// executing under. XrlRouter::send starts a new trace when none is active
// (and tracing is enabled); each transport embeds {id, hop+1} in the
// request; each receiver scopes the carried context around its dispatch,
// so nested sends inherit the id and deepen the hop count. Event loops are
// single-threaded, so thread_local is exactly "this component's stack".
//
// When tracing is disabled (the default), the only cost at every site is
// one relaxed atomic load (tracing_enabled()).
#ifndef XRP_TELEMETRY_TRACE_HPP
#define XRP_TELEMETRY_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ev/clock.hpp"

namespace xrp::telemetry {

namespace detail {
// Mirror of Tracer::global().enabled(). Hot paths gate on this single
// relaxed load instead of paying the singleton's init guard plus the
// thread-local context read on every call.
inline std::atomic<bool> g_tracing{false};
}  // namespace detail

inline bool tracing_enabled() {
    return detail::g_tracing.load(std::memory_order_relaxed);
}

struct TraceContext {
    uint64_t trace_id = 0;  // 0 = not tracing
    uint32_t hop = 0;
    bool valid() const { return trace_id != 0; }
    TraceContext next_hop() const { return {trace_id, hop + 1}; }
};

struct TraceEvent {
    uint64_t trace_id = 0;
    uint32_t hop = 0;
    ev::TimePoint t{};
    std::string point;   // "send" | "dispatch"
    std::string detail;  // e.g. "stcp rib/1.0/add_route"
};

class Tracer {
public:
    Tracer() = default;
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    static Tracer& global();

    // ---- current context (per-thread = per-event-loop) -----------------
    static TraceContext current() { return current_; }

    // RAII: installs `ctx` as current for the receiver-side dispatch (or a
    // nested send chain), restoring the previous context on destruction.
    class Scope {
    public:
        explicit Scope(TraceContext ctx) : saved_(current_) {
            current_ = ctx;
        }
        ~Scope() { current_ = saved_; }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        TraceContext saved_;
    };

    // ---- control --------------------------------------------------------
    void set_enabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
        if (this == &global())
            detail::g_tracing.store(on, std::memory_order_relaxed);
    }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    // Allocates a fresh root context (hop 0). Only meaningful while
    // enabled; callers guard on enabled() first.
    TraceContext begin_trace() {
        return {next_id_.fetch_add(1, std::memory_order_relaxed), 0};
    }

    // ---- recording ------------------------------------------------------
    // Stores an event in the bounded ring; no-op when disabled or when the
    // context is invalid.
    void record(const TraceContext& ctx, ev::TimePoint t, std::string point,
                std::string detail);

    // Ring capacity; shrinking drops the oldest events.
    void set_capacity(size_t cap);
    size_t capacity() const { return capacity_; }

    // ---- extraction -----------------------------------------------------
    // Events in arrival order (oldest first).
    std::vector<TraceEvent> events() const;
    // Events of one trace, in arrival order.
    std::vector<TraceEvent> events_for(uint64_t trace_id) const;
    size_t event_count() const;
    uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }
    void clear();

    // Text dump, one line per event:
    //   trace=<id> hop=<n> t=<ns> <point> <detail>
    std::string format() const;

    // Machine-readable dump: one JSON object per line, same event order —
    //   {"trace":<id>,"hop":<n>,"t_ns":<ns>,"point":"...","detail":"..."}
    // What the scenario runner and the route-journey assertions consume.
    std::string format_jsonl() const;

private:
    static thread_local TraceContext current_;

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> next_id_{1};
    std::atomic<uint64_t> dropped_{0};

    mutable std::mutex mu_;  // ring ops; uncontended in single-loop use
    std::vector<TraceEvent> ring_;
    size_t head_ = 0;  // index of oldest when full
    size_t capacity_ = 65536;
};

}  // namespace xrp::telemetry

#endif
