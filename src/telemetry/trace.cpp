#include "telemetry/trace.hpp"

#include <cstdio>

#include "telemetry/json.hpp"

namespace xrp::telemetry {

thread_local TraceContext Tracer::current_{};

Tracer& Tracer::global() {
    static Tracer* t = new Tracer();  // immortal, like Registry::global()
    return *t;
}

void Tracer::record(const TraceContext& ctx, ev::TimePoint t,
                    std::string point, std::string detail) {
    if (!ctx.valid() || !enabled()) return;
    TraceEvent ev;
    ev.trace_id = ctx.trace_id;
    ev.hop = ctx.hop;
    ev.t = t;
    ev.point = std::move(point);
    ev.detail = std::move(detail);
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(ev));
    } else if (capacity_ > 0) {
        ring_[head_] = std::move(ev);
        head_ = (head_ + 1) % capacity_;
        dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

void Tracer::set_capacity(size_t cap) {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-linearize (oldest first), then trim from the front.
    std::vector<TraceEvent> linear;
    linear.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        linear.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
    if (linear.size() > cap)
        linear.erase(linear.begin(),
                     linear.begin() +
                         static_cast<ptrdiff_t>(linear.size() - cap));
    ring_ = std::move(linear);
    head_ = 0;
    capacity_ = cap;
}

std::vector<TraceEvent> Tracer::events() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::vector<TraceEvent> Tracer::events_for(uint64_t trace_id) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events())
        if (e.trace_id == trace_id) out.push_back(e);
    return out;
}

size_t Tracer::event_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    head_ = 0;
    dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::format() const {
    std::string out;
    char buf[96];
    for (const TraceEvent& e : events()) {
        std::snprintf(buf, sizeof buf, "trace=%llu hop=%u t=%lld ",
                      static_cast<unsigned long long>(e.trace_id), e.hop,
                      static_cast<long long>(e.t.time_since_epoch().count()));
        out += buf;
        out += e.point;
        out += ' ';
        out += e.detail;
        out += '\n';
    }
    return out;
}

std::string Tracer::format_jsonl() const {
    std::string out;
    char buf[96];
    for (const TraceEvent& e : events()) {
        std::snprintf(buf, sizeof buf,
                      "{\"trace\":%llu,\"hop\":%u,\"t_ns\":%lld,\"point\":",
                      static_cast<unsigned long long>(e.trace_id), e.hop,
                      static_cast<long long>(e.t.time_since_epoch().count()));
        out += buf;
        json::escape_string(out, e.point);
        out += ",\"detail\":";
        json::escape_string(out, e.detail);
        out += "}\n";
    }
    return out;
}

}  // namespace xrp::telemetry
