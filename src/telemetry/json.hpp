// Minimal JSON value, writer, and parser — the one serialization the
// observability layer speaks. Three consumers share it: the event
// journal's JSON-lines export, the bench reporter (BENCH_*.json, the
// machine-readable perf trajectory), and the schema validator that CI
// runs over every emitted bench file. Deliberately small: no SAX, no
// streaming, no number-type zoo (numbers are doubles, which covers every
// counter and latency this repo emits); objects preserve insertion order
// so emitted files diff cleanly across runs and PRs.
#ifndef XRP_TELEMETRY_JSON_HPP
#define XRP_TELEMETRY_JSON_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xrp::json {

class Value {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() = default;
    Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
    Value(bool b) : type_(Type::kBool), bool_(b) {}
    Value(double d) : type_(Type::kNumber), num_(d) {}
    Value(int i) : type_(Type::kNumber), num_(i) {}
    Value(int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
    Value(uint64_t u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
    Value(const char* s) : type_(Type::kString), str_(s) {}
    Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Value array() {
        Value v;
        v.type_ = Type::kArray;
        return v;
    }
    static Value object() {
        Value v;
        v.type_ = Type::kObject;
        return v;
    }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    bool as_bool() const { return bool_; }
    double as_number() const { return num_; }
    const std::string& as_string() const { return str_; }

    // ---- arrays --------------------------------------------------------
    void push_back(Value v) {
        type_ = Type::kArray;
        arr_.push_back(std::move(v));
    }
    const std::vector<Value>& items() const { return arr_; }
    size_t size() const {
        return type_ == Type::kObject ? obj_.size() : arr_.size();
    }

    // ---- objects (insertion-ordered) -----------------------------------
    // Sets (or replaces) a member; returns a reference to the stored value.
    Value& set(const std::string& key, Value v);
    // Member lookup; nullptr when absent or not an object.
    const Value* find(const std::string& key) const;
    const std::vector<std::pair<std::string, Value>>& members() const {
        return obj_;
    }

    // Convenience typed getters on objects.
    std::optional<double> get_number(const std::string& key) const {
        const Value* v = find(key);
        if (v == nullptr || !v->is_number()) return std::nullopt;
        return v->as_number();
    }
    std::optional<std::string> get_string(const std::string& key) const {
        const Value* v = find(key);
        if (v == nullptr || !v->is_string()) return std::nullopt;
        return v->as_string();
    }

    // ---- serialization ------------------------------------------------
    // Compact single-line JSON.
    std::string dump() const;
    // Pretty-printed with 2-space indentation (the format the committed
    // BENCH_*.json trajectory files use, so cross-PR diffs stay readable).
    std::string dump_pretty() const;

    // Strict parse of one JSON document (trailing whitespace allowed).
    // nullopt on any syntax error.
    static std::optional<Value> parse(std::string_view text);

private:
    void write(std::string& out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

// Appends `s` to `out` as a quoted JSON string with escapes — shared by
// Value::dump and the journal's hand-rolled JSON-lines fast path.
void escape_string(std::string& out, std::string_view s);

}  // namespace xrp::json

#endif
