// The Finder (§6.2): broker for all XRL communication.
//
// Components register a *component class* ("bgp"), a unique *instance*
// name, their methods, and the protocol families each method is reachable
// over. Callers resolve generic XRLs ("finder://bgp/...") into resolved
// XRLs that pin a family, an address, and a keyed method name. The Finder
// also provides the component-lifetime notification service (birth/death
// events per class) and pushes cache invalidations to clients when a
// registration disappears.
//
// Access control (§7): each registered target may carry an allow-list of
// (caller, method-prefix) pairs; resolution requests name the caller, and
// only permitted XRLs resolve. By default everything local is permitted,
// matching the paper's current-state description.
#ifndef XRP_FINDER_FINDER_HPP
#define XRP_FINDER_FINDER_HPP

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "xrl/error.hpp"
#include "xrl/method_name.hpp"
#include "xrl/xrl.hpp"

namespace xrp::finder {

// One way to reach one method: a protocol family plus its address.
// Families used by the IPC layer: "inproc" (address = instance name),
// "stcp" / "sudp" (address = "127.0.0.1:port").
struct Resolution {
    std::string family;
    std::string address;
    std::string keyed_method;  // "iface/1.0/method#<key>"
};

enum class LifetimeEvent { kBirth, kDeath };

class Finder {
public:
    using LifetimeCallback =
        std::function<void(LifetimeEvent, const std::string& cls,
                           const std::string& instance)>;
    using InvalidateCallback = std::function<void(const std::string& cls)>;

    Finder() = default;
    Finder(const Finder&) = delete;
    Finder& operator=(const Finder&) = delete;

    // ---- registration --------------------------------------------------
    // Registers a target instance of `cls`. If `sole` and another live
    // instance of the class exists, registration fails. Returns the
    // instance name actually assigned (cls, or cls-N for later instances).
    std::optional<std::string> register_target(const std::string& cls,
                                               bool sole);

    // ---- per-caller secrets (§7 "the Router Manager will pass a unique
    // secret to each process. The process will then use this secret when
    // it resolves an XRL with the Finder.") -------------------------------
    // Each registered instance has a secret, handed back to its owner.
    const std::string& instance_secret(const std::string& instance) const;
    // When enabled, resolve() calls must present the caller's own secret;
    // a caller cannot impersonate another component to sneak past ACLs.
    void set_require_caller_secrets(bool require) {
        std::lock_guard<std::recursive_mutex> lk(mu_);
        require_secrets_ = require;
    }

    // Declares a method on a registered instance, reachable over the given
    // families (family -> address). Returns the generated method key.
    std::string register_method(const std::string& instance,
                                const xrl::MethodName& method,
                                const std::map<std::string, std::string>&
                                    family_addresses);
    // Stringly convenience: parses "iface/version/method"; malformed
    // names register nothing and return an empty key.
    std::string register_method(const std::string& instance,
                                const std::string& full_method,
                                const std::map<std::string, std::string>&
                                    family_addresses);

    void unregister_target(const std::string& instance);

    bool target_exists(const std::string& cls) const;

    // ---- liveness -------------------------------------------------------
    // A caller that exhausted the reliable call contract against an
    // instance reports it dead: death watchers fire, a target-down
    // invalidation is pushed to every resolution cache, and the instance
    // stops resolving (typed kTargetDead) until a fresh registration of
    // the class replaces it. Reporting an unknown instance is a no-op.
    void report_dead(const std::string& instance_or_cls);
    // False only for a still-registered instance that was marked dead.
    bool is_alive(const std::string& instance) const;

    // ---- resolution ----------------------------------------------------
    // Resolves target class (or instance) + full method into the available
    // transports, ordered by preference (inproc first, then stcp, sudp).
    // `caller` is the requesting instance, checked against ACLs.
    std::optional<std::vector<Resolution>> resolve(
        const std::string& target, const std::string& full_method,
        const std::string& caller = {}, xrl::XrlError* error = nullptr,
        const std::string& caller_secret = {});

    // ---- lifetime notification ------------------------------------------
    // Watch births/deaths of instances of `cls` ("*" watches every class).
    // Returns a watch id usable with unwatch().
    uint64_t watch(const std::string& cls, LifetimeCallback cb);
    void unwatch(uint64_t id);

    // ---- client caches ---------------------------------------------------
    // Clients that cache resolutions register to hear invalidations.
    uint64_t add_invalidate_listener(InvalidateCallback cb);
    void remove_invalidate_listener(uint64_t id);

    // ---- access control (§7 future-work design, implemented) -----------
    // Restrict `target_cls` so only `caller_cls` may resolve methods whose
    // full name starts with `method_prefix`. Once any rule exists for a
    // target class, everything not matching a rule is denied.
    void allow(const std::string& target_cls, const std::string& caller_cls,
               const std::string& method_prefix = {});

    size_t target_count() const {
        std::lock_guard<std::recursive_mutex> lk(mu_);
        return instances_.size();
    }

private:
    struct MethodInfo {
        std::string key;
        std::map<std::string, std::string> family_addresses;
    };
    struct Instance {
        std::string cls;
        std::string name;
        bool sole = false;
        bool down = false;  // marked dead by report_dead()
        std::string secret;  // per-instance caller-authentication secret
        std::map<std::string, MethodInfo> methods;  // full_method -> info
    };
    struct AclRule {
        std::string caller_cls;
        std::string method_prefix;
    };

    bool acl_permits(const std::string& target_cls, const std::string& caller,
                     const std::string& full_method) const;
    void notify(LifetimeEvent ev, const Instance& inst);

    // One lock over the whole broker: registration, resolution, and the
    // notification fan-outs may arrive from any component thread.
    // Recursive because lifetime/invalidate callbacks run under it and
    // routinely call back in (a death watch re-registering a replacement,
    // an invalidation listener resolving afresh). Callbacks that take
    // their own locks must never be entered while holding those locks in
    // reverse order — the XrlRouter keeps its resolve-cache mutex strictly
    // inside or outside Finder calls for exactly this reason.
    mutable std::recursive_mutex mu_;
    std::map<std::string, Instance> instances_;          // by instance name
    std::multimap<std::string, std::string> by_class_;   // cls -> instance
    std::map<uint64_t, std::pair<std::string, LifetimeCallback>> watches_;
    std::map<uint64_t, InvalidateCallback> invalidate_listeners_;
    std::multimap<std::string, AclRule> acl_;  // target_cls -> rule
    uint64_t next_id_ = 1;
    std::map<std::string, int> class_counters_;
    bool require_secrets_ = false;
};

}  // namespace xrp::finder

#endif
