#include "finder/finder.hpp"

#include <algorithm>

#include "finder/key.hpp"

namespace xrp::finder {

namespace {

// Preference order for transports: cheapest first. Same-loop direct
// dispatch beats the cross-thread ring, which beats anything that
// touches a socket.
int family_rank(std::string_view family) {
    if (family == "inproc") return 0;
    if (family == "xring") return 1;
    if (family == "stcp") return 2;
    if (family == "sudp") return 3;
    return 4;
}

}  // namespace

std::optional<std::string> Finder::register_target(const std::string& cls,
                                                   bool sole) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    {
        // Only live instances block joiners: a sole instance that was
        // marked dead must not prevent its replacement from registering.
        auto range = by_class_.equal_range(cls);
        for (auto it = range.first; it != range.second; ++it) {
            const Instance& other = instances_.at(it->second);
            if (other.down) continue;
            if (sole || other.sole) return std::nullopt;
        }
    }
    // First instance of a class gets the bare class name, so that small
    // setups can address components by class without ceremony.
    int n = class_counters_[cls]++;
    std::string name = n == 0 ? cls : cls + "-" + std::to_string(n);
    while (instances_.count(name) != 0) {
        n = class_counters_[cls]++;
        name = cls + "-" + std::to_string(n);
    }
    Instance inst;
    inst.cls = cls;
    inst.name = name;
    inst.sole = sole;
    inst.secret = generate_method_key();  // reuse the 16-byte random key
    auto [it, inserted] = instances_.emplace(name, std::move(inst));
    by_class_.emplace(cls, name);
    notify(LifetimeEvent::kBirth, it->second);
    return name;
}

std::string Finder::register_method(
    const std::string& instance, const xrl::MethodName& method,
    const std::map<std::string, std::string>& family_addresses) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    auto it = instances_.find(instance);
    if (it == instances_.end()) return {};
    MethodInfo info;
    info.key = generate_method_key();
    info.family_addresses = family_addresses;
    std::string key = info.key;
    it->second.methods[method.full()] = std::move(info);
    return key;
}

std::string Finder::register_method(
    const std::string& instance, const std::string& full_method,
    const std::map<std::string, std::string>& family_addresses) {
    auto method = xrl::MethodName::parse(full_method);
    if (!method) return {};
    return register_method(instance, *method, family_addresses);
}

void Finder::unregister_target(const std::string& instance) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    auto it = instances_.find(instance);
    if (it == instances_.end()) return;
    Instance inst = std::move(it->second);
    instances_.erase(it);
    auto range = by_class_.equal_range(inst.cls);
    for (auto bit = range.first; bit != range.second; ++bit) {
        if (bit->second == instance) {
            by_class_.erase(bit);
            break;
        }
    }
    notify(LifetimeEvent::kDeath, inst);
    // Resolutions naming this class may now be stale everywhere.
    for (const auto& [id, cb] : invalidate_listeners_) cb(inst.cls);
}

bool Finder::target_exists(const std::string& cls) const {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    auto range = by_class_.equal_range(cls);
    for (auto it = range.first; it != range.second; ++it)
        if (!instances_.at(it->second).down) return true;
    return false;
}

void Finder::report_dead(const std::string& instance_or_cls) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    // Accept an instance name or a class (which marks its instances).
    std::vector<std::string> names;
    if (instances_.count(instance_or_cls) != 0) {
        names.push_back(instance_or_cls);
    } else {
        auto range = by_class_.equal_range(instance_or_cls);
        for (auto it = range.first; it != range.second; ++it)
            names.push_back(it->second);
    }
    bool any = false;
    for (const std::string& name : names) {
        Instance& inst = instances_.at(name);
        if (inst.down) continue;
        inst.down = true;
        any = true;
        notify(LifetimeEvent::kDeath, inst);
    }
    if (!any) return;
    // Target-down push: every resolution cache naming this class is stale.
    const std::string cls = names.empty()
                                ? instance_or_cls
                                : instances_.at(names.front()).cls;
    auto listeners = invalidate_listeners_;  // callbacks may mutate the map
    for (const auto& [id, cb] : listeners) cb(cls);
}

bool Finder::is_alive(const std::string& instance) const {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    auto it = instances_.find(instance);
    return it == instances_.end() || !it->second.down;
}

const std::string& Finder::instance_secret(const std::string& instance) const {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    static const std::string kEmpty;
    auto it = instances_.find(instance);
    return it == instances_.end() ? kEmpty : it->second.secret;
}

std::optional<std::vector<Resolution>> Finder::resolve(
    const std::string& target, const std::string& full_method,
    const std::string& caller, xrl::XrlError* error,
    const std::string& caller_secret) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    if (require_secrets_) {
        auto cit = instances_.find(caller);
        if (cit == instances_.end() || cit->second.secret != caller_secret) {
            if (error)
                *error = xrl::XrlError(
                    xrl::ErrorCode::kResolveFailed,
                    "caller authentication failed for '" + caller + "'");
            return std::nullopt;
        }
    }
    // Accept either an instance name or a class name; a class resolves to
    // its first live instance. Instances marked dead are skipped; if only
    // dead instances remain the failure is typed kTargetDead so callers
    // fail fast instead of probing a corpse.
    const Instance* inst = nullptr;
    auto it = instances_.find(target);
    if (it != instances_.end() && !it->second.down) {
        inst = &it->second;
    } else {
        // The bare first-instance name doubles as the class name, so a
        // dead instance must not shadow a live replacement that registered
        // under the same class.
        auto range = by_class_.equal_range(target);
        for (auto cit = range.first; cit != range.second; ++cit) {
            const Instance& cand = instances_.at(cit->second);
            if (!cand.down) {
                inst = &cand;
                break;
            }
            if (inst == nullptr) inst = &cand;  // dead fallback, for typing
        }
        if (inst == nullptr && it != instances_.end())
            inst = &it->second;  // dead instance, for kTargetDead typing
    }
    if (inst == nullptr) {
        if (error)
            *error = xrl::XrlError(xrl::ErrorCode::kResolveFailed,
                                   "no such target: " + target);
        return std::nullopt;
    }
    if (inst->down) {
        if (error)
            *error = xrl::XrlError(xrl::ErrorCode::kTargetDead,
                                   "target marked dead: " + inst->name);
        return std::nullopt;
    }
    if (!acl_permits(inst->cls, caller, full_method)) {
        if (error)
            *error = xrl::XrlError(
                xrl::ErrorCode::kResolveFailed,
                "access denied: " + caller + " -> " + target + "/" +
                    full_method);
        return std::nullopt;
    }
    auto mit = inst->methods.find(full_method);
    if (mit == inst->methods.end()) {
        if (error)
            *error = xrl::XrlError(
                xrl::ErrorCode::kResolveFailed,
                "no such method: " + target + "/" + full_method);
        return std::nullopt;
    }
    std::vector<Resolution> out;
    for (const auto& [family, address] : mit->second.family_addresses)
        out.push_back({family, address,
                       join_keyed_method(full_method, mit->second.key)});
    std::sort(out.begin(), out.end(), [](const Resolution& a,
                                         const Resolution& b) {
        return family_rank(a.family) < family_rank(b.family);
    });
    return out;
}

uint64_t Finder::watch(const std::string& cls, LifetimeCallback cb) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    uint64_t id = next_id_++;
    watches_[id] = {cls, std::move(cb)};
    return id;
}

void Finder::unwatch(uint64_t id) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    watches_.erase(id);
}

uint64_t Finder::add_invalidate_listener(InvalidateCallback cb) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    uint64_t id = next_id_++;
    invalidate_listeners_[id] = std::move(cb);
    return id;
}

void Finder::remove_invalidate_listener(uint64_t id) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    invalidate_listeners_.erase(id);
}

void Finder::allow(const std::string& target_cls,
                   const std::string& caller_cls,
                   const std::string& method_prefix) {
    std::lock_guard<std::recursive_mutex> lk(mu_);
    acl_.emplace(target_cls, AclRule{caller_cls, method_prefix});
}

bool Finder::acl_permits(const std::string& target_cls,
                         const std::string& caller,
                         const std::string& full_method) const {
    auto range = acl_.equal_range(target_cls);
    if (range.first == range.second) return true;  // no rules: open
    // The caller is an instance name; derive its class prefix (instance
    // names are "cls" or "cls-N").
    std::string caller_cls = caller;
    size_t dash = caller_cls.rfind('-');
    if (dash != std::string::npos &&
        caller_cls.find_first_not_of("0123456789", dash + 1) ==
            std::string::npos)
        caller_cls = caller_cls.substr(0, dash);
    for (auto it = range.first; it != range.second; ++it) {
        const AclRule& r = it->second;
        if (r.caller_cls == caller_cls &&
            full_method.compare(0, r.method_prefix.size(), r.method_prefix) ==
                0)
            return true;
    }
    return false;
}

void Finder::notify(LifetimeEvent ev, const Instance& inst) {
    // Copy: callbacks may add/remove watches.
    auto watches = watches_;
    for (const auto& [id, w] : watches) {
        if (w.first == "*" || w.first == inst.cls) w.second(ev, inst.cls, inst.name);
    }
}

}  // namespace xrp::finder
