// Random method keys (§7): at registration time the Finder appends a
// 16-byte random key to the registered method name of every resolved XRL.
// A receiver rejects calls whose key doesn't match, so a caller cannot
// bypass Finder resolution (and therefore cannot bypass the Finder's
// access-control checks).
#ifndef XRP_FINDER_KEY_HPP
#define XRP_FINDER_KEY_HPP

#include <string>

namespace xrp::finder {

// 32 lowercase hex characters (16 random bytes).
std::string generate_method_key();

// "iface/1.0/method#key" -> {"iface/1.0/method", "key"}; key empty if none.
std::pair<std::string, std::string> split_keyed_method(
    const std::string& keyed);
std::string join_keyed_method(const std::string& method,
                              const std::string& key);

}  // namespace xrp::finder

#endif
