#include "finder/key.hpp"

#include <random>

namespace xrp::finder {

std::string generate_method_key() {
    // random_device per call would exhaust entropy pools under the XRL
    // registration churn of a full router; one seeded generator suffices
    // (keys defend against accidental bypass, not cryptographic attack —
    // and the paper's 16-byte random key has the same threat model).
    static std::mt19937_64 rng{std::random_device{}()};
    static const char* hex = "0123456789abcdef";
    std::string key;
    key.reserve(32);
    for (int i = 0; i < 4; ++i) {
        uint64_t v = rng();
        for (int j = 0; j < 8; ++j) {
            key += hex[v & 0xf];
            v >>= 4;
        }
    }
    return key;
}

std::pair<std::string, std::string> split_keyed_method(
    const std::string& keyed) {
    size_t hash = keyed.find('#');
    if (hash == std::string::npos) return {keyed, {}};
    return {keyed.substr(0, hash), keyed.substr(hash + 1)};
}

std::string join_keyed_method(const std::string& method,
                              const std::string& key) {
    return key.empty() ? method : method + "#" + key;
}

}  // namespace xrp::finder
