// RIP route database: per-prefix state with the RFC 2453 timer dance —
// timeout (route expires to infinity), garbage-collection (expired route
// finally removed), and a changed flag feeding triggered updates. Timer
// expiry is event-driven off the loop clock; there is no periodic scan
// over the table (§4 of the paper: everything is event-driven).
#ifndef XRP_RIP_ROUTEDB_HPP
#define XRP_RIP_ROUTEDB_HPP

#include <functional>
#include <map>
#include <string>

#include "ev/eventloop.hpp"
#include "net/ipnet.hpp"
#include "rip/packet.hpp"

namespace xrp::rip {

struct RipRoute {
    net::IPv4Net net;
    net::IPv4 nexthop;      // the neighbour we learned it from
    std::string ifname;     // the interface it arrived on
    uint32_t metric = kInfinity;
    uint16_t tag = 0;
    bool permanent = false;  // locally originated; never times out
    bool changed = false;    // pending inclusion in a triggered update
    bool deleting = false;   // expired; in garbage-collection
};

class RouteDb {
public:
    // Fired on install/metric-change (is_add=true, live route) and on
    // final removal OR expiry-to-infinity (is_add=false).
    using ChangeCallback = std::function<void(bool is_add, const RipRoute&)>;

    struct Timers {
        ev::Duration timeout = std::chrono::seconds(180);
        ev::Duration gc = std::chrono::seconds(120);
    };

    RouteDb(ev::EventLoop& loop, Timers timers, ChangeCallback cb)
        : loop_(loop), timers_(timers), cb_(std::move(cb)) {}

    // Installs or refreshes a learned route; handles the RFC 2453 rules
    // about same-source refresh vs better-metric replacement internally.
    // Returns true if anything changed (triggering an update).
    bool update(const net::IPv4Net& net, net::IPv4 from,
                const std::string& ifname, uint32_t metric, uint16_t tag);

    // Locally-originated route (redistribution/connected); never expires.
    void originate(const net::IPv4Net& net, uint32_t metric, uint16_t tag = 0);
    bool withdraw(const net::IPv4Net& net);

    // Expire every route learned via `ifname` right now (link-down event).
    void expire_interface_routes(const std::string& ifname);

    const RipRoute* find(const net::IPv4Net& net) const;
    size_t size() const { return routes_.size(); }
    size_t live_count() const;

    template <class Fn>
    void for_each(Fn&& fn) const {
        for (const auto& [net, e] : routes_) fn(e.route);
    }

    // Collects routes with the changed flag set and clears the flags.
    std::vector<RipRoute> take_changed();

private:
    struct Entry {
        RipRoute route;
        ev::Timer timeout_timer;
        ev::Timer gc_timer;
    };

    void arm_timeout(Entry& e);
    void expire(const net::IPv4Net& net);
    void start_gc(Entry& e);

    ev::EventLoop& loop_;
    Timers timers_;
    ChangeCallback cb_;
    std::map<net::IPv4Net, Entry> routes_;
};

}  // namespace xrp::rip

#endif
