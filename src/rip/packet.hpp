// RIPv2 packet encode/decode (RFC 2453 §4): command/version header and
// up to 25 route entries of (AFI, tag, prefix, mask, nexthop, metric).
#ifndef XRP_RIP_PACKET_HPP
#define XRP_RIP_PACKET_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipnet.hpp"

namespace xrp::rip {

inline constexpr uint32_t kInfinity = 16;
inline constexpr size_t kMaxEntriesPerPacket = 25;
inline constexpr uint16_t kRipPort = 520;

enum class Command : uint8_t { kRequest = 1, kResponse = 2 };

struct RipEntry {
    uint16_t afi = 2;  // AF_INET; 0 in a request means "whole table"
    uint16_t tag = 0;
    net::IPv4Net net;
    net::IPv4 nexthop;  // 0.0.0.0 = via the sender
    uint32_t metric = 0;
    bool operator==(const RipEntry&) const = default;
};

struct RipPacket {
    Command command = Command::kResponse;
    uint8_t version = 2;
    std::vector<RipEntry> entries;
    bool operator==(const RipPacket&) const = default;

    // A request for the entire routing table (RFC 2453 §3.9.1).
    static RipPacket whole_table_request() {
        RipPacket p;
        p.command = Command::kRequest;
        RipEntry e;
        e.afi = 0;
        e.metric = kInfinity;
        p.entries.push_back(e);
        return p;
    }
    bool is_whole_table_request() const {
        return command == Command::kRequest && entries.size() == 1 &&
               entries[0].afi == 0 && entries[0].metric == kInfinity;
    }
};

std::vector<uint8_t> encode_packet(const RipPacket& p);
std::optional<RipPacket> decode_packet(const uint8_t* data, size_t size);

}  // namespace xrp::rip

#endif
