#include "rip/rip.hpp"

namespace xrp::rip {

using net::IPv4;
using net::IPv4Net;

namespace {
// RIPv2 multicast group (224.0.0.9); the virtual network delivers
// multicast to every endpoint on the segment.
const IPv4 kRipGroup = IPv4((224u << 24) | 9);
}  // namespace

RipProcess::RipProcess(ev::EventLoop& loop, fea::Fea& fea, Config config,
                       std::unique_ptr<RibClient> rib)
    : loop_(loop),
      fea_(fea),
      config_(config),
      rib_(std::move(rib)),
      db_(loop,
          RouteDb::Timers{config.timeout, config.gc},
          [this](bool is_add, const RipRoute& r) {
              on_route_change(is_add, r);
          }) {
    if (!rib_) rib_ = std::make_unique<NullRibClient>();
    sock_ = fea_.udp_open(kRipPort,
                          [this](const std::string& ifname,
                                 const fea::Datagram& d) {
                              on_datagram(ifname, d);
                          });
    iftable_listener_ = fea_.interfaces().add_listener(
        [this](const fea::Interface& itf, bool up) {
            on_interface_change(itf, up);
        });
    update_timer_ = loop_.set_periodic(config_.update_interval, [this] {
        periodic_update();
        return true;
    });
}

RipProcess::RipProcess(ev::EventLoop& loop, fea::Fea& fea)
    : RipProcess(loop, fea, Config{}, nullptr) {}

RipProcess::~RipProcess() {
    fea_.udp_close(sock_);
    fea_.interfaces().remove_listener(iftable_listener_);
}

bool RipProcess::enable_interface(const std::string& ifname) {
    const fea::Interface* itf = fea_.interfaces().find(ifname);
    if (itf == nullptr || sock_ == 0) return false;
    enabled_.insert(ifname);
    // Originate the connected subnet and ask neighbours for their tables
    // immediately — convergence must not wait for a periodic timer (§4).
    db_.originate(itf->subnet, 1);
    RipPacket req = RipPacket::whole_table_request();
    fea_.udp_send(sock_, ifname, kRipGroup, kRipPort, encode_packet(req));
    return true;
}

void RipProcess::disable_interface(const std::string& ifname) {
    enabled_.erase(ifname);
    db_.expire_interface_routes(ifname);
    schedule_triggered();
}

void RipProcess::originate(const IPv4Net& net, uint32_t metric) {
    db_.originate(net, metric);
    schedule_triggered();
}

void RipProcess::withdraw(const IPv4Net& net) {
    if (db_.withdraw(net)) schedule_triggered();
}

void RipProcess::on_datagram(const std::string& ifname,
                             const fea::Datagram& dgram) {
    if (enabled_.count(ifname) == 0) return;
    ++stats_.packets_in;
    auto packet = decode_packet(dgram.payload.data(), dgram.payload.size());
    if (!packet) {
        ++stats_.bad_packets;
        return;
    }
    if (packet->command == Command::kRequest) {
        // Answer whole-table requests with a full (split-horizon) dump
        // unicast back to the asker.
        if (packet->is_whole_table_request())
            send_full_table(ifname, dgram.src, dgram.src_port);
        return;
    }
    process_response(ifname, dgram);
}

void RipProcess::process_response(const std::string& ifname,
                                  const fea::Datagram& dgram) {
    const fea::Interface* itf = fea_.interfaces().find(ifname);
    if (itf == nullptr) return;
    // RFC 2453 §3.9.2: responses must come from a neighbour on the
    // directly-connected network and from the RIP port.
    if (!itf->subnet.contains(dgram.src) || dgram.src == itf->addr) return;
    if (dgram.src_port != kRipPort) return;

    auto packet = decode_packet(dgram.payload.data(), dgram.payload.size());
    if (!packet) return;
    bool changed = false;
    for (const RipEntry& e : packet->entries) {
        if (e.afi != 2) continue;
        uint32_t metric = std::min(e.metric + 1, kInfinity);
        // An explicit nexthop on our subnet short-circuits the extra hop.
        IPv4 via = dgram.src;
        if (e.nexthop != IPv4::any() && itf->subnet.contains(e.nexthop))
            via = e.nexthop;
        changed |= db_.update(e.net, via, ifname, metric, e.tag);
    }
    if (changed) schedule_triggered();
}

void RipProcess::send_routes(const std::string& ifname, IPv4 dst,
                             uint16_t dst_port,
                             const std::vector<RipRoute>& routes) {
    RipPacket p;
    p.command = Command::kResponse;
    for (const RipRoute& r : routes) {
        RipEntry e;
        e.net = r.net;
        e.tag = r.tag;
        uint32_t metric = r.metric;
        if (r.ifname == ifname && !r.permanent) {
            // Split horizon with poisoned reverse (§3.4.3): advertise
            // routes learned on this interface as unreachable (or not at
            // all, if poisoning is off).
            if (!config_.split_horizon_poison) continue;
            metric = kInfinity;
        }
        e.metric = metric;
        p.entries.push_back(e);
        if (p.entries.size() == kMaxEntriesPerPacket) {
            fea_.udp_send(sock_, ifname, dst, dst_port, encode_packet(p));
            p.entries.clear();
        }
    }
    if (!p.entries.empty())
        fea_.udp_send(sock_, ifname, dst, dst_port, encode_packet(p));
}

void RipProcess::send_full_table(const std::string& ifname, IPv4 dst,
                                 uint16_t dst_port) {
    std::vector<RipRoute> all;
    db_.for_each([&](const RipRoute& r) { all.push_back(r); });
    send_routes(ifname, dst, dst_port, all);
    ++stats_.updates_sent;
}

void RipProcess::periodic_update() {
    for (const std::string& ifname : enabled_)
        send_full_table(ifname, kRipGroup, kRipPort);
}

void RipProcess::schedule_triggered() {
    if (triggered_pending_) return;
    triggered_pending_ = true;
    triggered_timer_ = loop_.set_timer(config_.triggered_delay, [this] {
        triggered_pending_ = false;
        fire_triggered();
    });
}

void RipProcess::fire_triggered() {
    std::vector<RipRoute> changed = db_.take_changed();
    if (changed.empty()) return;
    for (const std::string& ifname : enabled_) {
        send_routes(ifname, kRipGroup, kRipPort, changed);
        ++stats_.triggered_sent;
    }
}

void RipProcess::on_route_change(bool is_add, const RipRoute& r) {
    if (is_add)
        rib_->add_route(r.net, r.nexthop, r.metric);
    else
        rib_->delete_route(r.net);
    schedule_triggered();
}

void RipProcess::on_interface_change(const fea::Interface& itf, bool up) {
    if (enabled_.count(itf.name) == 0) return;
    if (!up) {
        // Event-driven reaction to link failure: expire everything learned
        // via the interface right now.
        db_.expire_interface_routes(itf.name);
        schedule_triggered();
    } else {
        // Link restored: re-request neighbours' tables immediately.
        RipPacket req = RipPacket::whole_table_request();
        fea_.udp_send(sock_, itf.name, kRipGroup, kRipPort,
                      encode_packet(req));
    }
}

}  // namespace xrp::rip
