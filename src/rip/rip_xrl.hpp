// XRL coupling for RIP: routes flow to the RIB as rib/1.0 XRLs, keeping
// the RIP process decoupled from the RIB exactly like the bigger
// protocols. (Packet I/O uses the FEA relay library handle directly; see
// DESIGN.md's substitution notes.)
#ifndef XRP_RIP_RIP_XRL_HPP
#define XRP_RIP_RIP_XRL_HPP

#include "ipc/router.hpp"
#include "rip/rip.hpp"

namespace xrp::rip {

class XrlRibClient final : public RibClient {
public:
    explicit XrlRibClient(ipc::XrlRouter& router, std::string rib_target = "rib")
        : router_(router), target_(std::move(rib_target)) {}

    void add_route(const net::IPv4Net& net, net::IPv4 nexthop,
                   uint32_t metric) override {
        xrl::XrlArgs args;
        args.add("protocol", std::string("rip"))
            .add("net", net)
            .add("nexthop", nexthop)
            .add("metric", metric);
        // Route pushes are idempotent: mark them so the call contract may
        // retry through drops without risking double-execution harm.
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "add_route", args),
            ipc::CallOptions::reliable());
    }

    void delete_route(const net::IPv4Net& net) override {
        xrl::XrlArgs args;
        args.add("protocol", std::string("rip")).add("net", net);
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "delete_route", args),
            ipc::CallOptions::reliable());
    }

private:
    ipc::XrlRouter& router_;
    std::string target_;
};

}  // namespace xrp::rip

#endif
