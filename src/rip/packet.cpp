#include "rip/packet.hpp"

namespace xrp::rip {

namespace {

void put_u16be(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
}
void put_u32be(std::vector<uint8_t>& out, uint32_t v) {
    for (int i = 3; i >= 0; --i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint16_t get_u16be(const uint8_t* p) {
    return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t get_u32be(const uint8_t* p) {
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

// Mask -> prefix length; rejects non-contiguous masks.
std::optional<uint32_t> mask_to_len(uint32_t mask) {
    uint32_t len = mask == 0 ? 0 : 32 - static_cast<uint32_t>(__builtin_ctz(mask));
    if (net::IPv4::make_prefix(len).to_host() != mask) return std::nullopt;
    return len;
}

}  // namespace

std::vector<uint8_t> encode_packet(const RipPacket& p) {
    std::vector<uint8_t> out;
    out.reserve(4 + p.entries.size() * 20);
    out.push_back(static_cast<uint8_t>(p.command));
    out.push_back(p.version);
    put_u16be(out, 0);  // must-be-zero
    for (const RipEntry& e : p.entries) {
        put_u16be(out, e.afi);
        put_u16be(out, e.tag);
        put_u32be(out, e.net.masked_addr().to_host());
        put_u32be(out, net::IPv4::make_prefix(e.net.prefix_len()).to_host());
        put_u32be(out, e.nexthop.to_host());
        put_u32be(out, e.metric);
    }
    return out;
}

std::optional<RipPacket> decode_packet(const uint8_t* data, size_t size) {
    if (size < 4 || (size - 4) % 20 != 0) return std::nullopt;
    if (data[0] != 1 && data[0] != 2) return std::nullopt;
    if (data[1] != 2) return std::nullopt;  // RIPv2 only
    RipPacket p;
    p.command = static_cast<Command>(data[0]);
    p.version = data[1];
    size_t count = (size - 4) / 20;
    if (count > kMaxEntriesPerPacket) return std::nullopt;
    for (size_t i = 0; i < count; ++i) {
        const uint8_t* e = data + 4 + i * 20;
        RipEntry entry;
        entry.afi = get_u16be(e);
        entry.tag = get_u16be(e + 2);
        uint32_t addr = get_u32be(e + 4);
        auto len = mask_to_len(get_u32be(e + 8));
        if (!len) return std::nullopt;
        entry.net = net::IPv4Net(net::IPv4(addr), *len);
        entry.nexthop = net::IPv4(get_u32be(e + 12));
        entry.metric = get_u32be(e + 16);
        if (entry.metric > kInfinity && entry.afi != 0) return std::nullopt;
        p.entries.push_back(entry);
    }
    return p;
}

}  // namespace xrp::rip
