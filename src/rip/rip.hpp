// RipProcess: the RIPv2 routing protocol process.
//
// Faithful to the paper's architecture in two specific ways:
//   - all network I/O goes through the FEA's UDP relay (§7): RIP never
//     touches a socket, so it can run fully sandboxed;
//   - it is event-driven (§4): triggered updates fire within a bounded
//     small delay of a route change, link-down events expire routes
//     immediately, and nothing waits for the 30-second periodic timer
//     except the periodic full advertisement RFC 2453 requires.
//
// Learned routes feed the RIB through the RibClient coupling ("rip"
// protocol, admin distance 120 by default).
#ifndef XRP_RIP_RIP_HPP
#define XRP_RIP_RIP_HPP

#include <memory>
#include <set>

#include "fea/fea.hpp"
#include "rib/rib.hpp"
#include "rip/routedb.hpp"

namespace xrp::rip {

// Coupling to the RIB (abstract for standalone tests).
class RibClient {
public:
    virtual ~RibClient() = default;
    virtual void add_route(const net::IPv4Net& net, net::IPv4 nexthop,
                           uint32_t metric) = 0;
    virtual void delete_route(const net::IPv4Net& net) = 0;
};

class NullRibClient final : public RibClient {
public:
    void add_route(const net::IPv4Net&, net::IPv4, uint32_t) override {}
    void delete_route(const net::IPv4Net&) override {}
};

class DirectRibClient final : public RibClient {
public:
    explicit DirectRibClient(rib::Rib& rib) : rib_(rib) {}
    void add_route(const net::IPv4Net& net, net::IPv4 nexthop,
                   uint32_t metric) override {
        rib_.add_route("rip", net, nexthop, metric);
    }
    void delete_route(const net::IPv4Net& net) override {
        rib_.delete_route("rip", net);
    }

private:
    rib::Rib& rib_;
};

class RipProcess {
public:
    struct Config {
        ev::Duration update_interval = std::chrono::seconds(30);
        ev::Duration timeout = std::chrono::seconds(180);
        ev::Duration gc = std::chrono::seconds(120);
        // Triggered updates are delayed a short random-ish interval to
        // coalesce bursts (RFC 2453 §3.10.1); deterministic here.
        ev::Duration triggered_delay = std::chrono::milliseconds(200);
        bool split_horizon_poison = true;
    };

    RipProcess(ev::EventLoop& loop, fea::Fea& fea, Config config,
               std::unique_ptr<RibClient> rib = nullptr);
    // Defaults-everything convenience (defined out of class: in-class
    // default args may not use Config's member initializers).
    RipProcess(ev::EventLoop& loop, fea::Fea& fea);
    ~RipProcess();
    RipProcess(const RipProcess&) = delete;
    RipProcess& operator=(const RipProcess&) = delete;

    // Runs RIP on an FEA interface. On enable, sends a whole-table
    // request so convergence doesn't wait for neighbours' periodic timers.
    bool enable_interface(const std::string& ifname);
    void disable_interface(const std::string& ifname);

    // Locally-originated routes (e.g. redistributed or connected).
    void originate(const net::IPv4Net& net, uint32_t metric = 1);
    void withdraw(const net::IPv4Net& net);

    const RouteDb& routes() const { return db_; }
    size_t route_count() const { return db_.live_count(); }
    const RipRoute* find_route(const net::IPv4Net& net) const {
        return db_.find(net);
    }

    struct Stats {
        uint64_t updates_sent = 0;
        uint64_t triggered_sent = 0;
        uint64_t packets_in = 0;
        uint64_t bad_packets = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    void on_datagram(const std::string& ifname, const fea::Datagram& dgram);
    void process_response(const std::string& ifname,
                          const fea::Datagram& dgram);
    void send_full_table(const std::string& ifname, net::IPv4 dst,
                         uint16_t dst_port);
    void send_routes(const std::string& ifname, net::IPv4 dst,
                     uint16_t dst_port, const std::vector<RipRoute>& routes);
    void periodic_update();
    void schedule_triggered();
    void fire_triggered();
    void on_route_change(bool is_add, const RipRoute& r);
    void on_interface_change(const fea::Interface& itf, bool up);

    ev::EventLoop& loop_;
    fea::Fea& fea_;
    Config config_;
    std::unique_ptr<RibClient> rib_;
    RouteDb db_;
    std::set<std::string> enabled_;
    int sock_ = 0;
    uint64_t iftable_listener_ = 0;
    ev::Timer update_timer_;
    ev::Timer triggered_timer_;
    bool triggered_pending_ = false;
    Stats stats_;
};

}  // namespace xrp::rip

#endif
