#include "rip/routedb.hpp"

namespace xrp::rip {

bool RouteDb::update(const net::IPv4Net& net, net::IPv4 from,
                     const std::string& ifname, uint32_t metric,
                     uint16_t tag) {
    metric = std::min(metric, kInfinity);
    auto it = routes_.find(net);

    if (it == routes_.end()) {
        if (metric >= kInfinity) return false;  // don't learn dead routes
        Entry& e = routes_[net];
        e.route = {net, from, ifname, metric, tag, false, true, false};
        arm_timeout(e);
        if (cb_) cb_(true, e.route);
        return true;
    }

    Entry& e = it->second;
    if (e.route.permanent) return false;  // our own routes win locally
    const bool same_source = e.route.nexthop == from;

    if (same_source) {
        // Same neighbour: always believe it (RFC 2453 §3.9.2).
        arm_timeout(e);
        if (metric == e.route.metric && !e.route.deleting) return false;
        if (metric >= kInfinity) {
            if (e.route.deleting) return false;
            expire(net);
            return true;
        }
        bool was_deleting = e.route.deleting;
        e.route.metric = metric;
        e.route.tag = tag;
        e.route.deleting = false;
        e.route.changed = true;
        e.gc_timer.unschedule();
        if (cb_) cb_(true, e.route);
        return was_deleting || true;
    }

    // Different neighbour: adopt only a strictly better metric (or equal
    // metric when ours is nearly timed out — simplified: strictly better,
    // or replacing a dying route).
    if (metric < e.route.metric || (e.route.deleting && metric < kInfinity)) {
        e.route.nexthop = from;
        e.route.ifname = ifname;
        e.route.metric = metric;
        e.route.tag = tag;
        e.route.deleting = false;
        e.route.changed = true;
        e.gc_timer.unschedule();
        arm_timeout(e);
        if (cb_) cb_(true, e.route);
        return true;
    }
    return false;
}

void RouteDb::originate(const net::IPv4Net& net, uint32_t metric,
                        uint16_t tag) {
    Entry& e = routes_[net];
    e.route = {net, net::IPv4::any(), "", std::min(metric, kInfinity), tag,
               true, true, false};
    e.timeout_timer.unschedule();
    e.gc_timer.unschedule();
    if (cb_) cb_(true, e.route);
}

bool RouteDb::withdraw(const net::IPv4Net& net) {
    auto it = routes_.find(net);
    if (it == routes_.end() || !it->second.route.permanent) return false;
    expire(net);
    return true;
}

void RouteDb::expire_interface_routes(const std::string& ifname) {
    std::vector<net::IPv4Net> affected;
    for (const auto& [net, e] : routes_)
        if (!e.route.permanent && !e.route.deleting &&
            e.route.ifname == ifname)
            affected.push_back(net);
    for (const auto& net : affected) expire(net);
}

const RipRoute* RouteDb::find(const net::IPv4Net& net) const {
    auto it = routes_.find(net);
    return it == routes_.end() ? nullptr : &it->second.route;
}

size_t RouteDb::live_count() const {
    size_t n = 0;
    for (const auto& [net, e] : routes_)
        if (!e.route.deleting) ++n;
    return n;
}

std::vector<RipRoute> RouteDb::take_changed() {
    std::vector<RipRoute> out;
    for (auto& [net, e] : routes_) {
        if (e.route.changed) {
            out.push_back(e.route);
            e.route.changed = false;
        }
    }
    return out;
}

void RouteDb::arm_timeout(Entry& e) {
    const net::IPv4Net net = e.route.net;
    e.timeout_timer =
        loop_.set_timer(timers_.timeout, [this, net] { expire(net); });
}

void RouteDb::expire(const net::IPv4Net& net) {
    auto it = routes_.find(net);
    if (it == routes_.end()) return;
    Entry& e = it->second;
    e.route.metric = kInfinity;
    e.route.deleting = true;
    e.route.changed = true;
    e.route.permanent = false;
    e.timeout_timer.unschedule();
    if (cb_) cb_(false, e.route);  // withdrawn from the RIB immediately
    start_gc(e);
}

void RouteDb::start_gc(Entry& e) {
    const net::IPv4Net net = e.route.net;
    e.gc_timer = loop_.set_timer(timers_.gc, [this, net] {
        routes_.erase(net);  // advertisement of infinity ends here
    });
}

}  // namespace xrp::rip
