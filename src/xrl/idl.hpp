// Interface definition language (§6.1: "we have an interface definition
// language that supports interface specification, automatic stub code
// generation, and basic error checking").
//
// Ours is runtime-checked rather than code-generated: a component parses
// an InterfaceSpec at startup and registers it with its dispatcher; every
// incoming call is validated against the spec (names and types of inputs),
// and replies are validated against the declared outputs in debug builds.
//
// Grammar (whitespace-insensitive):
//   interface <name>/<version> {
//       <method> ? <arg>:<type> & <arg>:<type> -> <ret>:<type> ;
//       <method> ?                     // no inputs, no outputs
//       ...
//   }
// The "? ..." input list and "-> ..." output list are each optional.
#ifndef XRP_XRL_IDL_HPP
#define XRP_XRL_IDL_HPP

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xrl/args.hpp"
#include "xrl/error.hpp"

namespace xrp::xrl {

struct NamedType {
    std::string name;
    AtomType type;
    bool operator==(const NamedType&) const = default;
};

struct MethodSpec {
    std::string name;
    std::vector<NamedType> inputs;
    std::vector<NamedType> outputs;

    // Checks that `args` carries exactly the declared names with the
    // declared types (order-insensitive, extras rejected).
    XrlError validate_inputs(const XrlArgs& args) const;
    XrlError validate_outputs(const XrlArgs& args) const;
};

class InterfaceSpec {
public:
    InterfaceSpec() = default;
    InterfaceSpec(std::string name, std::string version)
        : name_(std::move(name)), version_(std::move(version)) {}

    // Parses the IDL text above; returns nullopt and fills `error` (if
    // given) on syntax problems.
    static std::optional<InterfaceSpec> parse(std::string_view text,
                                              std::string* error = nullptr);

    const std::string& name() const { return name_; }
    const std::string& version() const { return version_; }
    const std::map<std::string, MethodSpec>& methods() const {
        return methods_;
    }
    const MethodSpec* find_method(std::string_view m) const {
        auto it = methods_.find(std::string(m));
        return it == methods_.end() ? nullptr : &it->second;
    }

    void add_method(MethodSpec m) { methods_[m.name] = std::move(m); }

    // Regenerates canonical IDL text (used by tests for round-tripping).
    std::string str() const;

private:
    std::string name_;
    std::string version_;
    std::map<std::string, MethodSpec> methods_;
};

}  // namespace xrp::xrl

#endif
