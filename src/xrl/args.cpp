#include "xrl/args.hpp"

namespace xrp::xrl {

std::string XrlArgs::str() const {
    std::string s;
    for (size_t i = 0; i < atoms_.size(); ++i) {
        if (i) s += '&';
        s += atoms_[i].str();
    }
    return s;
}

std::optional<XrlArgs> XrlArgs::parse(std::string_view text) {
    XrlArgs args;
    if (text.empty()) return args;
    size_t start = 0;
    while (start <= text.size()) {
        size_t amp = text.find('&', start);
        std::string_view item = amp == std::string_view::npos
                                    ? text.substr(start)
                                    : text.substr(start, amp - start);
        auto atom = XrlAtom::parse(item);
        if (!atom) return std::nullopt;
        args.add(std::move(*atom));
        if (amp == std::string_view::npos) break;
        start = amp + 1;
    }
    return args;
}

}  // namespace xrp::xrl
