// XrlArgs: an ordered list of named atoms — the argument (and result)
// container of every XRL call. Getters are typed and name-checked; a
// mismatch surfaces as XrlError kBadArgs at the dispatch layer rather
// than as an exception across component boundaries.
#ifndef XRP_XRL_ARGS_HPP
#define XRP_XRL_ARGS_HPP

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xrl/atom.hpp"

namespace xrp::xrl {

class XrlArgs {
public:
    XrlArgs() = default;

    XrlArgs& add(XrlAtom atom) {
        atoms_.push_back(std::move(atom));
        return *this;
    }
    template <class T>
    XrlArgs& add(std::string name, T value) {
        atoms_.emplace_back(std::move(name), std::move(value));
        return *this;
    }

    size_t size() const { return atoms_.size(); }
    bool empty() const { return atoms_.empty(); }
    const XrlAtom& at(size_t i) const { return atoms_.at(i); }
    const std::vector<XrlAtom>& atoms() const { return atoms_; }

    const XrlAtom* find(std::string_view name) const {
        for (const auto& a : atoms_)
            if (a.name() == name) return &a;
        return nullptr;
    }

    // Typed getters; nullopt when the name is absent or the type differs.
    template <class T>
    std::optional<T> get(std::string_view name) const {
        const XrlAtom* a = find(name);
        if (a == nullptr || !a->holds<T>()) return std::nullopt;
        return a->get<T>();
    }

    std::optional<uint32_t> get_u32(std::string_view n) const {
        return get<uint32_t>(n);
    }
    std::optional<int32_t> get_i32(std::string_view n) const {
        return get<int32_t>(n);
    }
    std::optional<uint64_t> get_u64(std::string_view n) const {
        return get<uint64_t>(n);
    }
    std::optional<bool> get_bool(std::string_view n) const {
        return get<bool>(n);
    }
    std::optional<std::string> get_text(std::string_view n) const {
        return get<std::string>(n);
    }
    std::optional<net::IPv4> get_ipv4(std::string_view n) const {
        return get<net::IPv4>(n);
    }
    std::optional<net::IPv4Net> get_ipv4net(std::string_view n) const {
        return get<net::IPv4Net>(n);
    }
    std::optional<net::IPv6> get_ipv6(std::string_view n) const {
        return get<net::IPv6>(n);
    }
    std::optional<net::IPv6Net> get_ipv6net(std::string_view n) const {
        return get<net::IPv6Net>(n);
    }
    std::optional<net::Mac> get_mac(std::string_view n) const {
        return get<net::Mac>(n);
    }
    std::optional<std::vector<uint8_t>> get_binary(std::string_view n) const {
        return get<std::vector<uint8_t>>(n);
    }
    std::optional<XrlAtomList> get_list(std::string_view n) const {
        return get<XrlAtomList>(n);
    }

    // Textual form: atoms joined by '&' ("as:u32=1777&id:txt=foo").
    std::string str() const;
    static std::optional<XrlArgs> parse(std::string_view text);

    bool operator==(const XrlArgs& o) const { return atoms_ == o.atoms_; }

private:
    std::vector<XrlAtom> atoms_;
};

}  // namespace xrp::xrl

#endif
