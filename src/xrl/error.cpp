#include "xrl/error.hpp"

namespace xrp::xrl {

std::string_view error_code_name(ErrorCode c) {
    switch (c) {
        case ErrorCode::kOkay: return "OKAY";
        case ErrorCode::kResolveFailed: return "RESOLVE_FAILED";
        case ErrorCode::kNoSuchMethod: return "NO_SUCH_METHOD";
        case ErrorCode::kBadArgs: return "BAD_ARGS";
        case ErrorCode::kCommandFailed: return "COMMAND_FAILED";
        case ErrorCode::kTransportFailed: return "TRANSPORT_FAILED";
        case ErrorCode::kBadKey: return "BAD_KEY";
        case ErrorCode::kInternalError: return "INTERNAL_ERROR";
        case ErrorCode::kTimeout: return "TIMEOUT";
        case ErrorCode::kTargetDead: return "TARGET_DEAD";
    }
    return "UNKNOWN";
}

std::string XrlError::str() const {
    std::string s(error_code_name(code_));
    if (!note_.empty()) {
        s += ": ";
        s += note_;
    }
    return s;
}

}  // namespace xrp::xrl
