#include "xrl/xrl.hpp"

namespace xrp::xrl {

std::string Xrl::str() const {
    std::string s = protocol_;
    s += "://";
    s += target_;
    s += '/';
    s += interface_;
    s += '/';
    s += version_;
    s += '/';
    s += method_;
    if (!args_.empty()) {
        s += '?';
        s += args_.str();
    }
    return s;
}

std::optional<Xrl> Xrl::parse(std::string_view text) {
    size_t scheme_end = text.find("://");
    if (scheme_end == std::string_view::npos || scheme_end == 0)
        return std::nullopt;
    std::string protocol(text.substr(0, scheme_end));
    std::string_view rest = text.substr(scheme_end + 3);

    // Split off the query first so '/' inside argument values (already
    // escaped, but be safe) can't confuse path parsing.
    std::string_view query;
    size_t qmark = rest.find('?');
    if (qmark != std::string_view::npos) {
        query = rest.substr(qmark + 1);
        rest = rest.substr(0, qmark);
    }

    // Path: target/interface/version/method
    size_t s1 = rest.find('/');
    if (s1 == std::string_view::npos || s1 == 0) return std::nullopt;
    size_t s2 = rest.find('/', s1 + 1);
    if (s2 == std::string_view::npos) return std::nullopt;
    size_t s3 = rest.find('/', s2 + 1);
    if (s3 == std::string_view::npos) return std::nullopt;
    std::string target(rest.substr(0, s1));
    std::string iface(rest.substr(s1 + 1, s2 - s1 - 1));
    std::string version(rest.substr(s2 + 1, s3 - s2 - 1));
    std::string method(rest.substr(s3 + 1));
    if (iface.empty() || version.empty() || method.empty())
        return std::nullopt;

    XrlArgs args;
    if (!query.empty()) {
        auto parsed = XrlArgs::parse(query);
        if (!parsed) return std::nullopt;
        args = std::move(*parsed);
    }
    return Xrl(std::move(protocol), std::move(target), std::move(iface),
               std::move(version), std::move(method), std::move(args));
}

}  // namespace xrp::xrl
