// XrlAtom: one named, typed XRL argument (§6.1).
//
// The paper restricts arguments to "a set of core types used throughout
// XORP, including network addresses, numbers, strings, booleans, binary
// arrays, and lists of these primitives". An atom has a canonical text
// form ("as:u32=1777") used in scriptable XRLs, and a compact binary form
// used on the wire (ipc/wire.cpp).
#ifndef XRP_XRL_ATOM_HPP
#define XRP_XRL_ATOM_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "net/ipnet.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/mac.hpp"

namespace xrp::xrl {

enum class AtomType : uint8_t {
    kU32,
    kI32,
    kU64,
    kBool,
    kText,
    kIPv4,
    kIPv4Net,
    kIPv6,
    kIPv6Net,
    kMac,
    kBinary,
    kList,
};

// Short type names used in textual XRLs ("u32", "txt", "ipv4net", ...).
std::string_view atom_type_name(AtomType t);
std::optional<AtomType> atom_type_from_name(std::string_view name);

class XrlAtom;
// Atoms inside a list are unnamed; the list itself carries the name.
using XrlAtomList = std::vector<XrlAtom>;

class XrlAtom {
public:
    using Value = std::variant<uint32_t, int32_t, uint64_t, bool, std::string,
                               net::IPv4, net::IPv4Net, net::IPv6,
                               net::IPv6Net, net::Mac, std::vector<uint8_t>,
                               XrlAtomList>;

    XrlAtom() = default;
    XrlAtom(std::string name, uint32_t v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, int32_t v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, uint64_t v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, bool v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, std::string v)
        : name_(std::move(name)), value_(std::move(v)) {}
    XrlAtom(std::string name, const char* v)
        : name_(std::move(name)), value_(std::string(v)) {}
    XrlAtom(std::string name, net::IPv4 v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, net::IPv4Net v)
        : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, net::IPv6 v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, net::IPv6Net v)
        : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, net::Mac v) : name_(std::move(name)), value_(v) {}
    XrlAtom(std::string name, std::vector<uint8_t> v)
        : name_(std::move(name)), value_(std::move(v)) {}
    XrlAtom(std::string name, XrlAtomList v)
        : name_(std::move(name)), value_(std::move(v)) {}

    const std::string& name() const { return name_; }
    AtomType type() const;
    const Value& value() const { return value_; }

    template <class T>
    bool holds() const {
        return std::holds_alternative<T>(value_);
    }
    template <class T>
    const T& get() const {
        return std::get<T>(value_);
    }

    // Canonical text form: "name:type=value", with %-escaping of XRL
    // metacharacters in the value.
    std::string str() const;
    // Parses one "name:type=value" item.
    static std::optional<XrlAtom> parse(std::string_view text);

    bool operator==(const XrlAtom& o) const {
        return name_ == o.name_ && value_ == o.value_;
    }

private:
    std::string name_;
    Value value_;
};

// %-escaping for XRL text values: escapes the XRL metacharacters and
// non-printables so that values round-trip through the textual form.
std::string xrl_escape(std::string_view raw);
std::optional<std::string> xrl_unescape(std::string_view escaped);

}  // namespace xrp::xrl

#endif
