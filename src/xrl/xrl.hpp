// Xrl: a XORP Resource Locator (§6.1) — one method invocation on one
// component, with a canonical human-readable text form:
//
//   finder://bgp/bgp/1.0/set_local_as?as:u32=1777            (generic)
//   stcp://192.1.2.3:16878/bgp/1.0/set_local_as?as:u32=1777  (resolved)
//
// A *generic* XRL names a target by component class ("bgp") and must be
// resolved by the Finder into a *resolved* XRL that pins the transport
// protocol family ("stcp") and its address. The method part of a resolved
// XRL also carries the Finder's random key suffix (security, §7), which
// receivers verify to prevent Finder bypass.
#ifndef XRP_XRL_XRL_HPP
#define XRP_XRL_XRL_HPP

#include <optional>
#include <string>
#include <string_view>

#include "xrl/args.hpp"

namespace xrp::xrl {

class Xrl {
public:
    Xrl() = default;
    Xrl(std::string protocol, std::string target, std::string interface_name,
        std::string version, std::string method, XrlArgs args = {})
        : protocol_(std::move(protocol)),
          target_(std::move(target)),
          interface_(std::move(interface_name)),
          version_(std::move(version)),
          method_(std::move(method)),
          args_(std::move(args)) {}

    // Convenience for the common generic case.
    static Xrl generic(std::string target, std::string interface_name,
                       std::string version, std::string method,
                       XrlArgs args = {}) {
        return Xrl("finder", std::move(target), std::move(interface_name),
                   std::move(version), std::move(method), std::move(args));
    }

    const std::string& protocol() const { return protocol_; }
    const std::string& target() const { return target_; }
    const std::string& interface_name() const { return interface_; }
    const std::string& version() const { return version_; }
    const std::string& method() const { return method_; }
    const XrlArgs& args() const { return args_; }
    XrlArgs& args() { return args_; }

    bool is_resolved() const { return protocol_ != "finder"; }

    // "interface/version/method" — the unit the Finder registers and
    // resolves; the per-method key is appended to this string.
    std::string full_method() const {
        return interface_ + "/" + version_ + "/" + method_;
    }

    std::string str() const;
    static std::optional<Xrl> parse(std::string_view text);

    void set_protocol_target(std::string protocol, std::string target) {
        protocol_ = std::move(protocol);
        target_ = std::move(target);
    }
    void set_method(std::string method) { method_ = std::move(method); }

    bool operator==(const Xrl& o) const {
        return protocol_ == o.protocol_ && target_ == o.target_ &&
               interface_ == o.interface_ && version_ == o.version_ &&
               method_ == o.method_ && args_ == o.args_;
    }

private:
    std::string protocol_ = "finder";
    std::string target_;
    std::string interface_;
    std::string version_;
    std::string method_;
    XrlArgs args_;
};

}  // namespace xrp::xrl

#endif
