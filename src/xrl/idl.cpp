#include "xrl/idl.hpp"

#include <cctype>

namespace xrp::xrl {

namespace {

// Minimal tokenizer: identifiers, punctuation (?, &, ;, :, {, }, /), and
// the two-character arrow.
struct Lexer {
    std::string_view text;
    size_t pos = 0;

    void skip_ws() {
        while (pos < text.size()) {
            if (std::isspace(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            } else if (text[pos] == '#') {  // comment to end of line
                while (pos < text.size() && text[pos] != '\n') ++pos;
            } else {
                break;
            }
        }
    }

    std::string next() {
        skip_ws();
        if (pos >= text.size()) return {};
        char c = text[pos];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.') {
            size_t start = pos;
            while (pos < text.size() &&
                   (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                    text[pos] == '_' || text[pos] == '.'))
                ++pos;
            return std::string(text.substr(start, pos - start));
        }
        if (c == '-' && pos + 1 < text.size() && text[pos + 1] == '>') {
            pos += 2;
            return "->";
        }
        ++pos;
        return std::string(1, c);
    }

    std::string peek() {
        size_t saved = pos;
        std::string t = next();
        pos = saved;
        return t;
    }
};

bool parse_named_type_list(Lexer& lex, std::vector<NamedType>& out,
                           std::string* error) {
    // name:type (& name:type)*
    while (true) {
        std::string name = lex.next();
        if (name.empty() || !std::isalpha(static_cast<unsigned char>(name[0]))) {
            if (error) *error = "expected argument name, got '" + name + "'";
            return false;
        }
        if (lex.next() != ":") {
            if (error) *error = "expected ':' after argument name " + name;
            return false;
        }
        std::string tname = lex.next();
        auto t = atom_type_from_name(tname);
        if (!t) {
            if (error) *error = "unknown type '" + tname + "'";
            return false;
        }
        out.push_back({std::move(name), *t});
        if (lex.peek() != "&") return true;
        lex.next();  // consume '&'
    }
}

}  // namespace

XrlError MethodSpec::validate_inputs(const XrlArgs& args) const {
    if (args.size() != inputs.size())
        return XrlError(ErrorCode::kBadArgs,
                        name + ": expected " + std::to_string(inputs.size()) +
                            " arguments, got " + std::to_string(args.size()));
    for (const NamedType& nt : inputs) {
        const XrlAtom* a = args.find(nt.name);
        if (a == nullptr)
            return XrlError(ErrorCode::kBadArgs,
                            name + ": missing argument '" + nt.name + "'");
        if (a->type() != nt.type)
            return XrlError(
                ErrorCode::kBadArgs,
                name + ": argument '" + nt.name + "' has type " +
                    std::string(atom_type_name(a->type())) + ", expected " +
                    std::string(atom_type_name(nt.type)));
    }
    return XrlError::okay();
}

XrlError MethodSpec::validate_outputs(const XrlArgs& args) const {
    if (args.size() != outputs.size())
        return XrlError(ErrorCode::kBadArgs,
                        name + ": expected " + std::to_string(outputs.size()) +
                            " results, got " + std::to_string(args.size()));
    for (const NamedType& nt : outputs) {
        const XrlAtom* a = args.find(nt.name);
        if (a == nullptr || a->type() != nt.type)
            return XrlError(ErrorCode::kBadArgs,
                            name + ": bad result '" + nt.name + "'");
    }
    return XrlError::okay();
}

std::optional<InterfaceSpec> InterfaceSpec::parse(std::string_view text,
                                                  std::string* error) {
    Lexer lex{text};
    if (lex.next() != "interface") {
        if (error) *error = "expected 'interface'";
        return std::nullopt;
    }
    std::string name = lex.next();
    if (lex.next() != "/") {
        if (error) *error = "expected '/' after interface name";
        return std::nullopt;
    }
    std::string version = lex.next();
    if (lex.next() != "{") {
        if (error) *error = "expected '{'";
        return std::nullopt;
    }

    InterfaceSpec spec(std::move(name), std::move(version));
    while (true) {
        std::string tok = lex.next();
        if (tok == "}") break;
        if (tok.empty()) {
            if (error) *error = "unexpected end of input";
            return std::nullopt;
        }
        MethodSpec m;
        m.name = std::move(tok);
        std::string sep = lex.peek();
        if (sep == "?") {
            lex.next();
            if (lex.peek() != "->" && lex.peek() != ";" && lex.peek() != "}") {
                if (!parse_named_type_list(lex, m.inputs, error))
                    return std::nullopt;
            }
        }
        if (lex.peek() == "->") {
            lex.next();
            if (lex.peek() != ";" && lex.peek() != "}") {
                if (!parse_named_type_list(lex, m.outputs, error))
                    return std::nullopt;
            }
        }
        if (lex.peek() == ";") lex.next();
        spec.add_method(std::move(m));
    }
    return spec;
}

std::string InterfaceSpec::str() const {
    std::string s = "interface " + name_ + "/" + version_ + " {\n";
    for (const auto& [name, m] : methods_) {
        s += "    " + name;
        if (!m.inputs.empty()) {
            s += " ? ";
            for (size_t i = 0; i < m.inputs.size(); ++i) {
                if (i) s += " & ";
                s += m.inputs[i].name + ":" +
                     std::string(atom_type_name(m.inputs[i].type));
            }
        }
        if (!m.outputs.empty()) {
            s += " -> ";
            for (size_t i = 0; i < m.outputs.size(); ++i) {
                if (i) s += " & ";
                s += m.outputs[i].name + ":" +
                     std::string(atom_type_name(m.outputs[i].type));
            }
        }
        s += ";\n";
    }
    s += "}\n";
    return s;
}

}  // namespace xrp::xrl
