#include "xrl/method_name.hpp"

namespace xrp::xrl {

std::optional<MethodName> MethodName::parse(std::string_view full) {
    size_t s1 = full.find('/');
    if (s1 == std::string_view::npos || s1 == 0) return std::nullopt;
    size_t s2 = full.find('/', s1 + 1);
    if (s2 == std::string_view::npos || s2 == s1 + 1) return std::nullopt;
    if (s2 + 1 >= full.size()) return std::nullopt;
    std::string_view method = full.substr(s2 + 1);
    if (method.find('/') != std::string_view::npos) return std::nullopt;
    return MethodName(std::string(full.substr(0, s1)),
                      std::string(full.substr(s1 + 1, s2 - s1 - 1)),
                      std::string(method));
}

}  // namespace xrp::xrl
