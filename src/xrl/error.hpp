// XRL dispatch outcome. Every XRL invocation completes with exactly one
// XrlError, delivered to the caller's callback (XRLs never throw across
// component boundaries). Mirrors the error classes the paper's IPC layer
// distinguishes: resolution failures, transport failures, receiver-side
// rejections, and command-level failures that carry a note from the callee.
#ifndef XRP_XRL_ERROR_HPP
#define XRP_XRL_ERROR_HPP

#include <string>
#include <string_view>

namespace xrp::xrl {

enum class ErrorCode {
    kOkay,
    kResolveFailed,    // the Finder knows no such target/method
    kNoSuchMethod,     // target exists but method not registered
    kBadArgs,          // argument names/types don't match the method
    kCommandFailed,    // the callee ran and reported failure
    kTransportFailed,  // connection refused, reset, channel died mid-call
    kBadKey,           // method key mismatch: caller bypassed the Finder
    kInternalError,
    kTimeout,          // deadline expired with no reply (may have executed)
    kTargetDead,       // Finder liveness says the target is down
};

// Transport-class errors are the ones the reliable call contract may
// retry or fail over on; everything else came from (or past) the callee
// and retrying would repeat application work for a deterministic answer.
inline bool is_transport_error(ErrorCode c) {
    return c == ErrorCode::kTransportFailed || c == ErrorCode::kTimeout ||
           c == ErrorCode::kResolveFailed || c == ErrorCode::kTargetDead;
}

std::string_view error_code_name(ErrorCode c);

class XrlError {
public:
    XrlError() = default;
    explicit XrlError(ErrorCode code, std::string note = {})
        : code_(code), note_(std::move(note)) {}

    static XrlError okay() { return XrlError(); }
    static XrlError command_failed(std::string note) {
        return XrlError(ErrorCode::kCommandFailed, std::move(note));
    }

    ErrorCode code() const { return code_; }
    bool ok() const { return code_ == ErrorCode::kOkay; }
    const std::string& note() const { return note_; }

    std::string str() const;

    friend bool operator==(const XrlError& a, const XrlError& b) {
        return a.code_ == b.code_;
    }

private:
    ErrorCode code_ = ErrorCode::kOkay;
    std::string note_;
};

}  // namespace xrp::xrl

#endif
