// XRL dispatch outcome. Every XRL invocation completes with exactly one
// XrlError, delivered to the caller's callback (XRLs never throw across
// component boundaries). Mirrors the error classes the paper's IPC layer
// distinguishes: resolution failures, transport failures, receiver-side
// rejections, and command-level failures that carry a note from the callee.
#ifndef XRP_XRL_ERROR_HPP
#define XRP_XRL_ERROR_HPP

#include <string>
#include <string_view>

namespace xrp::xrl {

enum class ErrorCode {
    kOkay,
    kResolveFailed,    // the Finder knows no such target/method
    kNoSuchMethod,     // target exists but method not registered
    kBadArgs,          // argument names/types don't match the method
    kCommandFailed,    // the callee ran and reported failure
    kTransportFailed,  // connection refused, reset, timeout
    kBadKey,           // method key mismatch: caller bypassed the Finder
    kInternalError,
};

std::string_view error_code_name(ErrorCode c);

class XrlError {
public:
    XrlError() = default;
    explicit XrlError(ErrorCode code, std::string note = {})
        : code_(code), note_(std::move(note)) {}

    static XrlError okay() { return XrlError(); }
    static XrlError command_failed(std::string note) {
        return XrlError(ErrorCode::kCommandFailed, std::move(note));
    }

    ErrorCode code() const { return code_; }
    bool ok() const { return code_ == ErrorCode::kOkay; }
    const std::string& note() const { return note_; }

    std::string str() const;

    friend bool operator==(const XrlError& a, const XrlError& b) {
        return a.code_ == b.code_;
    }

private:
    ErrorCode code_ = ErrorCode::kOkay;
    std::string note_;
};

}  // namespace xrp::xrl

#endif
