#include "xrl/atom.hpp"

#include <charconv>
#include <cstdio>

namespace xrp::xrl {

namespace {

constexpr std::string_view kTypeNames[] = {
    "u32",  "i32",     "u64",  "bool",    "txt", "ipv4",
    "ipv4net", "ipv6", "ipv6net", "mac", "binary", "list",
};

bool is_meta(char c) {
    // Metacharacters of the textual XRL syntax plus escape char itself.
    return c == '%' || c == '&' || c == '=' || c == '?' || c == ':' ||
           c == ',' || c == '/' || c == '#' ||
           static_cast<unsigned char>(c) < 0x21 ||
           static_cast<unsigned char>(c) > 0x7e;
}

int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

template <class Int>
std::optional<Int> parse_int(std::string_view s) {
    Int v{};
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
    return v;
}

std::optional<XrlAtom::Value> parse_value(AtomType t, std::string_view raw);

std::string value_text(const XrlAtom::Value& v) {
    struct Visitor {
        std::string operator()(uint32_t x) const { return std::to_string(x); }
        std::string operator()(int32_t x) const { return std::to_string(x); }
        std::string operator()(uint64_t x) const { return std::to_string(x); }
        std::string operator()(bool x) const { return x ? "true" : "false"; }
        std::string operator()(const std::string& x) const {
            return xrl_escape(x);
        }
        std::string operator()(net::IPv4 x) const { return x.str(); }
        std::string operator()(net::IPv4Net x) const {
            return xrl_escape(x.str());
        }
        std::string operator()(const net::IPv6& x) const {
            return xrl_escape(x.str());
        }
        std::string operator()(const net::IPv6Net& x) const {
            return xrl_escape(x.str());
        }
        std::string operator()(const net::Mac& x) const {
            return xrl_escape(x.str());
        }
        std::string operator()(const std::vector<uint8_t>& x) const {
            std::string s;
            s.reserve(x.size() * 2);
            for (uint8_t b : x) {
                char buf[3];
                std::snprintf(buf, sizeof buf, "%02x", b);
                s += buf;
            }
            return s;
        }
        std::string operator()(const XrlAtomList& x) const {
            // List items render as escaped "type=value" joined by ','.
            std::string s;
            for (size_t i = 0; i < x.size(); ++i) {
                if (i) s += ',';
                std::string item(atom_type_name(x[i].type()));
                item += '=';
                item += value_text(x[i].value());
                // Escape any ',' produced by nested lists.
                for (char c : item)
                    if (c == ',') {
                        s += "%2c";
                    } else {
                        s += c;
                    }
            }
            return s;
        }
    };
    return std::visit(Visitor{}, v);
}

std::optional<XrlAtom::Value> parse_value(AtomType t, std::string_view raw) {
    switch (t) {
        case AtomType::kU32: {
            auto v = parse_int<uint32_t>(raw);
            if (!v) return std::nullopt;
            return XrlAtom::Value(*v);
        }
        case AtomType::kI32: {
            auto v = parse_int<int32_t>(raw);
            if (!v) return std::nullopt;
            return XrlAtom::Value(*v);
        }
        case AtomType::kU64: {
            auto v = parse_int<uint64_t>(raw);
            if (!v) return std::nullopt;
            return XrlAtom::Value(*v);
        }
        case AtomType::kBool: {
            if (raw == "true" || raw == "1") return XrlAtom::Value(true);
            if (raw == "false" || raw == "0") return XrlAtom::Value(false);
            return std::nullopt;
        }
        case AtomType::kText: {
            auto s = xrl_unescape(raw);
            if (!s) return std::nullopt;
            return XrlAtom::Value(std::move(*s));
        }
        case AtomType::kIPv4: {
            auto u = xrl_unescape(raw);
            if (!u) return std::nullopt;
            auto a = net::IPv4::parse(*u);
            if (!a) return std::nullopt;
            return XrlAtom::Value(*a);
        }
        case AtomType::kIPv4Net: {
            auto u = xrl_unescape(raw);
            if (!u) return std::nullopt;
            auto a = net::IPv4Net::parse(*u);
            if (!a) return std::nullopt;
            return XrlAtom::Value(*a);
        }
        case AtomType::kIPv6: {
            auto u = xrl_unescape(raw);
            if (!u) return std::nullopt;
            auto a = net::IPv6::parse(*u);
            if (!a) return std::nullopt;
            return XrlAtom::Value(*a);
        }
        case AtomType::kIPv6Net: {
            auto u = xrl_unescape(raw);
            if (!u) return std::nullopt;
            auto a = net::IPv6Net::parse(*u);
            if (!a) return std::nullopt;
            return XrlAtom::Value(*a);
        }
        case AtomType::kMac: {
            auto u = xrl_unescape(raw);
            if (!u) return std::nullopt;
            auto a = net::Mac::parse(*u);
            if (!a) return std::nullopt;
            return XrlAtom::Value(*a);
        }
        case AtomType::kBinary: {
            if (raw.size() % 2 != 0) return std::nullopt;
            std::vector<uint8_t> out;
            out.reserve(raw.size() / 2);
            for (size_t i = 0; i < raw.size(); i += 2) {
                int hi = hex_digit(raw[i]), lo = hex_digit(raw[i + 1]);
                if (hi < 0 || lo < 0) return std::nullopt;
                out.push_back(static_cast<uint8_t>((hi << 4) | lo));
            }
            return XrlAtom::Value(std::move(out));
        }
        case AtomType::kList: {
            XrlAtomList items;
            if (raw.empty()) return XrlAtom::Value(std::move(items));
            size_t start = 0;
            while (start <= raw.size()) {
                size_t comma = raw.find(',', start);
                std::string_view item =
                    comma == std::string_view::npos
                        ? raw.substr(start)
                        : raw.substr(start, comma - start);
                size_t eq = item.find('=');
                if (eq == std::string_view::npos) return std::nullopt;
                auto it = atom_type_from_name(item.substr(0, eq));
                if (!it || *it == AtomType::kList) return std::nullopt;
                // Nested list payloads had their commas escaped; one level
                // of unescape happens inside parse_value for text-like
                // types, so direct nesting of lists is not supported
                // (matching XORP, which only lists primitives).
                auto v = parse_value(*it, item.substr(eq + 1));
                if (!v) return std::nullopt;
                // Build an unnamed atom with the parsed value.
                struct Builder {
                    XrlAtom operator()(uint32_t x) { return XrlAtom("", x); }
                    XrlAtom operator()(int32_t x) { return XrlAtom("", x); }
                    XrlAtom operator()(uint64_t x) { return XrlAtom("", x); }
                    XrlAtom operator()(bool x) { return XrlAtom("", x); }
                    XrlAtom operator()(std::string x) {
                        return XrlAtom("", std::move(x));
                    }
                    XrlAtom operator()(net::IPv4 x) { return XrlAtom("", x); }
                    XrlAtom operator()(net::IPv4Net x) {
                        return XrlAtom("", x);
                    }
                    XrlAtom operator()(net::IPv6 x) { return XrlAtom("", x); }
                    XrlAtom operator()(net::IPv6Net x) {
                        return XrlAtom("", x);
                    }
                    XrlAtom operator()(net::Mac x) { return XrlAtom("", x); }
                    XrlAtom operator()(std::vector<uint8_t> x) {
                        return XrlAtom("", std::move(x));
                    }
                    XrlAtom operator()(XrlAtomList x) {
                        return XrlAtom("", std::move(x));
                    }
                };
                items.push_back(std::visit(Builder{}, std::move(*v)));
                if (comma == std::string_view::npos) break;
                start = comma + 1;
            }
            return XrlAtom::Value(std::move(items));
        }
    }
    return std::nullopt;
}

}  // namespace

std::string_view atom_type_name(AtomType t) {
    return kTypeNames[static_cast<size_t>(t)];
}

std::optional<AtomType> atom_type_from_name(std::string_view name) {
    for (size_t i = 0; i < std::size(kTypeNames); ++i)
        if (kTypeNames[i] == name) return static_cast<AtomType>(i);
    return std::nullopt;
}

AtomType XrlAtom::type() const {
    return static_cast<AtomType>(value_.index());
}

std::string XrlAtom::str() const {
    std::string s = name_;
    s += ':';
    s += atom_type_name(type());
    s += '=';
    s += value_text(value_);
    return s;
}

std::optional<XrlAtom> XrlAtom::parse(std::string_view text) {
    size_t colon = text.find(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    size_t eq = text.find('=', colon);
    if (eq == std::string_view::npos) return std::nullopt;
    std::string name(text.substr(0, colon));
    auto t = atom_type_from_name(text.substr(colon + 1, eq - colon - 1));
    if (!t) return std::nullopt;
    auto v = parse_value(*t, text.substr(eq + 1));
    if (!v) return std::nullopt;
    XrlAtom a;
    a.name_ = std::move(name);
    a.value_ = std::move(*v);
    return a;
}

std::string xrl_escape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (is_meta(c)) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::optional<std::string> xrl_unescape(std::string_view escaped) {
    std::string out;
    out.reserve(escaped.size());
    for (size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] == '%') {
            if (i + 2 >= escaped.size()) return std::nullopt;
            int hi = hex_digit(escaped[i + 1]);
            int lo = hex_digit(escaped[i + 2]);
            if (hi < 0 || lo < 0) return std::nullopt;
            out += static_cast<char>((hi << 4) | lo);
            i += 2;
        } else {
            out += escaped[i];
        }
    }
    return out;
}

}  // namespace xrp::xrl
