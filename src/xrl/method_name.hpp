// MethodName: the structured identity of one XRL method.
//
// Everything the IPC stack routes on — dispatcher tables, proxy
// forwarding, Finder registration — is keyed by "iface/version/method".
// Historically each layer re-parsed that string with its own chain of
// find('/') calls; MethodName parses it once, rejects malformed names at
// the edge, and regenerates the canonical forms everybody keys on.
#ifndef XRP_XRL_METHOD_NAME_HPP
#define XRP_XRL_METHOD_NAME_HPP

#include <optional>
#include <string>
#include <string_view>

namespace xrp::xrl {

struct MethodName {
    std::string iface;    // "rib"
    std::string version;  // "1.0"
    std::string method;   // "add_route"

    MethodName() = default;
    MethodName(std::string iface, std::string version, std::string method)
        : iface(std::move(iface)),
          version(std::move(version)),
          method(std::move(method)) {}

    // Parses "iface/version/method". Every part must be non-empty and the
    // method part must not contain further '/' (nested paths are not a
    // thing in XRLs; a stray '/' is always a caller bug).
    static std::optional<MethodName> parse(std::string_view full);

    // "iface/version/method" — the unit the Finder registers/resolves.
    std::string full() const { return iface + "/" + version + "/" + method; }
    // "iface/version" — the unit interface specs are keyed by.
    std::string interface_key() const { return iface + "/" + version; }

    bool operator==(const MethodName&) const = default;
};

}  // namespace xrp::xrl

#endif
