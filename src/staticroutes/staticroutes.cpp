#include "staticroutes/staticroutes.hpp"

// StaticRoutes is header-only; this TU anchors it in the build.
namespace xrp::staticroutes {}
