// StaticRoutes: the simplest routing "protocol" — operator-configured
// routes pushed into the RIB ("static", distance 1). Exists as its own
// component, exactly as in Figure 1, so the Router Manager can configure
// static routes without touching the RIB's innards.
#ifndef XRP_STATICROUTES_STATICROUTES_HPP
#define XRP_STATICROUTES_STATICROUTES_HPP

#include <map>

#include "rib/rib.hpp"

namespace xrp::staticroutes {

class StaticRoutes {
public:
    explicit StaticRoutes(rib::Rib& rib) : rib_(rib) {}

    bool add(const net::IPv4Net& net, net::IPv4 nexthop,
             uint32_t metric = 1) {
        if (!rib_.add_route("static", net, nexthop, metric)) return false;
        routes_[net] = {nexthop, metric};
        return true;
    }

    bool remove(const net::IPv4Net& net) {
        if (routes_.erase(net) == 0) return false;
        rib_.delete_route("static", net);
        return true;
    }

    size_t size() const { return routes_.size(); }

    template <class Fn>
    void for_each(Fn&& fn) const {
        for (const auto& [net, r] : routes_) fn(net, r.nexthop, r.metric);
    }

private:
    struct Entry {
        net::IPv4 nexthop;
        uint32_t metric;
    };
    rib::Rib& rib_;
    std::map<net::IPv4Net, Entry> routes_;
};

}  // namespace xrp::staticroutes

#endif
