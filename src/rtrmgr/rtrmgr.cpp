#include "rtrmgr/rtrmgr.hpp"

namespace xrp::rtrmgr {

using net::IPv4;
using net::IPv4Net;
using xrl::Xrl;
using xrl::XrlArgs;

Router::Router(std::string name, ev::EventLoop& loop)
    : name_(std::move(name)), plexus_(loop) {
    // Journal events from every component of this router carry its name.
    plexus_.node = name_;
    plexus_.faults.set_node(name_);
    // Assembly order mirrors a real boot: FEA first (it owns the hardware
    // abstraction), then the RIB (which needs the FEA), then protocols.
    fea_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "fea", true);
    fea_ = std::make_unique<fea::Fea>(plexus_.loop);
    fea_->set_node(name_);
    fea::bind_fea_xrl(*fea_, *fea_xr_);
    fea_xr_->finalize();

    rib_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rib", true);
    rib_ = std::make_unique<rib::Rib>(
        plexus_.loop, std::make_unique<rib::XrlFeaHandle>(*rib_xr_));
    rib_->set_node(name_);
    rib::bind_rib_xrl(*rib_, *rib_xr_);
    rib_xr_->finalize();

    rip_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rip", true);
    rip_ = std::make_unique<rip::RipProcess>(
        plexus_.loop, *fea_, rip::RipProcess::Config{},
        std::make_unique<rip::XrlRibClient>(*rip_xr_));
    rip_xr_->finalize();

    ospf_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "ospf", true);
    ospf_ = std::make_unique<ospf::OspfProcess>(
        plexus_.loop, *fea_, ospf::OspfProcess::Config{},
        std::make_unique<ospf::XrlRibClient>(*ospf_xr_));
    ospf_->set_node(name_);
    ospf::bind_ospf_xrl(*ospf_, *ospf_xr_);
    ospf_xr_->finalize();

    mgr_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rtrmgr", true);
    mgr_xr_->finalize();

    supervise_components();
}

Router::~Router() = default;

bool Router::configure(const std::string& config_text, std::string* error) {
    auto tree = ConfigTree::parse(config_text, error);
    if (!tree) return false;
    return configure(*tree, error);
}

bool Router::configure(const ConfigTree& tree, std::string* error) {
    if (!validate(tree, error)) return false;
    previous_ = running_;
    if (!apply(tree, error)) return false;
    running_ = tree;
    return true;
}

bool Router::rollback(std::string* error) {
    ConfigTree target = previous_;
    return configure(target, error);
}

namespace {

bool fail(std::string* error, std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
}

bool valid_grace_leaf(const ConfigNode& c) {
    return c.args.size() == 1 && std::atoi(c.args[0].c_str()) > 0;
}

std::set<std::string> rip_interfaces(const ConfigTree& t) {
    std::set<std::string> out;
    if (const ConfigNode* r = t.find("protocols/rip"))
        for (const ConfigNode& c : r->children)
            if (c.name == "interface") out.insert(c.args[0]);
    return out;
}

std::map<std::string, uint32_t> ospf_interfaces(const ConfigTree& t) {
    std::map<std::string, uint32_t> out;
    if (const ConfigNode* o = t.find("protocols/ospf"))
        for (const ConfigNode& c : o->children)
            if (c.name == "interface") {
                uint32_t cost = 1;
                if (auto v = c.leaf_value("cost"))
                    cost = static_cast<uint32_t>(std::atoi(v->c_str()));
                out[c.args[0]] = cost;
            }
    return out;
}

}  // namespace

bool Router::validate(const ConfigTree& tree, std::string* error) const {
    // Crash-loop breaker surfacing: a component the Supervisor gave up on
    // makes the router's state ambiguous, so commits are refused until an
    // operator acknowledges (Supervisor::clear_failed re-arms the breaker
    // and retries the restart).
    if (supervisor_ != nullptr && supervisor_->any_failed()) {
        std::string who;
        for (const std::string& cls : supervisor_->failed())
            who += (who.empty() ? "" : ", ") + cls;
        return fail(error, "component(s) failed (crash-loop breaker): " +
                               who + "; clear_failed() to retry");
    }
    for (const ConfigNode& top : tree.root().children) {
        if (top.name == "interfaces") {
            for (const ConfigNode& itf : top.children) {
                auto addr = itf.leaf_value("address");
                if (!addr || !IPv4Net::parse(*addr))
                    return fail(error, "interface " + itf.name +
                                           ": bad or missing address");
            }
        } else if (top.name == "protocols") {
            for (const ConfigNode& proto : top.children) {
                if (proto.name == "static") {
                    for (const ConfigNode& r : proto.children) {
                        if (r.name != "route" || r.args.size() != 1 ||
                            !IPv4Net::parse(r.args[0]))
                            return fail(error, "static: bad route statement");
                        auto nh = r.leaf_value("nexthop");
                        if (!nh || !IPv4::parse(*nh))
                            return fail(error, "static route " + r.args[0] +
                                                   ": bad nexthop");
                    }
                } else if (proto.name == "rip") {
                    for (const ConfigNode& c : proto.children) {
                        if (c.name == "grace-period") {
                            if (!valid_grace_leaf(c))
                                return fail(error, "rip: bad grace-period");
                        } else if (c.name != "interface" ||
                                   c.args.size() != 1) {
                            return fail(
                                error,
                                "rip: expected 'interface <name>' or "
                                "'grace-period <seconds>'");
                        }
                    }
                } else if (proto.name == "ospf") {
                    for (const ConfigNode& c : proto.children) {
                        if (c.name == "grace-period") {
                            if (!valid_grace_leaf(c))
                                return fail(error, "ospf: bad grace-period");
                        } else if (c.name == "router-id") {
                            if (c.args.size() != 1 || !IPv4::parse(c.args[0]))
                                return fail(error, "ospf: bad router-id");
                        } else if (c.name == "max-paths") {
                            if (c.args.size() != 1 ||
                                std::atoi(c.args[0].c_str()) <= 0)
                                return fail(error, "ospf: bad max-paths");
                        } else if (c.name == "interface") {
                            if (c.args.size() != 1)
                                return fail(error,
                                            "ospf: expected 'interface <name>'");
                            if (auto cost = c.leaf_value("cost");
                                cost && std::atoi(cost->c_str()) <= 0)
                                return fail(error, "ospf: interface " +
                                                       c.args[0] +
                                                       ": bad cost");
                        } else {
                            return fail(error,
                                        "ospf: unknown statement: " + c.name);
                        }
                    }
                } else if (proto.name == "bgp") {
                    if (const ConfigNode* g = proto.find("grace-period"))
                        if (!valid_grace_leaf(*g))
                            return fail(error, "bgp: bad grace-period");
                    auto as = proto.leaf_value("local-as");
                    auto id = proto.leaf_value("bgp-id");
                    if (!as || std::atoi(as->c_str()) <= 0)
                        return fail(error, "bgp: bad or missing local-as");
                    if (!id || !IPv4::parse(*id))
                        return fail(error, "bgp: bad or missing bgp-id");
                    if (bgp_ != nullptr) {
                        // The core BGP identity is fixed at creation.
                        if (static_cast<bgp::As>(std::atoi(as->c_str())) !=
                                bgp_->config().local_as ||
                            IPv4::must_parse(*id) != bgp_->config().bgp_id)
                            return fail(error,
                                        "bgp: local-as/bgp-id cannot change "
                                        "at runtime");
                    }
                } else {
                    return fail(error, "unknown protocol: " + proto.name);
                }
            }
        } else {
            return fail(error, "unknown section: " + top.name);
        }
    }
    // Interface removal is not supported (sessions would dangle).
    if (const ConfigNode* old_ifs = running_.find("interfaces")) {
        const ConfigNode* new_ifs = tree.find("interfaces");
        for (const ConfigNode& itf : old_ifs->children)
            if (new_ifs == nullptr || new_ifs->find(itf.name) == nullptr)
                return fail(error,
                            "interface " + itf.name + " cannot be removed");
    }
    return true;
}

bool Router::apply(const ConfigTree& tree, std::string* error) {
    // ---- interfaces (additive) ----------------------------------------
    if (const ConfigNode* ifs = tree.find("interfaces")) {
        for (const ConfigNode& itf : ifs->children) {
            if (fea_->interfaces().find(itf.name) != nullptr) continue;
            IPv4Net addr = IPv4Net::must_parse(*itf.leaf_value("address"));
            // leaf_value validated; address keeps host bits via raw parse.
            size_t slash = itf.leaf_value("address")->find('/');
            IPv4 host = IPv4::must_parse(
                itf.leaf_value("address")->substr(0, slash));
            fea_->interfaces().add_interface(itf.name, host,
                                             addr.prefix_len());
            // A configured interface originates its connected route; this
            // is what makes directly-attached BGP nexthops resolvable.
            XrlArgs args;
            args.add("protocol", std::string("connected"))
                .add("net", addr)
                .add("nexthop", host)
                .add("metric", uint32_t{0});
            // Config-driven route pushes are idempotent; let the call
            // contract retry them so one dropped XRL can't desync the RIB
            // from the running config.
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "add_route", args),
                ipc::CallOptions::reliable());
        }
    }

    // ---- static routes (diffed, applied via XRLs to the RIB) ------------
    auto collect_static = [](const ConfigTree& t) {
        std::map<IPv4Net, IPv4> out;
        if (const ConfigNode* s = t.find("protocols/static"))
            for (const ConfigNode& r : s->children)
                out[IPv4Net::must_parse(r.args[0])] =
                    IPv4::must_parse(*r.leaf_value("nexthop"));
        return out;
    };
    auto old_static = collect_static(running_);
    auto new_static = collect_static(tree);
    for (const auto& [net, nh] : old_static) {
        auto it = new_static.find(net);
        if (it == new_static.end() || !(it->second == nh)) {
            XrlArgs args;
            args.add("protocol", std::string("static")).add("net", net);
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "delete_route", args),
                ipc::CallOptions::reliable());
        }
    }
    for (const auto& [net, nh] : new_static) {
        auto it = old_static.find(net);
        if (it == old_static.end() || !(it->second == nh)) {
            XrlArgs args;
            args.add("protocol", std::string("static"))
                .add("net", net)
                .add("nexthop", nh)
                .add("metric", uint32_t{1});
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "add_route", args),
                ipc::CallOptions::reliable());
        }
    }

    // ---- RIP interfaces (diffed) ----------------------------------------
    auto old_rip = rip_interfaces(running_);
    auto new_rip = rip_interfaces(tree);
    for (const std::string& ifname : old_rip)
        if (new_rip.count(ifname) == 0) rip_->disable_interface(ifname);
    for (const std::string& ifname : new_rip)
        if (old_rip.count(ifname) == 0) rip_->enable_interface(ifname);

    // ---- OSPF interfaces (diffed; costs applied in place) ----------------
    if (const ConfigNode* o = tree.find("protocols/ospf")) {
        if (auto rid = o->leaf_value("router-id"))
            if (!ospf_->set_router_id(IPv4::must_parse(*rid)))
                return fail(error,
                            "ospf: router-id cannot change while interfaces "
                            "are enabled");
        // ECMP width; changing it reschedules SPF with the new clamp.
        if (auto mp = o->leaf_value("max-paths"))
            ospf_->set_max_paths(
                static_cast<uint32_t>(std::atoi(mp->c_str())));
    }
    auto old_ospf = ospf_interfaces(running_);
    auto new_ospf = ospf_interfaces(tree);
    for (const auto& [ifname, cost] : old_ospf)
        if (new_ospf.find(ifname) == new_ospf.end())
            ospf_->disable_interface(ifname);
    for (const auto& [ifname, cost] : new_ospf) {
        auto it = old_ospf.find(ifname);
        if (it == old_ospf.end())
            ospf_->enable_interface(ifname, cost);
        else if (it->second != cost)
            ospf_->set_interface_cost(ifname, cost);
    }

    // ---- BGP (created once) ----------------------------------------------
    if (const ConfigNode* b = tree.find("protocols/bgp")) {
        if (bgp_ == nullptr) {
            bgp::BgpProcess::Config cfg;
            cfg.local_as = static_cast<bgp::As>(
                std::atoi(b->leaf_value("local-as")->c_str()));
            cfg.bgp_id = IPv4::must_parse(*b->leaf_value("bgp-id"));
            if (b->find("damping") != nullptr) cfg.enable_damping = true;
            if (b->find("multipath") != nullptr) cfg.multipath = true;
            bgp_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "bgp", true);
            bgp_ = std::make_unique<bgp::BgpProcess>(
                plexus_.loop, cfg,
                std::make_unique<bgp::XrlRibHandle>(*bgp_xr_));
            bgp::bind_bgp_xrl(*bgp_, *bgp_xr_);
            bgp_xr_->finalize();
        }
        // network statements: originate into BGP.
        for (const ConfigNode& c : b->children)
            if (c.name == "network" && c.args.size() == 1) {
                auto net = IPv4Net::parse(c.args[0]);
                if (net) bgp_->originate(*net, bgp_->config().bgp_id);
            }
        supervise_bgp();
    }

    // ---- graceful-restart grace periods ---------------------------------
    // `grace-period <seconds>;` in a protocol section sets how long the
    // RIB preserves that protocol's routes after its component dies.
    auto apply_grace = [&](const char* section,
                           std::initializer_list<const char*> protocols) {
        const ConfigNode* n =
            tree.find(std::string("protocols/") + section);
        if (n == nullptr) return;
        auto g = n->leaf_value("grace-period");
        if (!g) return;
        for (const char* proto : protocols) {
            XrlArgs args;
            args.add("protocol", std::string(proto))
                .add("seconds",
                     static_cast<uint32_t>(std::atoi(g->c_str())));
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "set_grace_period", args),
                ipc::CallOptions::reliable());
        }
    };
    apply_grace("rip", {"rip"});
    apply_grace("ospf", {"ospf"});
    apply_grace("bgp", {"ebgp", "ibgp"});
    return true;
}

void Router::connect_bgp(Router& a, Router& b, ev::Duration latency) {
    if (a.bgp() == nullptr || b.bgp() == nullptr) return;
    auto [ta, tb] = bgp::PipeTransport::make_pair(a.plexus_.loop,
                                                  b.plexus_.loop, latency);
    bgp::BgpPeer::Config ca;
    ca.local_id = a.bgp()->config().bgp_id;
    ca.peer_addr = b.bgp()->config().bgp_id;
    ca.local_as = a.bgp()->config().local_as;
    ca.peer_as = b.bgp()->config().local_as;
    bgp::BgpPeer::Config cb;
    cb.local_id = b.bgp()->config().bgp_id;
    cb.peer_addr = a.bgp()->config().bgp_id;
    cb.local_as = b.bgp()->config().local_as;
    cb.peer_as = a.bgp()->config().local_as;
    int ida = a.bgp()->add_peer(ca, std::move(ta));
    int idb = b.bgp()->add_peer(cb, std::move(tb));
    // Remember the session on both sides so a BgpProcess restart can
    // rewire it (see restart_bgp).
    a.bgp_links_.push_back({&b, latency, ida, idb});
    b.bgp_links_.push_back({&a, latency, idb, ida});
}

// ---- component supervision -----------------------------------------------

void Router::supervise_components() {
    supervisor_ = std::make_unique<Supervisor>(plexus_, *mgr_xr_);

    Supervisor::Spec rip_spec;
    rip_spec.cls = "rip";
    rip_spec.protocols = {"rip"};
    rip_spec.restart = [this] { restart_rip(); };
    rip_spec.resynced = [this] {
        // enable_interface sent a whole-table request on restart; any
        // inbound packet means neighbors answered it. With no interfaces
        // configured there is nothing to relearn.
        return rip_interfaces(running_).empty() ||
               rip_->stats().packets_in > 0;
    };
    supervisor_->supervise(std::move(rip_spec));

    Supervisor::Spec ospf_spec;
    ospf_spec.cls = "ospf";
    ospf_spec.protocols = {"ospf"};
    ospf_spec.restart = [this] { restart_ospf(); };
    ospf_spec.resynced = [this] {
        // Full adjacency means the database exchange completed (we hold
        // the area's LSAs again); a first SPF run means routes flowed.
        return ospf_interfaces(running_).empty() ||
               (ospf_->full_neighbor_count() > 0 &&
                ospf_->stats().spf_runs > 0);
    };
    supervisor_->supervise(std::move(ospf_spec));
}

void Router::supervise_bgp() {
    if (supervisor_ == nullptr || supervisor_->supervising("bgp")) return;
    Supervisor::Spec spec;
    spec.cls = "bgp";
    spec.protocols = {"ebgp", "ibgp"};
    spec.restart = [this] { restart_bgp(); };
    spec.resynced = [this] {
        // Established on every configured session: the peers' table dumps
        // are queued/flowing; the supervisor's settle delay lets them
        // drain before the RIB sweeps.
        for (const BgpLink& l : bgp_links_) {
            bgp::BgpPeer* p = bgp_->peer_session(l.local_id);
            if (p == nullptr || !p->established()) return false;
        }
        return true;
    };
    supervisor_->supervise(std::move(spec));
}

void Router::restart_rip() {
    // The process references its XrlRouter (RIB client): destroy it
    // first. Destroying the XrlRouter unregisters the dead instance so
    // the fresh one can take the sole-class slot.
    rip_.reset();
    rip_xr_.reset();
    rip_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rip", true);
    rip_ = std::make_unique<rip::RipProcess>(
        plexus_.loop, *fea_, rip::RipProcess::Config{},
        std::make_unique<rip::XrlRibClient>(*rip_xr_));
    rip_xr_->finalize();
    // Re-apply the running config; each enable sends a whole-table
    // request — RIP's natural resync.
    for (const std::string& ifname : rip_interfaces(running_))
        rip_->enable_interface(ifname);
}

void Router::restart_ospf() {
    ospf_.reset();
    ospf_xr_.reset();
    ospf_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "ospf", true);
    ospf_ = std::make_unique<ospf::OspfProcess>(
        plexus_.loop, *fea_, ospf::OspfProcess::Config{},
        std::make_unique<ospf::XrlRibClient>(*ospf_xr_));
    ospf_->set_node(name_);
    ospf::bind_ospf_xrl(*ospf_, *ospf_xr_);
    ospf_xr_->finalize();
    if (const ConfigNode* o = running_.find("protocols/ospf")) {
        if (auto rid = o->leaf_value("router-id"))
            ospf_->set_router_id(IPv4::must_parse(*rid));
        if (auto mp = o->leaf_value("max-paths"))
            ospf_->set_max_paths(
                static_cast<uint32_t>(std::atoi(mp->c_str())));
    }
    // Re-enabling interfaces restarts hellos; adjacency re-formation and
    // database exchange re-flood the area's LSAs into the fresh Lsdb
    // (receiving our own pre-restart LSAs bumps our sequence numbers).
    for (const auto& [ifname, cost] : ospf_interfaces(running_))
        ospf_->enable_interface(ifname, cost);
}

void Router::restart_bgp() {
    if (bgp_ == nullptr) return;
    bgp::BgpProcess::Config cfg = bgp_->config();
    bgp_.reset();
    bgp_xr_.reset();
    bgp_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "bgp", true);
    bgp_ = std::make_unique<bgp::BgpProcess>(
        plexus_.loop, cfg, std::make_unique<bgp::XrlRibHandle>(*bgp_xr_));
    bgp::bind_bgp_xrl(*bgp_, *bgp_xr_);
    bgp_xr_->finalize();
    // Re-originate configured networks.
    if (const ConfigNode* b = running_.find("protocols/bgp"))
        for (const ConfigNode& c : b->children)
            if (c.name == "network" && c.args.size() == 1)
                if (auto net = IPv4Net::parse(c.args[0]))
                    bgp_->originate(*net, bgp_->config().bgp_id);
    // Rewire every remembered session: the peer drops its half-dead end,
    // both sides get fresh pipes, and establishment triggers the peer's
    // full table dump — BGP's resync.
    for (BgpLink& l : bgp_links_) {
        l.peer->bgp()->remove_peer(l.remote_id);
        auto [tl, tr] = bgp::PipeTransport::make_pair(
            plexus_.loop, l.peer->plexus_.loop, l.latency);
        bgp::BgpPeer::Config cl;
        cl.local_id = bgp_->config().bgp_id;
        cl.peer_addr = l.peer->bgp()->config().bgp_id;
        cl.local_as = bgp_->config().local_as;
        cl.peer_as = l.peer->bgp()->config().local_as;
        bgp::BgpPeer::Config cr;
        cr.local_id = l.peer->bgp()->config().bgp_id;
        cr.peer_addr = bgp_->config().bgp_id;
        cr.local_as = l.peer->bgp()->config().local_as;
        cr.peer_as = bgp_->config().local_as;
        l.local_id = bgp_->add_peer(cl, std::move(tl));
        l.remote_id = l.peer->bgp()->add_peer(cr, std::move(tr));
        for (BgpLink& rl : l.peer->bgp_links_)
            if (rl.peer == this) {
                rl.local_id = l.remote_id;
                rl.remote_id = l.local_id;
            }
    }
}

}  // namespace xrp::rtrmgr
