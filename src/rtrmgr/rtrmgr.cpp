#include "rtrmgr/rtrmgr.hpp"

namespace xrp::rtrmgr {

using net::IPv4;
using net::IPv4Net;
using xrl::Xrl;
using xrl::XrlArgs;

Router::Router(std::string name, ev::EventLoop& loop)
    : name_(std::move(name)), plexus_(loop) {
    // Assembly order mirrors a real boot: FEA first (it owns the hardware
    // abstraction), then the RIB (which needs the FEA), then protocols.
    fea_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "fea", true);
    fea_ = std::make_unique<fea::Fea>(plexus_.loop);
    fea::bind_fea_xrl(*fea_, *fea_xr_);
    fea_xr_->finalize();

    rib_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rib", true);
    rib_ = std::make_unique<rib::Rib>(
        plexus_.loop, std::make_unique<rib::XrlFeaHandle>(*rib_xr_));
    rib::bind_rib_xrl(*rib_, *rib_xr_);
    rib_xr_->finalize();

    rip_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rip", true);
    rip_ = std::make_unique<rip::RipProcess>(
        plexus_.loop, *fea_, rip::RipProcess::Config{},
        std::make_unique<rip::XrlRibClient>(*rip_xr_));
    rip_xr_->finalize();

    ospf_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "ospf", true);
    ospf_ = std::make_unique<ospf::OspfProcess>(
        plexus_.loop, *fea_, ospf::OspfProcess::Config{},
        std::make_unique<ospf::XrlRibClient>(*ospf_xr_));
    ospf::bind_ospf_xrl(*ospf_, *ospf_xr_);
    ospf_xr_->finalize();

    mgr_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rtrmgr", true);
    mgr_xr_->finalize();
}

Router::~Router() = default;

bool Router::configure(const std::string& config_text, std::string* error) {
    auto tree = ConfigTree::parse(config_text, error);
    if (!tree) return false;
    return configure(*tree, error);
}

bool Router::configure(const ConfigTree& tree, std::string* error) {
    if (!validate(tree, error)) return false;
    previous_ = running_;
    if (!apply(tree, error)) return false;
    running_ = tree;
    return true;
}

bool Router::rollback(std::string* error) {
    ConfigTree target = previous_;
    return configure(target, error);
}

namespace {

bool fail(std::string* error, std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
}

}  // namespace

bool Router::validate(const ConfigTree& tree, std::string* error) const {
    for (const ConfigNode& top : tree.root().children) {
        if (top.name == "interfaces") {
            for (const ConfigNode& itf : top.children) {
                auto addr = itf.leaf_value("address");
                if (!addr || !IPv4Net::parse(*addr))
                    return fail(error, "interface " + itf.name +
                                           ": bad or missing address");
            }
        } else if (top.name == "protocols") {
            for (const ConfigNode& proto : top.children) {
                if (proto.name == "static") {
                    for (const ConfigNode& r : proto.children) {
                        if (r.name != "route" || r.args.size() != 1 ||
                            !IPv4Net::parse(r.args[0]))
                            return fail(error, "static: bad route statement");
                        auto nh = r.leaf_value("nexthop");
                        if (!nh || !IPv4::parse(*nh))
                            return fail(error, "static route " + r.args[0] +
                                                   ": bad nexthop");
                    }
                } else if (proto.name == "rip") {
                    for (const ConfigNode& c : proto.children)
                        if (c.name != "interface" || c.args.size() != 1)
                            return fail(error, "rip: expected 'interface <name>'");
                } else if (proto.name == "ospf") {
                    for (const ConfigNode& c : proto.children) {
                        if (c.name == "router-id") {
                            if (c.args.size() != 1 || !IPv4::parse(c.args[0]))
                                return fail(error, "ospf: bad router-id");
                        } else if (c.name == "interface") {
                            if (c.args.size() != 1)
                                return fail(error,
                                            "ospf: expected 'interface <name>'");
                            if (auto cost = c.leaf_value("cost");
                                cost && std::atoi(cost->c_str()) <= 0)
                                return fail(error, "ospf: interface " +
                                                       c.args[0] +
                                                       ": bad cost");
                        } else {
                            return fail(error,
                                        "ospf: unknown statement: " + c.name);
                        }
                    }
                } else if (proto.name == "bgp") {
                    auto as = proto.leaf_value("local-as");
                    auto id = proto.leaf_value("bgp-id");
                    if (!as || std::atoi(as->c_str()) <= 0)
                        return fail(error, "bgp: bad or missing local-as");
                    if (!id || !IPv4::parse(*id))
                        return fail(error, "bgp: bad or missing bgp-id");
                    if (bgp_ != nullptr) {
                        // The core BGP identity is fixed at creation.
                        if (static_cast<bgp::As>(std::atoi(as->c_str())) !=
                                bgp_->config().local_as ||
                            IPv4::must_parse(*id) != bgp_->config().bgp_id)
                            return fail(error,
                                        "bgp: local-as/bgp-id cannot change "
                                        "at runtime");
                    }
                } else {
                    return fail(error, "unknown protocol: " + proto.name);
                }
            }
        } else {
            return fail(error, "unknown section: " + top.name);
        }
    }
    // Interface removal is not supported (sessions would dangle).
    if (const ConfigNode* old_ifs = running_.find("interfaces")) {
        const ConfigNode* new_ifs = tree.find("interfaces");
        for (const ConfigNode& itf : old_ifs->children)
            if (new_ifs == nullptr || new_ifs->find(itf.name) == nullptr)
                return fail(error,
                            "interface " + itf.name + " cannot be removed");
    }
    return true;
}

bool Router::apply(const ConfigTree& tree, std::string* error) {
    // ---- interfaces (additive) ----------------------------------------
    if (const ConfigNode* ifs = tree.find("interfaces")) {
        for (const ConfigNode& itf : ifs->children) {
            if (fea_->interfaces().find(itf.name) != nullptr) continue;
            IPv4Net addr = IPv4Net::must_parse(*itf.leaf_value("address"));
            // leaf_value validated; address keeps host bits via raw parse.
            size_t slash = itf.leaf_value("address")->find('/');
            IPv4 host = IPv4::must_parse(
                itf.leaf_value("address")->substr(0, slash));
            fea_->interfaces().add_interface(itf.name, host,
                                             addr.prefix_len());
            // A configured interface originates its connected route; this
            // is what makes directly-attached BGP nexthops resolvable.
            XrlArgs args;
            args.add("protocol", std::string("connected"))
                .add("net", addr)
                .add("nexthop", host)
                .add("metric", uint32_t{0});
            // Config-driven route pushes are idempotent; let the call
            // contract retry them so one dropped XRL can't desync the RIB
            // from the running config.
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "add_route", args),
                ipc::CallOptions::reliable());
        }
    }

    // ---- static routes (diffed, applied via XRLs to the RIB) ------------
    auto collect_static = [](const ConfigTree& t) {
        std::map<IPv4Net, IPv4> out;
        if (const ConfigNode* s = t.find("protocols/static"))
            for (const ConfigNode& r : s->children)
                out[IPv4Net::must_parse(r.args[0])] =
                    IPv4::must_parse(*r.leaf_value("nexthop"));
        return out;
    };
    auto old_static = collect_static(running_);
    auto new_static = collect_static(tree);
    for (const auto& [net, nh] : old_static) {
        auto it = new_static.find(net);
        if (it == new_static.end() || !(it->second == nh)) {
            XrlArgs args;
            args.add("protocol", std::string("static")).add("net", net);
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "delete_route", args),
                ipc::CallOptions::reliable());
        }
    }
    for (const auto& [net, nh] : new_static) {
        auto it = old_static.find(net);
        if (it == old_static.end() || !(it->second == nh)) {
            XrlArgs args;
            args.add("protocol", std::string("static"))
                .add("net", net)
                .add("nexthop", nh)
                .add("metric", uint32_t{1});
            mgr_xr_->call_oneway(
                Xrl::generic("rib", "rib", "1.0", "add_route", args),
                ipc::CallOptions::reliable());
        }
    }

    // ---- RIP interfaces (diffed) ----------------------------------------
    auto collect_rip = [](const ConfigTree& t) {
        std::set<std::string> out;
        if (const ConfigNode* r = t.find("protocols/rip"))
            for (const ConfigNode& c : r->children) out.insert(c.args[0]);
        return out;
    };
    auto old_rip = collect_rip(running_);
    auto new_rip = collect_rip(tree);
    for (const std::string& ifname : old_rip)
        if (new_rip.count(ifname) == 0) rip_->disable_interface(ifname);
    for (const std::string& ifname : new_rip)
        if (old_rip.count(ifname) == 0) rip_->enable_interface(ifname);

    // ---- OSPF interfaces (diffed; costs applied in place) ----------------
    if (const ConfigNode* o = tree.find("protocols/ospf"))
        if (auto rid = o->leaf_value("router-id"))
            if (!ospf_->set_router_id(IPv4::must_parse(*rid)))
                return fail(error,
                            "ospf: router-id cannot change while interfaces "
                            "are enabled");
    auto collect_ospf = [](const ConfigTree& t) {
        std::map<std::string, uint32_t> out;
        if (const ConfigNode* o = t.find("protocols/ospf"))
            for (const ConfigNode& c : o->children)
                if (c.name == "interface") {
                    uint32_t cost = 1;
                    if (auto v = c.leaf_value("cost"))
                        cost = static_cast<uint32_t>(std::atoi(v->c_str()));
                    out[c.args[0]] = cost;
                }
        return out;
    };
    auto old_ospf = collect_ospf(running_);
    auto new_ospf = collect_ospf(tree);
    for (const auto& [ifname, cost] : old_ospf)
        if (new_ospf.find(ifname) == new_ospf.end())
            ospf_->disable_interface(ifname);
    for (const auto& [ifname, cost] : new_ospf) {
        auto it = old_ospf.find(ifname);
        if (it == old_ospf.end())
            ospf_->enable_interface(ifname, cost);
        else if (it->second != cost)
            ospf_->set_interface_cost(ifname, cost);
    }

    // ---- BGP (created once) ----------------------------------------------
    if (const ConfigNode* b = tree.find("protocols/bgp")) {
        if (bgp_ == nullptr) {
            bgp::BgpProcess::Config cfg;
            cfg.local_as = static_cast<bgp::As>(
                std::atoi(b->leaf_value("local-as")->c_str()));
            cfg.bgp_id = IPv4::must_parse(*b->leaf_value("bgp-id"));
            if (b->find("damping") != nullptr) cfg.enable_damping = true;
            bgp_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "bgp", true);
            bgp_ = std::make_unique<bgp::BgpProcess>(
                plexus_.loop, cfg,
                std::make_unique<bgp::XrlRibHandle>(*bgp_xr_));
            bgp::bind_bgp_xrl(*bgp_, *bgp_xr_);
            bgp_xr_->finalize();
        }
        // network statements: originate into BGP.
        for (const ConfigNode& c : b->children)
            if (c.name == "network" && c.args.size() == 1) {
                auto net = IPv4Net::parse(c.args[0]);
                if (net) bgp_->originate(*net, bgp_->config().bgp_id);
            }
    }
    return true;
}

void Router::connect_bgp(Router& a, Router& b, ev::Duration latency) {
    if (a.bgp() == nullptr || b.bgp() == nullptr) return;
    auto [ta, tb] = bgp::PipeTransport::make_pair(a.plexus_.loop,
                                                  b.plexus_.loop, latency);
    bgp::BgpPeer::Config ca;
    ca.local_id = a.bgp()->config().bgp_id;
    ca.peer_addr = b.bgp()->config().bgp_id;
    ca.local_as = a.bgp()->config().local_as;
    ca.peer_as = b.bgp()->config().local_as;
    bgp::BgpPeer::Config cb;
    cb.local_id = b.bgp()->config().bgp_id;
    cb.peer_addr = a.bgp()->config().bgp_id;
    cb.local_as = b.bgp()->config().local_as;
    cb.peer_as = a.bgp()->config().local_as;
    a.bgp()->add_peer(ca, std::move(ta));
    b.bgp()->add_peer(cb, std::move(tb));
}

}  // namespace xrp::rtrmgr
