// Router: the Router Manager's view of one complete router (§3, Figure 1)
// — the component that "starts, configures, and stops protocols and other
// router functionality" and "hides the router's internal structure from
// the user".
//
// One Router owns one Plexus (event loop shared, Finder, intra-process
// registry) and assembles the full control plane in it: FEA, RIB, RIP,
// static routes, and (when configured) BGP — each behind its own
// XrlRouter, coupled to the others only by XRLs. Configuration follows
// commit semantics: configure() validates the whole tree first and
// applies it only if clean; rollback() restores the previous running
// config.
#ifndef XRP_RTRMGR_RTRMGR_HPP
#define XRP_RTRMGR_RTRMGR_HPP

#include <memory>
#include <set>

#include "bgp/bgp_xrl.hpp"
#include "bgp/process.hpp"
#include "fea/fea.hpp"
#include "fea/fea_xrl.hpp"
#include "ospf/ospf.hpp"
#include "ospf/ospf_xrl.hpp"
#include "rib/rib.hpp"
#include "rib/rib_xrl.hpp"
#include "rip/rip.hpp"
#include "rip/rip_xrl.hpp"
#include "rtrmgr/configtree.hpp"
#include "rtrmgr/supervisor.hpp"

namespace xrp::rtrmgr {

class Router {
public:
    // All routers in a simulation share `loop` (and thus one clock); each
    // router still has its own Finder and component namespace.
    Router(std::string name, ev::EventLoop& loop);
    ~Router();
    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    const std::string& name() const { return name_; }
    ipc::Plexus& plexus() { return plexus_; }
    fea::Fea& fea() { return *fea_; }
    rib::Rib& rib() { return *rib_; }
    rip::RipProcess& rip() { return *rip_; }
    ospf::OspfProcess& ospf() { return *ospf_; }
    // Null until a bgp section is configured.
    bgp::BgpProcess* bgp() { return bgp_.get(); }
    // The component watchdog: health probes, restart-with-backoff,
    // graceful-restart choreography against the RIB, crash-loop breaker.
    Supervisor& supervisor() { return *supervisor_; }

    // ---- configuration (commit semantics) -------------------------------
    bool configure(const std::string& config_text, std::string* error);
    bool configure(const ConfigTree& tree, std::string* error);
    bool rollback(std::string* error);
    const ConfigTree& running_config() const { return running_; }

    // ---- topology helpers ---------------------------------------------
    void attach_link(fea::VirtualNetwork& network, int link_id,
                     const std::string& ifname) {
        fea_->attach_to_network(&network, link_id, ifname);
    }
    // Wires a BGP session between two configured routers.
    static void connect_bgp(
        Router& a, Router& b,
        ev::Duration latency = std::chrono::milliseconds(1));

private:
    bool validate(const ConfigTree& tree, std::string* error) const;
    bool apply(const ConfigTree& tree, std::string* error);

    void supervise_components();
    void supervise_bgp();
    // Component restart hooks for the Supervisor: tear down the dead
    // objects (process first — it references its XrlRouter), build fresh
    // ones, and re-apply the running configuration.
    void restart_rip();
    void restart_ospf();
    void restart_bgp();

    // One configured BGP session to a neighboring Router, remembered so a
    // restarted BgpProcess can be rewired: the peer drops its old session
    // and both sides get fresh transports. Ids are BgpProcess peer ids.
    struct BgpLink {
        Router* peer;
        ev::Duration latency;
        int local_id;
        int remote_id;
    };

    std::string name_;
    ipc::Plexus plexus_;

    std::unique_ptr<ipc::XrlRouter> fea_xr_;
    std::unique_ptr<ipc::XrlRouter> rib_xr_;
    std::unique_ptr<ipc::XrlRouter> rip_xr_;
    std::unique_ptr<ipc::XrlRouter> ospf_xr_;
    std::unique_ptr<ipc::XrlRouter> bgp_xr_;
    std::unique_ptr<ipc::XrlRouter> mgr_xr_;  // the Router Manager's own

    std::unique_ptr<fea::Fea> fea_;
    std::unique_ptr<rib::Rib> rib_;
    std::unique_ptr<rip::RipProcess> rip_;
    std::unique_ptr<ospf::OspfProcess> ospf_;
    std::unique_ptr<bgp::BgpProcess> bgp_;

    ConfigTree running_;
    ConfigTree previous_;

    std::vector<BgpLink> bgp_links_;
    // Declared last: destroyed first, so teardown of the XrlRouters above
    // cannot be mistaken for component deaths.
    std::unique_ptr<Supervisor> supervisor_;
};

}  // namespace xrp::rtrmgr

#endif
