// Supervisor: the Router Manager's component watchdog.
//
// The paper's robustness story (§3, §9) depends on the multi-process
// decomposition actually being exploited: a crashed routing protocol must
// not take the router down, and the routes it contributed must not be
// yanked out of the FIB the instant it dies — BGP alone can take minutes
// to relearn a full table. The Supervisor closes that loop:
//
//   - liveness: each supervised component is probed over common/0.1
//     get_status on a period; the reliable call contract converts a dead
//     channel into a Finder death report, and the Supervisor consumes the
//     Finder's death notifications (one watch on "*") for everyone else's
//     reports too.
//
//   - graceful restart: on death the Supervisor tells the RIB (over
//     rib/1.0) to mark the component's origins stale instead of deleting
//     them, restarts the component after an exponential backoff, reports
//     it revived (stopping the RIB's grace clock), waits for the
//     component's resync predicate, and finally reports resync complete —
//     at which point the RIB sweeps whatever the revived protocol did not
//     re-advertise.
//
//   - crash-loop breaker: a component that dies `breaker_threshold` times
//     inside `breaker_window` is marked kFailed and left down; its routes
//     age out through the RIB's grace timer. kFailed is surfaced through
//     any_failed()/failed() — the Router Manager refuses config commits
//     until an operator acknowledges via clear_failed(), which re-arms
//     the breaker and retries the restart.
//
// State machine per component:
//
//   kAlive --death--> kDead --backoff--> kRestarting --restart()-->
//   kResync --resynced() + settle--> kAlive
//     \--N deaths in window--> kFailed --clear_failed()--> kDead
//
// Death notifications provoked by our own restart (destroying the old
// XrlRouter unregisters it) are ignored: only deaths in kAlive count.
#ifndef XRP_RTRMGR_SUPERVISOR_HPP
#define XRP_RTRMGR_SUPERVISOR_HPP

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ipc/router.hpp"
#include "telemetry/metrics.hpp"

namespace xrp::rtrmgr {

class Supervisor {
public:
    enum class State { kAlive, kDead, kRestarting, kResync, kFailed };

    struct Spec {
        // Finder target class of the supervised component ("rip").
        std::string cls;
        // RIB origin protocols this component feeds ("rip"; bgp feeds
        // both "ebgp" and "ibgp").
        std::vector<std::string> protocols;
        // Destroys the dead component's objects and builds fresh ones,
        // re-applying the running configuration. Must leave the new
        // instance registered with the Finder.
        std::function<void()> restart;
        // True once the restarted component has relearned its state well
        // enough that unrefreshed RIB routes are genuinely gone.
        std::function<bool()> resynced;

        ev::Duration probe_interval = std::chrono::seconds(5);
        ev::Duration backoff_initial = std::chrono::milliseconds(500);
        ev::Duration backoff_max = std::chrono::seconds(30);
        // Breaker: this many deaths within the window trips kFailed.
        int breaker_threshold = 4;
        ev::Duration breaker_window = std::chrono::seconds(60);
        // After resynced() first returns true, wait this long before
        // telling the RIB to sweep — in-flight re-adds (a BGP table dump
        // still draining through the pipes) must land first, or the
        // sweeper would reap routes that were about to be refreshed.
        ev::Duration resync_settle = std::chrono::seconds(3);
        // Backstop: a resync that never completes (predicate never true)
        // is declared done after this long, letting the sweep reclaim the
        // stale routes rather than preserving them forever.
        ev::Duration resync_timeout = std::chrono::seconds(60);
    };

    // `xr` is the Router Manager's own XrlRouter: probes and RIB
    // notifications go out through it. Both must outlive the Supervisor.
    Supervisor(ipc::Plexus& plexus, ipc::XrlRouter& xr);
    ~Supervisor();
    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    void supervise(Spec spec);
    bool supervising(const std::string& cls) const {
        return components_.count(cls) != 0;
    }

    State state(const std::string& cls) const;
    uint64_t restart_count(const std::string& cls) const;
    bool any_failed() const;
    std::vector<std::string> failed() const;
    // Operator acknowledgment of a tripped breaker: clears the death
    // history and immediately schedules another restart attempt.
    void clear_failed(const std::string& cls);

private:
    struct Component {
        Spec spec;
        State state = State::kAlive;
        std::deque<ev::TimePoint> deaths;  // within breaker accounting
        uint32_t consecutive_failures = 0;  // resets on reaching kAlive
        uint64_t restarts = 0;
        ev::Timer probe_timer;
        ev::Timer restart_timer;
        ev::Timer resync_poll;
        ev::Timer resync_deadline;
        ev::Timer settle_timer;
        bool probe_inflight = false;
        telemetry::Counter* deaths_total = nullptr;
        telemetry::Counter* restarts_total = nullptr;
    };

    // All supervisor state lives on the manager's home loop (== the Plexus
    // loop today; the threaded router gives the manager its own).
    ev::EventLoop& loop() { return xr_.loop(); }

    void on_death(const std::string& cls);
    void schedule_restart(const std::string& cls);
    void do_restart(const std::string& cls);
    void begin_resync(const std::string& cls);
    void finish_resync(const std::string& cls);
    void start_probing(const std::string& cls);
    void probe(const std::string& cls);
    void notify_rib(const std::string& method, const Component& c);
    ev::Duration backoff_for(const Component& c) const;

    ipc::Plexus& plexus_;
    ipc::XrlRouter& xr_;
    uint64_t watch_id_ = 0;
    std::map<std::string, Component> components_;
    telemetry::Gauge* failed_gauge_ = nullptr;
};

}  // namespace xrp::rtrmgr

#endif
