// Supervisor: the Router Manager's component watchdog.
//
// The paper's robustness story (§3, §9) depends on the multi-process
// decomposition actually being exploited: a crashed routing protocol must
// not take the router down, and the routes it contributed must not be
// yanked out of the FIB the instant it dies — BGP alone can take minutes
// to relearn a full table. The Supervisor closes that loop:
//
//   - liveness: each supervised component is probed over common/0.1
//     get_status on a period; the reliable call contract converts a dead
//     channel into a Finder death report, and the Supervisor consumes the
//     Finder's death notifications (one watch on "*") for everyone else's
//     reports too.
//
//   - graceful restart: on death the Supervisor tells the RIB (over
//     rib/1.0) to mark the component's origins stale instead of deleting
//     them, restarts the component after an exponential backoff, reports
//     it revived (stopping the RIB's grace clock), waits for the
//     component's resync predicate, and finally reports resync complete —
//     at which point the RIB sweeps whatever the revived protocol did not
//     re-advertise.
//
//   - crash-loop breaker: a component that dies `breaker_threshold` times
//     inside `breaker_window` is marked kFailed and left down; its routes
//     age out through the RIB's grace timer. kFailed is surfaced through
//     any_failed()/failed() — the Router Manager refuses config commits
//     until an operator acknowledges via clear_failed(), which re-arms
//     the breaker and retries the restart.
//
// State machine per component:
//
//   kAlive --death--> kDead --backoff--> kRestarting --restart()-->
//   kResync --resynced() + settle--> kAlive
//     \--N deaths in window--> kFailed --clear_failed()--> kDead
//
// Death notifications provoked by our own restart (destroying the old
// XrlRouter unregisters it) are ignored: only deaths in kAlive count.
#ifndef XRP_RTRMGR_SUPERVISOR_HPP
#define XRP_RTRMGR_SUPERVISOR_HPP

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ipc/router.hpp"
#include "telemetry/metrics.hpp"

namespace xrp::rtrmgr {

class Supervisor {
public:
    enum class State { kAlive, kDead, kRestarting, kResync, kFailed };

    struct Spec {
        // Finder target class of the supervised component ("rip").
        std::string cls;
        // RIB origin protocols this component feeds ("rip"; bgp feeds
        // both "ebgp" and "ibgp").
        std::vector<std::string> protocols;
        // Destroys the dead component's objects and builds fresh ones,
        // re-applying the running configuration. Must leave the new
        // instance registered with the Finder.
        std::function<void()> restart;
        // True once the restarted component has relearned its state well
        // enough that unrefreshed RIB routes are genuinely gone.
        std::function<bool()> resynced;
        // Process backend (optional) — hitless binary upgrade hooks.
        // spawn_replacement() starts a NEW instance of the component
        // while the old one is still alive and serving; retire_old()
        // gracefully stops the pre-upgrade instance once the replacement
        // has resynced. Both set => upgrade(cls) is available.
        std::function<void()> spawn_replacement;
        std::function<void()> retire_old;
        // Process backend (optional): death filter. The Finder's death
        // watch reports (cls, instance); with multiple coexisting
        // instances of a class (mid-upgrade, or a corpse whose name was
        // never unregistered) only the ACTIVE instance's death may drive
        // the state machine — a retired process's orderly departure must
        // not look like a crash. Unset = every instance counts (the
        // in-process backends are sole-instance).
        std::function<bool(const std::string& instance)> owns_instance;

        ev::Duration probe_interval = std::chrono::seconds(5);
        ev::Duration backoff_initial = std::chrono::milliseconds(500);
        ev::Duration backoff_max = std::chrono::seconds(30);
        // Breaker: this many deaths within the window trips kFailed.
        int breaker_threshold = 4;
        ev::Duration breaker_window = std::chrono::seconds(60);
        // After resynced() first returns true, wait this long before
        // telling the RIB to sweep — in-flight re-adds (a BGP table dump
        // still draining through the pipes) must land first, or the
        // sweeper would reap routes that were about to be refreshed.
        ev::Duration resync_settle = std::chrono::seconds(3);
        // Backstop: a resync that never completes (predicate never true)
        // is declared done after this long, letting the sweep reclaim the
        // stale routes rather than preserving them forever.
        ev::Duration resync_timeout = std::chrono::seconds(60);
    };

    // `xr` is the Router Manager's own XrlRouter: probes and RIB
    // notifications go out through it. Both must outlive the Supervisor.
    Supervisor(ipc::Plexus& plexus, ipc::XrlRouter& xr);
    ~Supervisor();
    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    void supervise(Spec spec);
    bool supervising(const std::string& cls) const {
        return components_.count(cls) != 0;
    }

    State state(const std::string& cls) const;
    uint64_t restart_count(const std::string& cls) const;
    uint64_t upgrade_count(const std::string& cls) const;
    bool upgrading(const std::string& cls) const;
    bool any_failed() const;
    std::vector<std::string> failed() const;
    // Operator acknowledgment of a tripped breaker: clears the death
    // history and immediately schedules another restart attempt.
    void clear_failed(const std::string& cls);

    // Hitless binary upgrade (process backend). Choreography:
    //   1. origin_dead + origin_revived to the RIB — every route the
    //      component contributed is stale-stamped (new refresh
    //      generation) but the grace clock never runs: the old instance
    //      is still alive and forwarding state stays put.
    //   2. spawn_replacement() — the new binary boots, registers with the
    //      Finder (sole=false: both instances coexist), and re-feeds its
    //      table; every push lands as a refresh against the new
    //      generation.
    //   3. resync wait (spec.resynced + settle), then origin_resynced —
    //      the StaleSweeperStage reaps exactly the unrefreshed tail:
    //      routes the new binary no longer advertises.
    //   4. retire_old() — the pre-upgrade process exits cleanly; its
    //      departure is filtered by owns_instance and never counts as a
    //      death.
    // Returns false unless the component is kAlive and both upgrade
    // hooks are set.
    bool upgrade(const std::string& cls);

    // Process-backend death entry point: the ProcessHost reaped the
    // component's ACTIVE process. A clean exit (code 0 — deliberate
    // retirement, operator stop) still restarts the component but never
    // counts toward the crash-loop breaker; a crash (signal / non-zero)
    // is a death like any other. A crash while kResync aborts the resync
    // and re-enters the death path (the replacement itself died).
    void notify_exit(const std::string& cls, bool clean);

private:
    struct Component {
        Spec spec;
        State state = State::kAlive;
        std::deque<ev::TimePoint> deaths;  // within breaker accounting
        uint32_t consecutive_failures = 0;  // resets on reaching kAlive
        uint64_t restarts = 0;
        uint64_t upgrades = 0;
        bool upgrade_in_progress = false;
        ev::Timer probe_timer;
        ev::Timer restart_timer;
        ev::Timer resync_poll;
        ev::Timer resync_deadline;
        ev::Timer settle_timer;
        bool probe_inflight = false;
        telemetry::Counter* deaths_total = nullptr;
        telemetry::Counter* restarts_total = nullptr;
    };

    // All supervisor state lives on the manager's home loop (== the Plexus
    // loop today; the threaded router gives the manager its own).
    ev::EventLoop& loop() { return xr_.loop(); }

    // `crashed` distinguishes a real crash (counts toward the breaker)
    // from a deliberate clean exit (restarts, but never trips it).
    void on_death(const std::string& cls, bool crashed = true);
    void schedule_restart(const std::string& cls);
    void do_restart(const std::string& cls);
    void begin_resync(const std::string& cls);
    void finish_resync(const std::string& cls);
    void start_probing(const std::string& cls);
    void probe(const std::string& cls);
    void notify_rib(const std::string& method, const Component& c);
    ev::Duration backoff_for(const Component& c) const;

    ipc::Plexus& plexus_;
    ipc::XrlRouter& xr_;
    uint64_t watch_id_ = 0;
    std::map<std::string, Component> components_;
    telemetry::Gauge* failed_gauge_ = nullptr;
};

}  // namespace xrp::rtrmgr

#endif
