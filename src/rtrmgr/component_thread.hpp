// ComponentThread: one event loop on one std::thread.
//
// The paper's multi-process decomposition (§3) maps here onto threads:
// each routing component owns a private EventLoop driven by a dedicated
// thread, and everything crossing between components goes through the
// IPC layer (the xring family for cross-thread calls). The lifecycle is
// deliberately two-phase:
//
//   ComponentThread t(clock);
//   // ... construct the component against t.loop() from this thread:
//   //     the loop has no owner yet, so timer/fd registrations are
//   //     permitted (check_owner treats "unowned" as fine) ...
//   t.start();   // spawns the thread; it claims ownership on first
//                // run_once and parks in poll(2) when idle (hold_open)
//   ...
//   t.stop_and_join();  // request_stop + join + release_owner, after
//                       // which the constructing thread may destroy the
//                       // component's objects safely (join = sync edge)
//
// While running, the only safe ways in are loop().post()/run_on() and
// run_sync() below; any direct registration from outside aborts.
#ifndef XRP_RTRMGR_COMPONENT_THREAD_HPP
#define XRP_RTRMGR_COMPONENT_THREAD_HPP

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "ev/eventloop.hpp"

namespace xrp::rtrmgr {

class ComponentThread {
public:
    explicit ComponentThread(ev::Clock& clock) : loop_(clock) {
        // Keep run() parked when all event sources drain: a component
        // thread waits for cross-thread work instead of exiting.
        loop_.hold_open(true);
    }

    ~ComponentThread() { stop_and_join(); }
    ComponentThread(const ComponentThread&) = delete;
    ComponentThread& operator=(const ComponentThread&) = delete;

    ev::EventLoop& loop() { return loop_; }

    // Spawns the driver thread. Call after the component has been
    // constructed against loop(); from this point on, all interaction
    // must go through post()/run_sync() or IPC.
    void start() {
        if (thread_.joinable()) return;
        thread_ = std::thread([this] { loop_.run(); });
    }

    bool running() const { return thread_.joinable(); }

    // Fire-and-forget onto the component's thread.
    void post(std::function<void()> cb) { loop_.post(std::move(cb)); }

    // Runs `cb` on the component's thread and blocks until it returned.
    // Runs inline when the thread is not started yet (construction
    // phase) or when called from the component's own thread (a nested
    // run_sync must not deadlock against itself). The driver's thread id
    // is compared directly — loop ownership is claimed asynchronously on
    // the driver's first run_once, so right after start() the loop can
    // still look unowned from the caller.
    void run_sync(const std::function<void()>& cb) {
        if (!thread_.joinable() ||
            std::this_thread::get_id() == thread_.get_id()) {
            cb();
            return;
        }
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        loop_.post([&] {
            cb();
            std::lock_guard<std::mutex> lk(mu);
            done = true;
            cv.notify_one();
        });
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return done; });
    }

    // Stops the loop, joins the thread, and releases loop ownership so
    // the calling thread may tear the component down. Idempotent.
    void stop_and_join() {
        if (!thread_.joinable()) return;
        loop_.request_stop();
        thread_.join();
        loop_.release_owner();
    }

private:
    ev::EventLoop loop_;
    std::thread thread_;
};

}  // namespace xrp::rtrmgr

#endif
