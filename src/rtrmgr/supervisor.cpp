#include "rtrmgr/supervisor.hpp"

#include <algorithm>

#include "ipc/common_xrl.hpp"
#include "telemetry/journal.hpp"

namespace xrp::rtrmgr {

using xrl::Xrl;
using xrl::XrlArgs;

Supervisor::Supervisor(ipc::Plexus& plexus, ipc::XrlRouter& xr)
    : plexus_(plexus), xr_(xr) {
    failed_gauge_ = telemetry::Registry::global().gauge(
        "supervisor_failed_components");
    // One wildcard watch covers every supervised class; deaths reported
    // by anyone (a probe, a protocol's RIB push, an operator) all funnel
    // through here. Posted, not handled inline, for two reasons: the
    // Finder fires watches synchronously from report_dead — which can be
    // deep inside a call-contract completion, where restarting a component
    // would destroy objects with frames on the stack — and with threaded
    // components the report may arrive from *their* thread, while all
    // supervisor state lives on the manager's loop. post() is the
    // thread-safe seam that covers both.
    watch_id_ = plexus_.finder.watch(
        "*", [this](finder::LifetimeEvent ev, const std::string& cls,
                    const std::string& instance) {
            if (ev != finder::LifetimeEvent::kDeath) return;
            loop().post([this, cls, instance] {
                auto it = components_.find(cls);
                if (it == components_.end()) return;
                // With coexisting instances (mid-upgrade), only the
                // active one's death may drive the state machine; a
                // retiring process's orderly unregister is expected.
                if (it->second.spec.owns_instance &&
                    !it->second.spec.owns_instance(instance))
                    return;
                on_death(cls);
            });
        });
}

Supervisor::~Supervisor() { plexus_.finder.unwatch(watch_id_); }

void Supervisor::supervise(Spec spec) {
    const std::string cls = spec.cls;
    Component c;
    c.spec = std::move(spec);
    auto& reg = telemetry::Registry::global();
    c.deaths_total = reg.counter(telemetry::metric_key(
        "supervisor_deaths_total", {{"component", cls}}));
    c.restarts_total = reg.counter(telemetry::metric_key(
        "supervisor_restarts_total", {{"component", cls}}));
    components_[cls] = std::move(c);
    start_probing(cls);
}

Supervisor::State Supervisor::state(const std::string& cls) const {
    auto it = components_.find(cls);
    return it == components_.end() ? State::kAlive : it->second.state;
}

uint64_t Supervisor::restart_count(const std::string& cls) const {
    auto it = components_.find(cls);
    return it == components_.end() ? 0 : it->second.restarts;
}

uint64_t Supervisor::upgrade_count(const std::string& cls) const {
    auto it = components_.find(cls);
    return it == components_.end() ? 0 : it->second.upgrades;
}

bool Supervisor::upgrading(const std::string& cls) const {
    auto it = components_.find(cls);
    return it != components_.end() && it->second.upgrade_in_progress;
}

bool Supervisor::any_failed() const {
    for (const auto& [cls, c] : components_)
        if (c.state == State::kFailed) return true;
    return false;
}

std::vector<std::string> Supervisor::failed() const {
    std::vector<std::string> out;
    for (const auto& [cls, c] : components_)
        if (c.state == State::kFailed) out.push_back(cls);
    return out;
}

void Supervisor::clear_failed(const std::string& cls) {
    auto it = components_.find(cls);
    if (it == components_.end() || it->second.state != State::kFailed) return;
    Component& c = it->second;
    c.deaths.clear();
    c.consecutive_failures = 0;
    c.state = State::kDead;
    failed_gauge_->add(-1);
    schedule_restart(cls);
}

void Supervisor::on_death(const std::string& cls, bool crashed) {
    auto it = components_.find(cls);
    if (it == components_.end()) return;
    Component& c = it->second;
    // Only deaths of a believed-alive component count: our own restart
    // destroys the old XrlRouter (one death event), and a probe racing a
    // restart can re-report a corpse we are already burying.
    if (c.state != State::kAlive) return;
    c.state = State::kDead;
    c.upgrade_in_progress = false;
    c.probe_timer.unschedule();
    c.deaths_total->inc();
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop().now(), telemetry::JournalKind::kDeath, plexus_.node,
            "supervisor", cls, crashed ? "" : "clean");

    const ev::TimePoint now = loop().now();
    // Breaker accounting counts CRASHES only: a deliberate clean exit
    // (upgrade retirement, operator stop-and-restart) must never push a
    // healthy component toward kFailed.
    if (crashed) {
        c.deaths.push_back(now);
        while (!c.deaths.empty() &&
               now - c.deaths.front() > c.spec.breaker_window)
            c.deaths.pop_front();
    }

    // Graceful restart, step 1: the RIB preserves this component's routes
    // as stale and starts the grace clock. This must go out even when the
    // breaker trips below — grace expiry is exactly how a failed
    // component's routes eventually age out.
    notify_rib("origin_dead", c);

    if (crashed &&
        static_cast<int>(c.deaths.size()) >= c.spec.breaker_threshold) {
        c.state = State::kFailed;
        failed_gauge_->add(1);
        if (telemetry::journal_enabled())
            telemetry::Journal::current().record(
                now, telemetry::JournalKind::kBreakerTrip, plexus_.node,
                "supervisor", cls, {},
                static_cast<int64_t>(c.deaths.size()));
        return;
    }
    schedule_restart(cls);
}

void Supervisor::notify_exit(const std::string& cls, bool clean) {
    auto it = components_.find(cls);
    if (it == components_.end()) return;
    Component& c = it->second;
    if (c.state == State::kAlive) {
        on_death(cls, /*crashed=*/!clean);
        return;
    }
    if (clean && (c.state == State::kDead || c.state == State::kRestarting ||
                  c.state == State::kFailed)) {
        // The death already drove the state machine through a channel
        // that cannot see wait status — the Finder noticed the dropped
        // connection, or a probe failed hard — and on_death classified
        // it as a crash by default. The exit status is authoritative:
        // this was a deliberate clean exit, so retract the breaker entry
        // it charged. If that entry was the one that tripped the
        // breaker, un-trip and resume the restart the component was
        // owed all along.
        if (!c.deaths.empty()) c.deaths.pop_back();
        if (c.state == State::kFailed) {
            c.state = State::kDead;
            failed_gauge_->add(-1);
            if (telemetry::journal_enabled())
                telemetry::Journal::current().record(
                    loop().now(), telemetry::JournalKind::kDeath,
                    plexus_.node, "supervisor", cls, "clean-reclassified");
            schedule_restart(cls);
        }
        return;
    }
    if (c.state == State::kResync && !clean) {
        // The restarted (or replacement) process itself crashed before
        // resync completed. Abort the resync — sweeping now would reap
        // every stale route with nobody feeding replacements — and run
        // the death path again.
        c.resync_poll.unschedule();
        c.resync_deadline.unschedule();
        c.settle_timer.unschedule();
        c.upgrade_in_progress = false;
        c.state = State::kAlive;  // re-arm the guard; this death counts
        on_death(cls, /*crashed=*/true);
    }
    // Any other state: a death is already being handled; the extra exit
    // report is the same corpse seen through a second channel.
}

bool Supervisor::upgrade(const std::string& cls) {
    auto it = components_.find(cls);
    if (it == components_.end()) return false;
    Component& c = it->second;
    if (c.state != State::kAlive || !c.spec.spawn_replacement ||
        !c.spec.retire_old)
        return false;
    c.upgrade_in_progress = true;
    c.probe_timer.unschedule();
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop().now(), telemetry::JournalKind::kRestart, plexus_.node,
            "supervisor", cls, "upgrade");
    // Hitless choreography, order is the whole point: stale-stamp FIRST
    // (origin_dead bumps the origin's refresh generation — everything the
    // component ever contributed is now stale), revive IMMEDIATELY (the
    // old instance is alive and forwarding; the grace clock must not
    // run), and only THEN boot the replacement — so every route the new
    // binary pushes lands as a refresh against the new generation, and
    // the eventual sweep reaps exactly the routes it no longer
    // advertises. Doing this after the spawn would race the new
    // instance's table feed and stale-stamp fresh routes.
    notify_rib("origin_dead", c);
    notify_rib("origin_revived", c);
    c.spec.spawn_replacement();
    begin_resync(cls);
    return true;
}

ev::Duration Supervisor::backoff_for(const Component& c) const {
    ev::Duration d = c.spec.backoff_initial;
    for (uint32_t i = 0; i < c.consecutive_failures && d < c.spec.backoff_max;
         ++i)
        d *= 2;
    return std::min(d, c.spec.backoff_max);
}

void Supervisor::schedule_restart(const std::string& cls) {
    Component& c = components_[cls];
    c.state = State::kRestarting;
    c.restart_timer = loop().set_timer(
        backoff_for(c), [this, cls] { do_restart(cls); });
}

void Supervisor::do_restart(const std::string& cls) {
    auto it = components_.find(cls);
    if (it == components_.end()) return;
    Component& c = it->second;
    if (c.state != State::kRestarting) return;
    ++c.restarts;
    ++c.consecutive_failures;
    c.restarts_total->inc();
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop().now(), telemetry::JournalKind::kRestart, plexus_.node,
            "supervisor", cls, {}, static_cast<int64_t>(c.restarts));
    c.spec.restart();
    // The fresh instance is registered; tell the RIB the protocol is back
    // (stops the grace clock) and start watching the resync.
    notify_rib("origin_revived", c);
    begin_resync(cls);
}

void Supervisor::begin_resync(const std::string& cls) {
    Component& c = components_[cls];
    c.state = State::kResync;
    c.resync_deadline = loop().set_timer(
        c.spec.resync_timeout, [this, cls] {
            // Resync never completed; sweep anyway so stale routes are
            // not preserved forever (the protocol keeps adding whatever
            // it learns later — adds are always welcome).
            auto cit = components_.find(cls);
            if (cit == components_.end() ||
                cit->second.state != State::kResync)
                return;
            cit->second.resync_poll.unschedule();
            cit->second.settle_timer.unschedule();
            finish_resync(cls);
        });
    c.resync_poll = loop().set_periodic(
        std::chrono::milliseconds(500), [this, cls] {
            auto cit = components_.find(cls);
            if (cit == components_.end() ||
                cit->second.state != State::kResync)
                return false;
            Component& comp = cit->second;
            if (!comp.spec.resynced || comp.spec.resynced()) {
                comp.settle_timer = loop().set_timer(
                    comp.spec.resync_settle,
                    [this, cls] { finish_resync(cls); });
                return false;  // stop polling; the settle timer owns it now
            }
            return true;
        });
}

void Supervisor::finish_resync(const std::string& cls) {
    auto it = components_.find(cls);
    if (it == components_.end() || it->second.state != State::kResync) return;
    Component& c = it->second;
    c.resync_deadline.unschedule();
    c.state = State::kAlive;
    c.consecutive_failures = 0;
    notify_rib("origin_resynced", c);
    if (c.upgrade_in_progress) {
        // The replacement has resynced and the sweep is on its way; the
        // pre-upgrade process can now exit. Its clean departure is
        // filtered (owns_instance / notify_exit's clean path) so the
        // component stays kAlive throughout — zero routes lost, zero
        // probe gap.
        c.upgrade_in_progress = false;
        ++c.upgrades;
        c.spec.retire_old();
    }
    start_probing(cls);
}

void Supervisor::start_probing(const std::string& cls) {
    Component& c = components_[cls];
    c.probe_timer = loop().set_periodic(
        c.spec.probe_interval, [this, cls] {
            probe(cls);
            return true;
        });
}

void Supervisor::probe(const std::string& cls) {
    auto it = components_.find(cls);
    if (it == components_.end() || it->second.state != State::kAlive) return;
    Component& c = it->second;
    if (c.probe_inflight) return;  // the previous probe is still deciding
    c.probe_inflight = true;
    // Tight-ish contract: a killed channel fails each attempt hard and
    // the call layer reports the target dead — which loops back to
    // on_death via the Finder watch. Success just clears the in-flight
    // flag; a not-ready status is tolerated (the component is alive and
    // making progress, which is all liveness means here).
    auto opts = ipc::CallOptions::reliable()
                    .with_deadline(std::chrono::seconds(10))
                    .with_attempt_timeout(std::chrono::seconds(2))
                    .with_attempts(3);
    xr_.call(Xrl::generic(cls, "common", "0.1", "get_status"), opts,
             [this, cls](const xrl::XrlError&, const XrlArgs&) {
                 auto cit = components_.find(cls);
                 if (cit != components_.end())
                     cit->second.probe_inflight = false;
             });
}

void Supervisor::notify_rib(const std::string& method, const Component& c) {
    for (const std::string& proto : c.spec.protocols) {
        XrlArgs args;
        args.add("protocol", proto);
        xr_.call_oneway(Xrl::generic("rib", "rib", "1.0", method, args),
                        ipc::CallOptions::reliable());
    }
}

}  // namespace xrp::rtrmgr
