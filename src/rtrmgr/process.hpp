// Real multi-process deployment: fork/exec component hosting and the
// process-backed router (§3, §9 — "multiple processes" is the paper's
// central robustness mechanism, finally made literal).
//
// Two layers:
//
//   ProcessHost — fork/exec of component binaries with event-loop
//   integrated reaping. Children are watched through pidfd_open(2) (a
//   readable pidfd is a reliable, race-free SIGCHLD replacement that
//   plugs straight into the loop's poll set; a periodic waitpid fallback
//   covers kernels without it). Each child runs in its own process group
//   with PR_SET_PDEATHSIG=SIGKILL armed, so killing the Router Manager
//   — even with SIGKILL, where no cleanup code runs — reaps the whole
//   component tree instead of leaking orphans. Child stdout/stderr are
//   captured through pipes, line-buffered, prefixed onto the manager's
//   stderr and recorded in the telemetry journal. Exit statuses are
//   classified (clean exit 0 vs signal/non-zero crash) for the
//   Supervisor's breaker accounting.
//
//   ProcessRouter — the deployment driver the Router Manager uses to run
//   fea/rib/bgp/ospf/rip as real processes. It owns the master Plexus
//   (whose Finder, exposed over stcp via bind_finder_xrl, is the
//   rendezvous point every child bootstraps through), spawns one
//   xrp_component per component class, and wires the existing
//   Supervisor with process-backed Specs: restart = respawn,
//   resynced = remote common/0.1 get_status == READY, plus the
//   spawn_replacement/retire_old pair that implements hitless binary
//   upgrade. PR-3 reliable calls, PR-5 stale-stamping/resync, and PR-9
//   supervision run UNCHANGED across the kernel-enforced boundary — that
//   is the point.
#ifndef XRP_RTRMGR_PROCESS_HPP
#define XRP_RTRMGR_PROCESS_HPP

#include <sys/types.h>

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ipc/finder_xrl.hpp"
#include "ipc/router.hpp"
#include "rtrmgr/supervisor.hpp"

namespace xrp::rtrmgr {

class ProcessHost {
public:
    struct ExitStatus {
        bool exited = false;  // reaped (always true in callbacks)
        int code = -1;        // exit code when !signaled
        int signo = 0;        // terminating signal, 0 when none
        // The breaker-relevant classification: only a voluntary, zero
        // exit is clean; signals (SIGKILL chaos included) and non-zero
        // exits are crashes.
        bool clean() const { return exited && signo == 0 && code == 0; }
        std::string str() const;
    };

    struct Spec {
        std::string name;    // log/journal label ("bgp")
        std::string binary;  // path to the executable
        std::vector<std::string> args;  // argv[1..]
        bool capture_output = true;
    };

    using ExitCallback = std::function<void(pid_t, const ExitStatus&)>;

    explicit ProcessHost(ev::EventLoop& loop, std::string node = {});
    ~ProcessHost();  // SIGKILLs and reaps every still-running child
    ProcessHost(const ProcessHost&) = delete;
    ProcessHost& operator=(const ProcessHost&) = delete;

    // Fork/exec. Returns the child pid, or -1 on failure. `on_exit`
    // fires exactly once, on the host loop, after the child is reaped.
    pid_t spawn(const Spec& spec, ExitCallback on_exit);

    // kill(2) on the child's process group. False if not ours/not alive.
    bool kill(pid_t pid, int signo);
    // Graceful stop: SIGTERM now, escalate to SIGKILL after `grace`.
    void terminate(pid_t pid,
                   ev::Duration grace = std::chrono::seconds(2));

    bool running(pid_t pid) const { return children_.count(pid) != 0; }
    size_t live_count() const { return children_.size(); }

    // Directory containing this executable (via /proc/self/exe).
    static std::string self_exe_dir();
    // Resolves the xrp_component multi-call binary: $XRP_COMPONENT_BIN,
    // then next to this executable, then ../src/ relative to it (tests
    // and benches live in sibling build directories). Empty if nowhere.
    static std::string find_component_binary();

private:
    struct Child {
        std::string name;
        pid_t pid = -1;
        int pidfd = -1;       // -1 => waitpid-poll fallback
        int out_fd = -1;      // child stdout pipe (read end)
        int err_fd = -1;      // child stderr pipe (read end)
        std::string out_partial;
        std::string err_partial;
        ExitCallback on_exit;
        ev::Timer kill_timer;  // terminate() escalation
    };

    void on_pidfd_ready(pid_t pid);
    void reap(pid_t pid, int wstatus);
    void poll_children();  // waitpid fallback when pidfd is unavailable
    void drain_output(pid_t pid, bool err_stream, bool final);
    void emit_lines(Child& c, bool err_stream, bool final);
    void close_child_fds(Child& c);

    ev::EventLoop& loop_;
    std::string node_;
    std::map<pid_t, Child> children_;
    ev::Timer poll_timer_;
    bool have_pidfd_ = true;
};

// The Router Manager side of a multi-process router.
class ProcessRouter {
public:
    struct ComponentSpec {
        std::string cls;  // "fea", "rib", "bgp", "ospf", "rip"
        // Extra argv for the component ("--feed-routes=100000").
        std::vector<std::string> extra_args;
        // RIB origin protocols for graceful restart; defaulted per class
        // (bgp -> {ebgp, ibgp}, ospf -> {ospf}, rip -> {rip}).
        std::vector<std::string> protocols;
    };

    struct Options {
        std::string node = "procrouter";
        std::string component_binary;  // default: find_component_binary()
        bool capture_output = true;
        ev::Duration probe_interval = std::chrono::seconds(2);
        ev::Duration backoff_initial = std::chrono::milliseconds(200);
        ev::Duration resync_settle = std::chrono::milliseconds(500);
        ev::Duration resync_timeout = std::chrono::seconds(60);
        int breaker_threshold = 4;
        ev::Duration breaker_window = std::chrono::seconds(60);
    };

    // `loop` must be a real-clock loop (children are real processes on
    // real sockets); it must outlive the ProcessRouter.
    // (Two constructors, not a default argument: a nested aggregate's
    // member initializers cannot be evaluated in a default argument of
    // the enclosing class.)
    explicit ProcessRouter(ev::EventLoop& loop);
    ProcessRouter(ev::EventLoop& loop, Options opts);
    ~ProcessRouter();
    ProcessRouter(const ProcessRouter&) = delete;
    ProcessRouter& operator=(const ProcessRouter&) = delete;

    // Spawns every component and supervises it. Returns false if the
    // component binary cannot be found or a spawn fails outright.
    bool start(const std::vector<ComponentSpec>& components);

    // Drives the loop until every component reports common/0.1
    // get_status == READY (a fed component reports READY only once its
    // initial table push is fully acknowledged). False on timeout.
    bool wait_all_ready(ev::Duration limit);

    // Hitless binary upgrade of one component (Supervisor::upgrade).
    bool upgrade(const std::string& cls);
    // Real signal to the component's ACTIVE process (SIGKILL chaos).
    bool kill(const std::string& cls, int signo);

    pid_t active_pid(const std::string& cls) const;
    std::string active_instance(const std::string& cls) const;

    Supervisor& supervisor() { return *supervisor_; }
    ProcessHost& host() { return host_; }
    ipc::Plexus& plexus() { return plexus_; }
    ev::EventLoop& loop() { return loop_; }
    // The master Finder face's stcp address children bootstrap through.
    const std::string& finder_address() const { return finder_address_; }

    // Synchronous query helpers: issue the XRL and drive the loop until
    // the reply (or `limit`). For tests/benches, not the fast path.
    std::optional<uint32_t> query_u32(const std::string& target,
                                      const std::string& iface,
                                      const std::string& version,
                                      const std::string& method,
                                      const std::string& field,
                                      ev::Duration limit =
                                          std::chrono::seconds(5));
    std::optional<uint64_t> query_u64(const std::string& target,
                                      const std::string& iface,
                                      const std::string& version,
                                      const std::string& method,
                                      const std::string& field,
                                      ev::Duration limit =
                                          std::chrono::seconds(5));
    // fea/1.0 get_fib_size, nullopt-free convenience (0 on failure).
    uint32_t fib_size();

private:
    struct Managed {
        ComponentSpec spec;
        pid_t pid = -1;                // active process
        std::string instance;          // active Finder instance name
        bool awaiting_birth = false;   // next Finder birth names `instance`
        std::set<pid_t> retiring;      // pre-upgrade processes on the way out
        uint32_t last_status = 0;      // latest remote get_status answer
        bool status_inflight = false;
        uint64_t boots = 0;
    };

    void spawn(const std::string& cls);             // (re)spawn active
    void spawn_replacement(const std::string& cls);  // upgrade step 2
    void retire_old(const std::string& cls);         // upgrade step 4
    void on_exit(const std::string& cls, pid_t pid,
                 const ProcessHost::ExitStatus& st);
    void poll_status();  // periodic remote get_status for resynced()
    std::vector<std::string> component_argv(const Managed& m) const;
    static std::vector<std::string> default_protocols(const std::string& cls);

    ev::EventLoop& loop_;
    Options opts_;
    ipc::Plexus plexus_;
    std::unique_ptr<ipc::XrlRouter> finder_face_;
    std::string finder_address_;
    std::unique_ptr<ipc::XrlRouter> mgr_xr_;
    ProcessHost host_;
    std::unique_ptr<Supervisor> supervisor_;
    std::map<std::string, Managed> components_;
    uint64_t birth_watch_ = 0;
    ev::Timer status_timer_;
};

}  // namespace xrp::rtrmgr

#endif
