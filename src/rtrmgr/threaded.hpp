// ThreadedRouter: the parallel control plane.
//
// The paper's router is a set of processes — BGP, the RIB, the FEA, the
// Router Manager — coupled only by XRLs (§3). The single-threaded
// rtrmgr::Router collapses them onto one event loop; ThreadedRouter
// restores the concurrency: FEA, RIB, and BGP each run their own
// EventLoop on their own thread (ComponentThread), and every
// inter-component XRL crosses threads over the lock-free SPSC-ring
// "xring" family. The Router Manager (its XrlRouter, the Finder, and the
// Supervisor) stays on the Plexus loop, driven by the caller — typically
// the main thread.
//
// Lifecycle: construction wires all components on the calling thread
// (loops are unowned until driven, so registrations are permitted);
// start() spawns the three component threads; stop() joins them, after
// which the destructor tears everything down from the calling thread.
//
// Cross-thread discipline for callers:
//   - fib_size()/loc_rib_count() are atomic mirrors maintained on the
//     owning threads — safe from anywhere, cheap enough to poll.
//   - post_bgp()/run_sync_bgp() are the doors onto the BGP thread; the
//     raw bgp()/rib_handle() pointers must only be dereferenced from
//     inside those doors (or before start()/after stop()).
//   - kill_bgp() simulates a component crash for supervision tests.
#ifndef XRP_RTRMGR_THREADED_HPP
#define XRP_RTRMGR_THREADED_HPP

#include <atomic>
#include <functional>
#include <memory>

#include "bgp/bgp_xrl.hpp"
#include "bgp/process.hpp"
#include "fea/fea.hpp"
#include "fea/fea_xrl.hpp"
#include "rib/rib.hpp"
#include "rib/rib_xrl.hpp"
#include "rtrmgr/component_thread.hpp"
#include "rtrmgr/supervisor.hpp"

namespace xrp::rtrmgr {

class ThreadedRouter {
public:
    // Component threads park in poll(2); virtual clocks cannot drive a
    // blocked poll, so a threaded router requires a real clock.
    explicit ThreadedRouter(ev::RealClock& clock,
                            bgp::BgpProcess::Config bgp_cfg = default_bgp());
    ~ThreadedRouter();
    ThreadedRouter(const ThreadedRouter&) = delete;
    ThreadedRouter& operator=(const ThreadedRouter&) = delete;

    static bgp::BgpProcess::Config default_bgp();

    // Spawns the FEA, RIB, and BGP threads. Idempotent.
    void start();
    // Stops and joins all component threads (BGP first — it feeds the
    // RIB, which feeds the FEA). Idempotent; also run by the destructor.
    void stop();
    bool running() const { return started_; }

    ipc::Plexus& plexus() { return plexus_; }
    // The Router Manager's loop (== plexus().loop): the caller drives it
    // to run supervisor probes, restarts, and RIB grace notifications.
    ev::EventLoop& mgr_loop() { return plexus_.loop; }
    Supervisor& supervisor() { return *supervisor_; }

    ComponentThread& fea_thread() { return fea_ct_; }
    ComponentThread& rib_thread() { return rib_ct_; }
    ComponentThread& bgp_thread() { return bgp_ct_; }

    // ---- cross-thread-safe observation ------------------------------
    // Mirrors maintained by callbacks on the owning threads.
    size_t fib_size() const {
        return fib_size_.load(std::memory_order_relaxed);
    }
    size_t loc_rib_count() const {
        return loc_rib_.load(std::memory_order_relaxed);
    }
    uint64_t bgp_generation() const {
        return bgp_generation_.load(std::memory_order_relaxed);
    }

    // ---- doors onto the BGP thread ----------------------------------
    void post_bgp(std::function<void()> fn) { bgp_ct_.post(std::move(fn)); }
    void run_sync_bgp(const std::function<void()>& fn) {
        bgp_ct_.run_sync(fn);
    }
    // Only dereference on the BGP thread (or while its thread is down).
    bgp::BgpProcess* bgp() { return bgp_.get(); }
    ipc::XrlRouter& bgp_router() { return *bgp_xr_; }
    bgp::XrlRibHandle* rib_handle() { return rib_handle_; }
    // Same discipline: RIB objects belong to the RIB thread, FEA objects
    // to the FEA thread. Safe before start() and after stop().
    rib::Rib& rib() { return *rib_; }
    fea::Fea& fea() { return *fea_; }

    // ---- supervision -------------------------------------------------
    // Puts BGP under the Supervisor: death -> RIB grace mark -> rebuild
    // on the BGP thread -> resync-complete sweep.
    void supervise_bgp(Supervisor::Spec overrides = {});
    // Simulates a BGP crash: destroys the process and its XrlRouter on
    // the BGP thread; the Finder death notification reaches the
    // Supervisor on the manager loop.
    void kill_bgp();

private:
    // (Re)builds the BGP objects against the BGP loop. Runs on the
    // calling thread at construction, on the BGP thread thereafter.
    void build_bgp();

    ev::RealClock& clock_;
    ipc::Plexus plexus_;
    bgp::BgpProcess::Config bgp_cfg_;

    ComponentThread fea_ct_;
    ComponentThread rib_ct_;
    ComponentThread bgp_ct_;

    std::unique_ptr<ipc::XrlRouter> fea_xr_;
    std::unique_ptr<fea::Fea> fea_;
    std::unique_ptr<ipc::XrlRouter> rib_xr_;
    std::unique_ptr<rib::Rib> rib_;
    std::unique_ptr<ipc::XrlRouter> bgp_xr_;
    std::unique_ptr<bgp::BgpProcess> bgp_;
    bgp::XrlRibHandle* rib_handle_ = nullptr;
    // Mirrors loc_rib_count() into the atomic from the BGP thread.
    ev::Timer bgp_mirror_timer_;

    std::unique_ptr<ipc::XrlRouter> mgr_xr_;

    std::atomic<size_t> fib_size_{0};
    std::atomic<size_t> loc_rib_{0};
    // Bumped on every (re)build; tests use it to await a restart.
    std::atomic<uint64_t> bgp_generation_{0};

    bool started_ = false;

    // Declared last: destroyed first, before the components it watches.
    std::unique_ptr<Supervisor> supervisor_;
};

}  // namespace xrp::rtrmgr

#endif
