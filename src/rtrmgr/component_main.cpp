// xrp_component: the multi-call component binary of the multi-process
// router. One executable boots any of fea/rib/bgp/ospf/rip on its own
// event loop in its own process, registers with the Router Manager's
// Finder over stcp (--finder=host:port is the single bootstrap datum),
// and speaks the ordinary XRL contract from there — the same reliable
// calls, graceful restart, and supervision as the in-process and
// threaded deployments, now across a kernel-enforced boundary.
//
//   xrp_component --class=rib --finder=127.0.0.1:40000 [--node=r1]
//                 [--feed-routes=N] [--feed-seed=S]
//
// --feed-routes=N (bgp, or any RIB-feeding class) pushes N synthetic
// "ebgp" routes into the RIB in bulk batches after boot and reports
// common/0.1 READY only once every batch is acknowledged — which is what
// makes restart and hitless-upgrade resync detection honest: READY means
// the table is genuinely re-fed, not merely that the process answers.
// The feed is deterministic (same seed => same prefixes), so a restarted
// or upgraded instance re-advertises the identical table and the RIB's
// origin stamps refresh without downstream churn.
//
// rip and ospf run against a private in-process FEA (their constructors
// take a direct Fea reference for interface I/O); their routes still
// flow to the shared RIB over XRLs. This mirrors the simulator's
// substitution — packet I/O is simulated — while everything above the
// interface layer is real multi-process.
//
// SIGTERM/SIGINT request a clean exit (status 0): XrlRouter destructors
// unregister from the master Finder, so the manager sees an orderly
// departure, not a crash. Anything that kills the process harder is, by
// definition, a crash — exactly the classification the Supervisor's
// breaker wants.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bgp/bgp_xrl.hpp"
#include "bgp/process.hpp"
#include "ev/clock.hpp"
#include "ev/eventloop.hpp"
#include "fea/fea.hpp"
#include "fea/fea_xrl.hpp"
#include "ipc/common_xrl.hpp"
#include "ipc/router.hpp"
#include "ospf/ospf.hpp"
#include "ospf/ospf_xrl.hpp"
#include "rib/rib.hpp"
#include "rib/rib_xrl.hpp"
#include "rip/rip.hpp"
#include "rip/rip_xrl.hpp"
#include "sim/routefeed.hpp"
#include "stage/batch.hpp"

namespace {

volatile sig_atomic_t g_stop = 0;
int g_wake_pipe[2] = {-1, -1};

void on_signal(int) {
    g_stop = 1;
    // Self-pipe: wake a loop blocked in poll(2). Write errors (full pipe)
    // are fine — one byte is enough.
    ssize_t ignored = write(g_wake_pipe[1], "x", 1);
    (void)ignored;
}

struct FeedState {
    size_t batches_total = 0;
    size_t batches_acked = 0;
    bool done() const {
        return batches_total > 0 && batches_acked >= batches_total;
    }
};

// Pushes `count` deterministic "ebgp" routes into the RIB as bulk
// batches through `xr`'s reliable call contract.
void start_feed(xrp::ipc::XrlRouter& xr, size_t count, uint32_t seed,
                std::shared_ptr<FeedState> state) {
    using namespace xrp;
    constexpr size_t kChunk = 8192;
    auto prefixes = sim::generate_prefixes(count, seed);
    const net::IPv4 nexthop((192u << 24) | (2 << 8) | 1);  // 192.0.2.1

    // The ebgp routes all name 192.0.2.1 as their nexthop, and the RIB's
    // ExtInt stage parks external routes until an internal route covers
    // that nexthop — so seed the covering static first, exactly as the
    // in-process harnesses do. An identical re-add after restart/upgrade
    // is an idempotent refresh.
    {
        ++state->batches_total;
        xrl::XrlArgs args;
        args.add("protocol", std::string("static"))
            .add("net", net::IPv4Net(net::IPv4((192u << 24) | (2 << 8)), 24))
            .add("nexthop", nexthop)
            .add("metric", uint32_t{1});
        auto opts = ipc::CallOptions::reliable()
                        .with_deadline(std::chrono::seconds(60))
                        .with_attempt_timeout(std::chrono::seconds(5));
        xr.call(xrl::Xrl::generic("rib", "rib", "1.0", "add_route",
                                  std::move(args)),
                opts, [state](const xrl::XrlError& err, const xrl::XrlArgs&) {
                    if (!err.ok())
                        fprintf(stderr, "feed: static cover failed: %s\n",
                                err.str().c_str());
                    ++state->batches_acked;
                });
    }

    for (size_t base = 0; base < prefixes.size(); base += kChunk) {
        stage::RouteBatch4 batch;
        const size_t end = std::min(base + kChunk, prefixes.size());
        batch.reserve(end - base);
        for (size_t i = base; i < end; ++i) {
            stage::Route4 r;
            r.net = prefixes[i];
            r.nexthop = nexthop;
            r.metric = 10;
            r.protocol = "ebgp";
            batch.add(std::move(r));
        }
        ++state->batches_total;
        xrl::XrlArgs args;
        args.add("protocol", std::string("ebgp"))
            .add("routes", batch.encode());
        auto opts = ipc::CallOptions::reliable()
                        .with_deadline(std::chrono::seconds(60))
                        .with_attempt_timeout(std::chrono::seconds(5));
        xr.call(xrl::Xrl::generic("rib", "rib", "1.0", "add_routes_bulk",
                                  std::move(args)),
                opts,
                [state](const xrl::XrlError& err, const xrl::XrlArgs&) {
                    if (!err.ok())
                        fprintf(stderr, "feed batch failed: %s\n",
                                err.str().c_str());
                    ++state->batches_acked;
                    if (state->done())
                        fprintf(stderr, "feed complete: %zu batches\n",
                                state->batches_total);
                });
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace xrp;

    std::string cls, finder, node;
    size_t feed_routes = 0;
    uint32_t feed_seed = 42;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&arg](const char* key) -> const char* {
            size_t n = strlen(key);
            return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
        };
        if (const char* v = val("--class=")) cls = v;
        else if (const char* v = val("--finder=")) finder = v;
        else if (const char* v = val("--node=")) node = v;
        else if (const char* v = val("--feed-routes=")) feed_routes = strtoul(v, nullptr, 10);
        else if (const char* v = val("--feed-seed=")) feed_seed = strtoul(v, nullptr, 10);
        else {
            fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }
    if (cls.empty() || finder.empty()) {
        fprintf(stderr,
                "usage: xrp_component --class=<fea|rib|bgp|ospf|rip> "
                "--finder=host:port [--node=NAME] [--feed-routes=N]\n");
        return 2;
    }

    // A SIGKILLed peer's socket must surface as a failed call, never as a
    // process-fatal signal.
    signal(SIGPIPE, SIG_IGN);
    if (pipe(g_wake_pipe) != 0) return 1;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    setvbuf(stdout, nullptr, _IOLBF, 0);
    setvbuf(stderr, nullptr, _IOLBF, 0);

    ev::RealClock clock;
    ev::EventLoop loop(clock);
    loop.add_reader(g_wake_pipe[0], [&loop] {
        char buf[16];
        ssize_t ignored = read(g_wake_pipe[0], buf, sizeof(buf));
        (void)ignored;
        loop.stop();
    });

    ipc::Plexus plexus(loop);
    plexus.node = node;
    plexus.finder_address = finder;

    ipc::XrlRouter xr(plexus, cls);
    xr.enable_tcp();

    // The component objects; only the selected class is constructed.
    std::unique_ptr<fea::Fea> fea;
    std::unique_ptr<rib::Rib> rib;
    std::unique_ptr<bgp::BgpProcess> bgp;
    std::unique_ptr<fea::Fea> private_fea;  // rip/ospf interface backend
    std::unique_ptr<rip::RipProcess> rip;
    std::unique_ptr<ospf::OspfProcess> ospf;
    auto feed = std::make_shared<FeedState>();

    if (feed_routes > 0) {
        // READY gates on the feed being fully acknowledged: the
        // Supervisor's resync detection (restart and hitless upgrade)
        // polls get_status and must not see READY while the table push
        // is still in flight.
        ipc::bind_common_xrls(
            xr.dispatcher(), cls,
            [feed](uint32_t& status, std::string& reason) {
                if (feed->done()) {
                    status = ipc::kProcessReady;
                } else {
                    status = 1;
                    reason = "feeding";
                }
            });
    }

    if (cls == "fea") {
        fea = std::make_unique<fea::Fea>(loop);
        fea->set_node(node);
        fea::bind_fea_xrl(*fea, xr);
    } else if (cls == "rib") {
        rib = std::make_unique<rib::Rib>(
            loop, std::make_unique<rib::XrlFeaHandle>(xr));
        rib->set_node(node);
        rib::bind_rib_xrl(*rib, xr);
    } else if (cls == "bgp") {
        bgp::BgpProcess::Config cfg;
        cfg.local_as = 65000;
        cfg.bgp_id = net::IPv4((10u << 24) | 1);
        bgp = std::make_unique<bgp::BgpProcess>(
            loop, cfg, std::make_unique<bgp::XrlRibHandle>(xr));
        bgp::bind_bgp_xrl(*bgp, xr);
    } else if (cls == "rip") {
        private_fea = std::make_unique<fea::Fea>(loop);
        rip = std::make_unique<rip::RipProcess>(
            loop, *private_fea, rip::RipProcess::Config{},
            std::make_unique<rip::XrlRibClient>(xr));
    } else if (cls == "ospf") {
        private_fea = std::make_unique<fea::Fea>(loop);
        ospf = std::make_unique<ospf::OspfProcess>(
            loop, *private_fea, ospf::OspfProcess::Config{},
            std::make_unique<ospf::XrlRibClient>(xr));
        ospf->set_node(node);
        ospf::bind_ospf_xrl(*ospf, xr);
    } else {
        fprintf(stderr, "unknown component class: %s\n", cls.c_str());
        return 2;
    }

    if (!xr.finalize()) {
        fprintf(stderr, "%s: cannot register with finder at %s\n",
                cls.c_str(), finder.c_str());
        return 1;
    }
    fprintf(stdout, "%s up as %s (pid %d)\n", cls.c_str(),
            xr.instance().c_str(), static_cast<int>(getpid()));

    if (feed_routes > 0) start_feed(xr, feed_routes, feed_seed, feed);

    // Park until a signal asks us to leave. hold_open keeps the loop in
    // poll(2) even when no timers are pending.
    loop.hold_open(true);
    while (!g_stop) {
        loop.run_once(true);
        if (g_stop) break;
    }
    loop.remove_reader(g_wake_pipe[0]);

    // Clean teardown: destructors unregister from the master Finder (an
    // orderly departure, not a death) before the process exits 0.
    return 0;
}
