// Hierarchical router configuration (§3: the Router Manager "holds the
// router configuration ... providing operators with unified management
// interfaces"). The syntax is the JunOS-style block language XORP uses:
//
//   interfaces {
//       eth0 { address 192.0.2.1/24; }
//   }
//   protocols {
//       static {
//           route 10.0.0.0/8 { nexthop 192.0.2.254; }
//       }
//       rip { interface eth0; }
//       bgp {
//           local-as 1777;
//           bgp-id 192.0.2.1;
//       }
//   }
//
// A node is a word list; "word+ ;" makes a leaf, "word+ { ... }" a block.
// '#' comments run to end of line.
#ifndef XRP_RTRMGR_CONFIGTREE_HPP
#define XRP_RTRMGR_CONFIGTREE_HPP

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xrp::rtrmgr {

struct ConfigNode {
    std::string name;               // first word
    std::vector<std::string> args;  // remaining words
    std::vector<ConfigNode> children;

    bool operator==(const ConfigNode&) const = default;

    // First child with this name (and, if given, this first argument).
    const ConfigNode* find(std::string_view child_name) const;
    const ConfigNode* find(std::string_view child_name,
                           std::string_view arg0) const;
    // The single argument of leaf child `name` ("local-as 1777;" -> "1777").
    std::optional<std::string> leaf_value(std::string_view child_name) const;

    std::string str(int indent = 0) const;
};

class ConfigTree {
public:
    static std::optional<ConfigTree> parse(std::string_view text,
                                           std::string* error = nullptr);

    const ConfigNode& root() const { return root_; }
    // Path lookup by node names: find("protocols/bgp").
    const ConfigNode* find(std::string_view path) const;

    std::string str() const;

    bool operator==(const ConfigTree&) const = default;

private:
    ConfigNode root_;  // anonymous container of top-level nodes
};

}  // namespace xrp::rtrmgr

#endif
