#include "rtrmgr/threaded.hpp"

namespace xrp::rtrmgr {

using std::chrono::milliseconds;

bgp::BgpProcess::Config ThreadedRouter::default_bgp() {
    bgp::BgpProcess::Config cfg;
    cfg.local_as = 1777;
    cfg.bgp_id = net::IPv4::must_parse("192.0.2.250");
    return cfg;
}

ThreadedRouter::ThreadedRouter(ev::RealClock& clock,
                               bgp::BgpProcess::Config bgp_cfg)
    : clock_(clock),
      plexus_(clock),
      bgp_cfg_(std::move(bgp_cfg)),
      fea_ct_(clock),
      rib_ct_(clock),
      bgp_ct_(clock) {
    // FEA on its own thread. The FIB change callback runs on the FEA
    // thread; it keeps the cross-thread size mirror current.
    fea_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, fea_ct_.loop(),
                                               "fea", true);
    fea_ = std::make_unique<fea::Fea>(fea_ct_.loop());
    fea_->fib().set_change_callback([this](bool, const fea::FibEntry&) {
        fib_size_.store(fea_->fib().size(), std::memory_order_relaxed);
    });
    fea::bind_fea_xrl(*fea_, *fea_xr_);
    fea_xr_->finalize();

    // RIB on its own thread; its FEA handle crosses to the FEA thread
    // over the xring family.
    rib_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, rib_ct_.loop(),
                                               "rib", true);
    rib_ = std::make_unique<rib::Rib>(
        rib_ct_.loop(), std::make_unique<rib::XrlFeaHandle>(*rib_xr_));
    rib::bind_rib_xrl(*rib_, *rib_xr_);
    rib_xr_->finalize();

    build_bgp();

    // The Router Manager stays on the Plexus loop (caller-driven); its
    // probes reach the component threads over xring.
    mgr_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rtrmgr", true);
    mgr_xr_->finalize();
    supervisor_ = std::make_unique<Supervisor>(plexus_, *mgr_xr_);
}

ThreadedRouter::~ThreadedRouter() { stop(); }

void ThreadedRouter::start() {
    if (started_) return;
    fea_ct_.start();
    rib_ct_.start();
    bgp_ct_.start();
    started_ = true;
}

void ThreadedRouter::stop() {
    if (!started_) return;
    bgp_ct_.stop_and_join();
    rib_ct_.stop_and_join();
    fea_ct_.stop_and_join();
    started_ = false;
}

void ThreadedRouter::build_bgp() {
    // Cancel the mirror timer first: its callback dereferences bgp_.
    bgp_mirror_timer_ = ev::Timer();
    rib_handle_ = nullptr;
    // Process first — it references its XrlRouter. Destroying the
    // XrlRouter unregisters the dead instance so the fresh sole-class
    // registration succeeds.
    bgp_.reset();
    bgp_xr_.reset();
    bgp_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, bgp_ct_.loop(),
                                               "bgp", true);
    auto rh = std::make_unique<bgp::XrlRibHandle>(*bgp_xr_);
    rib_handle_ = rh.get();
    bgp_ = std::make_unique<bgp::BgpProcess>(bgp_ct_.loop(), bgp_cfg_,
                                             std::move(rh));
    bgp::bind_bgp_xrl(*bgp_, *bgp_xr_);
    bgp_xr_->finalize();
    bgp_mirror_timer_ = bgp_ct_.loop().set_periodic(milliseconds(10), [this] {
        loc_rib_.store(bgp_->loc_rib_count(), std::memory_order_relaxed);
        return true;
    });
    bgp_generation_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadedRouter::supervise_bgp(Supervisor::Spec spec) {
    spec.cls = "bgp";
    spec.protocols = {"ebgp", "ibgp"};
    // do_restart runs on the manager loop; the rebuild itself must run on
    // the BGP thread (the new XrlRouter/XringPort register on its loop).
    spec.restart = [this] { bgp_ct_.run_sync([this] { build_bgp(); }); };
    if (!spec.resynced)
        // No peer sessions to re-establish in this harness: resync is
        // immediately complete and the settle delay covers in-flight
        // re-adds.
        spec.resynced = [] { return true; };
    supervisor_->supervise(std::move(spec));
}

void ThreadedRouter::kill_bgp() {
    bgp_ct_.run_sync([this] {
        bgp_mirror_timer_ = ev::Timer();
        rib_handle_ = nullptr;
        bgp_.reset();
        bgp_xr_.reset();
    });
}

}  // namespace xrp::rtrmgr
