#include "rtrmgr/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ipc/common_xrl.hpp"
#include "telemetry/journal.hpp"

namespace xrp::rtrmgr {

using xrl::Xrl;
using xrl::XrlArgs;

// ---------------------------------------------------------------- ProcessHost

std::string ProcessHost::ExitStatus::str() const {
    if (!exited) return "running";
    if (signo != 0) return "signal " + std::string(strsignal(signo));
    return "exit " + std::to_string(code);
}

ProcessHost::ProcessHost(ev::EventLoop& loop, std::string node)
    : loop_(loop), node_(std::move(node)) {}

ProcessHost::~ProcessHost() {
    // No cleanup protocol at this point: anything still running is killed
    // (whole process group) and reaped synchronously. Exit callbacks do
    // not fire — the owner is going away.
    for (auto& [pid, c] : children_) {
        ::kill(-pid, SIGKILL);
        int st = 0;
        while (waitpid(pid, &st, 0) < 0 && errno == EINTR) {}
        close_child_fds(c);
    }
    children_.clear();
}

pid_t ProcessHost::spawn(const Spec& spec, ExitCallback on_exit) {
    int outp[2] = {-1, -1}, errp[2] = {-1, -1};
    if (spec.capture_output) {
        if (pipe2(outp, O_CLOEXEC) < 0) return -1;
        if (pipe2(errp, O_CLOEXEC) < 0) {
            ::close(outp[0]);
            ::close(outp[1]);
            return -1;
        }
    }

    const pid_t parent = getpid();
    const pid_t pid = fork();
    if (pid < 0) {
        for (int fd : {outp[0], outp[1], errp[0], errp[1]})
            if (fd >= 0) ::close(fd);
        return -1;
    }

    if (pid == 0) {
        // Child. Own process group so the manager can signal the whole
        // component tree with one kill(-pid), and a parent-death SIGKILL
        // so a SIGKILLed manager (no cleanup code runs) still takes its
        // components down with it — the kernel enforces the no-orphans
        // invariant, not our shutdown path.
        setpgid(0, 0);
        prctl(PR_SET_PDEATHSIG, SIGKILL);
        // PDEATHSIG arms against the CURRENT parent; if the manager died
        // in the fork/prctl window we are already reparented and the
        // signal will never come — bail out ourselves.
        if (getppid() != parent) _exit(125);
        if (spec.capture_output) {
            dup2(outp[1], STDOUT_FILENO);
            dup2(errp[1], STDERR_FILENO);
        }
        std::vector<char*> argv;
        argv.push_back(const_cast<char*>(spec.binary.c_str()));
        for (const std::string& a : spec.args)
            argv.push_back(const_cast<char*>(a.c_str()));
        argv.push_back(nullptr);
        execv(spec.binary.c_str(), argv.data());
        fprintf(stderr, "execv %s: %s\n", spec.binary.c_str(),
                strerror(errno));
        _exit(127);
    }

    // Parent. Mirror the child's setpgid so a kill(-pid) issued before the
    // child reaches its own setpgid still targets the right group.
    setpgid(pid, pid);

    Child c;
    c.name = spec.name;
    c.pid = pid;
    c.on_exit = std::move(on_exit);
    if (spec.capture_output) {
        ::close(outp[1]);
        ::close(errp[1]);
        c.out_fd = outp[0];
        c.err_fd = errp[0];
        fcntl(c.out_fd, F_SETFL, O_NONBLOCK);
        fcntl(c.err_fd, F_SETFL, O_NONBLOCK);
    }

    if (have_pidfd_) {
        int pfd = static_cast<int>(syscall(SYS_pidfd_open, pid, 0));
        if (pfd >= 0) {
            c.pidfd = pfd;
        } else {
            // Kernel without pidfd_open: fall back to a waitpid poll for
            // every child from here on.
            have_pidfd_ = false;
        }
    }

    children_[pid] = std::move(c);
    Child& stored = children_[pid];

    if (stored.pidfd >= 0) {
        // A pidfd polls readable once the child terminates — exactly the
        // event-loop-native SIGCHLD replacement, with no signal-handler
        // global state and no pid-reuse race (the fd pins the identity).
        loop_.add_reader(stored.pidfd,
                         [this, pid] { on_pidfd_ready(pid); });
    } else if (!poll_timer_.scheduled()) {
        poll_timer_ = loop_.set_periodic(std::chrono::milliseconds(100),
                                         [this] {
                                             poll_children();
                                             return !children_.empty();
                                         });
    }
    if (stored.out_fd >= 0)
        loop_.add_reader(stored.out_fd,
                         [this, pid] { drain_output(pid, false, false); });
    if (stored.err_fd >= 0)
        loop_.add_reader(stored.err_fd,
                         [this, pid] { drain_output(pid, true, false); });
    return pid;
}

bool ProcessHost::kill(pid_t pid, int signo) {
    if (children_.count(pid) == 0) return false;
    return ::kill(-pid, signo) == 0;
}

void ProcessHost::terminate(pid_t pid, ev::Duration grace) {
    auto it = children_.find(pid);
    if (it == children_.end()) return;
    ::kill(-pid, SIGTERM);
    it->second.kill_timer = loop_.set_timer(grace, [this, pid] {
        if (children_.count(pid)) ::kill(-pid, SIGKILL);
    });
}

void ProcessHost::on_pidfd_ready(pid_t pid) {
    int st = 0;
    pid_t r = waitpid(pid, &st, WNOHANG);
    if (r != pid) return;  // spurious wakeup; the fd will fire again
    reap(pid, st);
}

void ProcessHost::poll_children() {
    // waitpid fallback: cheap WNOHANG sweep across our children.
    std::vector<std::pair<pid_t, int>> done;
    for (auto& [pid, c] : children_) {
        int st = 0;
        if (waitpid(pid, &st, WNOHANG) == pid) done.emplace_back(pid, st);
    }
    for (auto& [pid, st] : done) reap(pid, st);
}

void ProcessHost::reap(pid_t pid, int wstatus) {
    auto it = children_.find(pid);
    if (it == children_.end()) return;
    Child& c = it->second;

    ExitStatus es;
    es.exited = true;
    if (WIFEXITED(wstatus)) es.code = WEXITSTATUS(wstatus);
    if (WIFSIGNALED(wstatus)) es.signo = WTERMSIG(wstatus);

    // Pull whatever the child managed to write before dying; the pipes
    // outlive the process.
    if (c.out_fd >= 0) drain_output(pid, false, true);
    if (c.err_fd >= 0) drain_output(pid, true, true);
    close_child_fds(c);

    fprintf(stderr, "[prochost] %s (pid %d): %s\n", c.name.c_str(),
            static_cast<int>(pid), es.str().c_str());
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop_.now(), telemetry::JournalKind::kProcessExit, node_,
            "prochost", c.name, es.str(), static_cast<int64_t>(pid));

    ExitCallback cb = std::move(c.on_exit);
    std::string name = c.name;
    children_.erase(it);
    if (cb) cb(pid, es);
}

void ProcessHost::drain_output(pid_t pid, bool err_stream, bool final) {
    auto it = children_.find(pid);
    if (it == children_.end()) return;
    Child& c = it->second;
    int fd = err_stream ? c.err_fd : c.out_fd;
    if (fd < 0) return;
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            (err_stream ? c.err_partial : c.out_partial).append(buf, n);
            emit_lines(c, err_stream, false);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        // EOF (every write end closed) or hard error: retire the stream.
        loop_.remove_reader(fd);
        ::close(fd);
        (err_stream ? c.err_fd : c.out_fd) = -1;
        emit_lines(c, err_stream, true);
        break;
    }
    if (final) emit_lines(c, err_stream, true);
}

void ProcessHost::emit_lines(Child& c, bool err_stream, bool final) {
    std::string& buf = err_stream ? c.err_partial : c.out_partial;
    size_t start = 0;
    for (;;) {
        size_t nl = buf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = buf.substr(start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        fprintf(stderr, "[%s] %s\n", c.name.c_str(), line.c_str());
        if (telemetry::journal_enabled())
            telemetry::Journal::current().record(
                loop_.now(), telemetry::JournalKind::kProcessOutput, node_,
                "prochost", c.name, line);
    }
    buf.erase(0, start);
    if (final && !buf.empty()) {
        fprintf(stderr, "[%s] %s\n", c.name.c_str(), buf.c_str());
        if (telemetry::journal_enabled())
            telemetry::Journal::current().record(
                loop_.now(), telemetry::JournalKind::kProcessOutput, node_,
                "prochost", c.name, buf);
        buf.clear();
    }
}

void ProcessHost::close_child_fds(Child& c) {
    for (int* fd : {&c.pidfd, &c.out_fd, &c.err_fd}) {
        if (*fd < 0) continue;
        loop_.remove_reader(*fd);
        ::close(*fd);
        *fd = -1;
    }
    c.kill_timer.unschedule();
}

std::string ProcessHost::self_exe_dir() {
    char buf[4096];
    ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) return {};
    buf[n] = '\0';
    std::string path(buf);
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string ProcessHost::find_component_binary() {
    if (const char* env = std::getenv("XRP_COMPONENT_BIN"))
        if (access(env, X_OK) == 0) return env;
    const std::string dir = self_exe_dir();
    if (dir.empty()) return {};
    for (const char* rel : {"/xrp_component", "/../src/xrp_component"}) {
        std::string cand = dir + rel;
        if (access(cand.c_str(), X_OK) == 0) return cand;
    }
    return {};
}

// -------------------------------------------------------------- ProcessRouter

ProcessRouter::ProcessRouter(ev::EventLoop& loop)
    : ProcessRouter(loop, Options()) {}

ProcessRouter::ProcessRouter(ev::EventLoop& loop, Options opts)
    : loop_(loop),
      opts_(std::move(opts)),
      plexus_(loop),
      host_(loop, opts_.node) {
    plexus_.node = opts_.node;
    // The master Finder face listens on stcp: this address is the single
    // bootstrap datum a child needs (passed via --finder=).
    finder_face_ = ipc::bind_finder_xrl(plexus_, /*tcp=*/true);
    finder_address_ = finder_face_->tcp_address();

    mgr_xr_ = std::make_unique<ipc::XrlRouter>(plexus_, "rtrmgr", true);
    mgr_xr_->finalize();
    supervisor_ = std::make_unique<Supervisor>(plexus_, *mgr_xr_);

    // Births tell us which Finder instance name the process we just
    // spawned was assigned: exactly one spawn is awaiting a birth per
    // class at any time, so (cls, awaiting flag) is an unambiguous join.
    birth_watch_ = plexus_.finder.watch(
        "*", [this](finder::LifetimeEvent ev, const std::string& cls,
                    const std::string& instance) {
            if (ev != finder::LifetimeEvent::kBirth) return;
            loop_.run_on([this, cls, instance] {
                auto it = components_.find(cls);
                if (it == components_.end() || !it->second.awaiting_birth)
                    return;
                it->second.instance = instance;
                it->second.awaiting_birth = false;
            });
        });

    status_timer_ = loop_.set_periodic(std::chrono::milliseconds(250),
                                       [this] {
                                           poll_status();
                                           return true;
                                       });
}

ProcessRouter::~ProcessRouter() {
    status_timer_.unschedule();
    plexus_.finder.unwatch(birth_watch_);
    supervisor_.reset();  // stop probes before the processes go away
}

std::vector<std::string> ProcessRouter::default_protocols(
    const std::string& cls) {
    if (cls == "bgp") return {"ebgp", "ibgp"};
    if (cls == "ospf") return {"ospf"};
    if (cls == "rip") return {"rip"};
    return {};
}

bool ProcessRouter::start(const std::vector<ComponentSpec>& components) {
    if (opts_.component_binary.empty())
        opts_.component_binary = ProcessHost::find_component_binary();
    if (opts_.component_binary.empty()) {
        fprintf(stderr,
                "procrouter: xrp_component binary not found "
                "(set XRP_COMPONENT_BIN)\n");
        return false;
    }
    for (const ComponentSpec& spec : components) {
        Managed m;
        m.spec = spec;
        if (m.spec.protocols.empty())
            m.spec.protocols = default_protocols(spec.cls);
        components_[spec.cls] = std::move(m);
    }
    for (auto& [cls, m] : components_) {
        spawn(cls);
        if (m.pid < 0) return false;

        Supervisor::Spec s;
        s.cls = cls;
        s.protocols = m.spec.protocols;
        s.probe_interval = opts_.probe_interval;
        s.backoff_initial = opts_.backoff_initial;
        s.resync_settle = opts_.resync_settle;
        s.resync_timeout = opts_.resync_timeout;
        s.breaker_threshold = opts_.breaker_threshold;
        s.breaker_window = opts_.breaker_window;
        s.restart = [this, cls = cls] {
            auto it = components_.find(cls);
            if (it == components_.end()) return;
            // A restart supersedes any in-flight upgrade: stale retiring
            // processes have nothing left to hand over.
            for (pid_t p : it->second.retiring) host_.kill(p, SIGKILL);
            it->second.retiring.clear();
            spawn(cls);
        };
        s.resynced = [this, cls = cls] {
            auto it = components_.find(cls);
            return it != components_.end() &&
                   it->second.last_status == ipc::kProcessReady;
        };
        s.spawn_replacement = [this, cls = cls] { spawn_replacement(cls); };
        s.retire_old = [this, cls = cls] { retire_old(cls); };
        s.owns_instance = [this, cls = cls](const std::string& instance) {
            auto it = components_.find(cls);
            return it != components_.end() && !instance.empty() &&
                   it->second.instance == instance;
        };
        supervisor_->supervise(std::move(s));
    }
    return true;
}

std::vector<std::string> ProcessRouter::component_argv(
    const Managed& m) const {
    std::vector<std::string> argv;
    argv.push_back("--class=" + m.spec.cls);
    argv.push_back("--finder=" + finder_address_);
    argv.push_back("--node=" + opts_.node);
    for (const std::string& a : m.spec.extra_args) argv.push_back(a);
    return argv;
}

void ProcessRouter::spawn(const std::string& cls) {
    Managed& m = components_[cls];
    ProcessHost::Spec ps;
    ps.name = cls;
    ps.binary = opts_.component_binary;
    ps.args = component_argv(m);
    ps.capture_output = opts_.capture_output;
    m.instance.clear();
    m.awaiting_birth = true;
    m.last_status = 0;
    ++m.boots;
    m.pid = host_.spawn(ps, [this, cls](pid_t pid,
                                        const ProcessHost::ExitStatus& st) {
        on_exit(cls, pid, st);
    });
    if (m.pid < 0) {
        m.awaiting_birth = false;
        fprintf(stderr, "procrouter: spawn of %s failed\n", cls.c_str());
    }
}

void ProcessRouter::spawn_replacement(const std::string& cls) {
    Managed& m = components_[cls];
    // Rotate the live process into the retiring set; the fresh spawn
    // becomes the active one the moment its Finder birth lands.
    if (m.pid > 0) m.retiring.insert(m.pid);
    spawn(cls);
}

void ProcessRouter::retire_old(const std::string& cls) {
    Managed& m = components_[cls];
    for (pid_t p : m.retiring) host_.terminate(p);
    // on_exit prunes the set as each one is reaped.
}

void ProcessRouter::on_exit(const std::string& cls, pid_t pid,
                            const ProcessHost::ExitStatus& st) {
    auto it = components_.find(cls);
    if (it == components_.end()) return;
    Managed& m = it->second;

    if (m.retiring.erase(pid) > 0) {
        // A pre-upgrade process left. Clean departure is the expected
        // end of retire_old (it already unregistered itself); a crash
        // just means the handover ended abruptly — either way the ACTIVE
        // instance owns the class now and the supervisor must not hear
        // about it.
        return;
    }
    if (pid != m.pid) return;  // a corpse from an older generation

    // The ACTIVE process died. Report the instance dead FIRST — marking
    // it down in the Finder makes every cached resolution fail fast and
    // fires death watches — then hand the supervisor the authoritative
    // exit classification. notify_exit runs synchronously, so it wins
    // the race against the posted watch callback (which then no-ops on
    // the state guard) and a clean exit is never miscounted as a crash.
    const std::string instance = m.instance;
    m.pid = -1;
    m.instance.clear();
    m.awaiting_birth = false;
    m.last_status = 0;
    if (!instance.empty()) plexus_.finder.report_dead(instance);
    supervisor_->notify_exit(cls, st.clean());
}

void ProcessRouter::poll_status() {
    // Feeds Supervisor::Spec::resynced: while a class is resyncing, ask
    // the ACTIVE instance (by instance name — mid-upgrade the class name
    // could resolve to the retiring process) for its status.
    for (auto& [cls, m] : components_) {
        if (supervisor_->state(cls) != Supervisor::State::kResync) continue;
        if (m.instance.empty() || m.status_inflight) continue;
        m.status_inflight = true;
        auto opts = ipc::CallOptions::reliable()
                        .with_deadline(std::chrono::seconds(5))
                        .with_attempt_timeout(std::chrono::seconds(2));
        mgr_xr_->call(
            Xrl::generic(m.instance, "common", "0.1", "get_status"), opts,
            [this, cls = cls](const xrl::XrlError& err, const XrlArgs& args) {
                auto cit = components_.find(cls);
                if (cit == components_.end()) return;
                cit->second.status_inflight = false;
                if (err.ok())
                    cit->second.last_status = args.get_u32("status").value_or(0);
            });
    }
}

bool ProcessRouter::wait_all_ready(ev::Duration limit) {
    const ev::TimePoint deadline = loop_.now() + limit;
    for (auto& [cls, m] : components_) {
        for (;;) {
            if (loop_.now() >= deadline) return false;
            const std::string target = m.instance.empty() ? cls : m.instance;
            auto s = query_u32(target, "common", "0.1", "get_status",
                               "status", std::chrono::seconds(2));
            if (s && *s == ipc::kProcessReady) break;
            loop_.run_for(std::chrono::milliseconds(200));
        }
    }
    return true;
}

bool ProcessRouter::upgrade(const std::string& cls) {
    return supervisor_->upgrade(cls);
}

bool ProcessRouter::kill(const std::string& cls, int signo) {
    auto it = components_.find(cls);
    if (it == components_.end() || it->second.pid < 0) return false;
    return host_.kill(it->second.pid, signo);
}

pid_t ProcessRouter::active_pid(const std::string& cls) const {
    auto it = components_.find(cls);
    return it == components_.end() ? -1 : it->second.pid;
}

std::string ProcessRouter::active_instance(const std::string& cls) const {
    auto it = components_.find(cls);
    return it == components_.end() ? std::string() : it->second.instance;
}

namespace {
template <typename T, typename Get>
std::optional<T> query_field(ev::EventLoop& loop, ipc::XrlRouter& xr,
                             const std::string& target,
                             const std::string& iface,
                             const std::string& version,
                             const std::string& method,
                             Get get, ev::Duration limit) {
    auto out = std::make_shared<std::optional<T>>();
    auto done = std::make_shared<bool>(false);
    auto opts = ipc::CallOptions::reliable()
                    .with_deadline(limit)
                    .with_attempt_timeout(std::chrono::seconds(2));
    xr.call(Xrl::generic(target, iface, version, method), opts,
            [out, done, get](const xrl::XrlError& err, const XrlArgs& args) {
                if (err.ok()) *out = get(args);
                *done = true;
            });
    loop.run_until([done] { return *done; }, limit + std::chrono::seconds(1));
    return *out;
}
}  // namespace

std::optional<uint32_t> ProcessRouter::query_u32(
    const std::string& target, const std::string& iface,
    const std::string& version, const std::string& method,
    const std::string& field, ev::Duration limit) {
    return query_field<uint32_t>(
        loop_, *mgr_xr_, target, iface, version, method,
        [field](const XrlArgs& a) -> std::optional<uint32_t> {
            return a.get_u32(field);
        },
        limit);
}

std::optional<uint64_t> ProcessRouter::query_u64(
    const std::string& target, const std::string& iface,
    const std::string& version, const std::string& method,
    const std::string& field, ev::Duration limit) {
    return query_field<uint64_t>(
        loop_, *mgr_xr_, target, iface, version, method,
        [field](const XrlArgs& a) -> std::optional<uint64_t> {
            return a.get_u64(field);
        },
        limit);
}

uint32_t ProcessRouter::fib_size() {
    return query_u32("fea", "fea", "1.0", "get_fib_size", "count")
        .value_or(0);
}

}  // namespace xrp::rtrmgr
