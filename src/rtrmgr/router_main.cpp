// xrp_router: the multi-process Router Manager executable.
//
//   xrp_router [--components=fea,rib,bgp] [--node=r1] [--feed-routes=N]
//
// Boots a ProcessRouter: forks one xrp_component per class, supervises
// them (SIGKILL a component and watch it restart through graceful
// restart; `kill -TERM` this process for an orderly shutdown that
// SIGTERMs the tree). Mostly a demonstration driver — tests and benches
// embed ProcessRouter directly — but also the target of the orphan-
// cleanup test: SIGKILLing THIS process must take every component with
// it (PR_SET_PDEATHSIG), leaving nothing behind.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ev/clock.hpp"
#include "rtrmgr/process.hpp"

namespace {
volatile sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
    using namespace xrp;

    std::string components = "fea,rib,bgp";
    rtrmgr::ProcessRouter::Options opts;
    size_t feed_routes = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&arg](const char* key) -> const char* {
            size_t n = strlen(key);
            return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
        };
        if (const char* v = val("--components=")) components = v;
        else if (const char* v = val("--node=")) opts.node = v;
        else if (const char* v = val("--feed-routes=")) feed_routes = strtoul(v, nullptr, 10);
        else {
            fprintf(stderr, "usage: xrp_router [--components=a,b,c] "
                            "[--node=NAME] [--feed-routes=N]\n");
            return 2;
        }
    }

    signal(SIGPIPE, SIG_IGN);
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    ev::RealClock clock;
    ev::EventLoop loop(clock);
    rtrmgr::ProcessRouter router(loop, opts);

    std::vector<rtrmgr::ProcessRouter::ComponentSpec> specs;
    for (size_t pos = 0; pos < components.size();) {
        size_t comma = components.find(',', pos);
        if (comma == std::string::npos) comma = components.size();
        rtrmgr::ProcessRouter::ComponentSpec s;
        s.cls = components.substr(pos, comma - pos);
        if (s.cls == "bgp" && feed_routes > 0)
            s.extra_args.push_back("--feed-routes=" +
                                   std::to_string(feed_routes));
        if (!s.cls.empty()) specs.push_back(std::move(s));
        pos = comma + 1;
    }

    if (!router.start(specs)) {
        fprintf(stderr, "xrp_router: failed to start components\n");
        return 1;
    }
    fprintf(stderr, "xrp_router: finder at %s, %zu components\n",
            router.finder_address().c_str(), specs.size());
    if (!router.wait_all_ready(std::chrono::seconds(120))) {
        fprintf(stderr, "xrp_router: components never became ready\n");
        return 1;
    }
    fprintf(stderr, "xrp_router: all components ready (fib=%u)\n",
            router.fib_size());

    int ticks = 0;
    while (!g_stop) {
        loop.run_for(std::chrono::milliseconds(200));
        if (++ticks % 25 == 0)
            fprintf(stderr, "xrp_router: rib=%u fib=%u\n",
                    router
                        .query_u32("rib", "rib", "1.0", "get_route_count",
                                   "count")
                        .value_or(0),
                    router.fib_size());
    }

    // ProcessRouter/ProcessHost teardown SIGKILLs what remains; reaching
    // here at all means the shutdown was the orderly kind.
    fprintf(stderr, "xrp_router: shutting down\n");
    return 0;
}
