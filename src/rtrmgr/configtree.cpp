#include "rtrmgr/configtree.hpp"

#include <cctype>

namespace xrp::rtrmgr {

namespace {

struct Tokenizer {
    std::string_view text;
    size_t pos = 0;
    int line = 1;

    void skip() {
        while (pos < text.size()) {
            if (text[pos] == '\n') {
                ++line;
                ++pos;
            } else if (std::isspace(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            } else if (text[pos] == '#') {
                while (pos < text.size() && text[pos] != '\n') ++pos;
            } else {
                break;
            }
        }
    }

    std::string next() {
        skip();
        if (pos >= text.size()) return {};
        char c = text[pos];
        if (c == '{' || c == '}' || c == ';') {
            ++pos;
            return std::string(1, c);
        }
        size_t start = pos;
        while (pos < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[pos])) &&
               text[pos] != '{' && text[pos] != '}' && text[pos] != ';' &&
               text[pos] != '#')
            ++pos;
        return std::string(text.substr(start, pos - start));
    }

    std::string peek() {
        size_t p = pos;
        int l = line;
        std::string t = next();
        pos = p;
        line = l;
        return t;
    }
};

bool parse_children(Tokenizer& tok, std::vector<ConfigNode>& out,
                    bool top_level, std::string* error) {
    while (true) {
        std::string word = tok.peek();
        if (word.empty()) {
            if (top_level) return true;
            if (error)
                *error = "line " + std::to_string(tok.line) +
                         ": unexpected end of config (missing '}')";
            return false;
        }
        if (word == "}") {
            if (top_level) {
                if (error)
                    *error = "line " + std::to_string(tok.line) +
                             ": unmatched '}'";
                return false;
            }
            tok.next();
            return true;
        }
        if (word == "{" || word == ";") {
            if (error)
                *error = "line " + std::to_string(tok.line) +
                         ": statement must start with a word";
            return false;
        }
        ConfigNode node;
        node.name = tok.next();
        while (true) {
            std::string t = tok.peek();
            if (t == "{") {
                tok.next();
                if (!parse_children(tok, node.children, false, error))
                    return false;
                break;
            }
            if (t == ";") {
                tok.next();
                break;
            }
            if (t.empty() || t == "}") {
                if (error)
                    *error = "line " + std::to_string(tok.line) +
                             ": expected ';' or '{' after '" + node.name + "'";
                return false;
            }
            node.args.push_back(tok.next());
        }
        out.push_back(std::move(node));
    }
}

}  // namespace

const ConfigNode* ConfigNode::find(std::string_view child_name) const {
    for (const ConfigNode& c : children)
        if (c.name == child_name) return &c;
    return nullptr;
}

const ConfigNode* ConfigNode::find(std::string_view child_name,
                                   std::string_view arg0) const {
    for (const ConfigNode& c : children)
        if (c.name == child_name && !c.args.empty() && c.args[0] == arg0)
            return &c;
    return nullptr;
}

std::optional<std::string> ConfigNode::leaf_value(
    std::string_view child_name) const {
    const ConfigNode* c = find(child_name);
    if (c == nullptr || c->args.size() != 1) return std::nullopt;
    return c->args[0];
}

std::string ConfigNode::str(int indent) const {
    std::string pad(static_cast<size_t>(indent) * 4, ' ');
    std::string s = pad + name;
    for (const std::string& a : args) s += " " + a;
    if (children.empty()) {
        s += ";\n";
        return s;
    }
    s += " {\n";
    for (const ConfigNode& c : children) s += c.str(indent + 1);
    s += pad + "}\n";
    return s;
}

std::optional<ConfigTree> ConfigTree::parse(std::string_view text,
                                            std::string* error) {
    Tokenizer tok{text};
    ConfigTree tree;
    if (!parse_children(tok, tree.root_.children, true, error))
        return std::nullopt;
    return tree;
}

const ConfigNode* ConfigTree::find(std::string_view path) const {
    const ConfigNode* n = &root_;
    size_t start = 0;
    while (start <= path.size()) {
        size_t slash = path.find('/', start);
        std::string_view part = slash == std::string_view::npos
                                    ? path.substr(start)
                                    : path.substr(start, slash - start);
        n = n->find(part);
        if (n == nullptr) return nullptr;
        if (slash == std::string_view::npos) break;
        start = slash + 1;
    }
    return n;
}

std::string ConfigTree::str() const {
    std::string s;
    for (const ConfigNode& c : root_.children) s += c.str(0);
    return s;
}

}  // namespace xrp::rtrmgr
