// Rib: the Routing Information Base process (§3, §5.2, Figure 7).
//
// "The RIB serves as the plumbing between routing protocols": protocols
// deposit candidate routes into per-protocol origin tables; a tree of
// pairwise Merge stages (administrative distance) plus the ExtInt stage
// (external/internal composition and recursive nexthop resolution)
// computes the winners; dynamic Redist stages tap the winner stream for
// route redistribution; the Register stage answers interest
// registrations (Figure 8) and pushes cache invalidations; and the final
// sink feeds the FEA.
//
//   connected --.
//   static   --- merge .
//   ospf     ---- merge - merge = internal --.
//   rip      ---/                             ExtInt -> [Redist]* -> Register -> FEA
//   ebgp     --- merge ======== external ----/
//   ibgp     ---/
//
// Every origin shown is live: connected routes come from the FEA's
// interface table, static from the Router Manager, ospf from the
// OspfProcess's SPF results, rip from the RipProcess, and ebgp/ibgp from
// the BgpProcess — each injecting through add_route under its protocol
// name and arbitrated by the distance table below.
//
// Profiling points: "rib_in" (route arriving at the RIB) and
// "rib_fea_queued" (winner queued for transmission to the FEA) — the
// middle points of Figures 10-12.
#ifndef XRP_RIB_RIB_HPP
#define XRP_RIB_RIB_HPP

#include <functional>
#include <map>
#include <memory>

#include "ev/eventloop.hpp"
#include "fea/fea.hpp"
#include "profiler/profiler.hpp"
#include "stage/deletion.hpp"
#include "stage/extint.hpp"
#include "stage/merge.hpp"
#include "stage/origin.hpp"
#include "stage/redist.hpp"
#include "stage/register.hpp"
#include "stage/sink.hpp"
#include "stage/stale_sweeper.hpp"

namespace xrp::rib {

using Route4 = stage::Route<net::IPv4>;

// Coupling to the FEA, abstract so the RIB tests standalone and deploys
// over XRLs. Multipath winners go through the set overload; its default
// forwards the primary member so scalar-only handles stay correct (they
// just lose the extra members).
class FeaHandle {
public:
    virtual ~FeaHandle() = default;
    virtual void add_route(const net::IPv4Net& net, net::IPv4 nexthop) = 0;
    virtual void add_route(const net::IPv4Net& net,
                           const net::NexthopSet4& nexthops) {
        add_route(net, nexthops.empty() ? net::IPv4() : nexthops.primary());
    }
    virtual void delete_route(const net::IPv4Net& net) = 0;
    // Bulk delta: the default unrolls to the scalar verbs; transport or
    // direct handles override it to apply the whole delta in one call.
    virtual void push_batch(stage::RouteBatch4&& batch) {
        for (auto& e : batch.entries()) {
            switch (e.op) {
            case stage::BatchOp::kAdd:
                if (e.route.is_multipath())
                    add_route(e.route.net, e.route.nexthops);
                else
                    add_route(e.route.net, e.route.nexthop);
                break;
            case stage::BatchOp::kDelete:
                delete_route(e.route.net);
                break;
            case stage::BatchOp::kReplace:
                delete_route(e.old_route.net);
                if (e.route.is_multipath())
                    add_route(e.route.net, e.route.nexthops);
                else
                    add_route(e.route.net, e.route.nexthop);
                break;
            }
        }
    }
};

class NullFeaHandle final : public FeaHandle {
public:
    using FeaHandle::add_route;
    void add_route(const net::IPv4Net&, net::IPv4) override {}
    void delete_route(const net::IPv4Net&) override {}
};

// Same-address-space FEA coupling (single-process router assembly).
class DirectFeaHandle final : public FeaHandle {
public:
    explicit DirectFeaHandle(fea::Fea& fea) : fea_(fea) {}
    void add_route(const net::IPv4Net& net, net::IPv4 nexthop) override {
        fea_.add_route(net, nexthop);
    }
    void add_route(const net::IPv4Net& net,
                   const net::NexthopSet4& nexthops) override {
        fea_.add_route(net, nexthops);
    }
    void delete_route(const net::IPv4Net& net) override {
        fea_.delete_route(net);
    }
    void push_batch(stage::RouteBatch4&& batch) override {
        fea_.apply_batch(batch);
    }

private:
    fea::Fea& fea_;
};

class Rib {
public:
    // The protocol -> administrative-distance table, defined in this one
    // place (operators can override per protocol at runtime with
    // set_admin_distance):
    //
    //   protocol    distance   fed by
    //   connected       0      FEA interface subnets
    //   static          1      Router Manager config
    //   ebgp           20      BgpProcess, external sessions
    //   ospf          110      OspfProcess (SPF results)
    //   rip           120      RipProcess
    //   ibgp          200      BgpProcess, internal sessions
    static constexpr uint32_t kDistanceConnected = 0;
    static constexpr uint32_t kDistanceStatic = 1;
    static constexpr uint32_t kDistanceEbgp = 20;
    static constexpr uint32_t kDistanceOspf = 110;
    static constexpr uint32_t kDistanceRip = 120;
    static constexpr uint32_t kDistanceIbgp = 200;

    Rib(ev::EventLoop& loop, std::unique_ptr<FeaHandle> fea = nullptr);
    ~Rib();
    Rib(const Rib&) = delete;
    Rib& operator=(const Rib&) = delete;

    // ---- protocol route input -------------------------------------------
    // Known protocols: connected, static, ospf, rip (internal), ebgp,
    // ibgp (external). Returns false for an unknown protocol name.
    bool add_route(const std::string& protocol, const net::IPv4Net& net,
                   net::IPv4 nexthop, uint32_t metric = 0);
    // Multipath entry point: a 0/1-member set degrades to the scalar form
    // so downstream stages see the identical route either way.
    bool add_route(const std::string& protocol, const net::IPv4Net& net,
                   const net::NexthopSet4& nexthops, uint32_t metric = 0);
    bool delete_route(const std::string& protocol, const net::IPv4Net& net);
    // Bulk entry point: one ordered delta from a single origin protocol.
    // Entries are stamped with the protocol's admin distance and flow into
    // the origin as one message; scalar verbs are the degenerate case.
    bool push_batch(const std::string& protocol, stage::RouteBatch4&& batch);
    void set_admin_distance(const std::string& protocol, uint32_t distance);

    // ---- winner queries -----------------------------------------------
    std::optional<Route4> lookup(net::IPv4 addr) const;
    std::optional<Route4> lookup_exact(const net::IPv4Net& net) const;
    size_t route_count() const { return final_->route_count(); }
    size_t origin_route_count(const std::string& protocol) const;

    // ---- interest registration (Figure 8, §5.2.1) ----------------------
    struct Answer {
        bool resolves = false;
        net::IPv4Net matched_net{};
        net::IPv4 nexthop{};
        uint32_t metric = 0;
        net::IPv4Net valid_subnet{};
    };
    using InvalidateCallback = std::function<void(const net::IPv4Net&)>;
    Answer register_interest(net::IPv4 addr, uint64_t client_id,
                             InvalidateCallback cb);
    void unregister_interest(const net::IPv4Net& valid_subnet,
                             uint64_t client_id);
    size_t registration_count() const {
        return register_stage_->registration_count();
    }

    // ---- redistribution (dynamic Redist stages) -------------------------
    using RedistSink = std::function<void(bool is_add, const Route4&)>;
    using RedistPredicate = std::function<bool(const Route4&)>;
    uint64_t add_redist(RedistPredicate pred, RedistSink sink);
    void remove_redist(uint64_t id);

    // ---- graceful restart (§5.1.2 applied to component death) -----------
    // When a protocol component dies, its routes are NOT deleted: the
    // origin marks them stale (one generation bump, zero downstream
    // traffic) and a per-protocol grace timer starts. Forwarding keeps
    // using the stale routes the whole time.
    //
    //   origin_dead      — protocol died: mark stale, start the clock.
    //   origin_revived   — restarted instance is back and resyncing: stop
    //                      the clock; re-adds refresh stamps in place.
    //   origin_resynced  — resync declared complete: splice a
    //                      StaleSweeperStage after the origin to reap, in
    //                      background slices, only routes never refreshed.
    //   grace expiry     — restart never completed: detach the whole
    //                      table into a classic DeletionStage (or, if a
    //                      partial resync snuck in, sweep just the stale
    //                      part) so the origin starts over empty.
    enum class OriginState { kFresh, kStale, kSweeping };
    void origin_dead(const std::string& protocol);
    void origin_revived(const std::string& protocol);
    void origin_resynced(const std::string& protocol);
    void set_grace_period(const std::string& protocol, ev::Duration grace);
    OriginState origin_state(const std::string& protocol) const;
    // Preserved-but-unconfirmed routes for one protocol (0 when fresh).
    size_t stale_route_count(const std::string& protocol) const;
    // Stale routes reaped by sweepers for this protocol, lifetime total.
    uint64_t swept_route_count(const std::string& protocol) const;

    void set_profiler(profiler::Profiler* p);

    // Router identity stamped on journal events ("r3"); empty = unbound.
    void set_node(std::string node) { node_ = std::move(node); }
    const std::string& node() const { return node_; }

private:
    struct Origin {
        uint32_t admin_distance;
        std::unique_ptr<stage::OriginStage<net::IPv4>> stage;
        // Per-protocol update counters, bound once at construction.
        telemetry::Counter* adds = nullptr;
        telemetry::Counter* deletes = nullptr;
        // Graceful-restart state (see the public API above).
        OriginState state = OriginState::kFresh;
        ev::Duration grace = std::chrono::seconds(120);
        ev::Timer grace_timer;
        telemetry::Gauge* stale_gauge = nullptr;
        telemetry::Counter* swept = nullptr;
        telemetry::Counter* grace_expiries = nullptr;
        // Per-instance sweep total (the telemetry counter above is
        // process-global and shared across Ribs in one simulation).
        uint64_t swept_total = 0;
        // Declared after `stage`: the sweeper parks an iterator in the
        // stage's trie and must be destroyed first.
        std::unique_ptr<stage::StaleSweeperStage<net::IPv4>> sweeper;
    };

    void grace_expired(const std::string& protocol);
    void start_sweep(const std::string& protocol, Origin& o);

    ev::EventLoop& loop_;
    std::unique_ptr<FeaHandle> fea_;
    std::string node_;
    profiler::Profiler* profiler_ = nullptr;
    // Resolved profiling handles (bound in set_profiler); the per-route
    // cost of a disabled point is one pointer check, and the payload
    // string is only built when the point is live.
    profiler::Profiler::ProfilePoint prof_in_;
    profiler::Profiler::ProfilePoint prof_fea_queued_;

    std::map<std::string, Origin> origins_;
    std::vector<std::unique_ptr<stage::MergeStage<net::IPv4>>> merges_;
    std::unique_ptr<stage::ExtIntStage<net::IPv4>> extint_;
    std::map<uint64_t, std::unique_ptr<stage::RedistStage<net::IPv4>>>
        redists_;
    std::unique_ptr<stage::RegisterStage<net::IPv4>> register_stage_;
    std::unique_ptr<stage::SinkStage<net::IPv4>> final_;
    // ECMP occupancy of the forwarding set: multipath winners currently
    // installed, and their total member count.
    telemetry::Gauge* m_ecmp_routes_ = nullptr;
    telemetry::Gauge* m_ecmp_members_ = nullptr;
    // Live DeletionStages flushing tables whose grace period expired;
    // each removes itself via its completion callback.
    std::vector<std::unique_ptr<stage::DeletionStage<net::IPv4>>> deleters_;
    uint64_t next_redist_id_ = 1;
};

}  // namespace xrp::rib

#endif
