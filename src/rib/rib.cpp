#include "rib/rib.hpp"

namespace xrp::rib {

using net::IPv4;
using net::IPv4Net;

Rib::Rib(ev::EventLoop& loop, std::unique_ptr<FeaHandle> fea)
    : loop_(loop), fea_(std::move(fea)) {
    if (!fea_) fea_ = std::make_unique<NullFeaHandle>();

    auto make_origin = [&](const char* proto, uint32_t dist) {
        Origin o;
        o.admin_distance = dist;
        o.stage = std::make_unique<stage::OriginStage<IPv4>>(
            std::string(proto) + "-origin");
        auto& reg = telemetry::Registry::global();
        o.adds = reg.counter(telemetry::metric_key("rib_route_adds_total",
                                                   {{"protocol", proto}}));
        o.deletes = reg.counter(telemetry::metric_key(
            "rib_route_deletes_total", {{"protocol", proto}}));
        origins_[proto] = std::move(o);
        return origins_[proto].stage.get();
    };
    auto* connected = make_origin("connected", kDistanceConnected);
    auto* statics = make_origin("static", kDistanceStatic);
    auto* ospf = make_origin("ospf", kDistanceOspf);
    auto* rip = make_origin("rip", kDistanceRip);
    auto* ebgp = make_origin("ebgp", kDistanceEbgp);
    auto* ibgp = make_origin("ibgp", kDistanceIbgp);

    // Internal merge tree (Figure 7's pairwise Merge stages).
    auto merge = [&](const char* name, stage::RouteStage<IPv4>* a,
                     stage::RouteStage<IPv4>* b) {
        merges_.push_back(
            std::make_unique<stage::MergeStage<IPv4>>(name));
        merges_.back()->set_parents(a, b);
        return merges_.back().get();
    };
    auto* m1 = merge("merge-conn-static", connected, statics);
    auto* m2 = merge("merge-igp1", m1, ospf);
    auto* internal = merge("merge-internal", m2, rip);
    auto* external = merge("merge-bgp", ebgp, ibgp);

    extint_ = std::make_unique<stage::ExtIntStage<IPv4>>("extint");
    extint_->set_parents(external, internal);

    register_stage_ =
        std::make_unique<stage::RegisterStage<IPv4>>("register");
    extint_->set_downstream(register_stage_.get());
    register_stage_->set_upstream(extint_.get());

    final_ = std::make_unique<stage::SinkStage<IPv4>>(
        "fea-branch", [this](bool is_add, const Route4& r) {
            if (prof_fea_queued_.enabled())
                prof_fea_queued_.record(
                    (is_add ? "add " : "delete ") + r.net.str());
            if (is_add)
                fea_->add_route(r.net, r.nexthop);
            else
                fea_->delete_route(r.net);
        });
    register_stage_->set_downstream(final_.get());
    final_->set_upstream(register_stage_.get());
}

Rib::~Rib() = default;

bool Rib::add_route(const std::string& protocol, const IPv4Net& net,
                    IPv4 nexthop, uint32_t metric) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return false;
    it->second.adds->inc();
    if (prof_in_.enabled()) prof_in_.record("add " + net.str());
    Route4 r;
    r.net = net;
    r.nexthop = nexthop;
    r.metric = metric;
    r.admin_distance = it->second.admin_distance;
    r.protocol = protocol;
    it->second.stage->add_route(r);
    return true;
}

bool Rib::delete_route(const std::string& protocol, const IPv4Net& net) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return false;
    it->second.deletes->inc();
    if (prof_in_.enabled()) prof_in_.record("delete " + net.str());
    Route4 r;
    r.net = net;
    it->second.stage->delete_route(r);
    return true;
}

void Rib::set_admin_distance(const std::string& protocol, uint32_t distance) {
    auto it = origins_.find(protocol);
    if (it != origins_.end()) it->second.admin_distance = distance;
}

std::optional<Route4> Rib::lookup(IPv4 addr) const {
    return final_->lookup_route_lpm(addr);
}

std::optional<Route4> Rib::lookup_exact(const IPv4Net& net) const {
    return final_->lookup_route(net);
}

size_t Rib::origin_route_count(const std::string& protocol) const {
    auto it = origins_.find(protocol);
    return it == origins_.end() ? 0 : it->second.stage->route_count();
}

Rib::Answer Rib::register_interest(IPv4 addr, uint64_t client_id,
                                   InvalidateCallback cb) {
    auto ans = register_stage_->register_interest(addr, client_id,
                                                  std::move(cb));
    Answer out;
    out.valid_subnet = ans.valid_subnet;
    if (ans.has_route) {
        out.resolves = true;
        out.matched_net = ans.route.net;
        out.nexthop = ans.route.nexthop;
        out.metric = ans.route.metric;
    }
    return out;
}

void Rib::unregister_interest(const IPv4Net& valid_subnet,
                              uint64_t client_id) {
    register_stage_->unregister_interest(valid_subnet, client_id);
}

uint64_t Rib::add_redist(RedistPredicate pred, RedistSink sink) {
    uint64_t id = next_redist_id_++;
    auto stage = std::make_unique<stage::RedistStage<IPv4>>(
        "redist-" + std::to_string(id), std::move(pred), std::move(sink));
    // Plumb between the ExtInt stage and whatever currently follows it.
    stage::plumb_between<IPv4>(*extint_, *stage, *extint_->downstream());
    redists_[id] = std::move(stage);
    return id;
}

void Rib::remove_redist(uint64_t id) {
    auto it = redists_.find(id);
    if (it == redists_.end()) return;
    stage::unplumb(*it->second);
    redists_.erase(it);
}

void Rib::set_profiler(profiler::Profiler* p) {
    profiler_ = p;
    if (p != nullptr) {
        prof_in_ = p->point("rib_in");
        prof_fea_queued_ = p->point("rib_fea_queued");
    } else {
        prof_in_ = {};
        prof_fea_queued_ = {};
    }
}

}  // namespace xrp::rib
