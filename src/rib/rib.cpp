#include "rib/rib.hpp"

#include "telemetry/journal.hpp"

namespace xrp::rib {

using net::IPv4;
using net::IPv4Net;

Rib::Rib(ev::EventLoop& loop, std::unique_ptr<FeaHandle> fea)
    : loop_(loop), fea_(std::move(fea)) {
    if (!fea_) fea_ = std::make_unique<NullFeaHandle>();

    auto make_origin = [&](const char* proto, uint32_t dist) {
        Origin o;
        o.admin_distance = dist;
        o.stage = std::make_unique<stage::OriginStage<IPv4>>(
            std::string(proto) + "-origin");
        auto& reg = telemetry::Registry::global();
        o.adds = reg.counter(telemetry::metric_key("rib_route_adds_total",
                                                   {{"protocol", proto}}));
        o.deletes = reg.counter(telemetry::metric_key(
            "rib_route_deletes_total", {{"protocol", proto}}));
        o.stale_gauge = reg.gauge(telemetry::metric_key(
            "rib_stale_routes", {{"protocol", proto}}));
        o.swept = reg.counter(telemetry::metric_key(
            "rib_stale_routes_swept_total", {{"protocol", proto}}));
        o.grace_expiries = reg.counter(telemetry::metric_key(
            "rib_grace_expiries_total", {{"protocol", proto}}));
        origins_[proto] = std::move(o);
        return origins_[proto].stage.get();
    };
    auto* connected = make_origin("connected", kDistanceConnected);
    auto* statics = make_origin("static", kDistanceStatic);
    auto* ospf = make_origin("ospf", kDistanceOspf);
    auto* rip = make_origin("rip", kDistanceRip);
    auto* ebgp = make_origin("ebgp", kDistanceEbgp);
    auto* ibgp = make_origin("ibgp", kDistanceIbgp);

    // Internal merge tree (Figure 7's pairwise Merge stages).
    auto merge = [&](const char* name, stage::RouteStage<IPv4>* a,
                     stage::RouteStage<IPv4>* b) {
        merges_.push_back(
            std::make_unique<stage::MergeStage<IPv4>>(name));
        merges_.back()->set_parents(a, b);
        return merges_.back().get();
    };
    auto* m1 = merge("merge-conn-static", connected, statics);
    auto* m2 = merge("merge-igp1", m1, ospf);
    auto* internal = merge("merge-internal", m2, rip);
    auto* external = merge("merge-bgp", ebgp, ibgp);

    extint_ = std::make_unique<stage::ExtIntStage<IPv4>>("extint");
    extint_->set_parents(external, internal);

    register_stage_ =
        std::make_unique<stage::RegisterStage<IPv4>>("register");
    extint_->set_downstream(register_stage_.get());
    register_stage_->set_upstream(extint_.get());

    {
        auto& reg = telemetry::Registry::global();
        m_ecmp_routes_ = reg.gauge("rib_ecmp_routes");
        m_ecmp_members_ = reg.gauge("rib_ecmp_members");
    }
    final_ = std::make_unique<stage::SinkStage<IPv4>>(
        "fea-branch", [this](bool is_add, const Route4& r) {
            if (prof_fea_queued_.enabled())
                prof_fea_queued_.record(
                    (is_add ? "add " : "delete ") + r.net.str());
            // Replacement is delete(old)+add(new), so the ECMP occupancy
            // gauges stay balanced across set membership changes.
            if (r.is_multipath()) {
                m_ecmp_routes_->add(is_add ? 1 : -1);
                m_ecmp_members_->add(
                    (is_add ? 1 : -1) *
                    static_cast<int64_t>(r.nexthops.size()));
            }
            if (is_add) {
                if (r.is_multipath())
                    fea_->add_route(r.net, r.nexthops);
                else
                    fea_->add_route(r.net, r.nexthop);
            } else {
                fea_->delete_route(r.net);
            }
        });
    // Batched winners ship to the FEA as one delta; per-entry gauge and
    // profiling bookkeeping mirrors the scalar callback (a replace is a
    // delete(old)+add(new) for both).
    final_->set_batch_callback([this](stage::RouteBatch<IPv4>&& batch) {
        for (const auto& e : batch.entries()) {
            if (prof_fea_queued_.enabled()) {
                if (e.op == stage::BatchOp::kDelete)
                    prof_fea_queued_.record("delete " + e.route.net.str());
                else if (e.op == stage::BatchOp::kReplace)
                    prof_fea_queued_.record("delete " + e.old_route.net.str());
                if (e.op != stage::BatchOp::kDelete)
                    prof_fea_queued_.record("add " + e.route.net.str());
            }
            const Route4& gone =
                e.op == stage::BatchOp::kReplace ? e.old_route : e.route;
            if (e.op != stage::BatchOp::kAdd && gone.is_multipath()) {
                m_ecmp_routes_->add(-1);
                m_ecmp_members_->add(
                    -static_cast<int64_t>(gone.nexthops.size()));
            }
            if (e.op != stage::BatchOp::kDelete && e.route.is_multipath()) {
                m_ecmp_routes_->add(1);
                m_ecmp_members_->add(
                    static_cast<int64_t>(e.route.nexthops.size()));
            }
        }
        fea_->push_batch(std::move(batch));
    });
    register_stage_->set_downstream(final_.get());
    final_->set_upstream(register_stage_.get());
}

Rib::~Rib() = default;

bool Rib::add_route(const std::string& protocol, const IPv4Net& net,
                    IPv4 nexthop, uint32_t metric) {
    // The scalar verb is the 1-member degenerate case of the set verb;
    // set_nexthops() collapses it back so the stored route is identical.
    return add_route(protocol, net, net::NexthopSet4::single(nexthop),
                     metric);
}

bool Rib::add_route(const std::string& protocol, const IPv4Net& net,
                    const net::NexthopSet4& nexthops, uint32_t metric) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return false;
    it->second.adds->inc();
    if (prof_in_.enabled()) prof_in_.record("add " + net.str());
    Route4 r;
    r.net = net;
    r.set_nexthops(nexthops);
    r.metric = metric;
    r.admin_distance = it->second.admin_distance;
    r.protocol = protocol;
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop_.now(), telemetry::JournalKind::kRouteInstall, node_, "rib",
            net.str(), protocol + ":" + r.nexthop_set().str(),
            static_cast<int64_t>(metric));
    it->second.stage->add_route(r);
    if (it->second.state != OriginState::kFresh)
        it->second.stale_gauge->set(
            static_cast<int64_t>(it->second.stage->stale_count()));
    return true;
}

bool Rib::delete_route(const std::string& protocol, const IPv4Net& net) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return false;
    it->second.deletes->inc();
    if (prof_in_.enabled()) prof_in_.record("delete " + net.str());
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop_.now(), telemetry::JournalKind::kRouteWithdraw, node_, "rib",
            net.str(), protocol);
    Route4 r;
    r.net = net;
    it->second.stage->delete_route(r);
    if (it->second.state != OriginState::kFresh)
        it->second.stale_gauge->set(
            static_cast<int64_t>(it->second.stage->stale_count()));
    return true;
}

bool Rib::push_batch(const std::string& protocol,
                     stage::RouteBatch4&& batch) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return false;
    Origin& o = it->second;
    if (batch.empty()) return true;
    o.adds->inc(batch.add_count());
    o.deletes->inc(batch.delete_count());
    if (prof_in_.enabled())
        prof_in_.record("bulk " + std::to_string(batch.size()));
    const bool journal = telemetry::journal_enabled();
    for (auto& e : batch.entries()) {
        if (e.op != stage::BatchOp::kDelete) {
            e.route.admin_distance = o.admin_distance;
            e.route.protocol = protocol;
        }
        if (e.op == stage::BatchOp::kReplace) {
            e.old_route.admin_distance = o.admin_distance;
            e.old_route.protocol = protocol;
        }
        // The journal stays per-route when enabled — the analyzer replays
        // individual events — and costs one branch per entry when not.
        if (journal) {
            auto& j = telemetry::Journal::current();
            if (e.op != stage::BatchOp::kAdd)
                j.record(loop_.now(), telemetry::JournalKind::kRouteWithdraw,
                         node_, "rib",
                         (e.op == stage::BatchOp::kReplace ? e.old_route.net
                                                           : e.route.net)
                             .str(),
                         protocol);
            if (e.op != stage::BatchOp::kDelete)
                j.record(loop_.now(), telemetry::JournalKind::kRouteInstall,
                         node_, "rib", e.route.net.str(),
                         protocol + ":" + e.route.nexthop_set().str(),
                         static_cast<int64_t>(e.route.metric));
        }
    }
    o.stage->push_batch(std::move(batch));
    if (o.state != OriginState::kFresh)
        o.stale_gauge->set(static_cast<int64_t>(o.stage->stale_count()));
    return true;
}

void Rib::set_admin_distance(const std::string& protocol, uint32_t distance) {
    auto it = origins_.find(protocol);
    if (it != origins_.end()) it->second.admin_distance = distance;
}

std::optional<Route4> Rib::lookup(IPv4 addr) const {
    return final_->lookup_route_lpm(addr);
}

std::optional<Route4> Rib::lookup_exact(const IPv4Net& net) const {
    return final_->lookup_route(net);
}

size_t Rib::origin_route_count(const std::string& protocol) const {
    auto it = origins_.find(protocol);
    return it == origins_.end() ? 0 : it->second.stage->route_count();
}

Rib::Answer Rib::register_interest(IPv4 addr, uint64_t client_id,
                                   InvalidateCallback cb) {
    auto ans = register_stage_->register_interest(addr, client_id,
                                                  std::move(cb));
    Answer out;
    out.valid_subnet = ans.valid_subnet;
    if (ans.has_route) {
        out.resolves = true;
        out.matched_net = ans.route.net;
        out.nexthop = ans.route.nexthop;
        out.metric = ans.route.metric;
    }
    return out;
}

void Rib::unregister_interest(const IPv4Net& valid_subnet,
                              uint64_t client_id) {
    register_stage_->unregister_interest(valid_subnet, client_id);
}

uint64_t Rib::add_redist(RedistPredicate pred, RedistSink sink) {
    uint64_t id = next_redist_id_++;
    auto stage = std::make_unique<stage::RedistStage<IPv4>>(
        "redist-" + std::to_string(id), std::move(pred), std::move(sink));
    // Plumb between the ExtInt stage and whatever currently follows it.
    stage::plumb_between<IPv4>(*extint_, *stage, *extint_->downstream());
    redists_[id] = std::move(stage);
    return id;
}

void Rib::remove_redist(uint64_t id) {
    auto it = redists_.find(id);
    if (it == redists_.end()) return;
    stage::unplumb(*it->second);
    redists_.erase(it);
}

void Rib::origin_dead(const std::string& protocol) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return;
    Origin& o = it->second;
    // A re-death mid-sweep: stop the sweeper; the generation bump below
    // re-marks everything (including whatever it hadn't reached) stale.
    if (o.sweeper) o.sweeper->abort();
    o.stage->begin_refresh();
    o.state = OriginState::kStale;
    o.stale_gauge->set(static_cast<int64_t>(o.stage->stale_count()));
    o.grace_timer = loop_.set_timer(
        o.grace, [this, protocol] { grace_expired(protocol); });
}

void Rib::origin_revived(const std::string& protocol) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return;
    Origin& o = it->second;
    if (o.state != OriginState::kStale) return;
    // The restarted instance is back and resyncing: stop the grace clock.
    // Routes stay stale until re-confirmed; the sweep waits for the
    // explicit resynced signal.
    o.grace_timer.unschedule();
}

void Rib::origin_resynced(const std::string& protocol) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return;
    Origin& o = it->second;
    if (o.state != OriginState::kStale) return;
    o.grace_timer.unschedule();
    if (o.stage->stale_count() == 0) {
        o.state = OriginState::kFresh;
        o.stale_gauge->set(0);
        return;
    }
    start_sweep(protocol, o);
}

void Rib::start_sweep(const std::string& protocol, Origin& o) {
    o.state = OriginState::kSweeping;
    o.sweeper = std::make_unique<stage::StaleSweeperStage<IPv4>>(
        protocol + "-sweeper", *o.stage, loop_,
        [this, protocol](stage::StaleSweeperStage<IPv4>* self) {
            auto oit = origins_.find(protocol);
            if (oit == origins_.end()) return;
            Origin& org = oit->second;
            if (org.sweeper.get() != self) return;  // superseded
            org.swept->inc(self->swept());
            org.swept_total += self->swept();
            org.sweeper.reset();
            if (org.state == OriginState::kSweeping)
                org.state = OriginState::kFresh;
            org.stale_gauge->set(
                static_cast<int64_t>(org.stage->stale_count()));
        });
    auto* down = o.stage->downstream();
    stage::plumb_between<IPv4>(*o.stage, *o.sweeper, *down);
}

void Rib::grace_expired(const std::string& protocol) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return;
    Origin& o = it->second;
    if (o.state != OriginState::kStale) return;
    o.grace_expiries->inc();
    if (o.stage->stale_count() < o.stage->route_count()) {
        // A partial resync snuck in without the resynced signal: keep the
        // refreshed routes, sweep only the stale remainder.
        start_sweep(protocol, o);
        return;
    }
    // Nothing was refreshed — the restart never really happened. Classic
    // §5.1.2: detach the whole table into a background DeletionStage so
    // the origin starts over empty, instantly ready for a future revival.
    auto table = o.stage->detach_table();
    o.state = OriginState::kFresh;
    o.stale_gauge->set(0);
    if (table->empty()) return;
    auto* down = o.stage->downstream();
    auto del = std::make_unique<stage::DeletionStage<IPv4>>(
        protocol + "-flush", std::move(table), loop_,
        [this](stage::DeletionStage<IPv4>* self) {
            for (auto dit = deleters_.begin(); dit != deleters_.end(); ++dit) {
                if (dit->get() == self) {
                    deleters_.erase(dit);
                    break;
                }
            }
        });
    stage::plumb_between<IPv4>(*o.stage, *del, *down);
    deleters_.push_back(std::move(del));
}

void Rib::set_grace_period(const std::string& protocol, ev::Duration grace) {
    auto it = origins_.find(protocol);
    if (it == origins_.end()) return;
    it->second.grace = grace;
    // An already-running clock keeps its old deadline; the new period
    // applies from the next death.
}

Rib::OriginState Rib::origin_state(const std::string& protocol) const {
    auto it = origins_.find(protocol);
    return it == origins_.end() ? OriginState::kFresh : it->second.state;
}

size_t Rib::stale_route_count(const std::string& protocol) const {
    auto it = origins_.find(protocol);
    return it == origins_.end() ? 0 : it->second.stage->stale_count();
}

uint64_t Rib::swept_route_count(const std::string& protocol) const {
    auto it = origins_.find(protocol);
    return it == origins_.end() ? 0 : it->second.swept_total;
}

void Rib::set_profiler(profiler::Profiler* p) {
    profiler_ = p;
    if (p != nullptr) {
        prof_in_ = p->point("rib_in");
        prof_fea_queued_ = p->point("rib_fea_queued");
    } else {
        prof_in_ = {};
        prof_fea_queued_ = {};
    }
}

}  // namespace xrp::rib
