// XRL plumbing for the RIB:
//   - bind_rib_xrl(): exposes the rib/1.0 interface (route input, winner
//     queries, Figure-8 interest registration) on an XrlRouter;
//   - XrlFeaHandle: the RIB's coupling to a remote FEA over XRLs;
//   - rib-client invalidation: when a registration is invalidated the RIB
//     calls <client>/rib_client/1.0/route_info_invalid, closing the
//     asynchronous loop of §5.2.1.
#ifndef XRP_RIB_RIB_XRL_HPP
#define XRP_RIB_RIB_XRL_HPP

#include "ipc/router.hpp"
#include "rib/rib.hpp"

namespace xrp::rib {

inline constexpr const char* kRibIdl = R"(
interface rib/1.0 {
    add_route ? protocol:txt & net:ipv4net & nexthop:ipv4 & metric:u32;
    add_route_multipath ? protocol:txt & net:ipv4net & nexthops:txt & metric:u32;
    add_routes_bulk ? protocol:txt & routes:txt;
    delete_route ? protocol:txt & net:ipv4net;
    lookup_route4 ? addr:ipv4
        -> found:bool & net:ipv4net & nexthop:ipv4 & metric:u32 & protocol:txt;
    register_interest ? addr:ipv4 & client:txt
        -> resolves:bool & net:ipv4net & nexthop:ipv4 & metric:u32 & valid_subnet:ipv4net;
    unregister_interest ? valid_subnet:ipv4net & client:txt;
    get_route_count -> count:u32;
    origin_dead ? protocol:txt;
    origin_revived ? protocol:txt;
    origin_resynced ? protocol:txt;
    set_grace_period ? protocol:txt & seconds:u32;
    get_origin_status ? protocol:txt
        -> state:txt & stale:u32 & swept:u32;
}
)";

inline constexpr const char* kRibClientIdl = R"(
interface rib_client/1.0 {
    route_info_invalid ? valid_subnet:ipv4net;
}
)";

// Registers rib/1.0 on `router` backed by `rib`. Interest-registration
// clients are identified by their component target name; invalidations go
// back to them as rib_client/1.0/route_info_invalid XRLs.
void bind_rib_xrl(Rib& rib, ipc::XrlRouter& router);

// FeaHandle that forwards to a (possibly remote) FEA component over XRLs.
class XrlFeaHandle final : public FeaHandle {
public:
    explicit XrlFeaHandle(ipc::XrlRouter& router, std::string fea_target = "fea")
        : router_(router), target_(std::move(fea_target)) {}

    // Profiling point "rib_fea_sent": the paper's "Sent to the FEA".
    void set_profiler(profiler::Profiler* p) {
        prof_sent_ = p != nullptr ? p->point("rib_fea_sent")
                                  : profiler::Profiler::ProfilePoint{};
    }

    // One marshalling path for scalar and multipath installs: a 1-member
    // set's text form is byte-identical to the bare address, so every add
    // goes out as fea/1.0/add_route4_multipath. FIB pushes are idempotent
    // (re-adding the same route is a no-op), so the reliable contract may
    // retry them through chaos.
    void add_route(const net::IPv4Net& net, net::IPv4 nexthop) override {
        add_route(net, net::NexthopSet4::single(nexthop));
    }
    void add_route(const net::IPv4Net& net,
                   const net::NexthopSet4& nexthops) override {
        xrl::XrlArgs args;
        args.add("net", net).add("nexthops", nexthops.str());
        if (prof_sent_.enabled()) prof_sent_.record("add " + net.str());
        router_.call_oneway(
            xrl::Xrl::generic(target_, "fea", "1.0", "add_route4_multipath",
                              args),
            ipc::CallOptions::reliable());
    }
    void delete_route(const net::IPv4Net& net) override {
        xrl::XrlArgs args;
        args.add("net", net);
        if (prof_sent_.enabled()) prof_sent_.record("delete " + net.str());
        router_.call_oneway(
            xrl::Xrl::generic(target_, "fea", "1.0", "delete_route4", args),
            ipc::CallOptions::reliable());
    }
    // A whole RIB delta as a handful of framed add_routes4_bulk XRLs.
    // Coalescing is safe at this boundary (the FEA cares about final FIB
    // state, not transients); 1-entry leftovers use the scalar verbs so
    // singleton churn keeps its legacy wire shape.
    void push_batch(stage::RouteBatch4&& batch) override {
        batch.coalesce();
        if (batch.empty()) return;
        if (batch.size() == 1 &&
            batch.entries()[0].op != stage::BatchOp::kReplace) {
            auto& e = batch.entries()[0];
            if (e.op == stage::BatchOp::kAdd)
                add_route(e.route.net, e.route.nexthop_set());
            else
                delete_route(e.route.net);
            return;
        }
        stage::RouteBatch4 chunk;
        auto flush = [&] {
            if (chunk.empty()) return;
            xrl::XrlArgs args;
            args.add("routes", chunk.encode());
            router_.call_oneway(
                xrl::Xrl::generic(target_, "fea", "1.0", "add_routes4_bulk",
                                  args),
                ipc::CallOptions::reliable());
            chunk.clear();
        };
        for (auto& e : batch.entries()) {
            if (prof_sent_.enabled()) {
                if (e.op != stage::BatchOp::kAdd)
                    prof_sent_.record(
                        "delete " + (e.op == stage::BatchOp::kReplace
                                         ? e.old_route.net.str()
                                         : e.route.net.str()));
                if (e.op != stage::BatchOp::kDelete)
                    prof_sent_.record("add " + e.route.net.str());
            }
            chunk.push(std::move(e));
            if (chunk.size() >= kBulkChunkEntries) flush();
        }
        flush();
    }

private:
    // Entries per add_routes4_bulk message: bounds any one XRL's payload
    // (and the receiver's decode allocation) without meaningfully
    // increasing the message count for million-route downloads.
    static constexpr size_t kBulkChunkEntries = 8192;

    ipc::XrlRouter& router_;
    std::string target_;
    profiler::Profiler::ProfilePoint prof_sent_;
};

}  // namespace xrp::rib

#endif
