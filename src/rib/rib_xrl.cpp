#include "rib/rib_xrl.hpp"

namespace xrp::rib {

using xrl::XrlArgs;
using xrl::XrlError;

namespace {

// Stable small ids for client target names (RegisterStage keys clients by
// integer id).
uint64_t client_id_for(const std::string& name) {
    static std::map<std::string, uint64_t> ids;
    auto [it, inserted] = ids.emplace(name, ids.size() + 1);
    return it->second;
}

}  // namespace

void bind_rib_xrl(Rib& rib, ipc::XrlRouter& router) {
    auto spec = xrl::InterfaceSpec::parse(kRibIdl);
    router.add_interface(*spec);

    // add_route_multipath is the canonical route-input verb: nexthops is
    // the NexthopSet canonical text form ("addr[@w]|addr[@w]..."), and a
    // bare address parses as the 1-member set, so the scalar add_route
    // verb below is a thin compat wrapper over the same path.
    router.add_handler(
        "rib/1.0/add_route_multipath", [&rib](const XrlArgs& in, XrlArgs&) {
            auto set = net::NexthopSet4::parse(*in.get_text("nexthops"));
            if (!set || set->empty())
                return XrlError::command_failed("bad nexthops");
            if (!rib.add_route(*in.get_text("protocol"),
                               *in.get_ipv4net("net"), *set,
                               *in.get_u32("metric")))
                return XrlError::command_failed("unknown protocol");
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/add_route", [&rib](const XrlArgs& in, XrlArgs&) {
            if (!rib.add_route(*in.get_text("protocol"),
                               *in.get_ipv4net("net"),
                               net::NexthopSet4::single(*in.get_ipv4("nexthop")),
                               *in.get_u32("metric")))
                return XrlError::command_failed("unknown protocol");
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/add_routes_bulk", [&rib](const XrlArgs& in, XrlArgs&) {
            auto batch = stage::RouteBatch4::decode(*in.get_text("routes"));
            if (!batch) return XrlError::command_failed("bad routes");
            if (!rib.push_batch(*in.get_text("protocol"), std::move(*batch)))
                return XrlError::command_failed("unknown protocol");
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/delete_route", [&rib](const XrlArgs& in, XrlArgs&) {
            if (!rib.delete_route(*in.get_text("protocol"),
                                  *in.get_ipv4net("net")))
                return XrlError::command_failed("unknown protocol");
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/lookup_route4", [&rib](const XrlArgs& in, XrlArgs& out) {
            auto r = rib.lookup(*in.get_ipv4("addr"));
            out.add("found", r.has_value());
            out.add("net", r ? r->net : net::IPv4Net{});
            out.add("nexthop", r ? r->nexthop : net::IPv4{});
            out.add("metric", r ? r->metric : uint32_t{0});
            out.add("protocol", r ? r->protocol : std::string{});
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/register_interest",
        [&rib, &router](const XrlArgs& in, XrlArgs& out) {
            const std::string client = *in.get_text("client");
            const uint64_t id = client_id_for(client);
            auto ans = rib.register_interest(
                *in.get_ipv4("addr"), id,
                [&router, client](const net::IPv4Net& subnet) {
                    XrlArgs args;
                    args.add("valid_subnet", subnet);
                    // Invalidations must not get lost or the client keeps
                    // routing on stale state; redelivery is harmless.
                    router.call_oneway(
                        xrl::Xrl::generic(client, "rib_client", "1.0",
                                          "route_info_invalid", args),
                        ipc::CallOptions::reliable());
                });
            out.add("resolves", ans.resolves);
            out.add("net", ans.matched_net);
            out.add("nexthop", ans.nexthop);
            out.add("metric", ans.metric);
            out.add("valid_subnet", ans.valid_subnet);
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/unregister_interest", [&rib](const XrlArgs& in, XrlArgs&) {
            rib.unregister_interest(*in.get_ipv4net("valid_subnet"),
                                    client_id_for(*in.get_text("client")));
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/get_route_count", [&rib](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(rib.route_count()));
            return XrlError::okay();
        });
    // Graceful-restart notifications, sent by the rtrmgr's supervisor.
    // Deliberately tolerant of unknown protocols (okay, not error): the
    // supervisor retries oneways through chaos and a late duplicate after
    // a reconfiguration must not count as a hard failure.
    router.add_handler(
        "rib/1.0/origin_dead", [&rib](const XrlArgs& in, XrlArgs&) {
            rib.origin_dead(*in.get_text("protocol"));
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/origin_revived", [&rib](const XrlArgs& in, XrlArgs&) {
            rib.origin_revived(*in.get_text("protocol"));
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/origin_resynced", [&rib](const XrlArgs& in, XrlArgs&) {
            rib.origin_resynced(*in.get_text("protocol"));
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/set_grace_period", [&rib](const XrlArgs& in, XrlArgs&) {
            rib.set_grace_period(
                *in.get_text("protocol"),
                std::chrono::seconds(*in.get_u32("seconds")));
            return XrlError::okay();
        });
    router.add_handler(
        "rib/1.0/get_origin_status", [&rib](const XrlArgs& in, XrlArgs& out) {
            const std::string proto = *in.get_text("protocol");
            const char* state = "fresh";
            switch (rib.origin_state(proto)) {
                case Rib::OriginState::kFresh: state = "fresh"; break;
                case Rib::OriginState::kStale: state = "stale"; break;
                case Rib::OriginState::kSweeping: state = "sweeping"; break;
            }
            out.add("state", std::string(state));
            out.add("stale",
                    static_cast<uint32_t>(rib.stale_route_count(proto)));
            out.add("swept",
                    static_cast<uint32_t>(rib.swept_route_count(proto)));
            return XrlError::okay();
        });
}

}  // namespace xrp::rib
