#include "fea/simfib.hpp"

// SimForwardingPlane is header-only; this TU anchors it in the build.
namespace xrp::fea {}
