#include "fea/fea_xrl.hpp"

namespace xrp::fea {

using xrl::XrlArgs;
using xrl::XrlError;

void bind_fea_xrl(Fea& fea, ipc::XrlRouter& router) {
    auto spec = xrl::InterfaceSpec::parse(kFeaIdl);
    router.add_interface(*spec);

    // add_route4_multipath is the canonical install verb (a bare address
    // is the 1-member set); add_route4 stays as a thin compat wrapper.
    router.add_handler(
        "fea/1.0/add_route4_multipath", [&fea](const XrlArgs& in, XrlArgs&) {
            auto set = net::NexthopSet4::parse(*in.get_text("nexthops"));
            if (!set || set->empty())
                return XrlError::command_failed("bad nexthops");
            fea.add_route(*in.get_ipv4net("net"), *set);
            return XrlError::okay();
        });
    router.add_handler(
        "fea/1.0/add_route4", [&fea](const XrlArgs& in, XrlArgs&) {
            fea.add_route(*in.get_ipv4net("net"),
                          net::NexthopSet4::single(*in.get_ipv4("nexthop")));
            return XrlError::okay();
        });
    router.add_handler(
        "fea/1.0/add_routes4_bulk", [&fea](const XrlArgs& in, XrlArgs&) {
            auto batch = stage::RouteBatch4::decode(*in.get_text("routes"));
            if (!batch) return XrlError::command_failed("bad routes");
            fea.apply_batch(*batch);
            return XrlError::okay();
        });
    router.add_handler(
        "fea/1.0/delete_route4", [&fea](const XrlArgs& in, XrlArgs&) {
            if (!fea.delete_route(*in.get_ipv4net("net")))
                return XrlError::command_failed("no such route");
            return XrlError::okay();
        });
    router.add_handler(
        "fea/1.0/lookup_route4", [&fea](const XrlArgs& in, XrlArgs& out) {
            const FibEntry* e = fea.lookup(*in.get_ipv4("addr"));
            out.add("found", e != nullptr);
            out.add("net", e != nullptr ? e->net : net::IPv4Net{});
            out.add("nexthop", e != nullptr ? e->nexthop : net::IPv4{});
            return XrlError::okay();
        });
    router.add_handler(
        "fea/1.0/get_fib_size", [&fea](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(fea.fib().size()));
            return XrlError::okay();
        });
    // The 0-flinch witnesses: monotonic lifetime install/remove counts.
    // bench_restart and the upgrade tests read `deletes` before and after
    // a restart or binary upgrade — hitless means it did not move.
    router.add_handler(
        "fea/1.0/get_fib_churn", [&fea](const XrlArgs&, XrlArgs& out) {
            out.add("adds", fea.fib_adds());
            out.add("deletes", fea.fib_deletes());
            return XrlError::okay();
        });
    router.add_handler(
        "fea/1.0/get_interface_count", [&fea](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(fea.interfaces().size()));
            return XrlError::okay();
        });
}

}  // namespace xrp::fea
