// Interface table: the FEA's model of the router's network interfaces.
// Protocols discover interfaces and their addresses here (RIP binds one
// instance per interface), and link state changes propagate as events.
#ifndef XRP_FEA_IFTABLE_HPP
#define XRP_FEA_IFTABLE_HPP

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipnet.hpp"
#include "net/mac.hpp"

namespace xrp::fea {

struct Interface {
    std::string name;
    uint32_t ifindex = 0;
    net::Mac mac;
    uint32_t mtu = 1500;
    bool enabled = true;
    bool link_up = true;
    // Primary IPv4 address with its subnet.
    net::IPv4 addr;
    net::IPv4Net subnet;
};

class IfTable {
public:
    using ChangeCallback =
        std::function<void(const Interface&, bool now_up)>;

    // Adds an interface; ifindex assigned automatically. Returns it.
    uint32_t add_interface(const std::string& name, net::IPv4 addr,
                           uint32_t prefix_len,
                           net::Mac mac = net::Mac{});

    bool remove_interface(const std::string& name);

    const Interface* find(const std::string& name) const;
    const Interface* find_by_index(uint32_t ifindex) const;
    // The interface whose subnet contains `addr`, if any.
    const Interface* find_by_subnet(net::IPv4 addr) const;

    // Administrative and link state; both fire change callbacks.
    bool set_enabled(const std::string& name, bool enabled);
    bool set_link_up(const std::string& name, bool up);

    std::vector<std::string> interface_names() const;
    size_t size() const { return interfaces_.size(); }

    // Watch up/down transitions (either admin or link).
    uint64_t add_listener(ChangeCallback cb);
    void remove_listener(uint64_t id);

private:
    void notify(const Interface& itf);
    bool is_up(const Interface& itf) const {
        return itf.enabled && itf.link_up;
    }

    std::map<std::string, Interface> interfaces_;
    std::map<uint64_t, ChangeCallback> listeners_;
    uint32_t next_ifindex_ = 1;
    uint64_t next_listener_ = 1;
};

}  // namespace xrp::fea

#endif
