// Fea: the Forwarding Engine Abstraction process (§3).
//
// "The FEA provides a stable API for communicating with a forwarding
// engine or engines" — here the simulated forwarding plane — and, per the
// security design (§7), acts as the relay for all network access:
// "rather than sending UDP packets directly, RIP sends and receives
// packets using XRL calls to the FEA", so routing processes never need
// raw sockets or root privileges.
//
// Profiling points: "fea_in" (route arriving at the FEA) and "kernel_in"
// (route entering the kernel/forwarding plane) — the last two points of
// the paper's Figures 10-12 pipeline.
#ifndef XRP_FEA_FEA_HPP
#define XRP_FEA_FEA_HPP

#include <map>
#include <memory>

#include "ev/eventloop.hpp"
#include "fea/iftable.hpp"
#include "fea/simfib.hpp"
#include "fea/simnet.hpp"
#include "profiler/profiler.hpp"
#include "stage/batch.hpp"

namespace xrp::fea {

class Fea {
public:
    explicit Fea(ev::EventLoop& loop, std::string name = "fea")
        : loop_(loop), name_(std::move(name)) {}
    Fea(const Fea&) = delete;
    Fea& operator=(const Fea&) = delete;

    ev::EventLoop& loop() { return loop_; }
    const std::string& name() const { return name_; }
    IfTable& interfaces() { return interfaces_; }
    const IfTable& interfaces() const { return interfaces_; }
    SimForwardingPlane& fib() { return fib_; }
    const SimForwardingPlane& fib() const { return fib_; }

    // ---- forwarding table API (used by the RIB) ------------------------
    // The egress interface is resolved from the nexthop's subnet; a route
    // whose nexthop matches no interface is installed interface-less
    // (recursive routes — the RIB has already resolved reachability).
    void add_route(const net::IPv4Net& net, net::IPv4 nexthop);
    // Multipath install: each member's egress resolves independently and
    // flows are spread across members by lookup_flow(). A 0/1-member set
    // degrades to the scalar install above.
    void add_route(const net::IPv4Net& net, const net::NexthopSet4& nexthops);
    bool delete_route(const net::IPv4Net& net);
    // Bulk install: one call applies a whole RIB delta in entry order.
    // Per-entry FIB journaling is preserved — the convergence analyzer
    // replays individual kFibAdd/kFibDelete events — so the saving is the
    // transport round-trips, not the journal.
    void apply_batch(const stage::RouteBatch4& batch);
    const FibEntry* lookup(net::IPv4 addr) const { return fib_.lookup(addr); }

    // Monotonic churn counters: every install/removal that reached the
    // forwarding plane, ever. A hitless restart or upgrade must hold
    // fib_deletes() constant — the 0-flinch gate reads these, because a
    // transient dip in fib().size() could be masked by a same-tick re-add
    // while a delete+add pair cannot hide from a monotonic counter.
    uint64_t fib_adds() const { return fib_adds_; }
    uint64_t fib_deletes() const { return fib_deletes_; }

    // ---- virtual network attachment -------------------------------------
    void attach_to_network(VirtualNetwork* network, int link_id,
                           const std::string& ifname);

    // ---- the §7 UDP relay ---------------------------------------------
    using UdpReceiveCallback =
        std::function<void(const std::string& ifname, const Datagram&)>;
    // Opens a relay socket bound to `port` on every interface. Returns a
    // socket id (>0), or 0 if the port is taken.
    int udp_open(uint16_t port, UdpReceiveCallback cb);
    void udp_close(int sock);
    bool udp_send(int sock, const std::string& ifname, net::IPv4 dst,
                  uint16_t dst_port, std::vector<uint8_t> payload);

    // Called by the VirtualNetwork when a datagram reaches one of our
    // attached interfaces.
    void receive(const std::string& ifname, const Datagram& dgram);

    void set_profiler(profiler::Profiler* p);

    // Router identity stamped on journal events; empty = unbound.
    void set_node(std::string node) { node_ = std::move(node); }
    const std::string& node() const { return node_; }

private:
    struct RelaySocket {
        uint16_t port = 0;
        UdpReceiveCallback cb;
    };
    struct Attachment {
        VirtualNetwork* network = nullptr;
        int link_id = 0;
    };

    ev::EventLoop& loop_;
    std::string name_;
    std::string node_;
    IfTable interfaces_;
    SimForwardingPlane fib_;
    std::map<int, RelaySocket> sockets_;
    std::map<std::string, Attachment> attachments_;  // by ifname
    int next_sock_ = 1;
    uint64_t fib_adds_ = 0;
    uint64_t fib_deletes_ = 0;
    profiler::Profiler* profiler_ = nullptr;
    profiler::Profiler::ProfilePoint prof_in_;
    profiler::Profiler::ProfilePoint prof_kernel_;
};

}  // namespace xrp::fea

#endif
