// SimForwardingPlane: the simulated kernel FIB.
//
// Substitutes for the FreeBSD kernel forwarding table / Click forwarding
// path of the paper's testbed (see DESIGN.md). It is the terminal point
// of the control plane — the "Entering kernel" profile point of Figures
// 10-12 fires when a route lands here — and it can actually forward:
// lookup() runs longest-prefix match over the installed table, which the
// virtual network (simnet.hpp) uses to move packets between simulated
// routers.
#ifndef XRP_FEA_SIMFIB_HPP
#define XRP_FEA_SIMFIB_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/nexthop_set.hpp"
#include "net/trie.hpp"

namespace xrp::fea {

struct FibEntry {
    net::IPv4Net net;
    // Primary member and its egress — the whole story for single-path
    // entries, and the canonical (lowest-address) member for multipath.
    net::IPv4 nexthop;
    std::string ifname;
    // ECMP members and their egress interfaces, index-aligned with
    // nexthops.members(). A set of size <= 1 means single-path: flows
    // follow the scalar fields and no hashing happens.
    net::NexthopSet4 nexthops;
    std::vector<std::string> ifnames;
    bool operator==(const FibEntry&) const = default;

    bool is_multipath() const { return nexthops.size() > 1; }
};

class SimForwardingPlane {
public:
    using ChangeCallback = std::function<void(bool is_add, const FibEntry&)>;

    // Installs (or overwrites) an entry. Counts as one kernel transaction.
    void add_route(const FibEntry& e) {
        fib_.insert(e.net, e);
        ++installs_;
        if (cb_) cb_(true, e);
    }

    bool delete_route(const net::IPv4Net& net) {
        const FibEntry* e = fib_.find(net);
        if (e == nullptr) return false;
        FibEntry copy = *e;
        fib_.erase(net);
        ++removals_;
        if (cb_) cb_(false, copy);
        return true;
    }

    // Data-plane lookup: longest-prefix match.
    const FibEntry* lookup(net::IPv4 addr) const { return fib_.lookup(addr); }
    const FibEntry* find_exact(const net::IPv4Net& net) const {
        return fib_.find(net);
    }

    // Flow-aware lookup: LPM, then weighted-rendezvous placement of the
    // flow across the entry's ECMP members. Deterministic per (table,
    // flow): the same key always lands on the same member until that
    // member itself leaves the set — the stickiness contract bench_ecmp
    // measures. Single-path entries skip hashing entirely.
    struct HopChoice {
        net::IPv4 nexthop;
        std::string ifname;
    };
    std::optional<HopChoice> lookup_flow(net::IPv4 addr,
                                         uint64_t flow_key) const {
        const FibEntry* e = fib_.lookup(addr);
        if (e == nullptr) return std::nullopt;
        if (!e->is_multipath()) return HopChoice{e->nexthop, e->ifname};
        net::IPv4 member = e->nexthops.pick(flow_key);
        const auto& mem = e->nexthops.members();
        for (size_t i = 0; i < mem.size(); ++i)
            if (mem[i].addr == member)
                return HopChoice{member, i < e->ifnames.size()
                                             ? e->ifnames[i]
                                             : std::string()};
        return HopChoice{e->nexthop, e->ifname};
    }

    size_t size() const { return fib_.size(); }
    uint64_t install_count() const { return installs_; }
    uint64_t removal_count() const { return removals_; }

    void set_change_callback(ChangeCallback cb) { cb_ = std::move(cb); }

    template <class Fn>
    void for_each(Fn&& fn) const {
        fib_.for_each(fn);
    }

private:
    net::RouteTrie<net::IPv4, FibEntry> fib_;
    uint64_t installs_ = 0;
    uint64_t removals_ = 0;
    ChangeCallback cb_;
};

}  // namespace xrp::fea

#endif
