#include "fea/fea.hpp"

#include "telemetry/journal.hpp"

namespace xrp::fea {

void Fea::add_route(const net::IPv4Net& net, net::IPv4 nexthop) {
    if (prof_in_.enabled()) prof_in_.record("add " + net.str());
    FibEntry e;
    e.net = net;
    e.nexthop = nexthop;
    const Interface* itf = interfaces_.find_by_subnet(nexthop);
    if (itf != nullptr) e.ifname = itf->name;
    fib_.add_route(e);
    ++fib_adds_;
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop_.now(), telemetry::JournalKind::kFibAdd, node_, "fea",
            net.str(), nexthop.str() + ":" + e.ifname);
    if (prof_kernel_.enabled()) prof_kernel_.record("add " + net.str());
}

void Fea::add_route(const net::IPv4Net& net,
                    const net::NexthopSet4& nexthops) {
    if (nexthops.size() <= 1) {
        add_route(net,
                  nexthops.empty() ? net::IPv4() : nexthops.primary());
        return;
    }
    if (prof_in_.enabled()) prof_in_.record("add " + net.str());
    FibEntry e;
    e.net = net;
    e.nexthops = nexthops;
    // Per-member egress resolution; journal detail is "addr[@w]:ifname"
    // per member, '|'-joined — the single-member form is byte-identical
    // to the legacy scalar detail, and the analyzer rebuilds the set from
    // the member tokens.
    std::string detail;
    for (const auto& m : nexthops.members()) {
        const Interface* itf = interfaces_.find_by_subnet(m.addr);
        e.ifnames.push_back(itf != nullptr ? itf->name : std::string());
        if (!detail.empty()) detail += '|';
        detail += m.addr.str();
        if (m.weight != 1) detail += '@' + std::to_string(m.weight);
        detail += ':' + e.ifnames.back();
    }
    e.nexthop = nexthops.primary();
    e.ifname = e.ifnames.front();
    fib_.add_route(e);
    ++fib_adds_;
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop_.now(), telemetry::JournalKind::kFibAdd, node_, "fea",
            net.str(), detail);
    if (prof_kernel_.enabled()) prof_kernel_.record("add " + net.str());
}

void Fea::apply_batch(const stage::RouteBatch4& batch) {
    for (const auto& e : batch.entries()) {
        switch (e.op) {
        case stage::BatchOp::kAdd:
            if (e.route.is_multipath())
                add_route(e.route.net, e.route.nexthops);
            else
                add_route(e.route.net, e.route.nexthop);
            break;
        case stage::BatchOp::kDelete:
            delete_route(e.route.net);
            break;
        case stage::BatchOp::kReplace:
            delete_route(e.old_route.net);
            if (e.route.is_multipath())
                add_route(e.route.net, e.route.nexthops);
            else
                add_route(e.route.net, e.route.nexthop);
            break;
        }
    }
}

bool Fea::delete_route(const net::IPv4Net& net) {
    if (prof_in_.enabled()) prof_in_.record("delete " + net.str());
    bool ok = fib_.delete_route(net);
    if (ok) ++fib_deletes_;
    if (ok && telemetry::journal_enabled())
        telemetry::Journal::current().record(loop_.now(),
                                            telemetry::JournalKind::kFibDelete,
                                            node_, "fea", net.str());
    if (ok && prof_kernel_.enabled())
        prof_kernel_.record("delete " + net.str());
    return ok;
}

void Fea::attach_to_network(VirtualNetwork* network, int link_id,
                            const std::string& ifname) {
    attachments_[ifname] = {network, link_id};
    network->attach(link_id, this, ifname);
}

int Fea::udp_open(uint16_t port, UdpReceiveCallback cb) {
    for (const auto& [id, s] : sockets_)
        if (s.port == port) return 0;
    int id = next_sock_++;
    sockets_[id] = {port, std::move(cb)};
    return id;
}

void Fea::udp_close(int sock) { sockets_.erase(sock); }

bool Fea::udp_send(int sock, const std::string& ifname, net::IPv4 dst,
                   uint16_t dst_port, std::vector<uint8_t> payload) {
    auto sit = sockets_.find(sock);
    if (sit == sockets_.end()) return false;
    const Interface* itf = interfaces_.find(ifname);
    if (itf == nullptr || !itf->enabled || !itf->link_up) return false;
    auto ait = attachments_.find(ifname);
    if (ait == attachments_.end()) return false;
    Datagram d;
    d.src = itf->addr;
    d.dst = dst;
    d.src_port = sit->second.port;
    d.dst_port = dst_port;
    d.payload = std::move(payload);
    ait->second.network->send(this, ifname, d);
    return true;
}

void Fea::receive(const std::string& ifname, const Datagram& dgram) {
    const Interface* itf = interfaces_.find(ifname);
    if (itf == nullptr || !itf->enabled || !itf->link_up) return;
    for (const auto& [id, s] : sockets_) {
        if (s.port != dgram.dst_port) continue;
        // Accept unicast to our address, subnet broadcast, multicast, and
        // limited broadcast.
        bool for_us = dgram.dst == itf->addr || dgram.dst.is_multicast() ||
                      dgram.dst == net::IPv4::all_ones() ||
                      (itf->subnet.contains(dgram.dst) &&
                       dgram.dst ==
                           (itf->subnet.masked_addr() |
                            ~net::IPv4::make_prefix(itf->subnet.prefix_len())));
        if (for_us && s.cb) s.cb(ifname, dgram);
    }
}

void Fea::set_profiler(profiler::Profiler* p) {
    profiler_ = p;
    if (p != nullptr) {
        prof_in_ = p->point("fea_in");
        prof_kernel_ = p->point("kernel_in");
    } else {
        prof_in_ = {};
        prof_kernel_ = {};
    }
}

}  // namespace xrp::fea
