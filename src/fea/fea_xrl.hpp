// XRL interface of the FEA ("fea/1.0"). In the paper's architecture the
// FEA is its own process; here the adapter binds a Fea instance to an
// XrlRouter so the RIB (and anything else) reaches it purely via XRLs.
#ifndef XRP_FEA_FEA_XRL_HPP
#define XRP_FEA_FEA_XRL_HPP

#include "fea/fea.hpp"
#include "ipc/router.hpp"

namespace xrp::fea {

inline constexpr const char* kFeaIdl = R"(
interface fea/1.0 {
    add_route4 ? net:ipv4net & nexthop:ipv4;
    add_route4_multipath ? net:ipv4net & nexthops:txt;
    add_routes4_bulk ? routes:txt;
    delete_route4 ? net:ipv4net;
    lookup_route4 ? addr:ipv4 -> found:bool & net:ipv4net & nexthop:ipv4;
    get_fib_size -> count:u32;
    get_fib_churn -> adds:u64 & deletes:u64;
    get_interface_count -> count:u32;
}
)";

// Registers the fea/1.0 interface on `router` (which must not be
// finalized yet) backed by `fea`.
void bind_fea_xrl(Fea& fea, ipc::XrlRouter& router);

}  // namespace xrp::fea

#endif
