// VirtualNetwork: an in-memory datagram fabric connecting the FEAs of
// simulated routers.
//
// Substitutes for the testbed's physical links (DESIGN.md). A *link* is a
// broadcast segment; attaching (fea, ifname) endpoints to a link lets
// protocols like RIP exchange real UDP-style datagrams — unicast,
// subnet-broadcast, or multicast-ish all-attached delivery — with
// configurable latency and loss, driven entirely by event-loop timers so
// it works on virtual clocks.
#ifndef XRP_FEA_SIMNET_HPP
#define XRP_FEA_SIMNET_HPP

#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "ev/eventloop.hpp"
#include "net/ipnet.hpp"

namespace xrp::fea {

class Fea;

struct Datagram {
    net::IPv4 src;
    net::IPv4 dst;
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    std::vector<uint8_t> payload;
};

class VirtualNetwork {
public:
    explicit VirtualNetwork(ev::Duration latency = std::chrono::milliseconds(1))
        : latency_(latency) {}

    // Creates a broadcast segment; returns its id.
    int add_link();
    // Attaches an endpoint. The endpoint address is the FEA interface's
    // address; delivery consults it for unicast/broadcast matching.
    void attach(int link_id, Fea* fea, const std::string& ifname);
    void detach(int link_id, Fea* fea, const std::string& ifname);

    // Link failure: all attached endpoints see link-down (and the segment
    // stops carrying datagrams).
    void set_link_up(int link_id, bool up);
    bool link_up(int link_id) const;

    // Random loss probability [0,1) applied per datagram per receiver.
    void set_loss(double p) { loss_ = p; }

    // Sends from (fea, ifname) onto the attached link; delivery to every
    // other endpoint whose address matches dst (unicast), or to all
    // endpoints for broadcast/multicast destinations.
    void send(Fea* from, const std::string& ifname, const Datagram& dgram);

    uint64_t delivered_count() const { return delivered_; }
    uint64_t delivered_bytes() const { return delivered_bytes_; }
    uint64_t dropped_count() const { return dropped_; }

private:
    struct Endpoint {
        Fea* fea;
        std::string ifname;
        bool operator==(const Endpoint&) const = default;
    };
    struct Link {
        bool up = true;
        std::vector<Endpoint> endpoints;
    };

    void deliver(const Endpoint& ep, const Datagram& dgram);

    ev::Duration latency_;
    double loss_ = 0.0;
    std::mt19937 rng_{12345};
    std::map<int, Link> links_;
    int next_link_ = 1;
    uint64_t delivered_ = 0;
    uint64_t delivered_bytes_ = 0;  // payload bytes, per-receiver
    uint64_t dropped_ = 0;
};

}  // namespace xrp::fea

#endif
