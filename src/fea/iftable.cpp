#include "fea/iftable.hpp"

namespace xrp::fea {

uint32_t IfTable::add_interface(const std::string& name, net::IPv4 addr,
                                uint32_t prefix_len, net::Mac mac) {
    Interface itf;
    itf.name = name;
    itf.ifindex = next_ifindex_++;
    itf.mac = mac;
    itf.addr = addr;
    itf.subnet = net::IPv4Net(addr, prefix_len);
    interfaces_[name] = itf;
    notify(interfaces_[name]);
    return itf.ifindex;
}

bool IfTable::remove_interface(const std::string& name) {
    auto it = interfaces_.find(name);
    if (it == interfaces_.end()) return false;
    Interface itf = it->second;
    interfaces_.erase(it);
    itf.enabled = false;
    notify(itf);
    return true;
}

const Interface* IfTable::find(const std::string& name) const {
    auto it = interfaces_.find(name);
    return it == interfaces_.end() ? nullptr : &it->second;
}

const Interface* IfTable::find_by_index(uint32_t ifindex) const {
    for (const auto& [name, itf] : interfaces_)
        if (itf.ifindex == ifindex) return &itf;
    return nullptr;
}

const Interface* IfTable::find_by_subnet(net::IPv4 addr) const {
    for (const auto& [name, itf] : interfaces_)
        if (itf.subnet.contains(addr)) return &itf;
    return nullptr;
}

bool IfTable::set_enabled(const std::string& name, bool enabled) {
    auto it = interfaces_.find(name);
    if (it == interfaces_.end()) return false;
    if (it->second.enabled == enabled) return true;
    it->second.enabled = enabled;
    notify(it->second);
    return true;
}

bool IfTable::set_link_up(const std::string& name, bool up) {
    auto it = interfaces_.find(name);
    if (it == interfaces_.end()) return false;
    if (it->second.link_up == up) return true;
    it->second.link_up = up;
    notify(it->second);
    return true;
}

std::vector<std::string> IfTable::interface_names() const {
    std::vector<std::string> out;
    for (const auto& [name, itf] : interfaces_) out.push_back(name);
    return out;
}

uint64_t IfTable::add_listener(ChangeCallback cb) {
    uint64_t id = next_listener_++;
    listeners_[id] = std::move(cb);
    return id;
}

void IfTable::remove_listener(uint64_t id) { listeners_.erase(id); }

void IfTable::notify(const Interface& itf) {
    auto listeners = listeners_;  // callbacks may mutate the listener set
    for (const auto& [id, cb] : listeners) cb(itf, is_up(itf));
}

}  // namespace xrp::fea
