#include "fea/simnet.hpp"

#include "fea/fea.hpp"

namespace xrp::fea {

int VirtualNetwork::add_link() {
    int id = next_link_++;
    links_[id];
    return id;
}

void VirtualNetwork::attach(int link_id, Fea* fea, const std::string& ifname) {
    links_[link_id].endpoints.push_back({fea, ifname});
}

void VirtualNetwork::detach(int link_id, Fea* fea,
                            const std::string& ifname) {
    auto it = links_.find(link_id);
    if (it == links_.end()) return;
    std::erase(it->second.endpoints, Endpoint{fea, ifname});
}

void VirtualNetwork::set_link_up(int link_id, bool up) {
    auto it = links_.find(link_id);
    if (it == links_.end()) return;
    it->second.up = up;
    // Propagate as interface link state so protocols see the event.
    for (const Endpoint& ep : it->second.endpoints)
        ep.fea->interfaces().set_link_up(ep.ifname, up);
}

bool VirtualNetwork::link_up(int link_id) const {
    auto it = links_.find(link_id);
    return it != links_.end() && it->second.up;
}

void VirtualNetwork::send(Fea* from, const std::string& ifname,
                          const Datagram& dgram) {
    // Find the link this endpoint is attached to.
    for (auto& [id, link] : links_) {
        bool attached = false;
        for (const Endpoint& ep : link.endpoints)
            if (ep.fea == from && ep.ifname == ifname) attached = true;
        if (!attached) continue;
        if (!link.up) {
            ++dropped_;
            return;
        }
        for (const Endpoint& ep : link.endpoints) {
            if (ep.fea == from && ep.ifname == ifname) continue;  // no echo
            if (loss_ > 0.0 &&
                std::uniform_real_distribution<>(0.0, 1.0)(rng_) < loss_) {
                ++dropped_;
                continue;
            }
            deliver(ep, dgram);
        }
        return;
    }
    ++dropped_;  // endpoint not attached anywhere
}

void VirtualNetwork::deliver(const Endpoint& ep, const Datagram& dgram) {
    ++delivered_;
    delivered_bytes_ += dgram.payload.size();
    Fea* fea = ep.fea;
    std::string ifname = ep.ifname;
    fea->loop().defer_after(latency_, [fea, ifname, dgram] {
        fea->receive(ifname, dgram);
    });
}

}  // namespace xrp::fea
