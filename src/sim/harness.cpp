#include "sim/harness.hpp"

#include <algorithm>
#include <cstdio>

namespace xrp::sim {

void LatencyStats::sort() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double LatencyStats::mean() const {
    if (samples_.empty()) return 0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
}

double LatencyStats::stddev() const {
    if (samples_.size() < 2) return 0;
    double m = mean();
    double s = 0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::min() const {
    sort();
    return samples_.empty() ? 0 : samples_.front();
}

double LatencyStats::max() const {
    sort();
    return samples_.empty() ? 0 : samples_.back();
}

double LatencyStats::percentile(double p) const {
    if (samples_.empty()) return 0;
    sort();
    double idx = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::string LatencyStats::row() const {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%8.3f %8.3f %8.3f %8.3f", mean(),
                  stddev(), min(), max());
    return buf;
}

FeedPeer::FeedPeer(ev::EventLoop& loop, bgp::BgpPeer::Config config,
                   std::unique_ptr<bgp::BgpTransport> transport)
    : loop_(loop),
      session_(std::make_unique<bgp::BgpPeer>(loop, config,
                                              std::move(transport))) {
    session_->on_update = [this](const bgp::UpdateMessage& u) {
        received_.emplace_back(loop_.now(), u);
    };
    session_->start();
}

void FeedPeer::announce(const net::IPv4Net& net, net::IPv4 nexthop,
                        std::vector<bgp::As> path) {
    bgp::UpdateMessage u;
    bgp::PathAttributes pa;
    pa.origin = bgp::Origin::kIgp;
    pa.as_path = bgp::AsPath(std::move(path));
    pa.nexthop = nexthop;
    u.attributes = std::move(pa);
    u.nlri.push_back(net);
    send(u);
}

void FeedPeer::withdraw(const net::IPv4Net& net) {
    bgp::UpdateMessage u;
    u.withdrawn.push_back(net);
    send(u);
}

std::pair<std::unique_ptr<FeedPeer>, int> attach_feed_peer(
    ev::EventLoop& loop, bgp::BgpProcess& bgp, net::IPv4 feed_addr,
    bgp::As feed_as, ev::Duration latency) {
    auto [tf, tp] = bgp::PipeTransport::make_pair(loop, loop, latency);
    bgp::BgpPeer::Config feed_cfg;
    feed_cfg.local_id = feed_addr;
    feed_cfg.peer_addr = bgp.config().bgp_id;
    feed_cfg.local_as = feed_as;
    feed_cfg.peer_as = bgp.config().local_as;
    auto feed = std::make_unique<FeedPeer>(loop, feed_cfg, std::move(tf));

    bgp::BgpPeer::Config proc_cfg;
    proc_cfg.local_id = bgp.config().bgp_id;
    proc_cfg.peer_addr = feed_addr;
    proc_cfg.local_as = bgp.config().local_as;
    proc_cfg.peer_as = feed_as;
    int id = bgp.add_peer(proc_cfg, std::move(tp));
    return {std::move(feed), id};
}

}  // namespace xrp::sim
