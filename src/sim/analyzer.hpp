// ConvergenceAnalyzer: turns a journal of FIB writes plus a link-state
// oracle into the numbers the paper's evaluation reports — convergence
// time, transient blackhole windows (a prefix unreachable in the data
// plane while the physical topology says it should be reachable), and
// forwarding-loop windows (a FIB walk that revisits a node).
//
// The analyzer is deliberately offline: it replays journal fib_add /
// fib_delete events into per-node FIB models and re-walks every
// (probe source, beacon) pair at each instant the forwarding state or the
// physical topology changed. Nothing here touches live router objects, so
// the same code verifies hand-built timelines in tests and real scenario
// runs in the harness; the walk itself is also exposed so the scenario
// runner can probe live FEA FIBs with identical semantics.
#ifndef XRP_SIM_ANALYZER_HPP
#define XRP_SIM_ANALYZER_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ev/clock.hpp"
#include "net/ipnet.hpp"
#include "net/nexthop_set.hpp"
#include "telemetry/journal.hpp"

namespace xrp::sim {

// Per-node forwarding model: prefix -> nexthop set. Longest prefix wins
// on lookup, then the walk picks the member the same rendezvous hash the
// real SimForwardingPlane uses, so an ECMP fan-out replays identically
// offline. Single-path routes are 1-member sets.
using AnalyzerFib = std::map<net::IPv4Net, net::NexthopSet4>;

class ConvergenceAnalyzer {
public:
    // Static description of who is where: journal node names, interface
    // address ownership (how a nexthop address maps to the next router),
    // and each node's directly attached subnets (local delivery).
    struct Topology {
        size_t node_count = 0;
        std::map<std::string, size_t> node_index;  // journal node -> index
        std::map<net::IPv4, size_t> addr_owner;    // iface addr -> node
        std::vector<std::vector<net::IPv4Net>> attached;  // per node
    };

    // A probed destination: an address inside a stub subnet attached only
    // to `owner`, so delivery is unambiguous.
    struct Beacon {
        net::IPv4 dst{};
        size_t owner = 0;
    };

    enum class WalkResult { kDelivered, kBlackhole, kLoop };
    static const char* walk_result_name(WalkResult r);

    // Can a packet physically cross from node `from` to node `to` now?
    using EdgeUp = std::function<bool(size_t from, size_t to)>;

    // One data-plane forwarding walk: follow FIB lookups hop by hop from
    // `src` toward `dst` until local delivery, a missing route / dead
    // link / unknown nexthop (blackhole), or a revisited node (loop).
    static WalkResult walk(const Topology& topo,
                           const std::vector<AnalyzerFib>& fibs, size_t src,
                           net::IPv4 dst, const EdgeUp& edge_up,
                           size_t max_hops = 64);

    // The physical-topology oracle: an undirected edge set plus a
    // timeline of up/down transitions (appended in time order by the
    // scenario script). Reachability is BFS over the edges up at `t`.
    class Oracle {
    public:
        size_t add_edge(size_t a, size_t b);
        // Records a transition; call with non-decreasing `t`.
        void set_edge_up(ev::TimePoint t, size_t edge, bool up);
        // Convenience for node kill: every edge incident to `n`.
        void set_node_up(ev::TimePoint t, size_t n, bool up);

        bool edge_up_at(ev::TimePoint t, size_t a, size_t b) const;
        bool reachable(ev::TimePoint t, size_t src, size_t dst,
                       size_t node_count) const;
        // Every distinct transition time in (begin, end].
        std::vector<ev::TimePoint> change_times(ev::TimePoint begin,
                                                ev::TimePoint end) const;

    private:
        struct Edge {
            size_t a = 0;
            size_t b = 0;
        };
        struct Event {
            ev::TimePoint t{};
            size_t edge = 0;
            bool up = true;
        };
        bool edge_state_at(ev::TimePoint t, size_t edge) const;

        std::vector<Edge> edges_;
        std::vector<Event> events_;
    };

    // One contiguous interval during which a (src, beacon) pair was in a
    // bad state: blackholed while the oracle says reachable, or looping.
    struct Window {
        ev::TimePoint begin{};
        ev::TimePoint end{};
        size_t src = 0;
        net::IPv4 dst{};
        WalkResult kind = WalkResult::kBlackhole;
    };

    struct Report {
        std::vector<Window> blackhole_windows;
        std::vector<Window> loop_windows;
        // All probed pairs correct at t_end, and when they last got there.
        bool converged = false;
        ev::TimePoint converged_at{};
        // Journal census over [t_begin, t_end].
        uint64_t fib_events = 0;
        uint64_t route_events = 0;
        uint64_t flood_events = 0;

        ev::Duration total_blackhole() const;
        ev::Duration total_loop() const;
    };

    // Replays `events` (journal snapshot, append order) over
    // [t_begin, t_end], starting from `initial_fibs` (resized to
    // node_count; pass {} when the journal covers the whole run), and
    // probes every (probe_sources x beacons) pair at each change instant.
    static Report analyze(const Topology& topo, const Oracle& oracle,
                          const std::vector<telemetry::JournalEvent>& events,
                          const std::vector<Beacon>& beacons,
                          const std::vector<size_t>& probe_sources,
                          std::vector<AnalyzerFib> initial_fibs,
                          ev::TimePoint t_begin, ev::TimePoint t_end);
};

}  // namespace xrp::sim

#endif
