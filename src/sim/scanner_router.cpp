#include "sim/scanner_router.hpp"

namespace xrp::sim {

using bgp::BgpRoute;
using net::IPv4;
using net::IPv4Net;

ScannerBgpRouter::ScannerBgpRouter(ev::EventLoop& loop, Config config)
    : loop_(loop), config_(config) {
    scan_timer_ = loop_.set_periodic(config_.scan_interval, [this] {
        scan();
        return true;
    });
}

ScannerBgpRouter::~ScannerBgpRouter() = default;

int ScannerBgpRouter::add_peer(const bgp::BgpPeer::Config& config,
                               std::unique_ptr<bgp::BgpTransport> transport) {
    int id = next_peer_id_++;
    auto p = std::make_unique<PeerState>();
    p->session = std::make_unique<bgp::BgpPeer>(loop_, config,
                                                std::move(transport));
    p->session->on_update = [this, id](const bgp::UpdateMessage& u) {
        on_update(id, u);
    };
    peers_[id] = std::move(p);
    peers_[id]->session->start();
    return id;
}

bgp::BgpPeer* ScannerBgpRouter::peer_session(int id) {
    auto it = peers_.find(id);
    return it == peers_.end() ? nullptr : it->second->session.get();
}

void ScannerBgpRouter::originate(const IPv4Net& net, IPv4 nexthop) {
    auto pa = std::make_shared<bgp::PathAttributes>();
    pa->origin = bgp::Origin::kIgp;
    pa->nexthop = nexthop;
    BgpRoute r;
    r.net = net;
    r.nexthop = nexthop;
    r.protocol = "local";
    r.igp_metric = 0;
    r.attrs = std::move(pa);
    local_.insert(net, r);
    dirty_.insert(net);  // waits for the scanner, like everything else
}

void ScannerBgpRouter::on_update(int peer_id,
                                 const bgp::UpdateMessage& update) {
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    PeerState& p = *it->second;
    // Adj-RIB-In is updated immediately; the decision is NOT (that is the
    // whole point of this baseline).
    for (const IPv4Net& net : update.withdrawn) {
        p.adj_in.erase(net);
        dirty_.insert(net);
    }
    if (update.attributes && !update.nlri.empty()) {
        if (update.attributes->as_path.contains(config_.local_as)) return;
        auto attrs = std::make_shared<bgp::PathAttributes>(*update.attributes);
        for (const IPv4Net& net : update.nlri) {
            BgpRoute r;
            r.net = net;
            r.nexthop = attrs->nexthop;
            r.protocol = "ebgp";
            r.source_id = it->second->session->config().peer_addr.to_host();
            r.igp_metric = 0;
            r.attrs = attrs;
            p.adj_in.erase(net);
            p.adj_in.insert(net, r);
            dirty_.insert(net);
        }
    }
}

void ScannerBgpRouter::scan() {
    ++scans_;
    std::set<IPv4Net> work;
    work.swap(dirty_);
    for (const IPv4Net& net : work) {
        // Decision: best across local + every Adj-RIB-In.
        const BgpRoute* best = local_.find(net);
        for (const auto& [id, p] : peers_) {
            const BgpRoute* r = p->adj_in.find(net);
            if (r != nullptr &&
                (best == nullptr || bgp::bgp_route_preferred(*r, *best)))
                best = r;
        }
        const BgpRoute* previous = best_.find(net);
        advertise(net, best, previous);
        if (best != nullptr) {
            best_.erase(net);
            best_.insert(net, *best);
        } else {
            best_.erase(net);
        }
    }
}

void ScannerBgpRouter::advertise(const IPv4Net& net, const BgpRoute* route,
                                 const BgpRoute* previous) {
    if (route == nullptr && previous == nullptr) return;
    if (route != nullptr && previous != nullptr && *route == *previous)
        return;
    for (const auto& [id, p] : peers_) {
        if (!p->session->established()) continue;
        if (route != nullptr &&
            route->source_id == p->session->config().peer_addr.to_host())
            continue;  // split horizon
        bgp::UpdateMessage u;
        if (route == nullptr) {
            u.withdrawn.push_back(net);
        } else {
            const bgp::PathAttributes* pa = bgp::route_attrs(*route);
            bgp::PathAttributes base =
                pa != nullptr ? *pa : bgp::PathAttributes{};
            auto out = bgp::with_prepended_as(
                base, config_.local_as, p->session->config().local_id);
            u.attributes = *out;
            u.nlri.push_back(net);
        }
        p->session->send_update(u);
    }
}

}  // namespace xrp::sim
