// OspfTopology: assembly helper for multi-router OSPF simulations.
//
// Builds N single-process routers (Fea + Rib + OspfProcess with the
// direct couplings) on one shared event loop and VirtualNetwork, and
// wires them with point-to-point segments, shared LANs, or stub subnets.
// Router ids are assigned in index order (higher index = higher id), so
// DR election outcomes are deterministic in tests. Used by test_ospf and
// the experiments.
#ifndef XRP_SIM_OSPF_TOPOLOGY_HPP
#define XRP_SIM_OSPF_TOPOLOGY_HPP

#include <memory>
#include <vector>

#include "fea/simnet.hpp"
#include "ospf/ospf.hpp"
#include "rib/rib.hpp"

namespace xrp::sim {

class OspfTopology {
public:
    struct Node {
        net::IPv4 router_id;
        std::unique_ptr<fea::Fea> fea;
        std::unique_ptr<rib::Rib> rib;
        std::unique_ptr<ospf::OspfProcess> ospf;
    };
    struct Segment {
        int link_id = 0;
        net::IPv4Net subnet;
        std::string ifname;  // the same name on every member router
        std::vector<size_t> members;
    };

    OspfTopology(ev::EventLoop& loop, fea::VirtualNetwork& net,
                 ospf::OspfProcess::Config base = {});

    // Adds a router; returns its index. Router id is 192.168.0.(index+1).
    size_t add_router();

    // A dedicated segment joining two routers (10.0.<n>.0/24; a gets .1,
    // b gets .2). Returns the segment index.
    size_t connect(size_t a, size_t b, uint32_t cost_a = 1,
                   uint32_t cost_b = 1);
    // A shared LAN segment; member k gets host .k+1. One interface cost
    // for everyone.
    size_t connect_lan(const std::vector<size_t>& members, uint32_t cost = 1);
    // A leaf subnet on one router: an interface with no peers, advertised
    // as a stub link. Returns the prefix.
    net::IPv4Net add_stub(size_t r, uint32_t cost = 1);

    Node& node(size_t i) { return *nodes_[i]; }
    const Segment& segment(size_t i) const { return segments_[i]; }
    size_t size() const { return nodes_.size(); }
    fea::VirtualNetwork& network() { return net_; }

    // True when every router has reached Full with every neighbour it
    // shares a segment with.
    bool all_adjacencies_full() const;

private:
    Segment& new_segment(const std::vector<size_t>& members);

    ev::EventLoop& loop_;
    fea::VirtualNetwork& net_;
    ospf::OspfProcess::Config base_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<Segment> segments_;
    int next_subnet_ = 1;  // 10.0.<n>.0/24 allocator (wraps into 10.<m>)
};

}  // namespace xrp::sim

#endif
