// Topology generators and the ScenarioFleet: the machinery behind the
// scenario observatory. A TopoSpec is a pure description — nodes, costed
// links, which nodes own beacon stub prefixes, which protocol overlays to
// run — produced by the grid / fat-tree / ISP generators. A ScenarioFleet
// turns a spec into a fleet of full rtrmgr::Routers (FEA + RIB + OSPF,
// optionally RIP and a BGP pair) wired over one VirtualNetwork, and keeps
// the ConvergenceAnalyzer's Topology / Oracle / Beacon views in sync with
// every link or node event the scenario script injects.
#ifndef XRP_SIM_TOPOGEN_HPP
#define XRP_SIM_TOPOGEN_HPP

#include <memory>
#include <string>
#include <vector>

#include "rtrmgr/rtrmgr.hpp"
#include "sim/analyzer.hpp"

namespace xrp::sim {

struct TopoLink {
    size_t a = 0;
    size_t b = 0;
    uint32_t cost = 1;  // OSPF output cost, both directions
};

struct TopoSpec {
    std::string family;  // "grid", "fattree", "isp"
    size_t nodes = 0;
    std::vector<TopoLink> links;
    // Nodes that advertise a dedicated stub prefix; each becomes a beacon
    // the analyzer probes from every other node.
    std::vector<size_t> stub_owners;
    bool rip_overlay = false;  // run RIP on every link interface too
    bool bgp_pair = false;     // eBGP session between nodes 0 and 1
};

// rows x cols mesh; every node links right and down. Stubs on the four
// corners (or every node when the grid is tiny).
TopoSpec make_grid(size_t rows, size_t cols);

// k-ary fat-tree (k even): (k/2)^2 core switches, k pods of k/2
// aggregation + k/2 edge switches. Stubs on the first edge switch of
// each pod.
TopoSpec make_fattree(size_t k);

// ISP-like: a ring backbone with random chords, random-cost links, and
// leaf (access) routers multi-homed onto the backbone. Deterministic for
// a given (n, seed). Stubs on a spread of leaf routers.
TopoSpec make_isp(size_t n, uint64_t seed);

// A fleet of full routers realising a TopoSpec on a shared loop+simnet.
// Construction configures and wires everything; protocol convergence then
// happens under loop.run_until / run_for in virtual time.
class ScenarioFleet {
public:
    ScenarioFleet(const TopoSpec& spec, ev::EventLoop& loop,
                  fea::VirtualNetwork& network);
    ~ScenarioFleet();
    ScenarioFleet(const ScenarioFleet&) = delete;
    ScenarioFleet& operator=(const ScenarioFleet&) = delete;

    size_t size() const { return routers_.size(); }
    rtrmgr::Router& router(size_t i) { return *routers_[i]; }
    const TopoSpec& spec() const { return spec_; }

    // ---- analyzer views ------------------------------------------------
    const ConvergenceAnalyzer::Topology& topo() const { return topo_; }
    const ConvergenceAnalyzer::Oracle& oracle() const { return oracle_; }
    const std::vector<ConvergenceAnalyzer::Beacon>& beacons() const {
        return beacons_;
    }

    // ---- scripted events -----------------------------------------------
    // All stamp the oracle at loop.now() and drive the simnet, so the
    // analyzer's physical truth matches what the routers experienced.
    void set_link_up(size_t link, bool up);
    void set_node_up(size_t node, bool up);  // all incident links
    // OSPF metric change on both endpoints (no oracle event: the link
    // stays physically up).
    void set_link_cost(size_t link, uint32_t cost);

    // Snapshot of every router's live FEA FIB in analyzer form; lets the
    // harness cross-check journal replay against ground truth.
    std::vector<AnalyzerFib> live_fibs() const;

private:
    ev::EventLoop& loop_;
    fea::VirtualNetwork& network_;
    TopoSpec spec_;
    std::vector<std::unique_ptr<rtrmgr::Router>> routers_;
    std::vector<int> link_ids_;  // simnet link id per spec link
    // Interface name at each end of spec link i: [0] on a, [1] on b.
    std::vector<std::pair<std::string, std::string>> link_ifnames_;
    ConvergenceAnalyzer::Topology topo_;
    ConvergenceAnalyzer::Oracle oracle_;
    std::vector<ConvergenceAnalyzer::Beacon> beacons_;
};

}  // namespace xrp::sim

#endif
