#include "sim/ospf_topology.hpp"

namespace xrp::sim {

using net::IPv4;
using net::IPv4Net;

OspfTopology::OspfTopology(ev::EventLoop& loop, fea::VirtualNetwork& net,
                           ospf::OspfProcess::Config base)
    : loop_(loop), net_(net), base_(base) {}

size_t OspfTopology::add_router() {
    size_t idx = nodes_.size();
    auto n = std::make_unique<Node>();
    n->router_id = IPv4((192u << 24) | (168u << 16) |
                        static_cast<uint32_t>(idx + 1));
    const std::string node = "r" + std::to_string(idx);
    n->fea = std::make_unique<fea::Fea>(loop_,
                                        "fea" + std::to_string(idx));
    n->fea->set_node(node);
    n->rib = std::make_unique<rib::Rib>(
        loop_, std::make_unique<rib::DirectFeaHandle>(*n->fea));
    n->rib->set_node(node);
    ospf::OspfProcess::Config cfg = base_;
    cfg.router_id = n->router_id;
    n->ospf = std::make_unique<ospf::OspfProcess>(
        loop_, *n->fea, cfg,
        std::make_unique<ospf::DirectRibClient>(*n->rib));
    n->ospf->set_node(node);
    nodes_.push_back(std::move(n));
    return idx;
}

OspfTopology::Segment& OspfTopology::new_segment(
    const std::vector<size_t>& members) {
    Segment seg;
    seg.link_id = net_.add_link();
    int sn = next_subnet_++;
    seg.subnet = IPv4Net(IPv4((10u << 24) | static_cast<uint32_t>(sn << 8)),
                         24);
    seg.ifname = "s" + std::to_string(seg.link_id);
    seg.members = members;
    segments_.push_back(std::move(seg));
    return segments_.back();
}

size_t OspfTopology::connect(size_t a, size_t b, uint32_t cost_a,
                             uint32_t cost_b) {
    Segment& seg = new_segment({a, b});
    size_t idx = segments_.size() - 1;
    uint32_t costs[2] = {cost_a, cost_b};
    for (size_t k = 0; k < 2; ++k) {
        Node& n = *nodes_[seg.members[k]];
        IPv4 host = IPv4(seg.subnet.masked_addr().to_host() |
                         static_cast<uint32_t>(k + 1));
        n.fea->interfaces().add_interface(seg.ifname, host, 24);
        n.fea->attach_to_network(&net_, seg.link_id, seg.ifname);
        n.ospf->enable_interface(seg.ifname, costs[k]);
    }
    return idx;
}

size_t OspfTopology::connect_lan(const std::vector<size_t>& members,
                                 uint32_t cost) {
    Segment& seg = new_segment(members);
    size_t idx = segments_.size() - 1;
    for (size_t k = 0; k < seg.members.size(); ++k) {
        Node& n = *nodes_[seg.members[k]];
        IPv4 host = IPv4(seg.subnet.masked_addr().to_host() |
                         static_cast<uint32_t>(k + 1));
        n.fea->interfaces().add_interface(seg.ifname, host, 24);
        n.fea->attach_to_network(&net_, seg.link_id, seg.ifname);
        n.ospf->enable_interface(seg.ifname, cost);
    }
    return idx;
}

IPv4Net OspfTopology::add_stub(size_t r, uint32_t cost) {
    Segment& seg = new_segment({r});
    Node& n = *nodes_[r];
    IPv4 host =
        IPv4(seg.subnet.masked_addr().to_host() | 1u);
    n.fea->interfaces().add_interface(seg.ifname, host, 24);
    n.fea->attach_to_network(&net_, seg.link_id, seg.ifname);
    n.ospf->enable_interface(seg.ifname, cost);
    return seg.subnet;
}

bool OspfTopology::all_adjacencies_full() const {
    for (const Segment& seg : segments_) {
        for (size_t a : seg.members) {
            for (size_t b : seg.members) {
                if (a == b) continue;
                if (nodes_[a]->ospf->neighbor_state(
                        seg.ifname, nodes_[b]->router_id) !=
                    ospf::NeighborState::kFull)
                    return false;
            }
        }
    }
    return true;
}

}  // namespace xrp::sim
