// Synthetic BGP route feeds (see DESIGN.md substitutions).
//
// The paper's evaluation loads "a full Internet backbone routing feed
// consisting of 146515 routes". We have no 2004 RouteViews dump, so this
// generator produces a deterministic synthetic equivalent: unique
// prefixes with a realistic length distribution (heavy at /24 and /16-
// /20, a few short prefixes), AS paths of realistic length drawn from a
// fixed pool, and NLRI grouped into UPDATEs sharing one attribute block —
// the properties that actually exercise the code paths the latency
// experiments measure (table size, trie shape, attribute sharing).
#ifndef XRP_SIM_ROUTEFEED_HPP
#define XRP_SIM_ROUTEFEED_HPP

#include <cstdint>
#include <vector>

#include "bgp/message.hpp"

namespace xrp::sim {

struct RouteFeedConfig {
    size_t route_count = 146515;  // the paper's table size
    uint32_t seed = 42;
    // NLRI per UPDATE (routes sharing one attribute block).
    size_t prefixes_per_update = 24;
    bgp::As first_hop_as = 3561;
    net::IPv4 nexthop = net::IPv4((192u << 24) | (2 << 8) | 1);
};

// Unique prefixes, deterministic for a given seed.
std::vector<net::IPv4Net> generate_prefixes(size_t count, uint32_t seed);

// A full feed as a sequence of UPDATE messages ready to send on a session.
std::vector<bgp::UpdateMessage> generate_feed(const RouteFeedConfig& config);

}  // namespace xrp::sim

#endif
