#include "sim/topogen.hpp"

#include <algorithm>
#include <cstdio>
#include <random>
#include <set>

namespace xrp::sim {

using net::IPv4;
using net::IPv4Net;

// ---- generators -----------------------------------------------------------

namespace {

void add_corner_stubs(TopoSpec& s, std::initializer_list<size_t> nodes) {
    for (size_t n : nodes)
        if (std::find(s.stub_owners.begin(), s.stub_owners.end(), n) ==
            s.stub_owners.end())
            s.stub_owners.push_back(n);
}

}  // namespace

TopoSpec make_grid(size_t rows, size_t cols) {
    TopoSpec s;
    s.family = "grid";
    s.nodes = rows * cols;
    auto id = [&](size_t r, size_t c) { return r * cols + c; };
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) s.links.push_back({id(r, c), id(r, c + 1), 1});
            if (r + 1 < rows) s.links.push_back({id(r, c), id(r + 1, c), 1});
        }
    }
    add_corner_stubs(s, {id(0, 0), id(0, cols - 1), id(rows - 1, 0),
                         id(rows - 1, cols - 1)});
    s.rip_overlay = true;
    return s;
}

TopoSpec make_fattree(size_t k) {
    TopoSpec s;
    s.family = "fattree";
    const size_t half = k / 2;
    const size_t core = half * half;
    s.nodes = core + k * k;  // k pods of (half agg + half edge)
    auto agg = [&](size_t pod, size_t j) { return core + pod * k + j; };
    auto edge = [&](size_t pod, size_t j) { return core + pod * k + half + j; };
    // Core i homes onto aggregation switch i/half of every pod.
    for (size_t i = 0; i < core; ++i)
        for (size_t pod = 0; pod < k; ++pod)
            s.links.push_back({i, agg(pod, i / half), 1});
    // Full agg <-> edge bipartite mesh inside each pod.
    for (size_t pod = 0; pod < k; ++pod)
        for (size_t a = 0; a < half; ++a)
            for (size_t e = 0; e < half; ++e)
                s.links.push_back({agg(pod, a), edge(pod, e), 1});
    for (size_t pod = 0; pod < k; ++pod) s.stub_owners.push_back(edge(pod, 0));
    return s;
}

TopoSpec make_isp(size_t n, uint64_t seed) {
    TopoSpec s;
    s.family = "isp";
    s.nodes = n;
    std::mt19937_64 rng(seed);
    auto cost = [&] { return 1 + static_cast<uint32_t>(rng() % 5); };
    const size_t backbone = std::max<size_t>(3, n / 4);
    std::set<std::pair<size_t, size_t>> seen;
    auto add = [&](size_t a, size_t b, uint32_t c) {
        if (a == b) return;
        auto key = std::minmax(a, b);
        if (!seen.insert(key).second) return;
        s.links.push_back({a, b, c});
    };
    // Ring backbone with random chords.
    for (size_t i = 0; i < backbone; ++i) add(i, (i + 1) % backbone, cost());
    for (size_t i = 0; i < backbone / 3; ++i)
        add(rng() % backbone, rng() % backbone, cost());
    // Access routers multi-home onto the backbone.
    for (size_t leaf = backbone; leaf < n; ++leaf) {
        size_t homes = 1 + rng() % 2;
        for (size_t h = 0; h < homes; ++h) add(leaf, rng() % backbone, cost());
    }
    // Beacons on a spread of access routers (backbone if there are none).
    const size_t leaves = n - backbone;
    if (leaves == 0) {
        add_corner_stubs(s, {0, backbone / 2});
    } else {
        size_t want = std::min<size_t>(4, leaves);
        for (size_t i = 0; i < want; ++i)
            s.stub_owners.push_back(backbone + i * leaves / want);
    }
    s.bgp_pair = true;  // nodes 0 and 1 are ring-adjacent
    return s;
}

// ---- ScenarioFleet --------------------------------------------------------

namespace {

std::string octets(size_t a, size_t b, size_t c, size_t d) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "%zu.%zu.%zu.%zu", a, b, c, d);
    return buf;
}

// Link i lives in 10.(1 + i/250).(i%250).0/24; endpoint a is host .1,
// endpoint b host .2. 10.240/12 is reserved for stub prefixes, which a
// link never reaches (i/250 + 1 stays far below 240 at our scales).
std::string link_addr(size_t link, bool side_b) {
    return octets(10, 1 + link / 250, link % 250, side_b ? 2 : 1);
}

std::string stub_prefix_host(size_t stub, size_t host) {
    return octets(10, 240, stub, host);
}

}  // namespace

ScenarioFleet::ScenarioFleet(const TopoSpec& spec, ev::EventLoop& loop,
                             fea::VirtualNetwork& network)
    : loop_(loop), network_(network), spec_(spec) {
    struct Iface {
        std::string name;
        std::string addr;  // dotted quad, /24
        bool on_link = false;
    };
    std::vector<std::vector<Iface>> ifaces(spec_.nodes);
    link_ifnames_.resize(spec_.links.size());

    auto next_if = [&](size_t node) {
        return "eth" + std::to_string(ifaces[node].size());
    };
    for (size_t i = 0; i < spec_.links.size(); ++i) {
        const TopoLink& l = spec_.links[i];
        link_ifnames_[i].first = next_if(l.a);
        ifaces[l.a].push_back({link_ifnames_[i].first, link_addr(i, false),
                               true});
        link_ifnames_[i].second = next_if(l.b);
        ifaces[l.b].push_back({link_ifnames_[i].second, link_addr(i, true),
                               true});
    }
    for (size_t s = 0; s < spec_.stub_owners.size(); ++s) {
        size_t owner = spec_.stub_owners[s];
        ifaces[owner].push_back({next_if(owner), stub_prefix_host(s, 1),
                                 false});
        beacons_.push_back(
            {IPv4::must_parse(stub_prefix_host(s, 10)), owner});
    }
    if (spec_.bgp_pair && spec_.nodes >= 2) {
        ifaces[0].push_back({next_if(0), "192.0.2.1", false});
        ifaces[1].push_back({next_if(1), "192.0.2.2", false});
    }

    // Build each router's config text and the analyzer's topology view.
    topo_.node_count = spec_.nodes;
    topo_.attached.resize(spec_.nodes);
    for (size_t n = 0; n < spec_.nodes; ++n) {
        const std::string name = "r" + std::to_string(n);
        topo_.node_index[name] = n;
        std::string cfg = "interfaces {\n";
        for (const Iface& ifc : ifaces[n]) {
            cfg += "  " + ifc.name + " { address " + ifc.addr + "/24; }\n";
            IPv4 addr = IPv4::must_parse(ifc.addr);
            topo_.addr_owner[addr] = n;
            topo_.attached[n].push_back(IPv4Net(addr, 24));
        }
        cfg += "}\nprotocols {\n";
        cfg += "  ospf {\n    router-id " +
               octets(0, (n >> 16) & 255, (n >> 8) & 255, (n & 255) + 1) +
               ";\n";
        for (const Iface& ifc : ifaces[n])
            cfg += "    interface " + ifc.name + ";\n";
        cfg += "  }\n";
        if (spec_.rip_overlay) {
            cfg += "  rip {\n";
            for (const Iface& ifc : ifaces[n])
                if (ifc.on_link) cfg += "    interface " + ifc.name + ";\n";
            cfg += "  }\n";
        }
        if (spec_.bgp_pair && n == 0)
            cfg += "  bgp {\n    local-as 64500;\n    bgp-id 192.0.2.1;\n"
                   "    network 10.99.0.0/16;\n  }\n";
        if (spec_.bgp_pair && n == 1)
            cfg += "  bgp {\n    local-as 64501;\n    bgp-id 192.0.2.2;\n"
                   "  }\n  static {\n    route 192.0.2.0/24 { nexthop "
                   "192.0.2.2; }\n  }\n";
        cfg += "}\n";

        auto r = std::make_unique<rtrmgr::Router>(name, loop_);
        std::string err;
        if (!r->configure(cfg, &err)) {
            std::fprintf(stderr, "ScenarioFleet: %s: %s\n", name.c_str(),
                         err.c_str());
            std::abort();
        }
        routers_.push_back(std::move(r));
    }

    // Physical wiring, OSPF costs, and the oracle's edge set.
    for (size_t i = 0; i < spec_.links.size(); ++i) {
        const TopoLink& l = spec_.links[i];
        int id = network_.add_link();
        link_ids_.push_back(id);
        routers_[l.a]->attach_link(network_, id, link_ifnames_[i].first);
        routers_[l.b]->attach_link(network_, id, link_ifnames_[i].second);
        if (l.cost != 1) {
            routers_[l.a]->ospf().set_interface_cost(link_ifnames_[i].first,
                                                     l.cost);
            routers_[l.b]->ospf().set_interface_cost(link_ifnames_[i].second,
                                                     l.cost);
        }
        oracle_.add_edge(l.a, l.b);
    }
    if (spec_.bgp_pair && spec_.nodes >= 2)
        rtrmgr::Router::connect_bgp(*routers_[0], *routers_[1]);
}

ScenarioFleet::~ScenarioFleet() = default;

void ScenarioFleet::set_link_up(size_t link, bool up) {
    network_.set_link_up(link_ids_[link], up);
    oracle_.set_edge_up(loop_.now(), link, up);
}

void ScenarioFleet::set_node_up(size_t node, bool up) {
    for (size_t i = 0; i < spec_.links.size(); ++i)
        if (spec_.links[i].a == node || spec_.links[i].b == node)
            set_link_up(i, up);
}

void ScenarioFleet::set_link_cost(size_t link, uint32_t cost) {
    const TopoLink& l = spec_.links[link];
    routers_[l.a]->ospf().set_interface_cost(link_ifnames_[link].first, cost);
    routers_[l.b]->ospf().set_interface_cost(link_ifnames_[link].second, cost);
}

std::vector<AnalyzerFib> ScenarioFleet::live_fibs() const {
    std::vector<AnalyzerFib> fibs(routers_.size());
    for (size_t n = 0; n < routers_.size(); ++n) {
        routers_[n]->fea().fib().for_each(
            [&](const IPv4Net& net, const fea::FibEntry& e) {
                fibs[n][net] = e.is_multipath()
                                   ? e.nexthops
                                   : net::NexthopSet4::single(e.nexthop);
            });
    }
    return fibs;
}

}  // namespace xrp::sim
