#include "sim/analyzer.hpp"

#include <algorithm>
#include <set>

namespace xrp::sim {

using net::IPv4;
using net::IPv4Net;
using telemetry::JournalEvent;
using telemetry::JournalKind;

const char* ConvergenceAnalyzer::walk_result_name(WalkResult r) {
    switch (r) {
        case WalkResult::kDelivered: return "delivered";
        case WalkResult::kBlackhole: return "blackhole";
        case WalkResult::kLoop: return "loop";
    }
    return "unknown";
}

ConvergenceAnalyzer::WalkResult ConvergenceAnalyzer::walk(
    const Topology& topo, const std::vector<AnalyzerFib>& fibs, size_t src,
    net::IPv4 dst, const EdgeUp& edge_up, size_t max_hops) {
    std::set<size_t> visited;
    size_t n = src;
    for (size_t hop = 0; hop < max_hops; ++hop) {
        // Local delivery: the destination sits in one of our subnets.
        if (n < topo.attached.size())
            for (const IPv4Net& net : topo.attached[n])
                if (net.contains(dst)) return WalkResult::kDelivered;
        if (!visited.insert(n).second) return WalkResult::kLoop;
        if (n >= fibs.size()) return WalkResult::kBlackhole;
        // Longest-prefix match over the modeled FIB.
        const IPv4Net* best = nullptr;
        const net::NexthopSet4* set = nullptr;
        for (const auto& [net, nexthops] : fibs[n]) {
            if (!net.contains(dst)) continue;
            if (best == nullptr || net.prefix_len() > best->prefix_len()) {
                best = &net;
                set = &nexthops;
            }
        }
        if (best == nullptr || set->empty()) return WalkResult::kBlackhole;
        // Multipath: the walk takes the member the data plane would —
        // the same per-destination rendezvous pick as SimForwardingPlane.
        IPv4 nh = set->pick(net::flow_key(IPv4{}, dst));
        auto it = topo.addr_owner.find(nh);
        if (it == topo.addr_owner.end()) return WalkResult::kBlackhole;
        size_t next = it->second;
        // A route whose nexthop is our own address (connected) but whose
        // subnet didn't deliver above points nowhere useful.
        if (next == n) return WalkResult::kBlackhole;
        if (edge_up && !edge_up(n, next)) return WalkResult::kBlackhole;
        n = next;
    }
    return WalkResult::kLoop;  // never terminated within the hop budget
}

// ---- Oracle ---------------------------------------------------------------

size_t ConvergenceAnalyzer::Oracle::add_edge(size_t a, size_t b) {
    edges_.push_back({a, b});
    return edges_.size() - 1;
}

void ConvergenceAnalyzer::Oracle::set_edge_up(ev::TimePoint t, size_t edge,
                                              bool up) {
    events_.push_back({t, edge, up});
}

void ConvergenceAnalyzer::Oracle::set_node_up(ev::TimePoint t, size_t n,
                                              bool up) {
    for (size_t i = 0; i < edges_.size(); ++i)
        if (edges_[i].a == n || edges_[i].b == n) set_edge_up(t, i, up);
}

bool ConvergenceAnalyzer::Oracle::edge_state_at(ev::TimePoint t,
                                                size_t edge) const {
    bool up = true;  // edges start up
    for (const Event& e : events_) {
        if (e.t > t) break;  // events are appended in time order
        if (e.edge == edge) up = e.up;
    }
    return up;
}

bool ConvergenceAnalyzer::Oracle::edge_up_at(ev::TimePoint t, size_t a,
                                             size_t b) const {
    for (size_t i = 0; i < edges_.size(); ++i) {
        const Edge& e = edges_[i];
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
            if (edge_state_at(t, i)) return true;
    }
    return false;
}

bool ConvergenceAnalyzer::Oracle::reachable(ev::TimePoint t, size_t src,
                                            size_t dst,
                                            size_t node_count) const {
    if (src == dst) return true;
    std::vector<bool> seen(node_count, false);
    std::vector<size_t> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
        size_t n = frontier.back();
        frontier.pop_back();
        for (size_t i = 0; i < edges_.size(); ++i) {
            const Edge& e = edges_[i];
            size_t peer;
            if (e.a == n)
                peer = e.b;
            else if (e.b == n)
                peer = e.a;
            else
                continue;
            if (peer >= node_count || seen[peer] || !edge_state_at(t, i))
                continue;
            if (peer == dst) return true;
            seen[peer] = true;
            frontier.push_back(peer);
        }
    }
    return false;
}

std::vector<ev::TimePoint> ConvergenceAnalyzer::Oracle::change_times(
    ev::TimePoint begin, ev::TimePoint end) const {
    std::vector<ev::TimePoint> out;
    for (const Event& e : events_)
        if (e.t > begin && e.t <= end) out.push_back(e.t);
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

// ---- Report ---------------------------------------------------------------

namespace {
ev::Duration sum_windows(
    const std::vector<ConvergenceAnalyzer::Window>& windows) {
    ev::Duration d{};
    for (const auto& w : windows) d += w.end - w.begin;
    return d;
}
}  // namespace

ev::Duration ConvergenceAnalyzer::Report::total_blackhole() const {
    return sum_windows(blackhole_windows);
}
ev::Duration ConvergenceAnalyzer::Report::total_loop() const {
    return sum_windows(loop_windows);
}

// ---- analyze --------------------------------------------------------------

ConvergenceAnalyzer::Report ConvergenceAnalyzer::analyze(
    const Topology& topo, const Oracle& oracle,
    const std::vector<JournalEvent>& events,
    const std::vector<Beacon>& beacons,
    const std::vector<size_t>& probe_sources,
    std::vector<AnalyzerFib> initial_fibs, ev::TimePoint t_begin,
    ev::TimePoint t_end) {
    Report rep;
    std::vector<AnalyzerFib> fibs = std::move(initial_fibs);
    fibs.resize(topo.node_count);

    // Collect the FIB mutations this analysis replays, and census the
    // rest of the journal for the report.
    struct FibChange {
        ev::TimePoint t{};
        size_t node = 0;
        bool add = false;
        IPv4Net net{};
        net::NexthopSet4 nexthops;
    };
    std::vector<FibChange> changes;
    for (const JournalEvent& e : events) {
        if (e.t < t_begin || e.t > t_end) continue;
        switch (e.kind) {
            case JournalKind::kRouteInstall:
            case JournalKind::kRouteWithdraw: rep.route_events++; continue;
            case JournalKind::kLsaFlood: rep.flood_events++; continue;
            case JournalKind::kFibAdd:
            case JournalKind::kFibDelete: break;
            default: continue;
        }
        auto nit = topo.node_index.find(e.node);
        if (nit == topo.node_index.end()) continue;
        auto net = IPv4Net::parse(e.subject);
        if (!net) continue;
        FibChange c;
        c.t = e.t;
        c.node = nit->second;
        c.add = e.kind == JournalKind::kFibAdd;
        c.net = *net;
        if (c.add) {
            // detail is "nexthop[@w]:ifname" per member, '|'-joined for
            // multipath; the walk only needs the addresses and weights.
            std::string addrs;
            std::string_view rest = e.detail;
            while (!rest.empty()) {
                size_t bar = rest.find('|');
                std::string_view tok = bar == std::string_view::npos
                                           ? rest
                                           : rest.substr(0, bar);
                rest = bar == std::string_view::npos ? std::string_view{}
                                                     : rest.substr(bar + 1);
                if (!addrs.empty()) addrs += '|';
                addrs += tok.substr(0, tok.find(':'));
            }
            auto set = net::NexthopSet4::parse(addrs);
            if (!set || set->empty()) continue;
            c.nexthops = *set;
        }
        changes.push_back(c);
        rep.fib_events++;
    }
    // Journal snapshots are already in seq (= time) order.

    // Every instant the forwarding state or physical topology changed.
    std::vector<ev::TimePoint> times;
    times.push_back(t_begin);
    for (const FibChange& c : changes) times.push_back(c.t);
    for (ev::TimePoint t : oracle.change_times(t_begin, t_end))
        times.push_back(t);
    times.push_back(t_end);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    // Pair status tracking: Window open per (src, beacon) while bad.
    const size_t pairs = probe_sources.size() * beacons.size();
    struct PairState {
        bool bad = false;
        WalkResult kind = WalkResult::kBlackhole;
        ev::TimePoint since{};
    };
    std::vector<PairState> state(pairs);
    bool ever_bad = false;
    rep.converged_at = t_begin;

    size_t next_change = 0;
    for (ev::TimePoint t : times) {
        // Apply all FIB mutations with timestamp <= t.
        while (next_change < changes.size() && changes[next_change].t <= t) {
            const FibChange& c = changes[next_change++];
            if (c.add)
                fibs[c.node][c.net] = c.nexthops;
            else
                fibs[c.node].erase(c.net);
        }
        auto edge_up = [&](size_t a, size_t b) {
            return oracle.edge_up_at(t, a, b);
        };
        for (size_t si = 0; si < probe_sources.size(); ++si) {
            for (size_t bi = 0; bi < beacons.size(); ++bi) {
                const size_t src = probe_sources[si];
                const Beacon& beacon = beacons[bi];
                PairState& ps = state[si * beacons.size() + bi];
                WalkResult wr = walk(topo, fibs, src, beacon.dst, edge_up);
                bool reach =
                    oracle.reachable(t, src, beacon.owner, topo.node_count);
                // Bad = looping, or blackholed while physically reachable.
                bool bad = wr == WalkResult::kLoop ||
                           (wr == WalkResult::kBlackhole && reach);
                if (bad && !ps.bad) {
                    ps.bad = true;
                    ps.kind = wr;
                    ps.since = t;
                    ever_bad = true;
                } else if (bad && ps.bad && wr != ps.kind) {
                    // Blackhole turned loop (or vice versa): close one
                    // window, open the other.
                    Window w{ps.since, t, src, beacon.dst, ps.kind};
                    (ps.kind == WalkResult::kLoop ? rep.loop_windows
                                                  : rep.blackhole_windows)
                        .push_back(w);
                    ps.kind = wr;
                    ps.since = t;
                } else if (!bad && ps.bad) {
                    Window w{ps.since, t, src, beacon.dst, ps.kind};
                    (ps.kind == WalkResult::kLoop ? rep.loop_windows
                                                  : rep.blackhole_windows)
                        .push_back(w);
                    ps.bad = false;
                    rep.converged_at = std::max(rep.converged_at, t);
                }
            }
        }
    }
    // Close any window still open at the end of the observation.
    rep.converged = true;
    for (size_t si = 0; si < probe_sources.size(); ++si) {
        for (size_t bi = 0; bi < beacons.size(); ++bi) {
            PairState& ps = state[si * beacons.size() + bi];
            if (!ps.bad) continue;
            rep.converged = false;
            Window w{ps.since, t_end, probe_sources[si], beacons[bi].dst,
                     ps.kind};
            (ps.kind == WalkResult::kLoop ? rep.loop_windows
                                          : rep.blackhole_windows)
                .push_back(w);
        }
    }
    if (!ever_bad) rep.converged_at = t_begin;
    return rep;
}

}  // namespace xrp::sim
