// ScannerBgpRouter: the timer-based baseline for Figure 13.
//
// "Cisco IOS and Zebra both use route scanners, with (as we demonstrate) a
// significant latency cost." This speaker models that architecture: it
// accepts UPDATEs into per-peer Adj-RIBs-In immediately, but runs its
// decision process and advertisement generation only from a periodic
// scanner (default 30 s, the interval the paper infers for Cisco/Quagga).
// Routes received just after a scan wait almost the full interval — the
// sawtooth of Figure 13. Speaking the same wire protocol and sessions as
// the event-driven BgpProcess, it substitutes for the Cisco-4500 and
// Quagga boxes of the paper's testbed (DESIGN.md).
#ifndef XRP_SIM_SCANNER_ROUTER_HPP
#define XRP_SIM_SCANNER_ROUTER_HPP

#include <map>
#include <memory>
#include <set>

#include "bgp/peer.hpp"
#include "bgp/stages.hpp"
#include "net/trie.hpp"

namespace xrp::sim {

class ScannerBgpRouter {
public:
    struct Config {
        bgp::As local_as = 0;
        net::IPv4 bgp_id;
        ev::Duration scan_interval = std::chrono::seconds(30);
    };

    ScannerBgpRouter(ev::EventLoop& loop, Config config);
    ~ScannerBgpRouter();
    ScannerBgpRouter(const ScannerBgpRouter&) = delete;
    ScannerBgpRouter& operator=(const ScannerBgpRouter&) = delete;

    int add_peer(const bgp::BgpPeer::Config& config,
                 std::unique_ptr<bgp::BgpTransport> transport);
    bgp::BgpPeer* peer_session(int id);

    void originate(const net::IPv4Net& net, net::IPv4 nexthop);

    size_t best_route_count() const { return best_.size(); }
    uint64_t scans_run() const { return scans_; }

private:
    struct PeerState {
        std::unique_ptr<bgp::BgpPeer> session;
        net::RouteTrie<net::IPv4, bgp::BgpRoute> adj_in;
    };

    void on_update(int peer_id, const bgp::UpdateMessage& update);
    void scan();
    void advertise(const net::IPv4Net& net, const bgp::BgpRoute* route,
                   const bgp::BgpRoute* previous);

    ev::EventLoop& loop_;
    Config config_;
    std::map<int, std::unique_ptr<PeerState>> peers_;
    net::RouteTrie<net::IPv4, bgp::BgpRoute> local_;
    net::RouteTrie<net::IPv4, bgp::BgpRoute> best_;
    // Prefixes touched since the last scan — the scanner's work list.
    std::set<net::IPv4Net> dirty_;
    ev::Timer scan_timer_;
    uint64_t scans_ = 0;
    int next_peer_id_ = 1;
};

}  // namespace xrp::sim

#endif
