// Measurement harness shared by the benchmarks and examples: latency
// statistics (the Avg/SD/Min/Max rows of Figures 10-12), a feed source
// that plays a BGP session like the paper's test peer, and assembly
// helpers for multi-router simulations.
#ifndef XRP_SIM_HARNESS_HPP
#define XRP_SIM_HARNESS_HPP

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bgp/peer.hpp"
#include "bgp/process.hpp"
#include "ev/eventloop.hpp"

namespace xrp::sim {

// Running statistics over latency samples (milliseconds).
class LatencyStats {
public:
    void add(double ms) {
        samples_.push_back(ms);
        sorted_ = false;
    }
    size_t count() const { return samples_.size(); }
    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;
    double percentile(double p) const;  // p in [0,100]

    // "Avg   SD    Min   Max" formatted like the paper's tables.
    std::string row() const;

private:
    void sort() const;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

// A scripted BGP speaker: establishes a session and sends whatever
// updates the experiment needs — the stand-in for the paper's test peer
// that "introduces 255 routes". It is not a router; it only talks.
class FeedPeer {
public:
    FeedPeer(ev::EventLoop& loop, bgp::BgpPeer::Config config,
             std::unique_ptr<bgp::BgpTransport> transport);

    bool established() const { return session_->established(); }
    bgp::BgpPeer& session() { return *session_; }

    void send(const bgp::UpdateMessage& update) {
        session_->send_update(update);
    }
    void announce(const net::IPv4Net& net, net::IPv4 nexthop,
                  std::vector<bgp::As> path);
    void withdraw(const net::IPv4Net& net);

    // Updates received back from the device under test.
    const std::vector<std::pair<ev::TimePoint, bgp::UpdateMessage>>&
    received() const {
        return received_;
    }

private:
    ev::EventLoop& loop_;
    std::unique_ptr<bgp::BgpPeer> session_;
    std::vector<std::pair<ev::TimePoint, bgp::UpdateMessage>> received_;
};

// Creates a FeedPeer connected to `bgp` (adds the matching peer on the
// process side). Returns the feed and the process-side peer id.
std::pair<std::unique_ptr<FeedPeer>, int> attach_feed_peer(
    ev::EventLoop& loop, bgp::BgpProcess& bgp, net::IPv4 feed_addr,
    bgp::As feed_as, ev::Duration latency = std::chrono::milliseconds(1));

}  // namespace xrp::sim

#endif
