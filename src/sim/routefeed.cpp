#include "sim/routefeed.hpp"

#include <random>
#include <unordered_set>

namespace xrp::sim {

std::vector<net::IPv4Net> generate_prefixes(size_t count, uint32_t seed) {
    std::mt19937 rng(seed);
    // Rough RouteViews-shaped prefix length distribution.
    std::discrete_distribution<int> len_dist({
        // /8   /9  /10  /11  /12  /13  /14  /15
        5, 2, 3, 4, 8, 10, 14, 18,
        // /16  /17  /18  /19  /20  /21  /22  /23  /24
        120, 30, 40, 60, 70, 60, 80, 70, 550,
    });
    std::unordered_set<net::IPv4Net> seen;
    std::vector<net::IPv4Net> out;
    out.reserve(count);
    while (out.size() < count) {
        uint32_t len = 8 + static_cast<uint32_t>(len_dist(rng));
        // Keep generated space inside 1.0.0.0 - 223.255.255.255 unicast.
        // 10/8 is reserved for injected test routes and 192/8 for peering
        // infrastructure (nexthops); a feed prefix overlapping a nexthop
        // would churn every registered nexthop resolution, which real
        // feeds don't do to their own peering LAN either.
        uint32_t addr = rng();
        uint32_t top = addr >> 24;
        if (top == 0 || top == 10 || top == 127 || top == 192 || top >= 224)
            continue;
        net::IPv4Net net(net::IPv4(addr), len);
        if (seen.insert(net).second) out.push_back(net);
    }
    return out;
}

std::vector<bgp::UpdateMessage> generate_feed(const RouteFeedConfig& config) {
    std::mt19937 rng(config.seed + 1);
    auto prefixes = generate_prefixes(config.route_count, config.seed);

    // A pool of plausible transit AS numbers.
    const bgp::As pool[] = {701,  1239, 3356, 2914, 7018, 3549, 6453,
                            1299, 6461, 3257, 174,  286,  6939, 4637};
    std::uniform_int_distribution<size_t> pick(0, std::size(pool) - 1);
    std::uniform_int_distribution<int> path_len(1, 5);

    std::vector<bgp::UpdateMessage> updates;
    updates.reserve(prefixes.size() / config.prefixes_per_update + 1);
    size_t i = 0;
    while (i < prefixes.size()) {
        bgp::PathAttributes pa;
        pa.origin = bgp::Origin::kIgp;
        std::vector<bgp::As> path{config.first_hop_as};
        int extra = path_len(rng);
        for (int k = 0; k < extra; ++k) path.push_back(pool[pick(rng)]);
        pa.as_path = bgp::AsPath(std::move(path));
        pa.nexthop = config.nexthop;
        if (rng() % 4 == 0) pa.med = rng() % 100;

        bgp::UpdateMessage u;
        u.attributes = std::move(pa);
        for (size_t k = 0; k < config.prefixes_per_update && i < prefixes.size();
             ++k, ++i)
            u.nlri.push_back(prefixes[i]);
        updates.push_back(std::move(u));
    }
    return updates;
}

}  // namespace xrp::sim
