#include "bgp/damping.hpp"

namespace xrp::bgp {

DampingStage::DampingStage(std::string name, ev::EventLoop& loop,
                           DampingConfig config)
    : name_(std::move(name)), loop_(loop), config_(config) {
    reuse_timer_ = loop_.set_periodic(config_.reuse_scan_interval, [this] {
        reuse_scan();
        return true;
    });
}

void DampingStage::decay(Entry& e) const {
    ev::TimePoint now = const_cast<ev::EventLoop&>(loop_).now();
    if (e.last_decay == ev::TimePoint{}) {
        e.last_decay = now;
        return;
    }
    auto dt = now - e.last_decay;
    if (dt <= ev::Duration::zero()) return;
    double half_lives = std::chrono::duration<double>(dt).count() /
                        std::chrono::duration<double>(config_.half_life).count();
    e.penalty *= std::exp2(-half_lives);
    e.last_decay = now;
}

void DampingStage::add_route(const BgpRoute& route, RouteStage*) {
    Entry& e = entries_[route.net];
    decay(e);
    if (e.suppressed) {
        e.held = route;  // held back; downstream still believes "withdrawn"
        return;
    }
    if (e.advertised && e.held) {
        // Implicit replacement: keep downstream's delete+add discipline.
        // (Origins normally send the delete first, so this is a guard.)
        this->forward_delete(*e.held);
    }
    e.held = route;  // remember what downstream has, for suppression time
    e.advertised = true;
    this->forward_add(route);
}

void DampingStage::delete_route(const BgpRoute& route, RouteStage*) {
    auto it = entries_.find(route.net);
    if (it == entries_.end()) {
        // Never saw the add (e.g. plumbed mid-stream); just forward.
        this->forward_delete(route);
        return;
    }
    Entry& e = it->second;
    decay(e);
    e.penalty += config_.penalty_per_flap;
    if (e.suppressed) {
        // Downstream has nothing; swallow the withdrawal of a held route.
        e.held.reset();
        return;
    }
    if (e.advertised) {
        // Retract exactly what downstream holds (our stored copy), not
        // the caller's version — rule (1) of §5.1 requires the delete to
        // match the add byte-for-byte.
        this->forward_delete(e.held ? *e.held : route);
        e.advertised = false;
        e.held.reset();
    }
    if (e.penalty >= config_.suppress_threshold) e.suppressed = true;
}

std::optional<BgpRoute> DampingStage::lookup_route(const Net& net) const {
    auto it = entries_.find(net);
    if (it != entries_.end() && it->second.suppressed)
        return std::nullopt;  // consistent with the withheld announcements
    if (it != entries_.end() && it->second.advertised && it->second.held)
        return it->second.held;
    if (it != entries_.end()) return std::nullopt;
    return this->lookup_upstream(net);
}

size_t DampingStage::suppressed_count() const {
    size_t n = 0;
    for (const auto& [net, e] : entries_)
        if (e.suppressed) ++n;
    return n;
}

double DampingStage::penalty(const Net& net) const {
    auto it = entries_.find(net);
    if (it == entries_.end()) return 0.0;
    Entry copy = it->second;
    decay(copy);
    return copy.penalty;
}

bool DampingStage::is_suppressed(const Net& net) const {
    auto it = entries_.find(net);
    return it != entries_.end() && it->second.suppressed;
}

void DampingStage::reuse_scan() {
    std::vector<Net> to_release;
    std::vector<Net> to_forget;
    for (auto& [net, e] : entries_) {
        decay(e);
        if (e.suppressed && e.penalty < config_.reuse_threshold)
            to_release.push_back(net);
        else if (!e.suppressed && !e.advertised &&
                 e.penalty < config_.forget_threshold)
            to_forget.push_back(net);
    }
    for (const Net& net : to_release) {
        Entry& e = entries_[net];
        e.suppressed = false;
        if (e.held) {
            e.advertised = true;
            this->forward_add(*e.held);
        }
    }
    for (const Net& net : to_forget) entries_.erase(net);
}

}  // namespace xrp::bgp
