#include "bgp/message.hpp"

namespace xrp::bgp {

namespace {

void put_u16be(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
}

// NLRI: one length byte then ceil(len/8) address bytes.
void encode_prefix(std::vector<uint8_t>& out, const net::IPv4Net& n) {
    out.push_back(static_cast<uint8_t>(n.prefix_len()));
    uint32_t a = n.masked_addr().to_host();
    for (uint32_t i = 0; i < (n.prefix_len() + 7) / 8; ++i)
        out.push_back(static_cast<uint8_t>(a >> (24 - 8 * i)));
}

std::optional<net::IPv4Net> decode_prefix(const uint8_t* data, size_t size,
                                          size_t& pos) {
    if (pos >= size) return std::nullopt;
    uint8_t len = data[pos++];
    if (len > 32) return std::nullopt;
    size_t nbytes = (len + 7) / 8;
    if (size - pos < nbytes) return std::nullopt;
    uint32_t a = 0;
    for (size_t i = 0; i < nbytes; ++i)
        a |= static_cast<uint32_t>(data[pos + i]) << (24 - 8 * i);
    pos += nbytes;
    return net::IPv4Net(net::IPv4(a), len);
}

std::vector<uint8_t> with_header(MessageType type,
                                 const std::vector<uint8_t>& body) {
    std::vector<uint8_t> out;
    out.reserve(kHeaderSize + body.size());
    out.insert(out.end(), 16, 0xff);  // marker
    put_u16be(out, static_cast<uint16_t>(kHeaderSize + body.size()));
    out.push_back(static_cast<uint8_t>(type));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

}  // namespace

std::vector<uint8_t> encode_message(const Message& m) {
    struct Visitor {
        std::vector<uint8_t> operator()(const OpenMessage& o) const {
            std::vector<uint8_t> b;
            b.push_back(o.version);
            put_u16be(b, o.as);
            put_u16be(b, o.hold_time);
            uint32_t id = o.bgp_id.to_host();
            for (int i = 3; i >= 0; --i)
                b.push_back(static_cast<uint8_t>(id >> (8 * i)));
            b.push_back(0);  // no optional parameters
            return with_header(MessageType::kOpen, b);
        }
        std::vector<uint8_t> operator()(const UpdateMessage& u) const {
            std::vector<uint8_t> withdrawn;
            for (const auto& n : u.withdrawn) encode_prefix(withdrawn, n);
            std::vector<uint8_t> attrs;
            if (u.attributes) u.attributes->encode(attrs);
            std::vector<uint8_t> b;
            put_u16be(b, static_cast<uint16_t>(withdrawn.size()));
            b.insert(b.end(), withdrawn.begin(), withdrawn.end());
            put_u16be(b, static_cast<uint16_t>(attrs.size()));
            b.insert(b.end(), attrs.begin(), attrs.end());
            for (const auto& n : u.nlri) encode_prefix(b, n);
            return with_header(MessageType::kUpdate, b);
        }
        std::vector<uint8_t> operator()(const NotificationMessage& n) const {
            std::vector<uint8_t> b;
            b.push_back(n.code);
            b.push_back(n.subcode);
            b.insert(b.end(), n.data.begin(), n.data.end());
            return with_header(MessageType::kNotification, b);
        }
        std::vector<uint8_t> operator()(const KeepaliveMessage&) const {
            return with_header(MessageType::kKeepalive, {});
        }
    };
    return std::visit(Visitor{}, m);
}

std::optional<size_t> peek_message_length(const uint8_t* data, size_t size) {
    if (size < kHeaderSize) return 0;
    for (int i = 0; i < 16; ++i)
        if (data[i] != 0xff) return std::nullopt;
    size_t len = static_cast<size_t>((data[16] << 8) | data[17]);
    if (len < kHeaderSize || len > kMaxMessageSize) return std::nullopt;
    if (data[18] < 1 || data[18] > 4) return std::nullopt;
    return len;
}

std::optional<Message> decode_message(const uint8_t* data, size_t size) {
    auto len = peek_message_length(data, size);
    if (!len || *len == 0 || *len != size) return std::nullopt;
    MessageType type = static_cast<MessageType>(data[18]);
    const uint8_t* body = data + kHeaderSize;
    size_t blen = size - kHeaderSize;
    switch (type) {
        case MessageType::kOpen: {
            if (blen < 10) return std::nullopt;
            OpenMessage o;
            o.version = body[0];
            o.as = static_cast<As>((body[1] << 8) | body[2]);
            o.hold_time = static_cast<uint16_t>((body[3] << 8) | body[4]);
            o.bgp_id = net::IPv4((static_cast<uint32_t>(body[5]) << 24) |
                                 (static_cast<uint32_t>(body[6]) << 16) |
                                 (static_cast<uint32_t>(body[7]) << 8) |
                                 body[8]);
            // body[9] = opt param len; parameters ignored.
            if (blen != 10u + body[9]) return std::nullopt;
            return Message(o);
        }
        case MessageType::kUpdate: {
            if (blen < 4) return std::nullopt;
            UpdateMessage u;
            size_t pos = 0;
            size_t wlen = static_cast<size_t>((body[0] << 8) | body[1]);
            pos = 2;
            if (blen < 2 + wlen + 2) return std::nullopt;
            size_t wend = pos + wlen;
            while (pos < wend) {
                auto n = decode_prefix(body, wend, pos);
                if (!n) return std::nullopt;
                u.withdrawn.push_back(*n);
            }
            size_t alen =
                static_cast<size_t>((body[pos] << 8) | body[pos + 1]);
            pos += 2;
            if (blen < pos + alen) return std::nullopt;
            if (alen > 0) {
                auto pa = PathAttributes::decode(body + pos, alen);
                if (!pa) return std::nullopt;
                u.attributes = std::move(*pa);
                pos += alen;
            }
            while (pos < blen) {
                auto n = decode_prefix(body, blen, pos);
                if (!n) return std::nullopt;
                u.nlri.push_back(*n);
            }
            if (!u.nlri.empty() && !u.attributes) return std::nullopt;
            return Message(std::move(u));
        }
        case MessageType::kNotification: {
            if (blen < 2) return std::nullopt;
            NotificationMessage n;
            n.code = body[0];
            n.subcode = body[1];
            n.data.assign(body + 2, body + blen);
            return Message(std::move(n));
        }
        case MessageType::kKeepalive:
            if (blen != 0) return std::nullopt;
            return Message(KeepaliveMessage{});
    }
    return std::nullopt;
}

}  // namespace xrp::bgp
