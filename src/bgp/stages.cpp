#include "bgp/stages.hpp"

namespace xrp::bgp {

int bgp_route_compare_rank(const BgpRoute& a, const BgpRoute& b) {
    const PathAttributes* pa = route_attrs(a);
    const PathAttributes* pb = route_attrs(b);

    // Eligibility: a resolved nexthop always beats an unresolved one.
    bool ra = a.igp_metric != stage::kUnresolvedMetric;
    bool rb = b.igp_metric != stage::kUnresolvedMetric;
    if (ra != rb) return ra ? 1 : -1;

    // 1. Highest LOCAL_PREF (default 100).
    uint32_t lpa = pa != nullptr && pa->local_pref ? *pa->local_pref : 100;
    uint32_t lpb = pb != nullptr && pb->local_pref ? *pb->local_pref : 100;
    if (lpa != lpb) return lpa > lpb ? 1 : -1;

    // 2. Shortest AS path.
    uint32_t la = pa != nullptr ? pa->as_path.path_length() : 0;
    uint32_t lb = pb != nullptr ? pb->as_path.path_length() : 0;
    if (la != lb) return la < lb ? 1 : -1;

    // 3. Lowest origin (IGP < EGP < INCOMPLETE).
    uint8_t oa = pa != nullptr ? static_cast<uint8_t>(pa->origin) : 2;
    uint8_t ob = pb != nullptr ? static_cast<uint8_t>(pb->origin) : 2;
    if (oa != ob) return oa < ob ? 1 : -1;

    // 4. Lowest MED, comparable only when learned from the same
    // neighbouring AS (RFC 4271 §9.1.2.2 c).
    if (pa != nullptr && pb != nullptr) {
        auto na = pa->as_path.first_as();
        auto nb = pb->as_path.first_as();
        if (na && nb && *na == *nb) {
            uint32_t ma = pa->med.value_or(0);
            uint32_t mb = pb->med.value_or(0);
            if (ma != mb) return ma < mb ? 1 : -1;
        }
    }

    // 5. EBGP-learned over IBGP-learned.
    bool ea = a.protocol == "ebgp";
    bool eb = b.protocol == "ebgp";
    if (ea != eb) return ea ? 1 : -1;

    // 6. Lowest IGP metric to the nexthop — hot-potato routing (§3).
    if (a.igp_metric != b.igp_metric) return a.igp_metric < b.igp_metric ? 1 : -1;

    return 0;
}

bool bgp_route_preferred(const BgpRoute& a, const BgpRoute& b) {
    int rank = bgp_route_compare_rank(a, b);
    if (rank != 0) return rank > 0;
    // 7. Lowest originating router id (carried in source_id), then
    // nexthop as a final deterministic tie-break.
    if (a.source_id != b.source_id) return a.source_id < b.source_id;
    return a.nexthop < b.nexthop;
}

}  // namespace xrp::bgp
