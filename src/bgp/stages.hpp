// BGP-specific pipeline stages (Figure 5): the Decision Process and the
// Nexthop Resolver. The generic stage machinery lives in src/stage; these
// add the BGP ranking rules and the asynchronous RIB coupling.
#ifndef XRP_BGP_STAGES_HPP
#define XRP_BGP_STAGES_HPP

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "bgp/attributes.hpp"
#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::bgp {

using BgpRoute = stage::Route<net::IPv4>;

inline const PathAttributes* route_attrs(const BgpRoute& r) {
    return static_cast<const PathAttributes*>(r.attrs.get());
}

// The RFC 4271 §9.1.2.2 ranking through step 6 — LOCAL_PREF (higher
// wins), AS path length, origin, MED (comparable only between routes from
// the same neighbour AS), EBGP-over-IBGP, IGP metric to nexthop (hot
// potato, §3). Returns >0 when `a` ranks better, <0 when `b` does, 0 when
// the two are equal-ranked — the multipath merge condition.
int bgp_route_compare_rank(const BgpRoute& a, const BgpRoute& b);

// The full ranking: compare_rank, then router id / peer address as
// deterministic tie-breaks. Returns true when `a` is preferred.
bool bgp_route_preferred(const BgpRoute& a, const BgpRoute& b);

// ---- Decision Process (§5.1.1) -----------------------------------------
//
// "In addition to deciding which route wins", the paper's first-cut
// decision stage did nexthop resolution and fan-out too; the revised
// architecture (Fig. 5) strips it down to exactly one job: pick the best
// eligible route per prefix among all peers' pipelines. It stores nothing
// — alternatives are found by calling lookup_route *upstream through each
// parent pipeline*, which works because origins hold original routes and
// every intermediate stage answers lookups consistently (§5.1's rules).
//
// With set_multipath(k>1) the stage additionally merges every candidate
// that ranks equal to the best through step 6 (bgp_route_compare_rank ==
// 0) into one route whose NexthopSet carries up to k members. The merged
// route matches no single parent's stored route, so multipath mode keeps
// a forwarded trie and recomputes the merge per event, diffing against
// what it last emitted.
class DecisionStage : public stage::RouteStage<net::IPv4> {
public:
    explicit DecisionStage(std::string name) : name_(std::move(name)) {}

    // k <= 1 (the default) keeps the stateless single-best behaviour.
    void set_multipath(size_t max_paths) {
        max_paths_ = max_paths == 0 ? 1 : max_paths;
    }
    size_t max_paths() const { return max_paths_; }

    void add_parent(RouteStage* parent) {
        parents_.push_back(parent);
        parent->set_downstream(this);
    }
    void remove_parent(RouteStage* parent) {
        std::erase(parents_, parent);
    }

    void add_route(const BgpRoute& route, RouteStage* caller) override {
        if (max_paths_ > 1) {
            recompute(route.net);
            return;
        }
        auto other = best_other(route.net, caller);
        if (other && bgp_route_preferred(*other, route)) return;
        if (other) {
            // A new route displaced the previous best: a best-path flip,
            // the event BGP operators watch for churn.
            best_flips()->inc();
            this->forward_delete(*other);
        }
        this->forward_add(route);
    }

    void delete_route(const BgpRoute& route, RouteStage* caller) override {
        if (max_paths_ > 1) {
            recompute(route.net);
            return;
        }
        auto other = best_other(route.net, caller);
        if (other && bgp_route_preferred(*other, route))
            return;  // the deleted route had lost; downstream never saw it
        this->forward_delete(route);
        if (other) this->forward_add(*other);
    }

    std::optional<BgpRoute> lookup_route(const Net& net) const override {
        if (max_paths_ > 1) {
            const BgpRoute* f = forwarded_.find(net);
            return f != nullptr ? std::optional<BgpRoute>(*f) : std::nullopt;
        }
        return best_other(net, nullptr);
    }

    // Per-route decision logic is unchanged; the collector turns the
    // resulting add/delete stream into one downstream message. Single-best
    // mode only consults parents *other* than the caller, and multipath
    // recompute diffs against forwarded_, so neither cares that the caller
    // applied the whole batch before pushing it.
    void push_batch(stage::RouteBatch<net::IPv4>&& batch,
                    RouteStage* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::string name() const override { return name_; }

private:
    // Multipath path: parents' lookup_route already reflects the event
    // that triggered us (stages update their own state before forwarding),
    // so the merge is recomputed from scratch and diffed against what we
    // last sent downstream.
    void recompute(const Net& net) {
        std::vector<BgpRoute> cands;
        for (RouteStage* p : parents_) {
            auto r = p->lookup_route(net);
            if (r) cands.push_back(std::move(*r));
        }
        const BgpRoute* prev = forwarded_.find(net);
        if (cands.empty()) {
            if (prev != nullptr) {
                BgpRoute old = *prev;
                forwarded_.erase(net);
                this->forward_delete(old);
            }
            return;
        }
        BgpRoute merged = *std::min_element(
            cands.begin(), cands.end(),
            [](const BgpRoute& a, const BgpRoute& b) {
                return bgp_route_preferred(a, b);
            });
        if (merged.igp_metric != stage::kUnresolvedMetric) {
            net::NexthopSet4 set;
            for (const BgpRoute& c : cands)
                if (bgp_route_compare_rank(c, merged) == 0)
                    set.insert(c.nexthop);
            set.clamp(max_paths_);
            merged.set_nexthops(set);
        }
        if (prev != nullptr) {
            if (*prev == merged) return;
            BgpRoute old = *prev;
            if (old.nexthop != merged.nexthop) best_flips()->inc();
            forwarded_.erase(net);
            this->forward_delete(old);
        }
        forwarded_.insert(net, merged);
        this->forward_add(merged);
    }

    std::optional<BgpRoute> best_other(const Net& net,
                                       RouteStage* excluded) const {
        std::optional<BgpRoute> best;
        for (RouteStage* p : parents_) {
            if (p == excluded) continue;
            auto r = p->lookup_route(net);
            if (!r) continue;
            if (!best || bgp_route_preferred(*r, *best)) best = std::move(r);
        }
        return best;
    }

    telemetry::Counter* best_flips() const {
        if (flips_ == nullptr)
            flips_ = telemetry::Registry::global().counter(
                telemetry::metric_key("bgp_best_path_flips_total",
                                      {{"stage", name_}}));
        return flips_;
    }

    std::string name_;
    std::vector<RouteStage*> parents_;
    size_t max_paths_ = 1;
    net::RouteTrie<net::IPv4, BgpRoute> forwarded_;  // multipath mode only
    mutable telemetry::Counter* flips_ = nullptr;
};

// ---- Nexthop Resolver (§5.1.1) -------------------------------------------
//
// "The Nexthop Resolver stages talk asynchronously to the RIB to discover
// metrics to the nexthops in BGP's routes. As replies arrive, it
// annotates routes in add_route and lookup_route messages with the
// relevant IGP metrics. Routes are held in a queue until the relevant
// nexthop metrics are received; this avoids the need for the Decision
// Process to wait on asynchronous operations."
//
// The RIB side of the conversation is the Figure-8 registration protocol:
// an answer comes with a validity subnet; we cache it for every nexthop in
// that subnet until the RIB invalidates it (owner calls invalidate()).
class NexthopResolverStage : public stage::RouteStage<net::IPv4> {
public:
    // answer(metric) — nullopt metric = nexthop unreachable.
    using AnswerCallback =
        std::function<void(std::optional<uint32_t> metric,
                           net::IPv4Net valid_subnet)>;
    // Asks the RIB (asynchronously) how `nexthop` is routed.
    using MetricLookup =
        std::function<void(net::IPv4 nexthop, AnswerCallback answer)>;

    NexthopResolverStage(std::string name, MetricLookup lookup)
        : name_(std::move(name)), lookup_(std::move(lookup)) {}

    void add_route(const BgpRoute& route, RouteStage*) override {
        const Entry* e = cache_.lookup(route.nexthop);
        if (e != nullptr && e->metric) {
            emit(route, *e->metric);
            return;
        }
        // The route will be parked; if an older version of this prefix is
        // downstream, retract it first so the stream stays consistent.
        if (const BgpRoute* f = forwarded_.find(route.net)) {
            BgpRoute old = *f;
            forwarded_.erase(route.net);
            this->forward_delete(old);
        }
        if (e != nullptr) {  // known-unreachable nexthop
            unreachable_.insert(route.net, route);
            return;
        }
        // Cache miss: park the route and ask the RIB once per nexthop.
        bool first = pending_.find(route.nexthop) == pending_.end();
        pending_[route.nexthop].push_back(route);
        if (first) query(route.nexthop);
    }

    void delete_route(const BgpRoute& route, RouteStage*) override {
        // Still parked? Then downstream never saw it.
        if (unreachable_.erase(route.net)) return;
        auto pit = pending_.find(route.nexthop);
        if (pit != pending_.end()) {
            auto& v = pit->second;
            for (auto it = v.begin(); it != v.end(); ++it) {
                if (it->net == route.net) {
                    v.erase(it);
                    return;
                }
            }
        }
        if (const BgpRoute* f = forwarded_.find(route.net)) {
            BgpRoute old = *f;
            forwarded_.erase(route.net);
            this->forward_delete(old);
        }
    }

    std::optional<BgpRoute> lookup_route(const Net& net) const override {
        // Downstream truth is the annotated version we forwarded.
        const BgpRoute* f = forwarded_.find(net);
        return f != nullptr ? std::optional<BgpRoute>(*f) : std::nullopt;
    }

    // The RIB invalidated a previously-answered subnet (§5.2.1 "cache
    // invalidated" message): drop the cache entry and re-query for every
    // forwarded route whose nexthop it covered.
    void invalidate(const net::IPv4Net& valid_subnet) {
        cache_.erase(valid_subnet);
        std::vector<BgpRoute> affected;
        forwarded_.for_each([&](const Net&, const BgpRoute& r) {
            if (valid_subnet.contains(r.nexthop)) affected.push_back(r);
        });
        // Parked-unreachable routes under this subnet also get another try.
        unreachable_.for_each([&](const Net&, const BgpRoute& r) {
            if (valid_subnet.contains(r.nexthop)) affected.push_back(r);
        });
        for (const BgpRoute& r : affected) {
            unreachable_.erase(r.net);
            BgpRoute original = r;
            original.igp_metric = stage::kUnresolvedMetric;
            bool first = pending_.find(original.nexthop) == pending_.end();
            pending_[original.nexthop].push_back(original);
            if (first) query(original.nexthop);
        }
    }

    // Routes whose nexthop metric is cached resolve inline and ride the
    // output batch; cache misses park as before and emit per-route from
    // the asynchronous answer (the collector is long gone by then —
    // forward_add falls back to the normal path).
    void push_batch(stage::RouteBatch<net::IPv4>&& batch,
                    RouteStage* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::string name() const override { return name_; }

    size_t pending_count() const {
        size_t n = 0;
        for (const auto& [nh, v] : pending_) n += v.size();
        return n;
    }
    size_t unreachable_count() const { return unreachable_.size(); }

private:
    struct Entry {
        std::optional<uint32_t> metric;  // nullopt = unreachable
    };

    void query(net::IPv4 nexthop) {
        lookup_(nexthop, [this, nexthop](std::optional<uint32_t> metric,
                                         net::IPv4Net valid_subnet) {
            cache_.insert(valid_subnet, Entry{metric});
            auto it = pending_.find(nexthop);
            if (it == pending_.end()) return;
            std::vector<BgpRoute> routes = std::move(it->second);
            pending_.erase(it);
            for (BgpRoute& r : routes) {
                if (metric) {
                    emit(r, *metric);
                } else {
                    unreachable_.insert(r.net, r);
                }
            }
        });
    }

    void emit(const BgpRoute& route, uint32_t metric) {
        BgpRoute r = route;
        r.igp_metric = metric;
        // A re-announcement while we were resolving may already be
        // downstream; keep the stream consistent. If the downstream copy
        // is identical (common after an invalidation that resolved to the
        // same metric), skip the churn entirely.
        if (const BgpRoute* f = forwarded_.find(r.net)) {
            if (*f == r) return;
            BgpRoute old = *f;
            this->forward_delete(old);
        }
        forwarded_.insert(r.net, r);
        this->forward_add(r);
    }

    std::string name_;
    MetricLookup lookup_;
    net::RouteTrie<net::IPv4, Entry> cache_;     // by validity subnet
    net::RouteTrie<net::IPv4, BgpRoute> forwarded_;
    net::RouteTrie<net::IPv4, BgpRoute> unreachable_;
    std::map<net::IPv4, std::vector<BgpRoute>> pending_;  // by nexthop
};

}  // namespace xrp::bgp

#endif
