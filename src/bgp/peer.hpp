// BGP peer session: the per-neighbour state machine of Figure 2 ("state
// machine for neighboring router"), kept deliberately separate from route
// processing — "packet formats and state machines are largely separate
// from route processing" (§5).
//
// The FSM follows RFC 4271's session states (Idle, Connect, Active,
// OpenSent, OpenConfirm, Established) with hold/keepalive/connect-retry
// timers, running over an abstract byte transport. The in-memory
// PipeTransport connects two speakers (possibly in different event loops)
// with configurable latency — the multi-router simulations and the
// Figure 13 benchmark run on it.
#ifndef XRP_BGP_PEER_HPP
#define XRP_BGP_PEER_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bgp/message.hpp"
#include "ev/eventloop.hpp"

namespace xrp::bgp {

// Abstract ordered byte pipe with connect semantics.
class BgpTransport {
public:
    virtual ~BgpTransport() = default;
    virtual void connect() = 0;
    virtual void send(std::vector<uint8_t> bytes) = 0;
    virtual void close() = 0;

    std::function<void()> on_connected;
    std::function<void(const uint8_t*, size_t)> on_data;
    std::function<void()> on_error;
};

// In-memory pipe pair. Bytes sent on one end arrive at the other after
// `latency` of the *receiver's* loop clock (works across two loops and on
// virtual clocks). Closing either end errors the peer end.
class PipeTransport final : public BgpTransport {
public:
    struct Shared;
    static std::pair<std::unique_ptr<PipeTransport>,
                     std::unique_ptr<PipeTransport>>
    make_pair(ev::EventLoop& loop_a, ev::EventLoop& loop_b,
              ev::Duration latency = std::chrono::milliseconds(0));

    ~PipeTransport() override;
    void connect() override;
    void send(std::vector<uint8_t> bytes) override;
    void close() override;

private:
    PipeTransport(std::shared_ptr<Shared> shared, int side);
    std::shared_ptr<Shared> shared_;
    int side_;
};

class BgpPeer {
public:
    enum class State {
        kIdle,
        kConnect,
        kActive,
        kOpenSent,
        kOpenConfirm,
        kEstablished,
    };
    static std::string_view state_name(State s);

    struct Config {
        net::IPv4 local_id;
        net::IPv4 peer_addr;  // identifies the peer; also its expected id
        As local_as = 0;
        As peer_as = 0;
        uint16_t hold_time = 90;
        // Reconnect automatically after failure (connect-retry timer).
        bool auto_restart = true;
        ev::Duration connect_retry = std::chrono::seconds(5);
    };

    struct Stats {
        uint64_t updates_in = 0;
        uint64_t updates_out = 0;
        uint64_t keepalives_in = 0;
        uint64_t keepalives_out = 0;
        uint64_t notifications_in = 0;
        uint64_t session_drops = 0;
    };

    BgpPeer(ev::EventLoop& loop, Config config,
            std::unique_ptr<BgpTransport> transport);
    ~BgpPeer();
    BgpPeer(const BgpPeer&) = delete;
    BgpPeer& operator=(const BgpPeer&) = delete;

    void start();
    void stop();  // sends Cease, returns to Idle, no auto-restart

    State state() const { return state_; }
    bool established() const { return state_ == State::kEstablished; }
    bool is_ibgp() const { return config_.local_as == config_.peer_as; }
    const Config& config() const { return config_; }
    const Stats& stats() const { return stats_; }

    // Only legal when established; silently dropped otherwise (the caller
    // sees the session state via callbacks).
    void send_update(const UpdateMessage& update);

    // ---- owner callbacks ------------------------------------------------
    std::function<void()> on_established;
    // Fired on any transition out of Established (or failed setup).
    std::function<void()> on_down;
    std::function<void(const UpdateMessage&)> on_update;

private:
    void transition(State s);
    void on_connected();
    void on_transport_error();
    void on_bytes(const uint8_t* data, size_t size);
    void handle_message(const Message& m);
    void send_message(const Message& m);
    void session_failed(uint8_t code, uint8_t subcode, bool send_notify);
    void arm_hold_timer();
    void arm_connect_retry();

    ev::EventLoop& loop_;
    Config config_;
    std::unique_ptr<BgpTransport> transport_;
    State state_ = State::kIdle;
    std::vector<uint8_t> rbuf_;
    uint16_t negotiated_hold_ = 0;
    ev::Timer hold_timer_;
    ev::Timer keepalive_timer_;
    ev::Timer connect_retry_timer_;
    Stats stats_;
    bool was_established_ = false;
};

}  // namespace xrp::bgp

#endif
