// BGP AS paths: ordered segments of AS numbers, the loop-prevention and
// path-length mechanism of BGP. Supports AS_SEQUENCE and AS_SET segments,
// prepending (what a router does when announcing to an EBGP peer), loop
// detection, and the RFC 4271 wire encoding (2-byte AS numbers).
#ifndef XRP_BGP_ASPATH_HPP
#define XRP_BGP_ASPATH_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xrp::bgp {

using As = uint16_t;

class AsPath {
public:
    enum class SegmentType : uint8_t { kSet = 1, kSequence = 2 };

    struct Segment {
        SegmentType type;
        std::vector<As> ases;
        bool operator==(const Segment&) const = default;
    };

    AsPath() = default;
    // Convenience: a single AS_SEQUENCE.
    explicit AsPath(std::vector<As> sequence);

    const std::vector<Segment>& segments() const { return segments_; }
    bool empty() const { return segments_.empty(); }

    // Path length as the decision process counts it: one per sequence
    // member, one per whole set (RFC 4271 §9.1.2.2).
    uint32_t path_length() const;

    // True if `as` appears anywhere (loop detection).
    bool contains(As as) const;

    // The first AS of the first sequence segment — the neighbor AS the
    // route was learned from (used for MED comparability).
    std::optional<As> first_as() const;

    // Returns a copy with `as` prepended to the leading sequence.
    AsPath prepend(As as) const;

    // "1777 3561 {100 200}" — sets in braces.
    std::string str() const;

    // RFC 4271 AS_PATH attribute payload.
    void encode(std::vector<uint8_t>& out) const;
    static std::optional<AsPath> decode(const uint8_t* data, size_t size);

    bool operator==(const AsPath&) const = default;

private:
    std::vector<Segment> segments_;
};

}  // namespace xrp::bgp

#endif
