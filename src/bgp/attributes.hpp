// BGP path attributes (RFC 4271 §5): the per-route data the decision
// process ranks on. A PathAttributes block is immutable once built and
// shared by every route carrying it (routes from one UPDATE share one
// block), which is what keeps a 146k-route table's memory sane. Stages
// that "modify" attributes (filters, prepending) copy-on-write.
#ifndef XRP_BGP_ATTRIBUTES_HPP
#define XRP_BGP_ATTRIBUTES_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "net/intern.hpp"
#include "net/ipv4.hpp"

namespace xrp::bgp {

enum class Origin : uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

// Attribute type codes (RFC 4271 §4.3 / RFC 1997).
enum class AttrType : uint8_t {
    kOrigin = 1,
    kAsPath = 2,
    kNextHop = 3,
    kMed = 4,
    kLocalPref = 5,
    kAtomicAggregate = 6,
    kAggregator = 7,
    kCommunity = 8,
};

struct Aggregator {
    As as = 0;
    net::IPv4 id;
    bool operator==(const Aggregator&) const = default;
};

class PathAttributes {
public:
    Origin origin = Origin::kIncomplete;
    AsPath as_path;
    net::IPv4 nexthop;
    std::optional<uint32_t> med;
    std::optional<uint32_t> local_pref;
    bool atomic_aggregate = false;
    std::optional<Aggregator> aggregator;
    std::vector<uint32_t> communities;  // RFC 1997, sorted

    bool operator==(const PathAttributes&) const = default;

    std::string str() const;

    // Encodes the path-attributes block of an UPDATE message (with
    // attribute headers). Well-known mandatory attributes are always
    // present; optional ones only when set.
    void encode(std::vector<uint8_t>& out) const;
    // Decodes a path-attributes block. Returns nullopt on malformed input
    // or missing mandatory attributes.
    static std::optional<PathAttributes> decode(const uint8_t* data,
                                                size_t size);
};

using PathAttributesPtr = std::shared_ptr<const PathAttributes>;

// ---- flyweight interning ------------------------------------------------
// A full table download carries ~1M prefixes but only tens of thousands
// of distinct attribute blocks. Every block entering the pipeline goes
// through intern_attrs, so equal blocks share one allocation and
// attribute equality is usually a pointer compare. Handles are ordinary
// shared_ptrs — a block dies with its last route.
struct PathAttributesHash {
    uint64_t operator()(const PathAttributes& pa) const;
};
using AttrInternTable = net::InternTable<PathAttributes, PathAttributesHash>;

// The process-wide attribute flyweight (stats feed bench_memory/tests).
AttrInternTable& attr_intern_table();
// Canonicalises: returns the shared block equal to `attrs`, allocating
// only for a first-seen value. With interning disabled it degrades to a
// plain make_shared.
PathAttributesPtr intern_attrs(PathAttributes attrs);
void set_attr_interning_enabled(bool on);
bool attr_interning_enabled();

// Builder helpers for the common mutations; each returns the interned
// block for the mutated value.
PathAttributesPtr with_prepended_as(const PathAttributes& base, As as,
                                    net::IPv4 new_nexthop);
PathAttributesPtr with_local_pref(const PathAttributes& base, uint32_t lp);

}  // namespace xrp::bgp

#endif
