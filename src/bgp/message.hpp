// BGP-4 message encode/decode (RFC 4271 §4): OPEN, UPDATE, NOTIFICATION,
// KEEPALIVE, with the 19-byte common header and prefix (NLRI) packing.
// Pure functions of bytes — no I/O here; sessions (peer.hpp) own framing.
#ifndef XRP_BGP_MESSAGE_HPP
#define XRP_BGP_MESSAGE_HPP

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "bgp/attributes.hpp"
#include "net/ipnet.hpp"

namespace xrp::bgp {

enum class MessageType : uint8_t {
    kOpen = 1,
    kUpdate = 2,
    kNotification = 3,
    kKeepalive = 4,
};

struct OpenMessage {
    uint8_t version = 4;
    As as = 0;
    uint16_t hold_time = 90;
    net::IPv4 bgp_id;
    bool operator==(const OpenMessage&) const = default;
};

struct UpdateMessage {
    std::vector<net::IPv4Net> withdrawn;
    // Empty attrs with non-empty nlri is invalid; both-empty = EoR-style
    // empty update.
    std::optional<PathAttributes> attributes;
    std::vector<net::IPv4Net> nlri;
    bool operator==(const UpdateMessage&) const = default;
};

struct NotificationMessage {
    uint8_t code = 0;
    uint8_t subcode = 0;
    std::vector<uint8_t> data;
    bool operator==(const NotificationMessage&) const = default;
};

struct KeepaliveMessage {
    bool operator==(const KeepaliveMessage&) const = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage,
                             KeepaliveMessage>;

// Encodes one complete message including the marker/length/type header.
std::vector<uint8_t> encode_message(const Message& m);

// Parses one message from `data` (must be exactly one message: header
// length == size). Returns nullopt on malformed input.
std::optional<Message> decode_message(const uint8_t* data, size_t size);

// Extracts the total length of the message at the head of `data` if a
// complete header is present (for stream reassembly); 0 if fewer than 19
// bytes, nullopt if the header is invalid.
std::optional<size_t> peek_message_length(const uint8_t* data, size_t size);

inline constexpr size_t kHeaderSize = 19;
inline constexpr size_t kMaxMessageSize = 4096;

}  // namespace xrp::bgp

#endif
