// XRL plumbing for BGP:
//   - bind_bgp_xrl(): exposes bgp/1.0 (origination, introspection) and
//     rib_client/1.0 (registration invalidations from the RIB) on an
//     XrlRouter;
//   - XrlRibHandle: BGP's coupling to the RIB over XRLs — winners flow to
//     rib/1.0/add_route, nexthop questions go through the Figure-8
//     register_interest protocol asynchronously, exactly the coupling the
//     paper's NexthopResolver stage describes (§5.1.1, §5.2.1).
#ifndef XRP_BGP_BGP_XRL_HPP
#define XRP_BGP_BGP_XRL_HPP

#include "bgp/process.hpp"
#include "ipc/router.hpp"

namespace xrp::bgp {

inline constexpr const char* kBgpIdl = R"(
interface bgp/1.0 {
    get_local_as -> as:u32;
    originate_route4 ? net:ipv4net & nexthop:ipv4;
    withdraw_route4 ? net:ipv4net;
    get_route_count -> count:u32;
}
)";

void bind_bgp_xrl(BgpProcess& bgp, ipc::XrlRouter& router);

class XrlRibHandle final : public RibHandle {
public:
    XrlRibHandle(ipc::XrlRouter& router, std::string rib_target = "rib")
        : router_(router), target_(std::move(rib_target)) {}

    // Profiling point "bgp_rib_sent": the paper's "Sent to RIB" moment.
    void set_profiler(profiler::Profiler* p) {
        prof_sent_ = p != nullptr ? p->point("bgp_rib_sent")
                                  : profiler::Profiler::ProfilePoint{};
    }

    void add_route(const BgpRoute& r) override {
        uint32_t metric = r.igp_metric == stage::kUnresolvedMetric
                              ? uint32_t{0}
                              : r.igp_metric;
        if (prof_sent_.enabled()) prof_sent_.record("add " + r.net.str());
        // Route pushes are idempotent: mark them so the call contract may
        // retry through drops without risking double-execution harm.
        if (r.is_multipath()) {
            xrl::XrlArgs args;
            args.add("protocol", r.protocol)
                .add("net", r.net)
                .add("nexthops", r.nexthops.str())
                .add("metric", metric);
            router_.call_oneway(
                xrl::Xrl::generic(target_, "rib", "1.0",
                                  "add_route_multipath", args),
                ipc::CallOptions::reliable());
            return;
        }
        xrl::XrlArgs args;
        args.add("protocol", r.protocol)
            .add("net", r.net)
            .add("nexthop", r.nexthop)
            .add("metric", metric);
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "add_route", args),
            ipc::CallOptions::reliable());
    }

    void delete_route(const BgpRoute& r) override {
        xrl::XrlArgs args;
        args.add("protocol", r.protocol).add("net", r.net);
        if (prof_sent_.enabled()) prof_sent_.record("delete " + r.net.str());
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "delete_route", args),
            ipc::CallOptions::reliable());
    }

    void register_interest(
        net::IPv4 nexthop,
        NexthopResolverStage::AnswerCallback answer) override {
        xrl::XrlArgs args;
        args.add("addr", nexthop).add("client", router_.instance());
        // Interest registration is idempotent (same client + prefix), so
        // the reliable contract may retry it; the error path below still
        // degrades gracefully when the RIB stays unreachable.
        router_.call(
            xrl::Xrl::generic(target_, "rib", "1.0", "register_interest",
                              args),
            ipc::CallOptions::reliable(),
            [answer = std::move(answer), nexthop](
                const xrl::XrlError& err, const xrl::XrlArgs& out) {
                if (!err.ok()) {
                    // Treat an unreachable RIB as an unresolvable nexthop,
                    // valid only for the host route so we retry per-nexthop.
                    answer(std::nullopt, net::IPv4Net(nexthop, 32));
                    return;
                }
                bool resolves = out.get_bool("resolves").value_or(false);
                answer(resolves ? std::optional<uint32_t>(
                                      out.get_u32("metric").value_or(0))
                                : std::nullopt,
                       out.get_ipv4net("valid_subnet")
                           .value_or(net::IPv4Net(nexthop, 32)));
            });
    }

private:
    ipc::XrlRouter& router_;
    std::string target_;
    profiler::Profiler::ProfilePoint prof_sent_;
};

}  // namespace xrp::bgp

#endif
