// XRL plumbing for BGP:
//   - bind_bgp_xrl(): exposes bgp/1.0 (origination, introspection) and
//     rib_client/1.0 (registration invalidations from the RIB) on an
//     XrlRouter;
//   - XrlRibHandle: BGP's coupling to the RIB over XRLs — winners flow to
//     rib/1.0/add_route, nexthop questions go through the Figure-8
//     register_interest protocol asynchronously, exactly the coupling the
//     paper's NexthopResolver stage describes (§5.1.1, §5.2.1).
#ifndef XRP_BGP_BGP_XRL_HPP
#define XRP_BGP_BGP_XRL_HPP

#include "bgp/process.hpp"
#include "ipc/router.hpp"

namespace xrp::bgp {

inline constexpr const char* kBgpIdl = R"(
interface bgp/1.0 {
    get_local_as -> as:u32;
    originate_route4 ? net:ipv4net & nexthop:ipv4;
    withdraw_route4 ? net:ipv4net;
    get_route_count -> count:u32;
}
)";

void bind_bgp_xrl(BgpProcess& bgp, ipc::XrlRouter& router);

class XrlRibHandle final : public RibHandle {
public:
    XrlRibHandle(ipc::XrlRouter& router, std::string rib_target = "rib")
        : router_(router), target_(std::move(rib_target)) {}

    // Profiling point "bgp_rib_sent": the paper's "Sent to RIB" moment.
    void set_profiler(profiler::Profiler* p) {
        prof_sent_ = p != nullptr ? p->point("bgp_rib_sent")
                                  : profiler::Profiler::ProfilePoint{};
    }

    // One marshalling path for scalar and multipath winners: the
    // 1-member set's text form is byte-identical to the bare address, so
    // every add goes out as rib/1.0/add_route_multipath. Route pushes are
    // idempotent: mark them so the call contract may retry through drops
    // without risking double-execution harm.
    void add_route(const BgpRoute& r) override {
        if (prof_sent_.enabled()) prof_sent_.record("add " + r.net.str());
        xrl::XrlArgs args;
        args.add("protocol", r.protocol)
            .add("net", r.net)
            .add("nexthops", r.nexthop_set().str())
            .add("metric", wire_metric(r));
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "add_route_multipath",
                              args),
            ipc::CallOptions::reliable());
    }

    void delete_route(const BgpRoute& r) override {
        xrl::XrlArgs args;
        args.add("protocol", r.protocol).add("net", r.net);
        if (prof_sent_.enabled()) prof_sent_.record("delete " + r.net.str());
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "delete_route", args),
            ipc::CallOptions::reliable());
    }

    // A whole decision delta as a handful of framed add_routes_bulk XRLs.
    // The bulk verb carries the protocol at batch level, but one decision
    // batch may mix ebgp and ibgp winners, so entries are regrouped per
    // protocol first (a replace whose halves changed protocol splits into
    // its delete and add — they target different RIB origins anyway).
    void push_batch(stage::RouteBatch4&& batch) override {
        std::map<std::string, stage::RouteBatch4> by_proto;
        for (auto& e : batch.entries()) {
            if (e.op == stage::BatchOp::kReplace &&
                e.old_route.protocol != e.route.protocol) {
                by_proto[e.old_route.protocol].del(std::move(e.old_route));
                by_proto[e.route.protocol].add(std::move(e.route));
            } else {
                by_proto[e.route.protocol].push(std::move(e));
            }
        }
        for (auto& [proto, b] : by_proto) send_bulk(proto, std::move(b));
    }

    void register_interest(
        net::IPv4 nexthop,
        NexthopResolverStage::AnswerCallback answer) override {
        xrl::XrlArgs args;
        args.add("addr", nexthop).add("client", router_.instance());
        // Interest registration is idempotent (same client + prefix), so
        // the reliable contract may retry it; the error path below still
        // degrades gracefully when the RIB stays unreachable.
        router_.call(
            xrl::Xrl::generic(target_, "rib", "1.0", "register_interest",
                              args),
            ipc::CallOptions::reliable(),
            [answer = std::move(answer), nexthop](
                const xrl::XrlError& err, const xrl::XrlArgs& out) {
                if (!err.ok()) {
                    // Treat an unreachable RIB as an unresolvable nexthop,
                    // valid only for the host route so we retry per-nexthop.
                    answer(std::nullopt, net::IPv4Net(nexthop, 32));
                    return;
                }
                bool resolves = out.get_bool("resolves").value_or(false);
                answer(resolves ? std::optional<uint32_t>(
                                      out.get_u32("metric").value_or(0))
                                : std::nullopt,
                       out.get_ipv4net("valid_subnet")
                           .value_or(net::IPv4Net(nexthop, 32)));
            });
    }

private:
    // The RIB wire carries the IGP metric in the route's metric slot.
    static uint32_t wire_metric(const BgpRoute& r) {
        return r.igp_metric == stage::kUnresolvedMetric ? uint32_t{0}
                                                        : r.igp_metric;
    }

    void send_bulk(const std::string& protocol, stage::RouteBatch4&& b) {
        b.coalesce();
        if (b.empty()) return;
        if (b.size() == 1 &&
            b.entries()[0].op != stage::BatchOp::kReplace) {
            // Singleton leftovers keep the legacy wire shape.
            auto& e = b.entries()[0];
            if (e.op == stage::BatchOp::kAdd)
                add_route(e.route);
            else
                delete_route(e.route);
            return;
        }
        stage::RouteBatch4 chunk;
        auto flush = [&] {
            if (chunk.empty()) return;
            xrl::XrlArgs args;
            args.add("protocol", protocol).add("routes", chunk.encode());
            router_.call_oneway(
                xrl::Xrl::generic(target_, "rib", "1.0", "add_routes_bulk",
                                  args),
                ipc::CallOptions::reliable());
            chunk.clear();
        };
        for (auto& e : b.entries()) {
            if (prof_sent_.enabled()) {
                if (e.op != stage::BatchOp::kAdd)
                    prof_sent_.record(
                        "delete " + (e.op == stage::BatchOp::kReplace
                                         ? e.old_route.net.str()
                                         : e.route.net.str()));
                if (e.op != stage::BatchOp::kDelete)
                    prof_sent_.record("add " + e.route.net.str());
            }
            // The wire's metric slot carries the resolved IGP metric,
            // matching what the scalar verbs send.
            e.route.metric = wire_metric(e.route);
            if (e.op == stage::BatchOp::kReplace)
                e.old_route.metric = wire_metric(e.old_route);
            chunk.push(std::move(e));
            if (chunk.size() >= kBulkChunkEntries) flush();
        }
        flush();
    }

    // Entries per add_routes_bulk message: bounds any one XRL's payload
    // without meaningfully increasing the message count at 1M-route scale.
    static constexpr size_t kBulkChunkEntries = 8192;

    ipc::XrlRouter& router_;
    std::string target_;
    profiler::Profiler::ProfilePoint prof_sent_;
};

}  // namespace xrp::bgp

#endif
