// BgpProcess: the BGP routing process, assembled exactly as Figure 5:
//
//   PeerIn -> [Deletion]* -> InFilter -> [Damping] -> NexthopResolver \
//   PeerIn -> [Deletion]* -> InFilter -> [Damping] -> NexthopResolver  > Decision -> Fanout
//   LocalOrigin ----------------------------------------------------- /      |
//                                                                    +-------+-------+
//                                                           per-peer OutFilter->PeerOut
//                                                           RIB branch (to the RIB)
//                                                           Loc-RIB sink (winners)
//
// Dynamic stages appear at runtime: a DeletionStage per peer failure
// (§5.1.2), and the damping stage when the operator enables flap damping
// (§8.3). Peer table dumps to newly-established peers run as background
// tasks over safe iterators (§5.3).
//
// The RIB coupling is behind RibHandle so the process tests standalone;
// production wiring uses the XRL-backed implementation (rib module) and
// the Figure-8 registration protocol for nexthop resolution.
#ifndef XRP_BGP_PROCESS_HPP
#define XRP_BGP_PROCESS_HPP

#include <map>
#include <memory>

#include "bgp/damping.hpp"
#include "bgp/peer.hpp"
#include "bgp/stages.hpp"
#include "ev/eventloop.hpp"
#include "policy/vm.hpp"
#include "profiler/profiler.hpp"
#include "stage/deletion.hpp"
#include "stage/fanout.hpp"
#include "stage/filter.hpp"
#include "stage/origin.hpp"
#include "stage/sink.hpp"

namespace xrp::bgp {

// BGP's view of the RIB (§3: BGP "must examine the routing information
// supplied to the RIB by other routing protocols").
class RibHandle {
public:
    virtual ~RibHandle() = default;
    virtual void add_route(const BgpRoute& r) = 0;
    virtual void delete_route(const BgpRoute& r) = 0;
    // Bulk delta: one call per batch of winners. The default unrolls to
    // the scalar verbs; transport-backed handles override it to ship the
    // whole delta as one framed message.
    virtual void push_batch(stage::RouteBatch<net::IPv4>&& batch) {
        for (auto& e : batch.entries()) {
            switch (e.op) {
            case stage::BatchOp::kAdd:
                add_route(e.route);
                break;
            case stage::BatchOp::kDelete:
                delete_route(e.route);
                break;
            case stage::BatchOp::kReplace:
                delete_route(e.old_route);
                add_route(e.route);
                break;
            }
        }
    }
    // Figure-8 registration: answer arrives asynchronously with the IGP
    // metric (nullopt = unreachable) and the validity subnet.
    virtual void register_interest(
        net::IPv4 nexthop, NexthopResolverStage::AnswerCallback answer) = 0;
};

// Standalone operation: every nexthop resolves with metric 0 and the
// answer is valid forever. Used by tests and by the Figure-13 benchmark,
// which exercises propagation rather than hot-potato selection.
class NullRibHandle final : public RibHandle {
public:
    void add_route(const BgpRoute&) override {}
    void delete_route(const BgpRoute&) override {}
    void register_interest(
        net::IPv4 nexthop,
        NexthopResolverStage::AnswerCallback answer) override {
        answer(0, net::IPv4Net(nexthop, 32));
    }
};

class BgpProcess {
public:
    struct Config {
        As local_as = 0;
        net::IPv4 bgp_id;
        bool enable_damping = false;
        DampingConfig damping;
        // Routes per background-task slice for table dumps and deletions.
        size_t routes_per_slice = 100;
        // Config leaf "multipath": merge equal-ranked paths (through step
        // 6 of the ranking) into one NexthopSet, up to max_paths members.
        bool multipath = false;
        size_t max_paths = 4;
    };

    BgpProcess(ev::EventLoop& loop, Config config,
               std::unique_ptr<RibHandle> rib = nullptr);
    ~BgpProcess();
    BgpProcess(const BgpProcess&) = delete;
    BgpProcess& operator=(const BgpProcess&) = delete;

    // ---- peers ----------------------------------------------------------
    // Adds a peer and starts its session. Returns the peer id.
    int add_peer(const BgpPeer::Config& config,
                 std::unique_ptr<BgpTransport> transport);
    void remove_peer(int id);
    BgpPeer* peer_session(int id);

    // ---- local routes ("network" statements) ---------------------------
    void originate(const net::IPv4Net& net, net::IPv4 nexthop);
    void withdraw(const net::IPv4Net& net);

    // ---- policy (§8.3) ---------------------------------------------------
    // Import policy runs on routes from the peer before decision; export
    // policy runs per-peer after fanout. Setting a policy re-filters the
    // affected origin in the background.
    void set_import_policy(int peer_id,
                           std::shared_ptr<const policy::Program> prog);
    void set_export_policy(int peer_id,
                           std::shared_ptr<const policy::Program> prog);
    // The BGP attribute vocabulary (localpref, med, aspath-len, origin,
    // community) for policy programs.
    static policy::AttributeBinding<net::IPv4> policy_binding();

    // ---- RIB coupling ----------------------------------------------------
    // Called (typically via XRL) when the RIB invalidates a registration.
    void nexthop_invalid(const net::IPv4Net& valid_subnet);

    // ---- introspection -----------------------------------------------------
    size_t peer_route_count(int peer_id) const;
    size_t loc_rib_count() const { return loc_rib_->route_count(); }
    std::optional<BgpRoute> best_route(const net::IPv4Net& net) const {
        return decision_->lookup_route(net);
    }
    const net::RouteTrie<net::IPv4, BgpRoute>& loc_rib() const {
        return loc_rib_->table();
    }
    size_t active_deletion_stages() const { return deleters_.size(); }
    DampingStage* damping_stage(int peer_id);

    // Profiling points: "bgp_in" (update entering BGP), "bgp_rib_queued"
    // (winner queued for transmission to the RIB).
    void set_profiler(profiler::Profiler* p);

    ev::EventLoop& loop() { return loop_; }
    const Config& config() const { return config_; }

private:
    struct PeerPipeline;

    // Terminal stage on each peer's out branch: encodes UPDATEs.
    class PeerOutStage;

    void handle_update(int peer_id, const UpdateMessage& update);
    void handle_peer_established(int peer_id);
    void handle_peer_down(int peer_id);
    void start_table_dump(int peer_id);
    void install_out_filters(PeerPipeline& p);
    void refilter_all_peers_into(int peer_id);

    ev::EventLoop& loop_;
    Config config_;
    std::unique_ptr<RibHandle> rib_;
    profiler::Profiler* profiler_ = nullptr;
    profiler::Profiler::ProfilePoint prof_in_;
    profiler::Profiler::ProfilePoint prof_rib_queued_;

    std::unique_ptr<DecisionStage> decision_;
    std::unique_ptr<stage::FanoutStage<net::IPv4>> fanout_;
    std::unique_ptr<stage::SinkStage<net::IPv4>> rib_branch_;
    std::unique_ptr<stage::SinkStage<net::IPv4>> loc_rib_;

    // Locally-originated routes feed the decision like a peer would.
    std::unique_ptr<stage::OriginStage<net::IPv4>> local_origin_;
    std::unique_ptr<NexthopResolverStage> local_resolver_;

    std::map<int, std::unique_ptr<PeerPipeline>> peers_;
    std::vector<std::unique_ptr<stage::DeletionStage<net::IPv4>>> deleters_;
    int next_peer_id_ = 1;
};

}  // namespace xrp::bgp

#endif
