// Route flap damping as a pipeline stage (§8.3).
//
// "Route flap damping was also not a part of our original BGP design. We
// are currently adding this functionality (ISPs demand it, even though
// it's a flawed mechanism), and can do so efficiently and simply by
// adding another stage to the BGP pipeline. The code does not impact
// other stages, which need not be aware that damping is occurring."
//
// RFC 2439-style: each withdrawal adds a fixed penalty to the prefix's
// figure of merit; the penalty decays exponentially with a configured
// half-life. While the penalty exceeds the suppress threshold the
// prefix's announcements are held inside this stage (downstream believes
// the route is withdrawn); when decay brings it under the reuse
// threshold, the most recent announcement is released. All consistency
// rules hold: suppression always begins at a withdrawal, so downstream
// is in the "no route" state for the whole suppressed period.
#ifndef XRP_BGP_DAMPING_HPP
#define XRP_BGP_DAMPING_HPP

#include <cmath>
#include <map>

#include "bgp/stages.hpp"
#include "ev/eventloop.hpp"

namespace xrp::bgp {

struct DampingConfig {
    double penalty_per_flap = 1000.0;
    double suppress_threshold = 3000.0;
    double reuse_threshold = 750.0;
    ev::Duration half_life = std::chrono::seconds(900);
    // Entries whose penalty decays below this are forgotten entirely.
    double forget_threshold = 100.0;
    // How often suppressed prefixes are re-examined for reuse.
    ev::Duration reuse_scan_interval = std::chrono::seconds(1);
};

class DampingStage : public stage::RouteStage<net::IPv4> {
public:
    DampingStage(std::string name, ev::EventLoop& loop, DampingConfig config);

    void add_route(const BgpRoute& route, RouteStage*) override;
    void delete_route(const BgpRoute& route, RouteStage*) override;
    std::optional<BgpRoute> lookup_route(const Net& net) const override;

    std::string name() const override { return name_; }

    size_t suppressed_count() const;
    double penalty(const Net& net) const;
    bool is_suppressed(const Net& net) const;

private:
    struct Entry {
        double penalty = 0.0;
        ev::TimePoint last_decay{};
        bool suppressed = false;
        // The newest announcement received while suppressed, pending reuse.
        std::optional<BgpRoute> held;
        // Whether downstream currently has a route for this prefix.
        bool advertised = false;
    };

    void decay(Entry& e) const;
    void reuse_scan();

    std::string name_;
    ev::EventLoop& loop_;
    DampingConfig config_;
    std::map<Net, Entry> entries_;
    ev::Timer reuse_timer_;
};

}  // namespace xrp::bgp

#endif
