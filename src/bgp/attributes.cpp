#include "bgp/attributes.hpp"

namespace xrp::bgp {

namespace {

// Attribute flags.
constexpr uint8_t kFlagOptional = 0x80;
constexpr uint8_t kFlagTransitive = 0x40;
constexpr uint8_t kFlagExtLen = 0x10;

void put_u16be(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
}
void put_u32be(std::vector<uint8_t>& out, uint32_t v) {
    for (int i = 3; i >= 0; --i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_attr(std::vector<uint8_t>& out, uint8_t flags, AttrType type,
              const std::vector<uint8_t>& payload) {
    if (payload.size() > 255) flags |= kFlagExtLen;
    out.push_back(flags);
    out.push_back(static_cast<uint8_t>(type));
    if (flags & kFlagExtLen)
        put_u16be(out, static_cast<uint16_t>(payload.size()));
    else
        out.push_back(static_cast<uint8_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

uint32_t get_u32be(const uint8_t* p) {
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

std::string PathAttributes::str() const {
    std::string s = "origin=";
    s += origin == Origin::kIgp ? "igp"
         : origin == Origin::kEgp ? "egp"
                                  : "incomplete";
    s += " aspath=[" + as_path.str() + "]";
    s += " nexthop=" + nexthop.str();
    if (med) s += " med=" + std::to_string(*med);
    if (local_pref) s += " localpref=" + std::to_string(*local_pref);
    if (atomic_aggregate) s += " atomic";
    if (!communities.empty()) {
        s += " communities=";
        for (size_t i = 0; i < communities.size(); ++i) {
            if (i) s += ',';
            s += std::to_string(communities[i] >> 16) + ":" +
                 std::to_string(communities[i] & 0xffff);
        }
    }
    return s;
}

void PathAttributes::encode(std::vector<uint8_t>& out) const {
    put_attr(out, kFlagTransitive, AttrType::kOrigin,
             {static_cast<uint8_t>(origin)});
    std::vector<uint8_t> path;
    as_path.encode(path);
    put_attr(out, kFlagTransitive, AttrType::kAsPath, path);
    std::vector<uint8_t> nh;
    uint32_t nhv = nexthop.to_host();
    for (int i = 3; i >= 0; --i) nh.push_back(static_cast<uint8_t>(nhv >> (8 * i)));
    put_attr(out, kFlagTransitive, AttrType::kNextHop, nh);
    if (med) {
        std::vector<uint8_t> v;
        put_u32be(v, *med);
        put_attr(out, kFlagOptional, AttrType::kMed, v);
    }
    if (local_pref) {
        std::vector<uint8_t> v;
        put_u32be(v, *local_pref);
        put_attr(out, kFlagTransitive, AttrType::kLocalPref, v);
    }
    if (atomic_aggregate)
        put_attr(out, kFlagTransitive, AttrType::kAtomicAggregate, {});
    if (aggregator) {
        std::vector<uint8_t> v;
        put_u16be(v, aggregator->as);
        put_u32be(v, aggregator->id.to_host());
        put_attr(out, kFlagOptional | kFlagTransitive, AttrType::kAggregator,
                 v);
    }
    if (!communities.empty()) {
        std::vector<uint8_t> v;
        for (uint32_t c : communities) put_u32be(v, c);
        put_attr(out, kFlagOptional | kFlagTransitive, AttrType::kCommunity,
                 v);
    }
}

std::optional<PathAttributes> PathAttributes::decode(const uint8_t* data,
                                                     size_t size) {
    PathAttributes pa;
    bool have_origin = false, have_aspath = false, have_nexthop = false;
    size_t pos = 0;
    while (pos < size) {
        if (size - pos < 3) return std::nullopt;
        uint8_t flags = data[pos];
        uint8_t type = data[pos + 1];
        pos += 2;
        size_t len;
        if (flags & kFlagExtLen) {
            if (size - pos < 2) return std::nullopt;
            len = static_cast<size_t>((data[pos] << 8) | data[pos + 1]);
            pos += 2;
        } else {
            if (size - pos < 1) return std::nullopt;
            len = data[pos];
            pos += 1;
        }
        if (size - pos < len) return std::nullopt;
        const uint8_t* p = data + pos;
        switch (static_cast<AttrType>(type)) {
            case AttrType::kOrigin:
                if (len != 1 || p[0] > 2) return std::nullopt;
                pa.origin = static_cast<Origin>(p[0]);
                have_origin = true;
                break;
            case AttrType::kAsPath: {
                auto ap = AsPath::decode(p, len);
                if (!ap) return std::nullopt;
                pa.as_path = std::move(*ap);
                have_aspath = true;
                break;
            }
            case AttrType::kNextHop:
                if (len != 4) return std::nullopt;
                pa.nexthop = net::IPv4(get_u32be(p));
                have_nexthop = true;
                break;
            case AttrType::kMed:
                if (len != 4) return std::nullopt;
                pa.med = get_u32be(p);
                break;
            case AttrType::kLocalPref:
                if (len != 4) return std::nullopt;
                pa.local_pref = get_u32be(p);
                break;
            case AttrType::kAtomicAggregate:
                if (len != 0) return std::nullopt;
                pa.atomic_aggregate = true;
                break;
            case AttrType::kAggregator:
                if (len != 6) return std::nullopt;
                pa.aggregator = Aggregator{
                    static_cast<As>((p[0] << 8) | p[1]),
                    net::IPv4(get_u32be(p + 2))};
                break;
            case AttrType::kCommunity:
                if (len % 4 != 0) return std::nullopt;
                for (size_t i = 0; i < len; i += 4)
                    pa.communities.push_back(get_u32be(p + i));
                break;
            default:
                // Unknown optional attributes are tolerated (and dropped —
                // we don't forward unknown transitives, a simplification).
                if (!(flags & kFlagOptional)) return std::nullopt;
                break;
        }
        pos += len;
    }
    if (!have_origin || !have_aspath || !have_nexthop) return std::nullopt;
    return pa;
}

uint64_t PathAttributesHash::operator()(const PathAttributes& pa) const {
    uint64_t h = 0x8e5d1f3a2b94c607ull;
    h = net::hash_mix(h, static_cast<uint64_t>(pa.origin));
    for (const auto& seg : pa.as_path.segments()) {
        h = net::hash_mix(h, static_cast<uint64_t>(seg.type));
        for (As as : seg.ases) h = net::hash_mix(h, as);
    }
    h = net::hash_mix(h, pa.nexthop.to_host());
    h = net::hash_mix(h, pa.med ? uint64_t{*pa.med} + 1 : 0);
    h = net::hash_mix(h, pa.local_pref ? uint64_t{*pa.local_pref} + 1 : 0);
    h = net::hash_mix(h, pa.atomic_aggregate ? 1 : 0);
    if (pa.aggregator) {
        h = net::hash_mix(h, pa.aggregator->as);
        h = net::hash_mix(h, pa.aggregator->id.to_host());
    }
    for (uint32_t c : pa.communities) h = net::hash_mix(h, c);
    return h;
}

namespace {
bool& attr_interning_flag() {
    static bool enabled = true;
    return enabled;
}
}  // namespace

void set_attr_interning_enabled(bool on) { attr_interning_flag() = on; }
bool attr_interning_enabled() { return attr_interning_flag(); }

// Thread-local for the same reason as NexthopSet's table (see
// net/intern.hpp): the table is single-owner, and each BgpProcess
// interns on its own component thread in the threaded router. Attribute
// sharing matters within one process's table, not across processes.
AttrInternTable& attr_intern_table() {
    static thread_local AttrInternTable table;
    return table;
}

PathAttributesPtr intern_attrs(PathAttributes attrs) {
    if (!attr_interning_enabled())
        return std::make_shared<const PathAttributes>(std::move(attrs));
    return attr_intern_table().intern(std::move(attrs));
}

PathAttributesPtr with_prepended_as(const PathAttributes& base, As as,
                                    net::IPv4 new_nexthop) {
    PathAttributes pa = base;
    pa.as_path = base.as_path.prepend(as);
    pa.nexthop = new_nexthop;
    // MED and LOCAL_PREF are not propagated to external peers.
    pa.med.reset();
    pa.local_pref.reset();
    return intern_attrs(std::move(pa));
}

PathAttributesPtr with_local_pref(const PathAttributes& base, uint32_t lp) {
    PathAttributes pa = base;
    pa.local_pref = lp;
    return intern_attrs(std::move(pa));
}

}  // namespace xrp::bgp
