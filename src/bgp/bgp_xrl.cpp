#include "bgp/bgp_xrl.hpp"

#include "rib/rib_xrl.hpp"

namespace xrp::bgp {

using xrl::XrlArgs;
using xrl::XrlError;

void bind_bgp_xrl(BgpProcess& bgp, ipc::XrlRouter& router) {
    router.add_interface(*xrl::InterfaceSpec::parse(kBgpIdl));
    router.add_interface(*xrl::InterfaceSpec::parse(rib::kRibClientIdl));

    router.add_handler(
        "bgp/1.0/get_local_as", [&bgp](const XrlArgs&, XrlArgs& out) {
            out.add("as", static_cast<uint32_t>(bgp.config().local_as));
            return XrlError::okay();
        });
    router.add_handler(
        "bgp/1.0/originate_route4", [&bgp](const XrlArgs& in, XrlArgs&) {
            bgp.originate(*in.get_ipv4net("net"), *in.get_ipv4("nexthop"));
            return XrlError::okay();
        });
    router.add_handler(
        "bgp/1.0/withdraw_route4", [&bgp](const XrlArgs& in, XrlArgs&) {
            bgp.withdraw(*in.get_ipv4net("net"));
            return XrlError::okay();
        });
    router.add_handler(
        "bgp/1.0/get_route_count", [&bgp](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(bgp.loc_rib_count()));
            return XrlError::okay();
        });

    // The RIB calls this when a registration we hold becomes invalid.
    router.add_handler("rib_client/1.0/route_info_invalid",
                       [&bgp](const XrlArgs& in, XrlArgs&) {
                           bgp.nexthop_invalid(*in.get_ipv4net("valid_subnet"));
                           return XrlError::okay();
                       });
}

}  // namespace xrp::bgp
