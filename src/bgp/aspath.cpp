#include "bgp/aspath.hpp"

namespace xrp::bgp {

AsPath::AsPath(std::vector<As> sequence) {
    if (!sequence.empty())
        segments_.push_back({SegmentType::kSequence, std::move(sequence)});
}

uint32_t AsPath::path_length() const {
    uint32_t n = 0;
    for (const Segment& s : segments_)
        n += s.type == SegmentType::kSequence
                 ? static_cast<uint32_t>(s.ases.size())
                 : 1;
    return n;
}

bool AsPath::contains(As as) const {
    for (const Segment& s : segments_)
        for (As a : s.ases)
            if (a == as) return true;
    return false;
}

std::optional<As> AsPath::first_as() const {
    if (segments_.empty() || segments_[0].ases.empty()) return std::nullopt;
    if (segments_[0].type != SegmentType::kSequence) return std::nullopt;
    return segments_[0].ases[0];
}

AsPath AsPath::prepend(As as) const {
    AsPath p = *this;
    if (p.segments_.empty() ||
        p.segments_[0].type != SegmentType::kSequence ||
        p.segments_[0].ases.size() >= 255) {
        p.segments_.insert(p.segments_.begin(),
                           {SegmentType::kSequence, {as}});
    } else {
        p.segments_[0].ases.insert(p.segments_[0].ases.begin(), as);
    }
    return p;
}

std::string AsPath::str() const {
    std::string s;
    for (const Segment& seg : segments_) {
        if (!s.empty()) s += ' ';
        if (seg.type == SegmentType::kSet) s += '{';
        for (size_t i = 0; i < seg.ases.size(); ++i) {
            if (i) s += ' ';
            s += std::to_string(seg.ases[i]);
        }
        if (seg.type == SegmentType::kSet) s += '}';
    }
    return s;
}

void AsPath::encode(std::vector<uint8_t>& out) const {
    for (const Segment& seg : segments_) {
        out.push_back(static_cast<uint8_t>(seg.type));
        out.push_back(static_cast<uint8_t>(seg.ases.size()));
        for (As a : seg.ases) {
            out.push_back(static_cast<uint8_t>(a >> 8));
            out.push_back(static_cast<uint8_t>(a));
        }
    }
}

std::optional<AsPath> AsPath::decode(const uint8_t* data, size_t size) {
    AsPath p;
    size_t pos = 0;
    while (pos < size) {
        if (size - pos < 2) return std::nullopt;
        uint8_t type = data[pos];
        uint8_t count = data[pos + 1];
        pos += 2;
        if (type != 1 && type != 2) return std::nullopt;
        if (size - pos < static_cast<size_t>(count) * 2) return std::nullopt;
        Segment seg;
        seg.type = static_cast<SegmentType>(type);
        seg.ases.reserve(count);
        for (int i = 0; i < count; ++i) {
            seg.ases.push_back(
                static_cast<As>((data[pos] << 8) | data[pos + 1]));
            pos += 2;
        }
        p.segments_.push_back(std::move(seg));
    }
    return p;
}

}  // namespace xrp::bgp
