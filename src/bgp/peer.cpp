#include "bgp/peer.hpp"

#include <cassert>

namespace xrp::bgp {

// ---- PipeTransport ------------------------------------------------------

struct PipeTransport::Shared {
    struct End {
        ev::EventLoop* loop = nullptr;
        PipeTransport* transport = nullptr;  // null once destroyed
        bool connected = false;
    };
    End ends[2];
    ev::Duration latency{};
    bool broken = false;
};

std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>>
PipeTransport::make_pair(ev::EventLoop& loop_a, ev::EventLoop& loop_b,
                         ev::Duration latency) {
    auto shared = std::make_shared<Shared>();
    shared->latency = latency;
    shared->ends[0].loop = &loop_a;
    shared->ends[1].loop = &loop_b;
    auto a = std::unique_ptr<PipeTransport>(new PipeTransport(shared, 0));
    auto b = std::unique_ptr<PipeTransport>(new PipeTransport(shared, 1));
    shared->ends[0].transport = a.get();
    shared->ends[1].transport = b.get();
    return {std::move(a), std::move(b)};
}

PipeTransport::PipeTransport(std::shared_ptr<Shared> shared, int side)
    : shared_(std::move(shared)), side_(side) {}

PipeTransport::~PipeTransport() {
    shared_->ends[side_].transport = nullptr;
    close();
}

void PipeTransport::connect() {
    // A pipe is "up" as soon as both ends have called connect().
    shared_->ends[side_].connected = true;
    if (shared_->broken || !shared_->ends[0].connected ||
        !shared_->ends[1].connected)
        return;
    for (int s = 0; s < 2; ++s) {
        Shared::End& e = shared_->ends[s];
        e.loop->defer([shared = shared_, s] {
            PipeTransport* t = shared->ends[s].transport;
            if (t != nullptr && !shared->broken && t->on_connected)
                t->on_connected();
        });
    }
}

void PipeTransport::send(std::vector<uint8_t> bytes) {
    // The broken check happens at *send* time only: bytes already queued
    // when the pipe closes are still delivered (like data in a TCP buffer
    // racing a FIN), so a Cease notification sent just before close()
    // reaches the peer.
    if (shared_->broken) return;
    int peer = 1 - side_;
    Shared::End& e = shared_->ends[peer];
    e.loop->defer_after(
        shared_->latency,
        [shared = shared_, peer, bytes = std::move(bytes)] {
            PipeTransport* t = shared->ends[peer].transport;
            if (t != nullptr && t->on_data)
                t->on_data(bytes.data(), bytes.size());
        });
}

void PipeTransport::close() {
    if (shared_->broken) return;
    shared_->broken = true;
    int peer = 1 - side_;
    Shared::End& e = shared_->ends[peer];
    // Same latency as data so the error arrives after in-flight bytes.
    e.loop->defer_after(shared_->latency, [shared = shared_, peer] {
        PipeTransport* t = shared->ends[peer].transport;
        if (t != nullptr && t->on_error) t->on_error();
    });
}

// ---- BgpPeer ------------------------------------------------------------

std::string_view BgpPeer::state_name(State s) {
    switch (s) {
        case State::kIdle: return "Idle";
        case State::kConnect: return "Connect";
        case State::kActive: return "Active";
        case State::kOpenSent: return "OpenSent";
        case State::kOpenConfirm: return "OpenConfirm";
        case State::kEstablished: return "Established";
    }
    return "?";
}

BgpPeer::BgpPeer(ev::EventLoop& loop, Config config,
                 std::unique_ptr<BgpTransport> transport)
    : loop_(loop), config_(config), transport_(std::move(transport)) {
    transport_->on_connected = [this] { on_connected(); };
    transport_->on_data = [this](const uint8_t* d, size_t n) {
        on_bytes(d, n);
    };
    transport_->on_error = [this] { on_transport_error(); };
}

BgpPeer::~BgpPeer() = default;

void BgpPeer::transition(State s) {
    if (state_ == s) return;
    bool came_down = state_ == State::kEstablished;
    state_ = s;
    if (s == State::kEstablished) {
        was_established_ = true;
        if (on_established) on_established();
    } else if (came_down) {
        ++stats_.session_drops;
        if (on_down) on_down();
    }
}

void BgpPeer::start() {
    if (state_ != State::kIdle) return;
    transition(State::kConnect);
    transport_->connect();
}

void BgpPeer::stop() {
    config_.auto_restart = false;
    connect_retry_timer_.unschedule();
    if (state_ == State::kEstablished || state_ == State::kOpenSent ||
        state_ == State::kOpenConfirm)
        send_message(NotificationMessage{6, 0, {}});  // Cease
    hold_timer_.unschedule();
    keepalive_timer_.unschedule();
    transport_->close();
    transition(State::kIdle);
}

void BgpPeer::on_connected() {
    if (state_ != State::kConnect && state_ != State::kActive) return;
    OpenMessage open;
    open.as = config_.local_as;
    open.hold_time = config_.hold_time;
    open.bgp_id = config_.local_id;
    send_message(open);
    transition(State::kOpenSent);
}

void BgpPeer::on_transport_error() {
    hold_timer_.unschedule();
    keepalive_timer_.unschedule();
    rbuf_.clear();
    transition(State::kIdle);
    arm_connect_retry();
}

void BgpPeer::arm_connect_retry() {
    if (!config_.auto_restart) return;
    connect_retry_timer_ = loop_.set_timer(config_.connect_retry, [this] {
        if (state_ == State::kIdle) {
            transition(State::kConnect);
            transport_->connect();
        }
    });
}

void BgpPeer::on_bytes(const uint8_t* data, size_t size) {
    rbuf_.insert(rbuf_.end(), data, data + size);
    size_t off = 0;
    while (true) {
        auto len = peek_message_length(rbuf_.data() + off, rbuf_.size() - off);
        if (!len) {
            session_failed(1, 1, true);  // header error
            return;
        }
        if (*len == 0 || rbuf_.size() - off < *len) break;
        auto m = decode_message(rbuf_.data() + off, *len);
        off += *len;
        if (!m) {
            session_failed(1, 2, true);
            return;
        }
        handle_message(*m);
        if (state_ == State::kIdle) {
            rbuf_.clear();
            return;  // session torn down while processing
        }
    }
    if (off > 0)
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(off));
}

void BgpPeer::handle_message(const Message& m) {
    if (const auto* open = std::get_if<OpenMessage>(&m)) {
        if (state_ != State::kOpenSent) {
            session_failed(5, 0, true);  // FSM error
            return;
        }
        if (open->version != 4) {
            session_failed(2, 1, true);
            return;
        }
        if (config_.peer_as != 0 && open->as != config_.peer_as) {
            session_failed(2, 2, true);  // bad peer AS
            return;
        }
        negotiated_hold_ = std::min(config_.hold_time, open->hold_time);
        send_message(KeepaliveMessage{});
        if (negotiated_hold_ > 0) {
            arm_hold_timer();
            keepalive_timer_ = loop_.set_periodic(
                std::chrono::seconds(std::max(1, negotiated_hold_ / 3)),
                [this] {
                    ++stats_.keepalives_out;
                    send_message(KeepaliveMessage{});
                    return true;
                });
        }
        transition(State::kOpenConfirm);
        return;
    }
    if (std::holds_alternative<KeepaliveMessage>(m)) {
        ++stats_.keepalives_in;
        if (state_ == State::kOpenConfirm) transition(State::kEstablished);
        if (negotiated_hold_ > 0) arm_hold_timer();
        return;
    }
    if (const auto* update = std::get_if<UpdateMessage>(&m)) {
        if (state_ != State::kEstablished) {
            session_failed(5, 0, true);
            return;
        }
        ++stats_.updates_in;
        if (negotiated_hold_ > 0) arm_hold_timer();
        if (on_update) on_update(*update);
        return;
    }
    if (std::get_if<NotificationMessage>(&m) != nullptr) {
        ++stats_.notifications_in;
        session_failed(0, 0, false);
        return;
    }
}

void BgpPeer::session_failed(uint8_t code, uint8_t subcode, bool send_notify) {
    if (send_notify && state_ != State::kIdle)
        send_message(NotificationMessage{code, subcode, {}});
    hold_timer_.unschedule();
    keepalive_timer_.unschedule();
    rbuf_.clear();
    transition(State::kIdle);
    arm_connect_retry();
}

void BgpPeer::arm_hold_timer() {
    hold_timer_ = loop_.set_timer(std::chrono::seconds(negotiated_hold_),
                                  [this] { session_failed(4, 0, true); });
}

void BgpPeer::send_message(const Message& m) {
    transport_->send(encode_message(m));
}

void BgpPeer::send_update(const UpdateMessage& update) {
    if (state_ != State::kEstablished) return;
    ++stats_.updates_out;
    send_message(update);
}

}  // namespace xrp::bgp
