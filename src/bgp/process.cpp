#include "bgp/process.hpp"

namespace xrp::bgp {

using net::IPv4;
using net::IPv4Net;

// ---- PeerOutStage -------------------------------------------------------

// Terminal stage of a peer's output branch: turns the route stream into
// UPDATE messages on the session. One route per UPDATE keeps latency
// minimal (the paper's concern); the session layer pipelines on the wire.
class BgpProcess::PeerOutStage : public stage::RouteStage<IPv4> {
public:
    PeerOutStage(std::string name, BgpPeer* session)
        : name_(std::move(name)), session_(session) {}

    void add_route(const BgpRoute& route, RouteStage*) override {
        UpdateMessage u;
        const PathAttributes* pa = route_attrs(route);
        u.attributes = pa != nullptr ? *pa : PathAttributes{};
        if (pa == nullptr) {
            u.attributes->nexthop = route.nexthop;
            u.attributes->origin = Origin::kIgp;
        }
        u.nlri.push_back(route.net);
        session_->send_update(u);
    }

    void delete_route(const BgpRoute& route, RouteStage*) override {
        UpdateMessage u;
        u.withdrawn.push_back(route.net);
        session_->send_update(u);
    }

    std::optional<BgpRoute> lookup_route(const Net& net) const override {
        return this->lookup_upstream(net);
    }

    std::string name() const override { return name_; }

private:
    std::string name_;
    BgpPeer* session_;
};

// ---- PeerPipeline -------------------------------------------------------

struct BgpProcess::PeerPipeline {
    int id = 0;
    std::unique_ptr<BgpPeer> session;
    // Input side.
    std::unique_ptr<stage::OriginStage<IPv4>> peer_in;
    std::unique_ptr<stage::FilterStage<IPv4>> in_filter;
    std::unique_ptr<DampingStage> damping;
    std::unique_ptr<NexthopResolverStage> resolver;
    // Output side.
    std::unique_ptr<stage::FilterStage<IPv4>> out_filter;
    std::unique_ptr<PeerOutStage> peer_out;
    int fanout_branch = -1;
    // Background full-table dump for a newly established session.
    ev::Task dump_task;
    std::shared_ptr<const policy::Program> import_policy;
    std::shared_ptr<const policy::Program> export_policy;
};

// ---- construction --------------------------------------------------------

BgpProcess::BgpProcess(ev::EventLoop& loop, Config config,
                       std::unique_ptr<RibHandle> rib)
    : loop_(loop), config_(config), rib_(std::move(rib)) {
    if (!rib_) rib_ = std::make_unique<NullRibHandle>();

    decision_ = std::make_unique<DecisionStage>("decision");
    if (config_.multipath) decision_->set_multipath(config_.max_paths);
    fanout_ = std::make_unique<stage::FanoutStage<IPv4>>("fanout");
    decision_->set_downstream(fanout_.get());
    fanout_->set_upstream(decision_.get());

    rib_branch_ = std::make_unique<stage::SinkStage<IPv4>>(
        "rib-branch", [this](bool is_add, const BgpRoute& r) {
            // Self-originated winners came from the local routing table
            // (network statements); feeding them back would ask the RIB
            // for an origin it doesn't have.
            if (r.protocol == "local") return;
            if (prof_rib_queued_.enabled())
                prof_rib_queued_.record(
                    (is_add ? "add " : "delete ") + r.net.str());
            if (is_add)
                rib_->add_route(r);
            else
                rib_->delete_route(r);
        });
    rib_branch_->set_batch_callback([this](stage::RouteBatch<IPv4>&& batch) {
        // Same per-route filtering as the scalar callback, applied per
        // entry; a replace whose halves disagree degrades to the
        // surviving half. The filtered delta ships as one RIB call.
        stage::RouteBatch<IPv4> out;
        out.reserve(batch.size());
        for (auto& e : batch.entries()) {
            const bool new_ok = e.route.protocol != "local";
            const bool old_ok = e.op != stage::BatchOp::kReplace ||
                                e.old_route.protocol != "local";
            if (prof_rib_queued_.enabled()) {
                if (e.op == stage::BatchOp::kDelete && new_ok)
                    prof_rib_queued_.record("delete " + e.route.net.str());
                if (e.op == stage::BatchOp::kReplace && old_ok)
                    prof_rib_queued_.record("delete " + e.old_route.net.str());
                if (e.op != stage::BatchOp::kDelete && new_ok)
                    prof_rib_queued_.record("add " + e.route.net.str());
            }
            if (e.op != stage::BatchOp::kReplace) {
                if (new_ok) out.push(std::move(e));
            } else if (new_ok && old_ok) {
                out.push(std::move(e));
            } else if (new_ok) {
                out.add(std::move(e.route));
            } else if (old_ok) {
                out.del(std::move(e.old_route));
            }
        }
        if (!out.empty()) rib_->push_batch(std::move(out));
    });
    fanout_->add_branch(rib_branch_.get());

    loc_rib_ = std::make_unique<stage::SinkStage<IPv4>>("loc-rib");
    fanout_->add_branch(loc_rib_.get());

    // Local origination pipeline: origin -> resolver -> decision.
    local_origin_ = std::make_unique<stage::OriginStage<IPv4>>("local-origin");
    local_resolver_ = std::make_unique<NexthopResolverStage>(
        "local-nexthop",
        [this](IPv4 nexthop, NexthopResolverStage::AnswerCallback answer) {
            rib_->register_interest(nexthop, std::move(answer));
        });
    local_origin_->set_downstream(local_resolver_.get());
    local_resolver_->set_upstream(local_origin_.get());
    decision_->add_parent(local_resolver_.get());
}

BgpProcess::~BgpProcess() = default;

// ---- peers ---------------------------------------------------------------

int BgpProcess::add_peer(const BgpPeer::Config& config,
                         std::unique_ptr<BgpTransport> transport) {
    int id = next_peer_id_++;
    auto p = std::make_unique<PeerPipeline>();
    p->id = id;
    p->session = std::make_unique<BgpPeer>(loop_, config, std::move(transport));

    const std::string tag = "peer" + std::to_string(id);
    p->peer_in = std::make_unique<stage::OriginStage<IPv4>>(tag + "-in");
    p->in_filter = std::make_unique<stage::FilterStage<IPv4>>(tag + "-in-filter");
    p->resolver = std::make_unique<NexthopResolverStage>(
        tag + "-nexthop",
        [this](IPv4 nexthop, NexthopResolverStage::AnswerCallback answer) {
            rib_->register_interest(nexthop, std::move(answer));
        });

    // Input plumbing: peer_in -> in_filter [-> damping] -> resolver -> decision.
    p->peer_in->set_downstream(p->in_filter.get());
    p->in_filter->set_upstream(p->peer_in.get());
    stage::RouteStage<IPv4>* tail = p->in_filter.get();
    if (config_.enable_damping) {
        p->damping = std::make_unique<DampingStage>(tag + "-damping", loop_,
                                                    config_.damping);
        tail->set_downstream(p->damping.get());
        p->damping->set_upstream(tail);
        tail = p->damping.get();
    }
    tail->set_downstream(p->resolver.get());
    p->resolver->set_upstream(tail);
    decision_->add_parent(p->resolver.get());

    // Output plumbing: fanout -> out_filter -> peer_out.
    p->out_filter =
        std::make_unique<stage::FilterStage<IPv4>>(tag + "-out-filter");
    p->peer_out = std::make_unique<PeerOutStage>(tag + "-out", p->session.get());
    p->out_filter->set_downstream(p->peer_out.get());
    p->peer_out->set_upstream(p->out_filter.get());
    install_out_filters(*p);
    p->fanout_branch = fanout_->add_branch(p->out_filter.get());

    // Session callbacks.
    BgpPeer* session = p->session.get();
    session->on_update = [this, id](const UpdateMessage& u) {
        handle_update(id, u);
    };
    session->on_established = [this, id] { handle_peer_established(id); };
    session->on_down = [this, id] { handle_peer_down(id); };

    peers_[id] = std::move(p);
    session->start();
    return id;
}

void BgpProcess::remove_peer(int id) {
    auto it = peers_.find(id);
    if (it == peers_.end()) return;
    PeerPipeline& p = *it->second;
    p.session->on_update = nullptr;
    p.session->on_established = nullptr;
    p.session->on_down = nullptr;
    p.session->stop();
    // Flush its routes out of the pipeline synchronously (remove_peer is
    // an operator action, not a flap; no need for background deletion).
    std::vector<BgpRoute> routes;
    p.peer_in->table().for_each(
        [&](const IPv4Net&, const BgpRoute& r) { routes.push_back(r); });
    for (const BgpRoute& r : routes) p.peer_in->delete_route(r);
    decision_->remove_parent(p.resolver.get());
    fanout_->remove_branch(p.fanout_branch);
    peers_.erase(it);
}

BgpPeer* BgpProcess::peer_session(int id) {
    auto it = peers_.find(id);
    return it == peers_.end() ? nullptr : it->second->session.get();
}

DampingStage* BgpProcess::damping_stage(int peer_id) {
    auto it = peers_.find(peer_id);
    return it == peers_.end() ? nullptr : it->second->damping.get();
}

size_t BgpProcess::peer_route_count(int peer_id) const {
    auto it = peers_.find(peer_id);
    return it == peers_.end() ? 0 : it->second->peer_in->route_count();
}

// ---- update ingestion ------------------------------------------------------

void BgpProcess::handle_update(int peer_id, const UpdateMessage& update) {
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    PeerPipeline& p = *it->second;

    // One UPDATE becomes one batch into the Peer In: withdrawals then
    // announcements, the announcements sharing a single interned
    // attribute block.
    stage::RouteBatch<IPv4> batch;
    batch.reserve(update.withdrawn.size() + update.nlri.size());
    for (const IPv4Net& net : update.withdrawn) {
        if (prof_in_.enabled()) prof_in_.record("delete " + net.str());
        BgpRoute r;
        r.net = net;
        batch.del(std::move(r));
    }

    // Sender-side loop prevention can fail; receiver-side is mandatory.
    // (malformed attributes: session layer notified, announcements dropped)
    if (!update.nlri.empty() && update.attributes &&
        !(update.attributes->as_path.contains(config_.local_as) &&
          !p.session->is_ibgp())) {
        auto attrs = intern_attrs(*update.attributes);
        const bool ibgp = p.session->is_ibgp();
        for (const IPv4Net& net : update.nlri) {
            if (prof_in_.enabled()) prof_in_.record("add " + net.str());
            BgpRoute r;
            r.net = net;
            r.nexthop = attrs->nexthop;
            r.protocol = ibgp ? "ibgp" : "ebgp";
            r.source_id = p.session->config().peer_addr.to_host();
            r.attrs = attrs;
            batch.add(std::move(r));
        }
    }
    if (!batch.empty()) p.peer_in->push_batch(std::move(batch));
}

// ---- session lifecycle -----------------------------------------------------

void BgpProcess::handle_peer_established(int peer_id) {
    start_table_dump(peer_id);
}

void BgpProcess::handle_peer_down(int peer_id) {
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    PeerPipeline& p = *it->second;
    p.dump_task.cancel();
    if (p.peer_in->route_count() == 0) return;

    // §5.1.2: hand the whole table to a dynamic deletion stage plumbed
    // directly after the Peer In; the origin is instantly ready for the
    // peering to come back up.
    auto table = p.peer_in->detach_table();
    auto del = std::make_unique<stage::DeletionStage<IPv4>>(
        "peer" + std::to_string(peer_id) + "-deletion", std::move(table),
        loop_,
        [this](stage::DeletionStage<IPv4>* done) {
            std::erase_if(deleters_, [done](const auto& d) {
                return d.get() == done;
            });
        },
        config_.routes_per_slice);
    stage::plumb_between<IPv4>(*p.peer_in, *del, *p.peer_in->downstream());
    deleters_.push_back(std::move(del));
}

void BgpProcess::start_table_dump(int peer_id) {
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    PeerPipeline& p = *it->second;
    // Dump the Loc-RIB to the new peer in background slices over a safe
    // iterator; concurrent changes flow via the fanout and may duplicate
    // an announcement, which BGP's implicit-replace semantics absorb.
    auto iter = std::make_shared<net::RouteTrie<IPv4, BgpRoute>::iterator>(
        loc_rib_->mutable_table().begin());
    p.dump_task = loop_.add_background_task([this, peer_id, iter] {
        auto pit = peers_.find(peer_id);
        if (pit == peers_.end()) return false;
        PeerPipeline& pp = *pit->second;
        size_t n = 0;
        while (n < config_.routes_per_slice && !iter->at_end()) {
            if (iter->valid())
                pp.out_filter->add_route(iter->value(), nullptr);
            ++*iter;
            ++n;
        }
        return !iter->at_end();
    });
}

// ---- local origination -----------------------------------------------------

void BgpProcess::originate(const IPv4Net& net, IPv4 nexthop) {
    PathAttributes pa;
    pa.origin = Origin::kIgp;
    pa.nexthop = nexthop;
    auto attrs = intern_attrs(std::move(pa));
    BgpRoute r;
    r.net = net;
    r.nexthop = nexthop;
    r.protocol = "local";
    r.source_id = config_.bgp_id.to_host();
    r.attrs = std::move(attrs);
    local_origin_->add_route(r);
}

void BgpProcess::withdraw(const IPv4Net& net) {
    BgpRoute r;
    r.net = net;
    local_origin_->delete_route(r);
}

// ---- policy -----------------------------------------------------------------

policy::AttributeBinding<IPv4> BgpProcess::policy_binding() {
    policy::AttributeBinding<IPv4> b;
    b.load = [](const BgpRoute& r,
                const std::string& name) -> std::optional<policy::Value> {
        const PathAttributes* pa = route_attrs(r);
        if (pa == nullptr) return std::nullopt;
        if (name == "localpref") return policy::Value(pa->local_pref.value_or(100));
        if (name == "med") return policy::Value(pa->med.value_or(0));
        if (name == "aspath-len") return policy::Value(pa->as_path.path_length());
        if (name == "origin")
            return policy::Value(static_cast<uint32_t>(pa->origin));
        return std::nullopt;
    };
    b.store = [](BgpRoute& r, const std::string& name,
                 const policy::Value& v) {
        const PathAttributes* pa = route_attrs(r);
        if (pa == nullptr) return false;
        auto n = std::get_if<uint32_t>(&v);
        if (n == nullptr) return false;
        PathAttributes copy = *pa;
        if (name == "localpref") copy.local_pref = *n;
        else if (name == "med") copy.med = *n;
        else return false;
        r.attrs = intern_attrs(std::move(copy));
        return true;
    };
    return b;
}

void BgpProcess::set_import_policy(
    int peer_id, std::shared_ptr<const policy::Program> prog) {
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    PeerPipeline& p = *it->second;
    p.import_policy = std::move(prog);
    // Re-filter (§5.1.2's "routing policy filters are changed by the
    // operator" case): retract through the old bank, swap, re-announce
    // through the new one, so downstream never holds a rejected route.
    p.peer_in->retract_all();
    std::vector<stage::FilterStage<IPv4>::Filter> filters;
    if (p.import_policy)
        filters.push_back(
            policy::make_filter<IPv4>(p.import_policy, policy_binding()));
    p.in_filter->set_filters(std::move(filters));
    p.peer_in->announce_all();
}

void BgpProcess::set_export_policy(
    int peer_id, std::shared_ptr<const policy::Program> prog) {
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    PeerPipeline& p = *it->second;
    // Retract the Loc-RIB through the old export bank first, so prefixes
    // the new policy rejects are withdrawn on the wire; then swap and
    // re-announce. (Synchronous — export policy swaps are rare operator
    // actions; the dump back out runs in the background.)
    if (p.session->established())
        loc_rib_->table().for_each([&](const IPv4Net&, const BgpRoute& r) {
            p.out_filter->delete_route(r, nullptr);
        });
    p.export_policy = std::move(prog);
    install_out_filters(p);
    if (p.session->established()) start_table_dump(peer_id);
}

void BgpProcess::install_out_filters(PeerPipeline& p) {
    std::vector<stage::FilterStage<IPv4>::Filter> filters;
    const uint32_t peer_source = p.session->config().peer_addr.to_host();
    const bool peer_is_ibgp = p.session->is_ibgp();
    const As local_as = config_.local_as;
    const IPv4 local_addr = p.session->config().local_id;

    // Split horizon: never announce a route back to the peer it came from.
    filters.push_back(
        [peer_source](BgpRoute& r) { return r.source_id != peer_source; });
    if (peer_is_ibgp) {
        // Standard IBGP rule: IBGP-learned routes are not reflected.
        filters.push_back([](BgpRoute& r) { return r.protocol != "ibgp"; });
    }
    // User export policy runs before the wire transforms.
    if (p.export_policy)
        filters.push_back(
            policy::make_filter<IPv4>(p.export_policy, policy_binding()));
    if (peer_is_ibgp) {
        filters.push_back([](BgpRoute& r) {
            const PathAttributes* pa = route_attrs(r);
            if (pa != nullptr && !pa->local_pref)
                r.attrs = with_local_pref(*pa, 100);
            return true;
        });
    } else {
        filters.push_back([local_as, local_addr](BgpRoute& r) {
            const PathAttributes* pa = route_attrs(r);
            PathAttributes base = pa != nullptr ? *pa : PathAttributes{};
            r.attrs = with_prepended_as(base, local_as, local_addr);
            r.nexthop = local_addr;
            return true;
        });
    }
    p.out_filter->set_filters(std::move(filters));
}

void BgpProcess::nexthop_invalid(const IPv4Net& valid_subnet) {
    local_resolver_->invalidate(valid_subnet);
    for (auto& [id, p] : peers_) p->resolver->invalidate(valid_subnet);
}

void BgpProcess::set_profiler(profiler::Profiler* p) {
    profiler_ = p;
    if (p != nullptr) {
        prof_in_ = p->point("bgp_in");
        prof_rib_queued_ = p->point("bgp_rib_queued");
    } else {
        prof_in_ = {};
        prof_rib_queued_ = {};
    }
}

}  // namespace xrp::bgp
