// SinkStage: a terminal stage that materializes the stream into a table
// and/or hands each change to a callback. Pipelines end in sinks: the RIB
// branch that feeds the FEA, a PeerOut's session writer, or a test
// harness observing what came out.
#ifndef XRP_STAGE_SINK_HPP
#define XRP_STAGE_SINK_HPP

#include <functional>
#include <string>

#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class SinkStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using ChangeCallback = std::function<void(bool is_add, const RouteT&)>;
    // Batch-aware consumers (the RIB's FEA feed) install this to receive
    // whole deltas; without it a batch degrades to per-entry cb_ calls.
    using BatchCallback = std::function<void(RouteBatch<A>&&)>;

    explicit SinkStage(std::string name, ChangeCallback cb = nullptr)
        : name_(std::move(name)), cb_(std::move(cb)) {}

    void set_batch_callback(BatchCallback cb) { batch_cb_ = std::move(cb); }

    void add_route(const RouteT& route, RouteStage<A>*) override {
        this->stage_metrics().adds->inc();
        table_.insert(route.net, route);
        this->routes_gauge()->set(static_cast<int64_t>(table_.size()));
        if (cb_) cb_(true, route);
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        this->stage_metrics().deletes->inc();
        table_.erase(route.net);
        this->routes_gauge()->set(static_cast<int64_t>(table_.size()));
        if (cb_) cb_(false, route);
    }

    void push_batch(RouteBatch<A>&& batch, RouteStage<A>*) override {
        this->stage_metrics().adds->inc(batch.add_count());
        this->stage_metrics().deletes->inc(batch.delete_count());
        for (const auto& e : batch.entries()) {
            switch (e.op) {
            case BatchOp::kAdd:
                table_.insert(e.route.net, e.route);
                break;
            case BatchOp::kDelete:
                table_.erase(e.route.net);
                break;
            case BatchOp::kReplace:
                table_.erase(e.old_route.net);
                table_.insert(e.route.net, e.route);
                break;
            }
        }
        this->routes_gauge()->set(static_cast<int64_t>(table_.size()));
        if (batch_cb_) {
            batch_cb_(std::move(batch));
        } else if (cb_) {
            for (const auto& e : batch.entries()) {
                switch (e.op) {
                case BatchOp::kAdd:
                    cb_(true, e.route);
                    break;
                case BatchOp::kDelete:
                    cb_(false, e.route);
                    break;
                case BatchOp::kReplace:
                    cb_(false, e.old_route);
                    cb_(true, e.route);
                    break;
                }
            }
        }
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        this->stage_metrics().lookups->inc();
        const RouteT* r = table_.find(net);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        const RouteT* r = table_.lookup(addr);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::string name() const override { return name_; }

    const net::RouteTrie<A, RouteT>& table() const { return table_; }
    // Mutable access for owners that park safe iterators in the table
    // (e.g. BGP's background dump of the Loc-RIB to a new peer).
    net::RouteTrie<A, RouteT>& mutable_table() { return table_; }
    size_t route_count() const { return table_.size(); }

private:
    std::string name_;
    ChangeCallback cb_;
    BatchCallback batch_cb_;
    net::RouteTrie<A, RouteT> table_;
};

}  // namespace xrp::stage

#endif
