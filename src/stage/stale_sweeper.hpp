// StaleSweeperStage: the graceful-restart companion to DeletionStage.
//
// After a protocol restarts and resyncs, its origin table holds a mix of
// re-confirmed routes (stamp == current generation) and stale ones the
// revived protocol never re-advertised. Deleting the stale tail in one
// pass would freeze the router exactly like the mass-delete DeletionStage
// exists to avoid — so the same dynamic-stage trick applies: splice a
// sweeper directly downstream of the origin, walk the origin's *live*
// table in background slices, and retract only routes whose stamp
// predates the restart. When the walk completes the stage unplumbs itself
// and self-destructs through the owner's completion callback.
//
// Unlike DeletionStage the sweeper owns no table: the origin keeps its
// routes (that is the whole point of graceful restart — forwarding never
// flinched), and the sweeper holds only a parked iterator into the
// origin's trie. The trie's deferred-unlink iterators make concurrent
// erases safe; entries that vanish under us show up as !valid() and are
// skipped. Reaping goes through origin.delete_route so the origin's stale
// accounting and downstream retraction stay on the one true path — the
// delete then flows through this stage (a pure pass-through) like any
// other message.
#ifndef XRP_STAGE_STALE_SWEEPER_HPP
#define XRP_STAGE_STALE_SWEEPER_HPP

#include <functional>
#include <string>

#include "ev/eventloop.hpp"
#include "stage/origin.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class StaleSweeperStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using Origin = OriginStage<A>;
    // Called (via the event loop, never re-entrantly) once the stage has
    // unplumbed itself; the owner destroys the object.
    using CompletionCallback = std::function<void(StaleSweeperStage*)>;

    StaleSweeperStage(std::string name, Origin& origin, ev::EventLoop& loop,
                      CompletionCallback on_complete,
                      size_t routes_per_slice = 100)
        : name_(std::move(name)),
          origin_(origin),
          loop_(loop),
          on_complete_(std::move(on_complete)),
          per_slice_(routes_per_slice),
          iter_(origin.sweep_begin()) {
        task_ = loop_.add_background_task([this] { return slice(); });
    }

    // Pure pass-through: the origin upstream already holds the truth, so
    // all three messages just flow. A delete we forward may be one we
    // provoked via origin_.delete_route in slice() — same thing.
    void add_route(const RouteT& route, RouteStage<A>*) override {
        this->forward_add(route);
    }
    void delete_route(const RouteT& route, RouteStage<A>*) override {
        this->forward_delete(route);
    }
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        // Pure pass-through: hand the batch on whole.
        this->forward_batch(std::move(batch));
        (void)caller;
    }
    std::optional<RouteT> lookup_route(const Net& net) const override {
        return this->lookup_upstream(net);
    }

    std::string name() const override { return name_; }

    bool finished() const { return finished_; }
    size_t swept() const { return swept_; }

    // The origin died again (or grace expired) mid-sweep: stop sweeping,
    // unplumb, and report completion. Stale routes still unswept stay in
    // the origin for whoever handles the new event (a fresh generation
    // bump re-marks everything anyway).
    void abort() {
        task_.cancel();
        finish();
    }

private:
    bool slice() {
        // The budget counts entries *examined*, not just reaped: a table
        // that is 99% fresh must not make one slice walk 100x its budget.
        size_t n = 0;
        while (n < per_slice_ && !iter_.at_end()) {
            ++n;
            if (!iter_.valid()) {  // erased while we were parked
                ++iter_;
                continue;
            }
            RouteT r = iter_.value();
            ++iter_;  // step off before the erase below frees our node
            if (origin_.route_is_stale(r)) {
                origin_.delete_route(r);
                ++swept_;
            }
        }
        if (iter_.at_end()) {
            finish();
            return false;  // task complete
        }
        return true;
    }

    void finish() {
        if (finished_) return;
        finished_ = true;
        task_.cancel();
        unplumb(*this);
        if (on_complete_) {
            // Defer: the owner will likely destroy us, and we may be in
            // the middle of slice() on this object.
            loop_.defer([cb = on_complete_, self = this] { cb(self); });
        }
    }

    std::string name_;
    Origin& origin_;
    ev::EventLoop& loop_;
    CompletionCallback on_complete_;
    size_t per_slice_;
    typename Origin::Table::iterator iter_;
    ev::Task task_;
    size_t swept_ = 0;
    bool finished_ = false;
};

}  // namespace xrp::stage

#endif
