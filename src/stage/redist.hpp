// RedistStage: route redistribution tap (§3, §5.2).
//
// "A key instrument of routing policy is the process of route
// redistribution, where routes from one routing protocol that match
// certain policy filters are redistributed into another routing protocol."
// The RIB, seeing everyone's routes, hosts these as dynamic stages: a
// RedistStage forwards the main stream unchanged and additionally feeds
// (add/delete) events for routes matching its predicate to a sink — the
// XRL client that asked for redistribution. The predicate must be a pure
// function of the route so adds and deletes stay symmetric.
#ifndef XRP_STAGE_REDIST_HPP
#define XRP_STAGE_REDIST_HPP

#include <functional>
#include <string>

#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class RedistStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using Predicate = std::function<bool(const RouteT&)>;
    using Sink = std::function<void(bool is_add, const RouteT&)>;

    RedistStage(std::string name, Predicate pred, Sink sink)
        : name_(std::move(name)),
          pred_(std::move(pred)),
          sink_(std::move(sink)) {}

    void add_route(const RouteT& route, RouteStage<A>*) override {
        this->forward_add(route);
        if (pred_(route)) sink_(true, route);
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        this->forward_delete(route);
        if (pred_(route)) sink_(false, route);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        return this->lookup_upstream(net);
    }

    std::string name() const override { return name_; }

private:
    std::string name_;
    Predicate pred_;
    Sink sink_;
};

}  // namespace xrp::stage

#endif
