// RedistStage: route redistribution tap (§3, §5.2).
//
// "A key instrument of routing policy is the process of route
// redistribution, where routes from one routing protocol that match
// certain policy filters are redistributed into another routing protocol."
// The RIB, seeing everyone's routes, hosts these as dynamic stages: a
// RedistStage forwards the main stream unchanged and additionally feeds
// (add/delete) events for routes matching its predicate to a sink — the
// XRL client that asked for redistribution. The predicate must be a pure
// function of the route so adds and deletes stay symmetric.
#ifndef XRP_STAGE_REDIST_HPP
#define XRP_STAGE_REDIST_HPP

#include <functional>
#include <string>

#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class RedistStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using Predicate = std::function<bool(const RouteT&)>;
    using Sink = std::function<void(bool is_add, const RouteT&)>;
    // Batch-aware redistribution clients install this to receive one
    // framed delta per upstream batch instead of a call per route.
    using BatchSink = std::function<void(RouteBatch<A>&&)>;

    RedistStage(std::string name, Predicate pred, Sink sink)
        : name_(std::move(name)),
          pred_(std::move(pred)),
          sink_(std::move(sink)) {}

    void set_batch_sink(BatchSink sink) { batch_sink_ = std::move(sink); }

    void add_route(const RouteT& route, RouteStage<A>*) override {
        this->forward_add(route);
        if (pred_(route)) sink_(true, route);
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        this->forward_delete(route);
        if (pred_(route)) sink_(false, route);
    }

    // The main stream is forwarded whole; the tap is rebuilt from the
    // entries the predicate matches (a replace whose halves disagree on
    // the predicate degrades to the surviving half, mirroring what the
    // per-route unroll would have sent the sink).
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>*) override {
        RouteBatch<A> tap;
        for (const auto& e : batch.entries()) {
            switch (e.op) {
            case BatchOp::kAdd:
                if (pred_(e.route)) tap.add(e.route);
                break;
            case BatchOp::kDelete:
                if (pred_(e.route)) tap.del(e.route);
                break;
            case BatchOp::kReplace: {
                const bool old_in = pred_(e.old_route);
                const bool new_in = pred_(e.route);
                if (old_in && new_in)
                    tap.replace(e.old_route, e.route);
                else if (old_in)
                    tap.del(e.old_route);
                else if (new_in)
                    tap.add(e.route);
                break;
            }
            }
        }
        this->forward_batch(std::move(batch));
        if (tap.empty()) return;
        if (batch_sink_) {
            batch_sink_(std::move(tap));
        } else if (sink_) {
            for (const auto& e : tap.entries()) {
                switch (e.op) {
                case BatchOp::kAdd:
                    sink_(true, e.route);
                    break;
                case BatchOp::kDelete:
                    sink_(false, e.route);
                    break;
                case BatchOp::kReplace:
                    sink_(false, e.old_route);
                    sink_(true, e.route);
                    break;
                }
            }
        }
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        return this->lookup_upstream(net);
    }

    std::string name() const override { return name_; }

private:
    std::string name_;
    Predicate pred_;
    Sink sink_;
    BatchSink batch_sink_;
};

}  // namespace xrp::stage

#endif
