// FilterStage: a bank of route filters (the Peer-In / Peer-Out "Filter
// Bank" boxes of Figures 4-5).
//
// Filters are *pure deterministic functions* of the route; that is the
// whole consistency story. An add runs the filters and is forwarded
// (possibly modified) or dropped; a delete runs the *same* filters so the
// retraction matches byte-for-byte whatever the add produced; a lookup
// result from upstream is passed through the filters so rule (2) holds.
// Because nothing is stored, filter banks are free to appear anywhere in
// a pipeline.
//
// Changing the bank's filters does not retroactively fix routes already
// downstream — the owner re-pumps the origin through the pipeline (see
// OriginStage::repump and the BGP process's background refilter task).
#ifndef XRP_STAGE_FILTER_HPP
#define XRP_STAGE_FILTER_HPP

#include <functional>
#include <string>
#include <vector>

#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class FilterStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    // Returns false to drop the route; may modify attributes in place.
    // MUST be deterministic: same input route -> same outcome, always.
    using Filter = std::function<bool(RouteT&)>;

    explicit FilterStage(std::string name) : name_(std::move(name)) {}

    void add_filter(Filter f) { filters_.push_back(std::move(f)); }
    void set_filters(std::vector<Filter> fs) { filters_ = std::move(fs); }
    size_t filter_count() const { return filters_.size(); }

    void add_route(const RouteT& route, RouteStage<A>*) override {
        RouteT r = route;
        if (apply(r)) this->forward_add(r);
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        RouteT r = route;
        if (apply(r)) this->forward_delete(r);
    }

    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        auto r = this->lookup_upstream(net);
        if (!r) return std::nullopt;
        if (!apply(*r)) return std::nullopt;  // filtered: as if absent
        return r;
    }

    std::string name() const override { return name_; }

private:
    bool apply(RouteT& r) const {
        for (const Filter& f : filters_)
            if (!f(r)) return false;
        return true;
    }

    std::string name_;
    std::vector<Filter> filters_;
};

}  // namespace xrp::stage

#endif
