// CacheStage: the consistency-checking stage of §5.1.
//
// "We have developed an extra consistency checking stage for debugging
// purposes... just after the outgoing filter bank in the output pipeline
// to each peer, [it] has helped us discover many subtle bugs."
//
// It replicates the add/delete stream into its own table and flags any
// violation of the two consistency rules: a delete with no matching add,
// an add that silently replaces without a delete, or a lookup answer from
// upstream that disagrees with the stream. It forwards everything
// unchanged, so it can be plumbed anywhere. Tests plumb one after every
// composite stage; production pipelines may include it when chasing a
// suspected consistency bug.
#ifndef XRP_STAGE_CACHE_HPP
#define XRP_STAGE_CACHE_HPP

#include <string>
#include <vector>

#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class CacheStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;

    explicit CacheStage(std::string name) : name_(std::move(name)) {}

    void add_route(const RouteT& route, RouteStage<A>*) override {
        if (cache_.find(route.net) != nullptr)
            violation("add of " + route.net.str() +
                      " replaces an existing route without a delete");
        cache_.insert(route.net, route);
        this->forward_add(route);
    }

    // Consistency checks run per entry (that's the point of the stage);
    // the replicated stream goes downstream as one batch.
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        const RouteT* held = cache_.find(route.net);
        if (held == nullptr) {
            violation("delete of " + route.net.str() +
                      " with no matching add");
        } else {
            if (!(*held == route))
                violation("delete of " + route.net.str() +
                          " does not match the added route");
            cache_.erase(route.net);
        }
        this->forward_delete(route);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        // Rule (2): upstream's answer must agree with the stream we saw.
        auto up = this->lookup_upstream(net);
        const RouteT* held = cache_.find(net);
        if (held == nullptr) {
            if (up)
                const_cast<CacheStage*>(this)->violation(
                    "lookup of " + net.str() +
                    " found a route upstream that was never added");
        } else {
            if (!up || !(*up == *held))
                const_cast<CacheStage*>(this)->violation(
                    "lookup of " + net.str() +
                    " disagrees with the add/delete stream");
        }
        // Answer from our replica: it is by construction downstream-consistent.
        return held != nullptr ? std::optional<RouteT>(*held) : std::nullopt;
    }

    std::string name() const override { return name_; }

    bool consistent() const { return violations_.empty(); }
    const std::vector<std::string>& violations() const { return violations_; }
    size_t route_count() const { return cache_.size(); }

private:
    void violation(std::string what) {
        violations_.push_back(name_ + ": " + std::move(what));
    }

    std::string name_;
    net::RouteTrie<A, RouteT> cache_;
    std::vector<std::string> violations_;
};

}  // namespace xrp::stage

#endif
