// The stage interface (§5.1) — the paper's core structural idea.
//
// A routing table is not an object but a *network of stages* through which
// routes flow. Every stage implements the same three messages:
//
//   add_route    — flows downstream (toward decision/peers/FIB)
//   delete_route — flows downstream
//   lookup_route — flows upstream (toward the origin tables that store)
//
// with two consistency rules that bound what any stage must handle:
//   (1) every delete_route matches a previous add_route it saw;
//   (2) lookup_route answers agree with the add/delete stream already sent
//       downstream.
// A replacement is always expressed as delete(old) then add(new), so
// stages never need "update" logic.
//
// Stages are indifferent to their neighbours: dynamic stages (deletion,
// re-filtering) splice themselves into a live pipeline and unsplice when
// done, and no neighbour can tell (§5.1.2).
#ifndef XRP_STAGE_STAGE_HPP
#define XRP_STAGE_STAGE_HPP

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "stage/batch.hpp"
#include "stage/route.hpp"
#include "telemetry/metrics.hpp"

namespace xrp::stage {

template <class A>
class RouteStage {
public:
    using RouteT = Route<A>;
    using Net = net::IpNet<A>;

    virtual ~RouteStage() = default;

    // ---- the three messages ------------------------------------------
    virtual void add_route(const RouteT& route, RouteStage* caller) = 0;
    virtual void delete_route(const RouteT& route, RouteStage* caller) = 0;
    // Exact-prefix lookup, answered by the nearest stage that can; stages
    // that don't store pass it upstream.
    virtual std::optional<RouteT> lookup_route(const Net& net) const = 0;
    // Longest-prefix-match lookup for a host address (nexthop resolution);
    // flows upstream like lookup_route.
    virtual std::optional<RouteT> lookup_route_lpm(A addr) const {
        return upstream_ != nullptr ? upstream_->lookup_route_lpm(addr)
                                    : std::nullopt;
    }

    // ---- the bulk verb ---------------------------------------------------
    // An ordered delta of adds/deletes/replaces flowing downstream as one
    // message. The default unrolls to the legacy per-route calls, so every
    // stage works unchanged; hot stages override it to amortize dispatch,
    // lookups, telemetry and journaling. Overrides must be message-
    // preserving: processing the entries in order through the override
    // must hand downstream the same add/delete stream the unroll would
    // (replace = delete(old) then add(new)).
    virtual void push_batch(RouteBatch<A>&& batch, RouteStage* caller) {
        for (auto& e : batch.entries()) {
            switch (e.op) {
            case BatchOp::kAdd:
                add_route(e.route, caller);
                break;
            case BatchOp::kDelete:
                delete_route(e.route, caller);
                break;
            case BatchOp::kReplace:
                delete_route(e.old_route, caller);
                add_route(e.route, caller);
                break;
            }
        }
    }

    // ---- plumbing -------------------------------------------------------
    // Simple stages have one upstream and one downstream; stages with
    // fan-in/fan-out (Decision, Fanout, Merge) override what they need.
    virtual void set_downstream(RouteStage* s) { downstream_ = s; }
    virtual void set_upstream(RouteStage* s) { upstream_ = s; }
    RouteStage* downstream() const { return downstream_; }
    RouteStage* upstream() const { return upstream_; }

    // Human-readable name for debugging and the consistency checker.
    virtual std::string name() const = 0;

protected:
    void forward_add(const RouteT& r) {
        if (collect_ != nullptr) {
            collect_->add(r);
            return;
        }
        stage_metrics().adds->inc();
        if (downstream_ != nullptr) downstream_->add_route(r, this);
    }
    void forward_delete(const RouteT& r) {
        if (collect_ != nullptr) {
            collect_->del(r);
            return;
        }
        stage_metrics().deletes->inc();
        if (downstream_ != nullptr) downstream_->delete_route(r, this);
    }
    // The workhorse behind most push_batch overrides: runs the batch
    // through this stage's own per-route handlers (the base unroll calls
    // the virtual add_route/delete_route) with forward_add/forward_delete
    // redirected into one output batch, then hands that batch downstream
    // as a single message. Per-route *processing* is untouched — semantics
    // stay pinned to the unroll by construction — but the downstream
    // pipeline traversal (virtual dispatch, telemetry, journaling per
    // message) collapses to once per batch, which is what dominates at
    // million-route scale.
    void collect_and_forward(RouteBatch<A>&& batch, RouteStage* caller) {
        RouteBatch<A> out;
        out.reserve(batch.size());
        collect_ = &out;
        RouteStage<A>::push_batch(std::move(batch), caller);
        collect_ = nullptr;
        forward_batch(std::move(out));
    }
    std::optional<RouteT> lookup_upstream(const Net& net) const {
        stage_metrics().lookups->inc();
        return upstream_ != nullptr ? upstream_->lookup_route(net)
                                    : std::nullopt;
    }
    // Forwards a whole batch downstream with one virtual call, bumping the
    // per-stage counters by the batch's add/delete totals so telemetry
    // stays comparable with the unrolled path.
    void forward_batch(RouteBatch<A>&& batch) {
        if (batch.empty()) return;
        stage_metrics().adds->inc(batch.add_count());
        stage_metrics().deletes->inc(batch.delete_count());
        if (downstream_ != nullptr)
            downstream_->push_batch(std::move(batch), this);
    }
    // Shared LPM-fallback arbitration: the longer prefix wins between two
    // candidate answers; `b` wins ties. DeletionStage (held vs upstream)
    // and ExtIntStage (internal vs forwarded) both reduce to this.
    static std::optional<RouteT> longer_match(std::optional<RouteT> a,
                                              std::optional<RouteT> b) {
        if (!a) return b;
        if (!b) return a;
        return b->net.prefix_len() >= a->net.prefix_len() ? std::move(b)
                                                          : std::move(a);
    }

    // Per-stage telemetry, keyed by name() and bound lazily (name() is
    // virtual and not callable from the base constructor). Stages sharing
    // a name share counters — the exposition aggregates by stage role.
    struct StageMetrics {
        telemetry::Counter* adds = nullptr;
        telemetry::Counter* deletes = nullptr;
        telemetry::Counter* lookups = nullptr;
    };
    const StageMetrics& stage_metrics() const {
        if (metrics_.adds == nullptr) {
            auto& r = telemetry::Registry::global();
            const std::string n = name();
            metrics_.adds = r.counter(
                telemetry::metric_key("stage_adds_total", {{"stage", n}}));
            metrics_.deletes = r.counter(
                telemetry::metric_key("stage_deletes_total", {{"stage", n}}));
            metrics_.lookups = r.counter(
                telemetry::metric_key("stage_lookups_total", {{"stage", n}}));
        }
        return metrics_;
    }
    // Routes-in-flight level for stages that store (origins, sinks,
    // deletion stages).
    telemetry::Gauge* routes_gauge() const {
        if (routes_gauge_ == nullptr)
            routes_gauge_ = telemetry::Registry::global().gauge(
                telemetry::metric_key("stage_routes", {{"stage", name()}}));
        return routes_gauge_;
    }

private:
    mutable StageMetrics metrics_{};
    mutable telemetry::Gauge* routes_gauge_ = nullptr;
    RouteStage* downstream_ = nullptr;
    RouteStage* upstream_ = nullptr;
    RouteBatch<A>* collect_ = nullptr;
};

// Splices `mid` into the pipeline between `up` and `down` (Figure 6).
template <class A>
void plumb_between(RouteStage<A>& up, RouteStage<A>& mid,
                   RouteStage<A>& down) {
    up.set_downstream(&mid);
    mid.set_upstream(&up);
    mid.set_downstream(&down);
    down.set_upstream(&mid);
}

// Removes `mid` from a linear pipeline, reconnecting its neighbours.
template <class A>
void unplumb(RouteStage<A>& mid) {
    RouteStage<A>* up = mid.upstream();
    RouteStage<A>* down = mid.downstream();
    if (up != nullptr) up->set_downstream(down);
    if (down != nullptr) down->set_upstream(up);
    mid.set_upstream(nullptr);
    mid.set_downstream(nullptr);
}

}  // namespace xrp::stage

#endif
