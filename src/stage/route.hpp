// The route record that flows between pipeline stages.
//
// One struct serves every protocol: the RIB cares about net, nexthop,
// metric and admin_distance; BGP additionally hangs its immutable path-
// attribute block off `attrs` and uses `source_id` to identify the
// originating peer. `tags` is the policy tag list that §8.3 describes as
// the only cross-cutting change the policy framework needed.
#ifndef XRP_STAGE_ROUTE_HPP
#define XRP_STAGE_ROUTE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ipnet.hpp"
#include "net/nexthop_set.hpp"

namespace xrp::stage {

inline constexpr uint32_t kUnresolvedMetric = 0xffffffff;

template <class A>
struct Route {
    using Addr = A;

    net::IpNet<A> net;
    A nexthop{};
    uint32_t metric = 0;
    // RIB arbitration preference; lower wins (connected=0, static=1,
    // ebgp=20, rip=120, ibgp=200 by convention).
    uint32_t admin_distance = 255;
    std::string protocol;
    // Identifies the origin within a protocol (BGP peer id, RIP instance).
    uint32_t source_id = 0;
    // IGP metric to the nexthop, filled in by the NexthopResolver stage;
    // kUnresolvedMetric until then.
    uint32_t igp_metric = kUnresolvedMetric;
    // Protocol-private immutable attributes (BGP: PathAttributes).
    std::shared_ptr<const void> attrs;
    // ECMP/weighted-multipath members. The *empty* set is the degenerate
    // single-path case: `nexthop` alone is authoritative and nothing
    // multipath-aware ever allocates. A populated set always satisfies
    // nexthop == nexthops.primary(), so stages that only understand one
    // nexthop (recursive resolution, legacy sinks) keep working on the
    // canonical member while set-aware consumers (FEA FIB, analyzer)
    // spread flows over all of them.
    net::NexthopSet<A> nexthops;
    // Policy tag list; policy filter stages read and write these.
    std::vector<std::string> tags;
    // Graceful-restart bookkeeping, maintained by OriginStage: the
    // origin's refresh generation when this route was last added or
    // re-confirmed. Deliberately excluded from operator== — a restarted
    // protocol re-advertising the identical route must compare equal so
    // the origin can refresh the stamp without churning downstream.
    uint64_t origin_stamp = 0;

    // The member view every consumer can use: the full set for multipath
    // routes, or the scalar nexthop wrapped as a 1-member set.
    net::NexthopSet<A> nexthop_set() const {
        return nexthops.empty() ? net::NexthopSet<A>::single(nexthop)
                                : nexthops;
    }

    // Canonicalises: sets of size <= 1 collapse to the degenerate scalar
    // form so a 1-member multipath route and a plain single-path route
    // compare equal everywhere (stages, graceful restart, stale sweep).
    void set_nexthops(const net::NexthopSet<A>& set) {
        if (set.size() <= 1) {
            if (!set.empty()) nexthop = set.primary();
            nexthops.clear();
        } else {
            nexthops = set;
            nexthops.intern();
            nexthop = set.primary();
        }
    }

    bool is_multipath() const { return nexthops.size() > 1; }

    bool operator==(const Route& o) const {
        return net == o.net && nexthop == o.nexthop && metric == o.metric &&
               admin_distance == o.admin_distance && protocol == o.protocol &&
               source_id == o.source_id && igp_metric == o.igp_metric &&
               attrs == o.attrs && nexthops == o.nexthops && tags == o.tags;
    }
};

using Route4 = Route<net::IPv4>;
using Route6 = Route<net::IPv6>;

}  // namespace xrp::stage

#endif
