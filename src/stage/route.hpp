// The route record that flows between pipeline stages.
//
// One struct serves every protocol: the RIB cares about net, nexthop,
// metric and admin_distance; BGP additionally hangs its immutable path-
// attribute block off `attrs` and uses `source_id` to identify the
// originating peer. `tags` is the policy tag list that §8.3 describes as
// the only cross-cutting change the policy framework needed.
#ifndef XRP_STAGE_ROUTE_HPP
#define XRP_STAGE_ROUTE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ipnet.hpp"

namespace xrp::stage {

inline constexpr uint32_t kUnresolvedMetric = 0xffffffff;

template <class A>
struct Route {
    using Addr = A;

    net::IpNet<A> net;
    A nexthop{};
    uint32_t metric = 0;
    // RIB arbitration preference; lower wins (connected=0, static=1,
    // ebgp=20, rip=120, ibgp=200 by convention).
    uint32_t admin_distance = 255;
    std::string protocol;
    // Identifies the origin within a protocol (BGP peer id, RIP instance).
    uint32_t source_id = 0;
    // IGP metric to the nexthop, filled in by the NexthopResolver stage;
    // kUnresolvedMetric until then.
    uint32_t igp_metric = kUnresolvedMetric;
    // Protocol-private immutable attributes (BGP: PathAttributes).
    std::shared_ptr<const void> attrs;
    // Policy tag list; policy filter stages read and write these.
    std::vector<std::string> tags;
    // Graceful-restart bookkeeping, maintained by OriginStage: the
    // origin's refresh generation when this route was last added or
    // re-confirmed. Deliberately excluded from operator== — a restarted
    // protocol re-advertising the identical route must compare equal so
    // the origin can refresh the stamp without churning downstream.
    uint64_t origin_stamp = 0;

    bool operator==(const Route& o) const {
        return net == o.net && nexthop == o.nexthop && metric == o.metric &&
               admin_distance == o.admin_distance && protocol == o.protocol &&
               source_id == o.source_id && igp_metric == o.igp_metric &&
               attrs == o.attrs && tags == o.tags;
    }
};

using Route4 = Route<net::IPv4>;
using Route6 = Route<net::IPv6>;

}  // namespace xrp::stage

#endif
