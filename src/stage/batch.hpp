// RouteBatch: the bulk/delta unit of the batched stage API.
//
// The paper's three-message API moves one route per virtual call; at
// backbone scale (1M+ routes with churn) per-route dispatch, journaling
// and per-route XRL pushes dominate the table-download path. A
// RouteBatch is an *ordered* list of add/delete/replace entries that
// flows through the pipeline as one message (`RouteStage::push_batch`).
// Ordering is load-bearing: replaying the entries one by one through
// the legacy per-route calls must be semantically identical to any
// native batch handling, and the default push_batch does exactly that
// unroll — so every stage keeps working unchanged while hot stages
// override it to amortize work.
//
// A replace entry is the batch-level spelling of the paper's
// delete(old)+add(new) pair: `old_route` is what downstream currently
// holds, `route` is the replacement. Stages that unroll emit both
// messages; stages that handle batches natively may forward the pair
// inside one downstream batch but must never drop either half (the §5.1
// consistency rules still bind per entry).
//
// `coalesce()` folds multiple entries for the same prefix into the last
// surviving operation. That changes the *message* stream (fewer
// transients), so it is only used at net-effect-safe boundaries — wire
// senders framing a batch for a peer process — never inside a stage
// that a consistency checker might be watching.
#ifndef XRP_STAGE_BATCH_HPP
#define XRP_STAGE_BATCH_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "stage/route.hpp"

namespace xrp::stage {

enum class BatchOp : uint8_t { kAdd, kDelete, kReplace };

template <class A>
struct BatchEntry {
    BatchOp op = BatchOp::kAdd;
    // kAdd/kReplace: the route being installed. kDelete: the route being
    // withdrawn (a copy of what downstream holds, per consistency rule 1).
    Route<A> route;
    // kReplace only: the previously-installed route the replacement
    // supersedes.
    Route<A> old_route;
};

template <class A>
class RouteBatch {
public:
    using RouteT = Route<A>;
    using EntryT = BatchEntry<A>;

    RouteBatch() = default;

    void reserve(size_t n) { entries_.reserve(n); }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    void add(RouteT route) {
        entries_.push_back(EntryT{BatchOp::kAdd, std::move(route), {}});
    }
    void del(RouteT route) {
        entries_.push_back(EntryT{BatchOp::kDelete, std::move(route), {}});
    }
    void replace(RouteT old_route, RouteT new_route) {
        entries_.push_back(
            EntryT{BatchOp::kReplace, std::move(new_route),
                   std::move(old_route)});
    }
    void push(EntryT e) { entries_.push_back(std::move(e)); }

    std::vector<EntryT>& entries() { return entries_; }
    const std::vector<EntryT>& entries() const { return entries_; }

    // Counts used by stages that amortize telemetry: adds counts kAdd +
    // kReplace (each emits one add downstream), deletes counts kDelete +
    // kReplace.
    size_t add_count() const {
        size_t n = 0;
        for (const auto& e : entries_)
            if (e.op != BatchOp::kDelete) ++n;
        return n;
    }
    size_t delete_count() const {
        size_t n = 0;
        for (const auto& e : entries_)
            if (e.op != BatchOp::kAdd) ++n;
        return n;
    }

    // Folds churn within the batch to the net effect per prefix:
    //   add then delete            -> nothing
    //   delete then add            -> replace(old=deleted, new=added)
    //   add/replace then replace   -> one add/replace with the final route
    //   delete after replace       -> delete of the original old route
    // Relative order of surviving prefixes follows each prefix's *first*
    // appearance, keeping the stream deterministic. Only safe where the
    // consumer cares about final state, not the transient message list
    // (wire framing, FIB install).
    void coalesce() {
        if (entries_.size() < 2) return;
        // Per-prefix folded state: the route downstream held before the
        // batch (if any was deleted/replaced) and the route it should
        // hold after (if any survives).
        struct Folded {
            std::optional<RouteT> before;  // first delete/replace old seen
            std::optional<RouteT> after;   // last surviving add
            bool saw_delete = false;
            size_t first_index = 0;
        };
        std::map<net::IpNet<A>, Folded> by_net;
        std::vector<const net::IpNet<A>*> order;
        for (size_t i = 0; i < entries_.size(); ++i) {
            const EntryT& e = entries_[i];
            auto [it, fresh] = by_net.try_emplace(e.route.net);
            Folded& f = it->second;
            if (fresh) {
                f.first_index = i;
                order.push_back(&it->first);
            }
            switch (e.op) {
            case BatchOp::kAdd:
                f.after = e.route;
                break;
            case BatchOp::kDelete:
                if (!f.before && !f.after) f.before = e.route;
                f.after.reset();
                f.saw_delete = true;
                break;
            case BatchOp::kReplace:
                if (!f.before && !f.after) f.before = e.old_route;
                f.after = e.route;
                f.saw_delete = true;
                break;
            }
        }
        std::vector<EntryT> folded;
        folded.reserve(by_net.size());
        for (const auto* netp : order) {
            Folded& f = by_net.find(*netp)->second;
            if (f.before && f.after) {
                folded.push_back(EntryT{BatchOp::kReplace, std::move(*f.after),
                                        std::move(*f.before)});
            } else if (f.after) {
                folded.push_back(
                    EntryT{BatchOp::kAdd, std::move(*f.after), {}});
            } else if (f.before && f.saw_delete) {
                folded.push_back(
                    EntryT{BatchOp::kDelete, std::move(*f.before), {}});
            }
            // else: add+delete within the batch — downstream never sees it.
        }
        entries_ = std::move(folded);
    }

    // ---- wire framing ---------------------------------------------------
    // One entry per line; fields space-separated (NexthopSet text uses
    // '|' and '@', never spaces):
    //   a <net> <nexthops> <metric>
    //   d <net> <nexthops> <metric>
    //   r <net> <nexthops> <metric> <old_nexthops> <old_metric>
    // Protocol/admin-distance/source are batch-level context carried by
    // the XRL verb, not per entry — a batch always comes from one origin.
    std::string encode() const {
        std::ostringstream os;
        for (const auto& e : entries_) {
            switch (e.op) {
            case BatchOp::kAdd:
                os << 'a';
                break;
            case BatchOp::kDelete:
                os << 'd';
                break;
            case BatchOp::kReplace:
                os << 'r';
                break;
            }
            os << ' ' << e.route.net.str() << ' '
               << e.route.nexthop_set().str() << ' ' << e.route.metric;
            if (e.op == BatchOp::kReplace)
                os << ' ' << e.old_route.nexthop_set().str() << ' '
                   << e.old_route.metric;
            os << '\n';
        }
        return os.str();
    }

    static std::optional<RouteBatch> decode(const std::string& text) {
        RouteBatch batch;
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line)) {
            if (line.empty()) continue;
            std::istringstream ls(line);
            std::string op, net_s, nh_s;
            uint32_t metric = 0;
            if (!(ls >> op >> net_s >> nh_s >> metric)) return std::nullopt;
            auto net = net::IpNet<A>::parse(net_s);
            auto nhs = net::NexthopSet<A>::parse(nh_s);
            if (!net || !nhs) return std::nullopt;
            RouteT r;
            r.net = *net;
            r.metric = metric;
            r.set_nexthops(*nhs);
            if (op == "a") {
                batch.add(std::move(r));
            } else if (op == "d") {
                batch.del(std::move(r));
            } else if (op == "r") {
                std::string old_nh_s;
                uint32_t old_metric = 0;
                if (!(ls >> old_nh_s >> old_metric)) return std::nullopt;
                auto old_nhs = net::NexthopSet<A>::parse(old_nh_s);
                if (!old_nhs) return std::nullopt;
                RouteT old_r;
                old_r.net = *net;
                old_r.metric = old_metric;
                old_r.set_nexthops(*old_nhs);
                batch.replace(std::move(old_r), std::move(r));
            } else {
                return std::nullopt;
            }
        }
        return batch;
    }

private:
    std::vector<EntryT> entries_;
};

using RouteBatch4 = RouteBatch<net::IPv4>;
using RouteBatch6 = RouteBatch<net::IPv6>;

}  // namespace xrp::stage

#endif
