// FanoutStage: duplicates the winning route stream to n output branches
// (§5.1.1) — one per peer, plus the RIB branch.
//
// The subtlety is slow peers: routes can arrive faster than some peer
// drains them, and queueing per-branch after specialization would
// duplicate every change n times. The paper's answer, implemented here:
// a *single* change queue before specialization, with n readers holding
// positions into it. Fast, ready readers are driven synchronously to the
// queue tail; a branch that signals backpressure keeps its position and
// is resumed when it reports ready again. Entries consumed by every
// reader are garbage-collected from the front.
#ifndef XRP_STAGE_FANOUT_HPP
#define XRP_STAGE_FANOUT_HPP

#include <deque>
#include <map>
#include <string>

#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class FanoutStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;

    explicit FanoutStage(std::string name) : name_(std::move(name)) {}

    // ---- branch management ---------------------------------------------
    // Adds an output branch; the fanout does NOT own it. Returns an id.
    int add_branch(RouteStage<A>* branch) {
        int id = next_id_++;
        Reader r;
        r.stage = branch;
        r.next = base_ + queue_.size();  // joins at the live tail
        readers_.emplace(id, r);
        branch->set_upstream(this);
        return id;
    }

    void remove_branch(int id) {
        readers_.erase(id);
        gc();
    }

    // Backpressure: a branch that cannot accept more calls
    // set_branch_ready(id,false); when its sink drains it calls
    // set_branch_ready(id,true) and consumption resumes from its position.
    void set_branch_ready(int id, bool ready) {
        auto it = readers_.find(id);
        if (it == readers_.end()) return;
        it->second.ready = ready;
        if (ready) {
            drain(it->second);
            gc();
        }
    }

    size_t queue_size() const { return queue_.size(); }
    size_t branch_count() const { return readers_.size(); }
    // How far the slowest reader lags the tail (0 = all caught up).
    size_t max_lag() const {
        size_t lag = 0;
        for (const auto& [id, r] : readers_)
            lag = std::max(lag, base_ + queue_.size() - r.next);
        return lag;
    }

    // ---- stage interface --------------------------------------------------
    void add_route(const RouteT& route, RouteStage<A>*) override {
        enqueue({true, route});
    }
    void delete_route(const RouteT& route, RouteStage<A>*) override {
        enqueue({false, route});
    }
    // A batch lands in the queue as its unrolled item stream (so reader
    // positions, lag accounting and gc are untouched), then every ready
    // reader is driven once — drain() re-chunks whatever span a reader
    // can consume into a single push_batch to its branch.
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>*) override {
        for (auto& e : batch.entries()) {
            switch (e.op) {
            case BatchOp::kAdd:
                queue_.push_back({true, std::move(e.route)});
                break;
            case BatchOp::kDelete:
                queue_.push_back({false, std::move(e.route)});
                break;
            case BatchOp::kReplace:
                queue_.push_back({false, std::move(e.old_route)});
                queue_.push_back({true, std::move(e.route)});
                break;
            }
        }
        for (auto& [id, r] : readers_) drain(r);
        gc();
    }
    std::optional<RouteT> lookup_route(const Net& net) const override {
        return this->lookup_upstream(net);
    }
    std::string name() const override { return name_; }

private:
    struct Item {
        bool is_add;
        RouteT route;
    };
    struct Reader {
        RouteStage<A>* stage = nullptr;
        size_t next = 0;  // absolute index (base_ + offset)
        bool ready = true;
        bool draining = false;  // re-entrancy guard
    };

    void enqueue(Item item) {
        queue_.push_back(std::move(item));
        for (auto& [id, r] : readers_) drain(r);
        gc();
    }

    void drain(Reader& r) {
        if (r.draining) return;  // downstream called back into us
        r.draining = true;
        while (r.ready && r.next < base_ + queue_.size()) {
            const size_t avail = base_ + queue_.size() - r.next;
            if (avail == 1) {
                const Item& item = queue_[r.next - base_];
                ++r.next;
                if (item.is_add)
                    r.stage->add_route(item.route, this);
                else
                    r.stage->delete_route(item.route, this);
                continue;
            }
            // A lagging or batch-fed reader gets its whole available span
            // as one message. The span is snapshotted before calling out:
            // the branch may re-enter (enqueue more, flip readiness), and
            // the loop re-checks both on return.
            RouteBatch<A> chunk;
            chunk.reserve(avail);
            for (size_t i = 0; i < avail; ++i) {
                const Item& item = queue_[r.next - base_ + i];
                if (item.is_add)
                    chunk.add(item.route);
                else
                    chunk.del(item.route);
            }
            r.next += avail;
            r.stage->push_batch(std::move(chunk), this);
        }
        r.draining = false;
    }

    void gc() {
        if (readers_.empty()) {
            base_ += queue_.size();
            queue_.clear();
            return;
        }
        size_t min_next = SIZE_MAX;
        for (const auto& [id, r] : readers_)
            min_next = std::min(min_next, r.next);
        while (base_ < min_next && !queue_.empty()) {
            queue_.pop_front();
            ++base_;
        }
    }

    std::string name_;
    std::deque<Item> queue_;
    size_t base_ = 0;  // absolute index of queue_.front()
    std::map<int, Reader> readers_;
    int next_id_ = 1;
};

}  // namespace xrp::stage

#endif
