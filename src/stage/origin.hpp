// OriginStage: the only stage that stores routes (§5.1: "we only store
// the original versions of routes, in the Peer In stages"). Everything
// downstream is computed; lookups bottom out here.
//
// A replacement add is turned into delete(old) + add(new) so downstream
// stages never see updates. detach_table() supports the dynamic deletion
// stage (§5.1.2): when a peer dies, the whole table is handed to a
// DeletionStage and the origin starts over empty, instantly ready for the
// peering to come back.
//
// Graceful restart rides on generation stamps: begin_refresh() bumps the
// origin's generation, instantly marking every stored route stale without
// touching it. A re-advertisement identical to the stored route (stamps
// excluded from comparison) merely refreshes the stamp — zero downstream
// traffic, which is precisely the no-blackhole property restart needs.
// Routes still stale once resync completes are reaped incrementally by a
// StaleSweeperStage walking this live table.
#ifndef XRP_STAGE_ORIGIN_HPP
#define XRP_STAGE_ORIGIN_HPP

#include <memory>
#include <string>

#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class OriginStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using Table = net::RouteTrie<A, RouteT>;

    explicit OriginStage(std::string name)
        : name_(std::move(name)), table_(std::make_unique<Table>()) {}

    // Origins are heads of pipeline: add/delete arrive via these entry
    // points from the protocol machinery, not from an upstream stage.
    void add_route(const RouteT& route, RouteStage<A>* = nullptr) override {
        if (RouteT* old = table_->find(route.net)) {
            if (*old == route) {
                // Identical re-advertisement (typically a protocol
                // resyncing after restart): refresh the stamp in place and
                // say nothing downstream — forwarding never wavers.
                if (old->origin_stamp < generation_ && stale_count_ > 0)
                    --stale_count_;
                old->origin_stamp = generation_;
                return;
            }
            RouteT removed = *old;
            if (removed.origin_stamp < generation_ && stale_count_ > 0)
                --stale_count_;
            table_->erase(route.net);
            this->forward_delete(removed);
        }
        RouteT stamped = route;
        stamped.origin_stamp = generation_;
        table_->insert(stamped.net, stamped);
        this->routes_gauge()->set(static_cast<int64_t>(table_->size()));
        this->forward_add(stamped);
    }

    void delete_route(const RouteT& route, RouteStage<A>* = nullptr) override {
        const RouteT* old = table_->find(route.net);
        if (old == nullptr) return;  // unknown prefix: nothing to retract
        RouteT removed = *old;
        if (removed.origin_stamp < generation_ && stale_count_ > 0)
            --stale_count_;
        table_->erase(route.net);
        this->routes_gauge()->set(static_cast<int64_t>(table_->size()));
        this->forward_delete(removed);
    }

    // Bulk entry point: identical per-route storage logic (stamping,
    // replacement-as-delete+add, refresh-in-place), but downstream sees
    // one batch instead of one virtual call per message.
    void push_batch(RouteBatch<A>&& batch,
                    RouteStage<A>* caller = nullptr) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        this->stage_metrics().lookups->inc();
        const RouteT* r = table_->find(net);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        const RouteT* r = table_->lookup(addr);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::string name() const override { return name_; }

    size_t route_count() const { return table_->size(); }
    const Table& table() const { return *table_; }

    // Re-announcement support for policy changes (§5.1.2). A filter swap
    // must retract through the *old* bank and re-announce through the
    // *new* one, or routes the new bank rejects would linger downstream:
    //   origin.retract_all(); filter.set_filters(new); origin.announce_all();
    void retract_all() {
        table_->for_each(
            [this](const Net&, const RouteT& r) { this->forward_delete(r); });
    }
    void announce_all() {
        table_->for_each(
            [this](const Net&, const RouteT& r) { this->forward_add(r); });
    }
    void repump() {
        retract_all();
        announce_all();
    }

    // Hands the current table to the caller (for a DeletionStage) and
    // resets to empty. Downstream sees nothing yet — the deletion stage
    // emits the deletes incrementally.
    std::unique_ptr<Table> detach_table() {
        auto t = std::move(table_);
        table_ = std::make_unique<Table>();
        stale_count_ = 0;
        this->routes_gauge()->set(0);
        return t;
    }

    // ---- graceful restart (generation stamping) -----------------------
    // Marks every stored route stale in O(1): nothing moves, nothing is
    // sent downstream, the stamps just fall behind the new generation.
    // Called when the origin's protocol dies; subsequent re-adds refresh
    // stamps route by route as the restarted protocol resyncs.
    void begin_refresh() {
        ++generation_;
        stale_count_ = table_->size();
    }
    uint64_t generation() const { return generation_; }
    // Routes whose stamp predates the current generation — i.e. preserved
    // across a restart but not yet re-confirmed by the revived protocol.
    size_t stale_count() const { return stale_count_; }
    bool route_is_stale(const RouteT& r) const {
        return r.origin_stamp < generation_;
    }
    // An iterator parked in the live table, for the StaleSweeperStage.
    // Erases under it are safe (the trie defers unlinking); the sweeper
    // must be unplumbed/destroyed before this stage.
    typename Table::iterator sweep_begin() { return table_->begin(); }

private:
    std::string name_;
    std::unique_ptr<Table> table_;
    uint64_t generation_ = 0;
    size_t stale_count_ = 0;
};

}  // namespace xrp::stage

#endif
