// OriginStage: the only stage that stores routes (§5.1: "we only store
// the original versions of routes, in the Peer In stages"). Everything
// downstream is computed; lookups bottom out here.
//
// A replacement add is turned into delete(old) + add(new) so downstream
// stages never see updates. detach_table() supports the dynamic deletion
// stage (§5.1.2): when a peer dies, the whole table is handed to a
// DeletionStage and the origin starts over empty, instantly ready for the
// peering to come back.
#ifndef XRP_STAGE_ORIGIN_HPP
#define XRP_STAGE_ORIGIN_HPP

#include <memory>
#include <string>

#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class OriginStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using Table = net::RouteTrie<A, RouteT>;

    explicit OriginStage(std::string name)
        : name_(std::move(name)), table_(std::make_unique<Table>()) {}

    // Origins are heads of pipeline: add/delete arrive via these entry
    // points from the protocol machinery, not from an upstream stage.
    void add_route(const RouteT& route, RouteStage<A>* = nullptr) override {
        if (const RouteT* old = table_->find(route.net)) {
            RouteT removed = *old;
            table_->erase(route.net);
            this->forward_delete(removed);
        }
        table_->insert(route.net, route);
        this->routes_gauge()->set(static_cast<int64_t>(table_->size()));
        this->forward_add(route);
    }

    void delete_route(const RouteT& route, RouteStage<A>* = nullptr) override {
        const RouteT* old = table_->find(route.net);
        if (old == nullptr) return;  // unknown prefix: nothing to retract
        RouteT removed = *old;
        table_->erase(route.net);
        this->routes_gauge()->set(static_cast<int64_t>(table_->size()));
        this->forward_delete(removed);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        this->stage_metrics().lookups->inc();
        const RouteT* r = table_->find(net);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        const RouteT* r = table_->lookup(addr);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::string name() const override { return name_; }

    size_t route_count() const { return table_->size(); }
    const Table& table() const { return *table_; }

    // Re-announcement support for policy changes (§5.1.2). A filter swap
    // must retract through the *old* bank and re-announce through the
    // *new* one, or routes the new bank rejects would linger downstream:
    //   origin.retract_all(); filter.set_filters(new); origin.announce_all();
    void retract_all() {
        table_->for_each(
            [this](const Net&, const RouteT& r) { this->forward_delete(r); });
    }
    void announce_all() {
        table_->for_each(
            [this](const Net&, const RouteT& r) { this->forward_add(r); });
    }
    void repump() {
        retract_all();
        announce_all();
    }

    // Hands the current table to the caller (for a DeletionStage) and
    // resets to empty. Downstream sees nothing yet — the deletion stage
    // emits the deletes incrementally.
    std::unique_ptr<Table> detach_table() {
        auto t = std::move(table_);
        table_ = std::make_unique<Table>();
        return t;
    }

private:
    std::string name_;
    std::unique_ptr<Table> table_;
};

}  // namespace xrp::stage

#endif
