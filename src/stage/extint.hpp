// ExtIntStage: composes external (EGP) routes with internal (IGP) routes
// (§5.2, Figure 7).
//
// Beyond plain merging, this is where recursive nexthop resolution lives:
// an external (BGP-learned) route names a nexthop router that may be
// multiple IGP hops away. The route is only usable — only forwarded
// downstream — while an internal route covers its nexthop. The stage
//   - annotates forwarded external routes with the resolving route's
//     metric (igp_metric), which BGP's hot-potato decision consumes;
//   - parks unresolvable external routes until an internal route appears;
//   - re-resolves dependents when internal routes come and go, including
//     switching to a more specific internal route when one shows up.
// Unlike filter/merge stages this one is stateful: correctness of deletes
// requires remembering exactly which resolved version went downstream.
#ifndef XRP_STAGE_EXTINT_HPP
#define XRP_STAGE_EXTINT_HPP

#include <map>
#include <string>
#include <vector>

#include "net/trie.hpp"
#include "stage/stage.hpp"
#include "stage/merge.hpp"

namespace xrp::stage {

template <class A>
class ExtIntStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;

    explicit ExtIntStage(std::string name) : name_(std::move(name)) {}

    void set_parents(RouteStage<A>* external, RouteStage<A>* internal) {
        ext_ = external;
        int_ = internal;
        external->set_downstream(this);
        internal->set_downstream(this);
    }

    void add_route(const RouteT& route, RouteStage<A>* caller) override {
        if (caller == int_) {
            add_internal(route);
        } else {
            add_external(route);
        }
    }

    void delete_route(const RouteT& route, RouteStage<A>* caller) override {
        if (caller == int_) {
            delete_internal(route);
        } else {
            delete_external(route);
        }
    }

    // Resolution state updates run per entry exactly as before; only the
    // emitted resolved/retracted stream is batched downstream.
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        // Downstream truth: whatever we forwarded for this prefix.
        if (const RouteT* f = forwarded_.find(net))
            return *f;
        // Internal routes pass through unmodified.
        return int_ != nullptr ? int_->lookup_route(net) : std::nullopt;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        const RouteT* f = forwarded_.lookup(addr, nullptr);
        auto i = int_ != nullptr ? int_->lookup_route_lpm(addr) : std::nullopt;
        // Ties go to the forwarded external answer (it carries igp_metric).
        return this->longer_match(
            std::move(i),
            f != nullptr ? std::optional<RouteT>(*f) : std::nullopt);
    }

    std::string name() const override { return name_; }

    size_t unresolved_count() const { return unresolved_.size(); }

private:
    // ---- external side -----------------------------------------------
    void add_external(const RouteT& route) {
        auto resolver = int_->lookup_route_lpm(route.nexthop);
        if (!resolver) {
            unresolved_.insert(route.net, route);
            return;
        }
        // Same-prefix conflict with an internal route: preference decides
        // whether the external route goes downstream or waits shadowed.
        auto i_same = int_->lookup_route(route.net);
        if (i_same && route_preferred(*i_same, route)) {
            shadowed_.insert(route.net, route);
            return;
        }
        if (i_same) this->forward_delete(*i_same);
        emit_resolved(route, *resolver);
    }

    void delete_external(const RouteT& route) {
        if (unresolved_.erase(route.net)) return;  // never forwarded
        if (shadowed_.erase(route.net)) return;    // never forwarded
        bool was_forwarded = forwarded_.find(route.net) != nullptr;
        retract(route.net);
        if (was_forwarded) {
            // Promote a same-prefix internal route the external had beaten.
            auto i = int_->lookup_route(route.net);
            if (i) this->forward_add(*i);
        }
    }

    // ---- internal side -----------------------------------------------
    void add_internal(const RouteT& route) {
        // Same-prefix conflict with a forwarded external route: settle by
        // the standard preference order.
        if (const RouteT* f = forwarded_.find(route.net)) {
            if (route_preferred(*f, route)) {
                // External keeps winning; the internal route simply is not
                // forwarded (it can still resolve nexthops, below).
                reresolve_after_internal_add(route);
                return;
            }
            // Internal now wins: demote the external to shadowed.
            RouteT original = *f;
            original.igp_metric = kUnresolvedMetric;
            retract(route.net);
            shadowed_.insert(original.net, original);
        }
        this->forward_add(route);
        reresolve_after_internal_add(route);
    }

    void delete_internal(const RouteT& route) {
        if (forwarded_.find(route.net) == nullptr) {
            this->forward_delete(route);
        }
        // else: the internal route was shadowed by an external winner and
        // was never downstream — drop the delete.

        // An external route this internal one had beaten can now surface.
        if (const RouteT* s = shadowed_.find(route.net)) {
            RouteT ext = *s;
            shadowed_.erase(route.net);
            auto resolver = int_->lookup_route_lpm(ext.nexthop);
            if (resolver)
                emit_resolved(ext, *resolver);
            else
                unresolved_.insert(ext.net, ext);
        }

        // Dependents resolved through this prefix must re-resolve.
        std::vector<Net> affected;
        for (const auto& [ext_net, res_net] : resolving_)
            if (res_net == route.net) affected.push_back(ext_net);
        for (const Net& ext_net : affected) {
            const RouteT* f = forwarded_.find(ext_net);
            if (f == nullptr) continue;
            RouteT original = *f;
            original.igp_metric = kUnresolvedMetric;
            retract(ext_net);
            auto resolver = int_->lookup_route_lpm(original.nexthop);
            if (resolver) {
                emit_resolved(original, *resolver);
            } else {
                unresolved_.insert(original.net, original);
            }
        }
    }

    void reresolve_after_internal_add(const RouteT& internal) {
        // Parked routes whose nexthop the new internal route covers.
        std::vector<RouteT> newly_resolved;
        unresolved_.for_each([&](const Net&, const RouteT& r) {
            if (internal.net.contains(r.nexthop)) newly_resolved.push_back(r);
        });
        for (const RouteT& r : newly_resolved) {
            unresolved_.erase(r.net);
            // Resolve via LPM (the new route may not even be the best).
            auto resolver = int_->lookup_route_lpm(r.nexthop);
            if (resolver)
                emit_resolved(r, *resolver);
            else
                unresolved_.insert(r.net, r);
        }
        // Forwarded routes that should switch to this more specific cover.
        std::vector<Net> to_upgrade;
        for (const auto& [ext_net, res_net] : resolving_) {
            if (internal.net.contains(res_net)) continue;  // already better
            if (!res_net.contains(internal.net)) continue;
            const RouteT* f = forwarded_.find(ext_net);
            if (f != nullptr && internal.net.contains(f->nexthop))
                to_upgrade.push_back(ext_net);
        }
        for (const Net& ext_net : to_upgrade) {
            RouteT original = *forwarded_.find(ext_net);
            original.igp_metric = kUnresolvedMetric;
            retract(ext_net);
            auto resolver = int_->lookup_route_lpm(original.nexthop);
            if (resolver) emit_resolved(original, *resolver);
        }
    }

    void emit_resolved(const RouteT& route, const RouteT& resolver) {
        RouteT r = route;
        r.igp_metric = resolver.metric;
        forwarded_.insert(r.net, r);
        resolving_[r.net] = resolver.net;
        this->forward_add(r);
    }

    void retract(const Net& ext_net) {
        const RouteT* f = forwarded_.find(ext_net);
        if (f == nullptr) return;
        RouteT old = *f;
        forwarded_.erase(ext_net);
        resolving_.erase(ext_net);
        this->forward_delete(old);
    }

    std::string name_;
    RouteStage<A>* ext_ = nullptr;
    RouteStage<A>* int_ = nullptr;
    // External routes forwarded downstream, as forwarded (resolved).
    net::RouteTrie<A, RouteT> forwarded_;
    // External routes waiting for a usable internal cover.
    net::RouteTrie<A, RouteT> unresolved_;
    // External routes beaten by a same-prefix internal route.
    net::RouteTrie<A, RouteT> shadowed_;
    // external net -> internal net it resolved through.
    std::map<Net, Net> resolving_;
};

}  // namespace xrp::stage

#endif
