// RegisterStage: interest registration in RIB routes (§5.2.1, Figure 8).
//
// BGP wants to know how specific nexthop *addresses* are routed (for
// hot-potato decisions); PIM-SM wants the reverse path to sources. Rather
// than stream every route to every client, or answer a query per packet,
// the RIB answers an address query with the matching route *plus the
// largest enclosing subnet for which that answer holds* — computed so it
// is never overlayed by a more specific route. The client caches the
// answer for the whole subnet. When any route change touches a registered
// subnet, the stage sends that client a "cache invalidated" message and
// drops the registration; the client re-queries on demand.
//
// Because no two validity subnets ever overlap (the paper notes this),
// clients can use balanced trees for their caches; on our side a trie of
// registrations makes the affected-set computation O(path + hits).
#ifndef XRP_STAGE_REGISTER_HPP
#define XRP_STAGE_REGISTER_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class RegisterStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    // Invalidation callback: the registered validity subnet whose answer
    // is no longer trustworthy.
    using InvalidateCallback = std::function<void(const Net& valid_subnet)>;

    explicit RegisterStage(std::string name) : name_(std::move(name)) {}

    struct Answer {
        bool has_route = false;
        RouteT route{};     // valid when has_route
        Net valid_subnet{};  // cacheable range for this answer
    };

    // Registers `client`'s interest in how `addr` is routed. The client
    // may cache the answer for every address in `valid_subnet` until its
    // callback fires for that subnet.
    Answer register_interest(A addr, uint64_t client_id,
                             InvalidateCallback cb) {
        auto r = replica_.register_lookup(addr);
        Answer ans;
        ans.valid_subnet = r.valid_subnet;
        if (r.route != nullptr) {
            ans.has_route = true;
            ans.route = *r.route;
        }
        Registration* reg = registrations_.find(r.valid_subnet);
        if (reg == nullptr) {
            registrations_.insert(r.valid_subnet, Registration{});
            reg = registrations_.find(r.valid_subnet);
        }
        reg->clients[client_id] = std::move(cb);
        return ans;
    }

    void unregister_interest(const Net& valid_subnet, uint64_t client_id) {
        Registration* reg = registrations_.find(valid_subnet);
        if (reg == nullptr) return;
        reg->clients.erase(client_id);
        if (reg->clients.empty()) registrations_.erase(valid_subnet);
    }

    size_t registration_count() const { return registrations_.size(); }

    // ---- stage interface ------------------------------------------------
    void add_route(const RouteT& route, RouteStage<A>*) override {
        replica_.insert(route.net, route);
        this->forward_add(route);
        invalidate_overlapping(route.net);
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        replica_.erase(route.net);
        this->forward_delete(route);
        invalidate_overlapping(route.net);
    }

    // Replica maintenance and interest invalidation stay per entry (both
    // depend on each route's prefix); the forwarded stream is batched.
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        const RouteT* r = replica_.find(net);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        const RouteT* r = replica_.lookup(addr);
        return r != nullptr ? std::optional<RouteT>(*r) : std::nullopt;
    }

    std::string name() const override { return name_; }

private:
    struct Registration {
        std::map<uint64_t, InvalidateCallback> clients;
    };

    void invalidate_overlapping(const Net& changed) {
        // A change to `changed` affects a registration when the two
        // overlap: either the registration's subnet contains the changed
        // prefix, or vice versa.
        std::vector<Net> affected;
        // Registrations at or below the changed prefix.
        registrations_.for_each_within(
            changed,
            [&](const Net& n, const Registration&) { affected.push_back(n); });
        // Registrations strictly above it (covering subnets). Since
        // registrations never overlap each other, walking less-specifics
        // finds at most one chain.
        Net cover;
        if (registrations_.find_less_specific(changed, &cover) != nullptr)
            affected.push_back(cover);

        for (const Net& n : affected) {
            Registration* reg = registrations_.find(n);
            if (reg == nullptr) continue;
            auto clients = std::move(reg->clients);
            registrations_.erase(n);
            for (auto& [id, cb] : clients) cb(n);
        }
    }

    std::string name_;
    // Replica of the winning-route stream passing through this stage;
    // answers register queries without bothering upstream.
    net::RouteTrie<A, RouteT> replica_;
    net::RouteTrie<A, Registration> registrations_;
};

}  // namespace xrp::stage

#endif
