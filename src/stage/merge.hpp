// MergeStage: the RIB's distributed decision-making (§5.2).
//
// Where BGP needs a single Decision stage that sees every alternative,
// the RIB "makes its decision purely on the basis of a single
// administrative distance metric. This single metric allows more
// distributed decision-making": pairwise merges, each picking between two
// parents. Merge stages are stateless — on every add/delete they consult
// the *other* parent via lookup_route and emit exactly the delete/add
// pair that keeps downstream seeing only winners.
#ifndef XRP_STAGE_MERGE_HPP
#define XRP_STAGE_MERGE_HPP

#include <string>

#include "stage/stage.hpp"

namespace xrp::stage {

// Deterministic total preference order used by merge decisions: lower
// admin distance wins, then lower metric, then protocol name, then lower
// nexthop — the tail exists only to make ties stable.
template <class A>
bool route_preferred(const Route<A>& x, const Route<A>& y) {
    if (x.admin_distance != y.admin_distance)
        return x.admin_distance < y.admin_distance;
    if (x.metric != y.metric) return x.metric < y.metric;
    if (x.protocol != y.protocol) return x.protocol < y.protocol;
    return x.nexthop < y.nexthop;
}

template <class A>
class MergeStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;

    explicit MergeStage(std::string name) : name_(std::move(name)) {}

    // A merge has exactly two parents; wire them with set_parents.
    void set_parents(RouteStage<A>* a, RouteStage<A>* b) {
        a_ = a;
        b_ = b;
        a->set_downstream(this);
        b->set_downstream(this);
    }

    // Dynamic-stage splicing (§5.1.2) on a parent edge. plumb_between /
    // unplumb announce the new upstream via set_upstream; a merge must
    // translate that into adopting the stage as the matching parent, or
    // other_parent() would keep consulting the stage that was spliced
    // around. Splice-in: the new stage's upstream is a current parent.
    // Splice-out: a current parent's upstream is the stage handed to us.
    void set_upstream(RouteStage<A>* s) override {
        if (s == nullptr || s == a_ || s == b_) return;
        if (s->upstream() != nullptr && s->upstream() == a_) {
            a_ = s;  // splice-in on edge a
        } else if (s->upstream() != nullptr && s->upstream() == b_) {
            b_ = s;  // splice-in on edge b
        } else if (a_ != nullptr && a_->upstream() == s) {
            a_ = s;  // splice-out on edge a
        } else if (b_ != nullptr && b_->upstream() == s) {
            b_ = s;  // splice-out on edge b
        } else {
            assert(false && "MergeStage: set_upstream is not a parent splice");
        }
    }

    void add_route(const RouteT& route, RouteStage<A>* caller) override {
        auto other = other_parent(caller)->lookup_route(route.net);
        if (!other) {
            this->forward_add(route);
            return;
        }
        if (route_preferred(*other, route)) return;  // new route loses: drop
        // New route beats the incumbent downstream currently holds.
        this->forward_delete(*other);
        this->forward_add(route);
    }

    void delete_route(const RouteT& route, RouteStage<A>* caller) override {
        auto other = other_parent(caller)->lookup_route(route.net);
        if (other && route_preferred(*other, route))
            return;  // the deleted route had lost: downstream never saw it
        this->forward_delete(route);
        if (other) this->forward_add(*other);  // promote the former loser
    }

    // The per-entry other-parent lookups are the merge's essential work
    // and stay; the collector folds the winner/loser message stream into
    // one downstream batch.
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        auto ra = a_ != nullptr ? a_->lookup_route(net) : std::nullopt;
        auto rb = b_ != nullptr ? b_->lookup_route(net) : std::nullopt;
        if (!ra) return rb;
        if (!rb) return ra;
        return route_preferred(*ra, *rb) ? ra : rb;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        auto ra = a_ != nullptr ? a_->lookup_route_lpm(addr) : std::nullopt;
        auto rb = b_ != nullptr ? b_->lookup_route_lpm(addr) : std::nullopt;
        if (!ra) return rb;
        if (!rb) return ra;
        // More specific match wins regardless of preference; equal length
        // falls back to preference order (matches downstream stream).
        if (ra->net.prefix_len() != rb->net.prefix_len())
            return ra->net.prefix_len() > rb->net.prefix_len() ? ra : rb;
        return route_preferred(*ra, *rb) ? ra : rb;
    }

    std::string name() const override { return name_; }

private:
    RouteStage<A>* other_parent(RouteStage<A>* caller) const {
        return caller == a_ ? b_ : a_;
    }

    std::string name_;
    RouteStage<A>* a_ = nullptr;
    RouteStage<A>* b_ = nullptr;
};

}  // namespace xrp::stage

#endif
