// DeletionStage: the dynamic background-deletion stage of §5.1.2 and
// Figure 6 — the paper's showpiece for dynamic stages.
//
// When a peering goes down, deleting its >100k routes in one event handler
// would freeze the router. Instead the origin's whole table is detached
// and handed to a freshly-plumbed DeletionStage directly downstream of the
// origin. A background task then trickles delete_route messages out in
// slices, while:
//   - the origin is immediately empty and ready for the peer to return;
//   - an add_route for a prefix we still hold first emits the old delete,
//     purges our copy, then forwards the add — downstream stays consistent
//     and each route lives in at most one deletion stage;
//   - lookups still see not-yet-deleted routes until their delete is sent.
// When the table drains, the stage unplumbs itself and self-destructs via
// the owner's completion callback. If the peer flaps repeatedly, multiple
// deletion stages simply chain — none knows about the others.
#ifndef XRP_STAGE_DELETION_HPP
#define XRP_STAGE_DELETION_HPP

#include <functional>
#include <memory>
#include <string>

#include "ev/eventloop.hpp"
#include "net/trie.hpp"
#include "stage/stage.hpp"

namespace xrp::stage {

template <class A>
class DeletionStage : public RouteStage<A> {
public:
    using typename RouteStage<A>::RouteT;
    using typename RouteStage<A>::Net;
    using Table = net::RouteTrie<A, RouteT>;
    // Called (via the event loop, never re-entrantly) when the stage has
    // finished and unplumbed itself; the owner destroys the object.
    using CompletionCallback = std::function<void(DeletionStage*)>;

    DeletionStage(std::string name, std::unique_ptr<Table> table,
                  ev::EventLoop& loop, CompletionCallback on_complete,
                  size_t routes_per_slice = 100)
        : name_(std::move(name)),
          table_(std::move(table)),
          loop_(loop),
          on_complete_(std::move(on_complete)),
          per_slice_(routes_per_slice),
          iter_(table_->begin()) {
        task_ = loop_.add_background_task([this] { return slice(); });
    }

    void add_route(const RouteT& route, RouteStage<A>*) override {
        // The peer re-announced a prefix we were still going to delete:
        // retract the stale route first so downstream sees delete+add.
        if (const RouteT* held = table_->find(route.net)) {
            RouteT old = *held;
            table_->erase(route.net);
            this->forward_delete(old);
        }
        this->forward_add(route);
        maybe_finish();
    }

    void delete_route(const RouteT& route, RouteStage<A>*) override {
        // The origin can only delete what it re-learned after we took the
        // old table, so `route.net` cannot be in our table (the add that
        // created it purged our copy). Just forward.
        this->forward_delete(route);
    }

    // A resyncing peer re-announcing its table in bulk hits this: each
    // entry still purges our held copy (stale delete first), batched out.
    void push_batch(RouteBatch<A>&& batch, RouteStage<A>* caller) override {
        this->collect_and_forward(std::move(batch), caller);
    }

    std::optional<RouteT> lookup_route(const Net& net) const override {
        // New routes (upstream) take precedence; otherwise our not-yet-
        // deleted copy is still the truth downstream has.
        if (auto up = this->lookup_upstream(net)) return up;
        const RouteT* held = table_->find(net);
        return held != nullptr ? std::optional<RouteT>(*held) : std::nullopt;
    }

    std::optional<RouteT> lookup_route_lpm(A addr) const override {
        auto up = RouteStage<A>::lookup_route_lpm(addr);
        const RouteT* held = table_->lookup(addr, nullptr);
        // Prefer the more specific answer; ties go upstream (fresher).
        return this->longer_match(
            held != nullptr ? std::optional<RouteT>(*held) : std::nullopt,
            std::move(up));
    }

    std::string name() const override { return name_; }

    size_t remaining() const { return table_->size(); }
    bool finished() const { return finished_; }

private:
    bool slice() {
        size_t n = 0;
        while (n < per_slice_ && !iter_.at_end()) {
            if (!iter_.valid()) {  // purged by an add while we were parked
                ++iter_;
                continue;
            }
            RouteT r = iter_.value();
            Net key = iter_.key();
            ++iter_;  // step off before erasing our own node
            table_->erase(key);
            this->forward_delete(r);
            ++n;
        }
        if (iter_.at_end() && table_->empty()) {
            finish();
            return false;  // task complete
        }
        return true;
    }

    void maybe_finish() {
        if (!finished_ && table_->empty() && iter_.at_end()) {
            task_.cancel();
            finish();
        }
    }

    void finish() {
        if (finished_) return;
        finished_ = true;
        unplumb(*this);
        if (on_complete_) {
            // Defer: the owner will likely destroy us, and we may be in
            // the middle of slice() on this object.
            loop_.defer([cb = on_complete_, self = this] { cb(self); });
        }
    }

    std::string name_;
    std::unique_ptr<Table> table_;
    ev::EventLoop& loop_;
    CompletionCallback on_complete_;
    size_t per_slice_;
    typename Table::iterator iter_;
    ev::Task task_;
    bool finished_ = false;
};

}  // namespace xrp::stage

#endif
