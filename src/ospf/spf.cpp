#include "ospf/spf.hpp"

#include <algorithm>
#include <bit>

namespace xrp::ospf {

namespace {

uint32_t sat_add(uint32_t a, uint32_t b) {
    uint64_t s = static_cast<uint64_t>(a) + b;
    return s >= 0xffffffffull ? 0xfffffffeu : static_cast<uint32_t>(s);
}

bool lists(const std::vector<net::IPv4>& v, net::IPv4 a) {
    return std::find(v.begin(), v.end(), a) != v.end();
}

}  // namespace

const Lsa* SpfEngine::router_lsa(net::IPv4 id) const {
    auto it = snap_.find({LsaType::kRouter, id, id});
    return it == snap_.end() ? nullptr : &it->second;
}

const Lsa* SpfEngine::network_lsa(net::IPv4 id) const {
    auto ni = net_idx_.find(id);
    if (ni == net_idx_.end()) return nullptr;
    auto it = snap_.find(ni->second);
    return it == snap_.end() ? nullptr : &it->second;
}

std::optional<uint32_t> SpfEngine::edge_weight(const Vertex& a,
                                               const Vertex& b) const {
    if (a.kind == LsaType::kRouter) {
        const Lsa* al = router_lsa(a.id);
        if (!al) return std::nullopt;
        if (b.kind == LsaType::kRouter) {
            // Point-to-point: a must list b and b must list a back.
            const Lsa* bl = router_lsa(b.id);
            if (!bl) return std::nullopt;
            bool back = false;
            for (const RouterLink& l : bl->links)
                if (l.type == LinkType::kPointToPoint && l.id == a.id)
                    back = true;
            if (!back) return std::nullopt;
            std::optional<uint32_t> best;
            for (const RouterLink& l : al->links)
                if (l.type == LinkType::kPointToPoint && l.id == b.id)
                    if (!best || l.metric < *best) best = l.metric;
            return best;
        }
        // Transit onto segment b: a claims the link and the Network LSA
        // lists a as attached.
        const Lsa* nl = network_lsa(b.id);
        if (!nl || !lists(nl->attached, a.id)) return std::nullopt;
        std::optional<uint32_t> best;
        for (const RouterLink& l : al->links)
            if (l.type == LinkType::kTransit && l.id == b.id)
                if (!best || l.metric < *best) best = l.metric;
        return best;
    }
    // Network → attached router: always cost 0 (RFC 2328 §16.1 step 2b).
    if (b.kind != LsaType::kRouter) return std::nullopt;
    const Lsa* nl = network_lsa(a.id);
    if (!nl || !lists(nl->attached, b.id)) return std::nullopt;
    const Lsa* bl = router_lsa(b.id);
    if (!bl) return std::nullopt;
    for (const RouterLink& l : bl->links)
        if (l.type == LinkType::kTransit && l.id == a.id) return 0u;
    return std::nullopt;
}

std::vector<SpfEngine::Vertex> SpfEngine::raw_targets(const Vertex& v) const {
    std::vector<Vertex> out;
    if (v.kind == LsaType::kRouter) {
        const Lsa* l = router_lsa(v.id);
        if (!l) return out;
        for (const RouterLink& lk : l->links) {
            if (lk.type == LinkType::kPointToPoint)
                out.push_back({LsaType::kRouter, lk.id});
            else if (lk.type == LinkType::kTransit)
                out.push_back({LsaType::kNetwork, lk.id});
        }
    } else {
        const Lsa* l = network_lsa(v.id);
        if (!l) return out;
        for (net::IPv4 r : l->attached) out.push_back({LsaType::kRouter, r});
    }
    return out;
}

net::IPv4 SpfEngine::first_hop(const Vertex& parent, const Vertex& child) const {
    if (parent.kind == LsaType::kRouter && parent.id == root_) {
        // Directly attached segment: packets for it don't need a gateway.
        if (child.kind == LsaType::kNetwork) return net::IPv4();
        // p2p neighbour: its back-link's data field is its address on the
        // shared link.
        if (const Lsa* cl = router_lsa(child.id))
            for (const RouterLink& l : cl->links)
                if (l.type == LinkType::kPointToPoint && l.id == root_)
                    return l.data;
        return net::IPv4();
    }
    auto it = nodes_.find(parent);
    if (it == nodes_.end()) return net::IPv4();
    if (it->second.nexthop != net::IPv4()) return it->second.nexthop;
    // Parent is a directly attached transit segment: the child router's
    // address on it is in its own transit link's data field.
    if (parent.kind == LsaType::kNetwork && child.kind == LsaType::kRouter)
        if (const Lsa* cl = router_lsa(child.id))
            for (const RouterLink& l : cl->links)
                if (l.type == LinkType::kTransit && l.id == parent.id)
                    return l.data;
    return net::IPv4();
}

void SpfEngine::relax(const Vertex& v,
                      std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                          std::greater<QueueEntry>>& pq) {
    uint32_t base = nodes_.at(v).dist;
    for (const Vertex& t : raw_targets(v)) {
        auto w = edge_weight(v, t);
        if (!w) continue;
        uint32_t nd = sat_add(base, *w);
        Node& tn = nodes_[t];
        if (nd < tn.dist) {
            tn.dist = nd;
            tn.parent = v;
            tn.has_parent = true;
            pq.push({nd, t});
        }
    }
}

void SpfEngine::add_contributions(const Vertex& v,
                                  std::set<net::IPv4Net>* touched) {
    auto nit = nodes_.find(v);
    if (nit == nodes_.end() || nit->second.dist == kInf) return;
    const Node& n = nit->second;
    // The gateway set this vertex contributes: its full equal-cost hop
    // set, or empty for the no-gateway case (root itself / directly
    // attached), mirroring the scalar nexthop convention.
    net::NexthopSet4 gws;
    if (n.nexthop != net::IPv4()) gws = n.hops;
    auto& plist = vertex_prefixes_[v];
    auto put = [&](const net::IPv4Net& p, uint32_t cost) {
        auto& m = contrib_[p];
        auto [sit, inserted] = m.try_emplace(v, SpfRoute{cost, n.nexthop, gws});
        if (!inserted) {
            // Two stub links on the same subnet: keep the cheaper.
            if (cost < sit->second.cost) sit->second = {cost, n.nexthop, gws};
        } else {
            plist.push_back(p);
        }
        if (touched) touched->insert(p);
    };
    if (v.kind == LsaType::kRouter) {
        if (const Lsa* l = router_lsa(v.id))
            for (const RouterLink& lk : l->links)
                if (lk.type == LinkType::kStub) {
                    auto plen =
                        static_cast<uint32_t>(std::popcount(lk.data.to_host()));
                    put(net::IPv4Net(lk.id, plen), sat_add(n.dist, lk.metric));
                }
    } else {
        if (const Lsa* l = network_lsa(v.id)) put(l->network(), n.dist);
    }
    if (plist.empty()) vertex_prefixes_.erase(v);
}

void SpfEngine::drop_contributions(const Vertex& v,
                                   std::set<net::IPv4Net>* touched) {
    auto it = vertex_prefixes_.find(v);
    if (it == vertex_prefixes_.end()) return;
    for (const net::IPv4Net& p : it->second) {
        auto cit = contrib_.find(p);
        if (cit != contrib_.end()) {
            cit->second.erase(v);
            if (cit->second.empty()) contrib_.erase(cit);
        }
        if (touched) touched->insert(p);
    }
    vertex_prefixes_.erase(it);
}

// Folds a prefix's per-vertex contributions into the winning route:
// cheapest cost wins, and every contribution at that cost pools its
// gateways into one ECMP set. A no-gateway contribution (root's own stub
// or a directly attached segment) beats gateways outright — those
// prefixes belong to the connected origin. The fold is order-independent
// and shared by both run modes, so full and incremental agree.
SpfRoute SpfEngine::winner_for(const std::map<Vertex, SpfRoute>& contribs) const {
    uint32_t best_cost = kInf;
    for (const auto& [v, r] : contribs) best_cost = std::min(best_cost, r.cost);
    bool direct = false;
    net::NexthopSet4 set;
    for (const auto& [v, r] : contribs) {
        if (r.cost != best_cost) continue;
        if (r.nexthop == net::IPv4())
            direct = true;
        else
            set.merge(r.nexthops);
    }
    if (direct || set.empty()) return SpfRoute{best_cost, net::IPv4(), {}};
    set.clamp(max_paths_);
    net::IPv4 primary = set.primary();
    return SpfRoute{best_cost, primary, std::move(set)};
}

void SpfEngine::recompute_winners(const std::set<net::IPv4Net>& touched) {
    for (const net::IPv4Net& p : touched) {
        auto cit = contrib_.find(p);
        if (cit == contrib_.end() || cit->second.empty()) {
            routes_.erase(p);
            continue;
        }
        routes_[p] = winner_for(cit->second);
    }
}

void SpfEngine::derive_hops(std::set<Vertex>* changed) {
    // Topological order of the tight-edge DAG: distance ascending, and at
    // equal distance networks before routers — the only zero-weight edges
    // are network->router (§16.1 step 2b), so every tight edge goes from
    // an earlier slot to a later one. Ids break remaining ties so the
    // order (and with it every clamped set) is deterministic.
    struct Ord {
        uint32_t dist;
        int rank;
        Vertex v;
        bool operator<(const Ord& o) const {
            if (dist != o.dist) return dist < o.dist;
            if (rank != o.rank) return rank < o.rank;
            return v < o.v;
        }
    };
    std::vector<Ord> order;
    order.reserve(nodes_.size());
    for (const auto& [v, n] : nodes_)
        if (n.dist != kInf)
            order.push_back({n.dist, v.kind == LsaType::kNetwork ? 0 : 1, v});
    std::sort(order.begin(), order.end());
    std::map<Vertex, size_t> pos;
    for (size_t i = 0; i < order.size(); ++i) pos[order[i].v] = i;

    const Vertex root{LsaType::kRouter, root_};
    for (size_t i = 0; i < order.size(); ++i) {
        const Vertex& v = order[i].v;
        Node& n = nodes_.at(v);
        net::NexthopSet4 hops;
        if (!(v == root)) {
            // Claimed adjacencies are symmetric at the adjacency level, so
            // v's own targets are exactly its possible in-neighbours.
            for (const Vertex& u : raw_targets(v)) {
                if (u == v) continue;
                auto pit = pos.find(u);
                if (pit == pos.end() || pit->second >= i) continue;
                auto w = edge_weight(u, v);
                if (!w) continue;
                const Node& un = nodes_.at(u);
                if (sat_add(un.dist, *w) != n.dist) continue;
                if (u == root || un.nexthop == net::IPv4()) {
                    // Hop decided at this edge: root's own link, or a
                    // parent reached with no gateway (directly attached
                    // segment) whose child address is the hop.
                    hops.insert(first_hop(u, v));
                } else {
                    hops.merge(un.hops);
                }
            }
            // A direct attachment (hop 0) at equal cost beats gateways —
            // and the sentinel composes with nothing else.
            if (hops.contains(net::IPv4()))
                hops = net::NexthopSet4::single(net::IPv4());
            hops.clamp(max_paths_);
        }
        net::IPv4 primary =
            hops.empty() || hops.primary() == net::IPv4() ? net::IPv4()
                                                          : hops.primary();
        if (changed && (hops != n.hops || primary != n.nexthop))
            changed->insert(v);
        n.hops = std::move(hops);
        n.nexthop = primary;
    }
}

void SpfEngine::rebuild_snapshot(const Lsdb& db) {
    snap_.clear();
    net_idx_.clear();
    db.for_each([&](const Lsa& lsa) {
        snap_[lsa.key()] = lsa;
        if (lsa.type == LsaType::kNetwork) net_idx_[lsa.id] = lsa.key();
    });
}

const RouteMap& SpfEngine::run_full(const Lsdb& db) {
    rebuild_snapshot(db);
    nodes_.clear();
    contrib_.clear();
    vertex_prefixes_.clear();
    routes_.clear();
    ++run_id_;
    size_t visited = 0;
    Vertex root{LsaType::kRouter, root_};
    if (router_lsa(root_)) {
        std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                            std::greater<QueueEntry>>
            pq;
        Node& rn = nodes_[root];
        rn.dist = 0;
        rn.processed_run = run_id_;
        ++visited;
        relax(root, pq);
        while (!pq.empty()) {
            auto [d, v] = pq.top();
            pq.pop();
            Node& n = nodes_[v];
            if (n.processed_run == run_id_ || d > n.dist) continue;
            n.processed_run = run_id_;
            n.nexthop = n.has_parent ? first_hop(n.parent, v) : net::IPv4();
            ++visited;
            relax(v, pq);
        }
        derive_hops(nullptr);
        for (const auto& [v, n] : nodes_) add_contributions(v, nullptr);
    }
    for (const auto& [p, m] : contrib_) routes_[p] = winner_for(m);
    stats_.last_visited = visited;
    ++stats_.full_runs;
    has_run_ = true;
    return routes_;
}

const RouteMap& SpfEngine::run_incremental(const Lsdb& db,
                                           const std::vector<LsaKey>& changed) {
    // No prior tree, or the change is too broad for the bookkeeping to pay
    // off — a full run visits everything once and is cache-friendly.
    if (!has_run_ || changed.size() > std::max<size_t>(8, snap_.size() / 4)) {
        ++stats_.fallbacks;
        return run_full(db);
    }

    // 1. Reduce `changed` to real topology deltas: drop duplicates,
    // refresh-only instances (same content, new seq), and keys that were
    // absent on both sides.
    struct Delta {
        LsaKey key;
        bool had = false, has = false;
        Lsa new_lsa;
    };
    std::vector<Delta> deltas;
    std::set<LsaKey> seen;
    for (const LsaKey& k : changed) {
        if (!seen.insert(k).second) continue;
        auto oit = snap_.find(k);
        const Lsa* nl = db.lookup(k);
        bool had = oit != snap_.end();
        if (!had && !nl) continue;
        if (had && nl && nl->same_content(oit->second)) continue;
        Delta d{k, had, nl != nullptr, {}};
        if (nl) d.new_lsa = *nl;
        deltas.push_back(std::move(d));
    }
    ++stats_.incremental_runs;
    if (deltas.empty()) {
        stats_.last_visited = 0;
        return routes_;
    }

    auto vertex_of = [](const LsaKey& k) {
        return Vertex{k.type,
                      k.type == LsaType::kRouter ? k.adv_router : k.id};
    };
    auto targets_of = [](const Lsa& l, std::set<Vertex>& out) {
        if (l.type == LsaType::kRouter) {
            for (const RouterLink& lk : l.links) {
                if (lk.type == LinkType::kPointToPoint)
                    out.insert({LsaType::kRouter, lk.id});
                else if (lk.type == LinkType::kTransit)
                    out.insert({LsaType::kNetwork, lk.id});
            }
        } else {
            for (net::IPv4 r : l.attached) out.insert({LsaType::kRouter, r});
        }
    };

    // 2. Candidate directed edges touched by the deltas, with their weights
    // under the OLD snapshot (both directions — back-link validity means a
    // one-sided LSA change can create or destroy either direction).
    std::set<Vertex> delta_vertices;
    std::map<std::pair<Vertex, Vertex>, std::optional<uint32_t>> old_w;
    for (const Delta& d : deltas) {
        Vertex x = vertex_of(d.key);
        delta_vertices.insert(x);
        std::set<Vertex> cand;
        for (const Vertex& t : raw_targets(x)) cand.insert(t);  // old view
        if (d.has) targets_of(d.new_lsa, cand);
        for (const Vertex& t : cand) {
            old_w.try_emplace({x, t}, edge_weight(x, t));
            old_w.try_emplace({t, x}, edge_weight(t, x));
        }
    }

    // 3. Apply the deltas to the snapshot.
    for (const Delta& d : deltas) {
        if (d.has) {
            snap_[d.key] = d.new_lsa;
            if (d.key.type == LsaType::kNetwork) net_idx_[d.key.id] = d.key;
        } else {
            snap_.erase(d.key);
            if (d.key.type == LsaType::kNetwork) {
                auto ni = net_idx_.find(d.key.id);
                if (ni != net_idx_.end() && ni->second == d.key)
                    net_idx_.erase(ni);
            }
        }
    }

    // 4. Classify each candidate edge. Decreases (including newly valid
    // edges) become relaxation seeds; increases and removals matter only
    // when the edge was on the shortest-path tree, in which case the whole
    // subtree below it must be re-settled.
    std::vector<std::tuple<Vertex, Vertex, uint32_t>> decreases;
    std::set<Vertex> invalid_roots;
    for (const auto& [e, wo] : old_w) {
        auto wn = edge_weight(e.first, e.second);
        if (wo == wn) continue;
        uint32_t o = wo ? *wo : kInf;
        uint32_t w = wn ? *wn : kInf;
        if (w < o) {
            decreases.emplace_back(e.first, e.second, w);
        } else {
            auto bit = nodes_.find(e.second);
            if (bit != nodes_.end() && bit->second.has_parent &&
                bit->second.parent == e.first)
                invalid_roots.insert(e.second);
        }
    }

    // 5. Invalidated region A: the closure of tree children below each
    // invalid root. Everything outside A keeps its distance (a worsened
    // non-tree edge can't affect anyone's shortest path).
    std::set<Vertex> A;
    if (!invalid_roots.empty()) {
        std::map<Vertex, std::vector<Vertex>> children;
        for (const auto& [v, n] : nodes_)
            if (n.has_parent) children[n.parent].push_back(v);
        std::vector<Vertex> stack(invalid_roots.begin(), invalid_roots.end());
        while (!stack.empty()) {
            Vertex v = stack.back();
            stack.pop_back();
            if (!A.insert(v).second) continue;
            auto ci = children.find(v);
            if (ci != children.end())
                for (const Vertex& c : ci->second) stack.push_back(c);
        }
        for (const Vertex& v : A) {
            Node& n = nodes_[v];
            n.dist = kInf;
            n.has_parent = false;
            n.nexthop = net::IPv4();
        }
    }

    // 6. Seed a restricted Dijkstra: decrease edges, plus every edge
    // entering A from the stable region.
    ++run_id_;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        pq;
    auto seed = [&](const Vertex& from, const Vertex& to, uint32_t w) {
        if (A.count(from)) return;  // relaxed when/if `from` re-settles
        auto fit = nodes_.find(from);
        if (fit == nodes_.end() || fit->second.dist == kInf) return;
        uint32_t nd = sat_add(fit->second.dist, w);
        Node& tn = nodes_[to];
        if (nd < tn.dist) {
            tn.dist = nd;
            tn.parent = from;
            tn.has_parent = true;
            pq.push({nd, to});
        }
    };
    for (const auto& [a, b, w] : decreases) seed(a, b, w);
    for (const Vertex& x : A)
        // x's claimed adjacencies are exactly its possible in-neighbours
        // (every edge type here is symmetric at the adjacency level).
        for (const Vertex& t : raw_targets(x))
            if (auto w = edge_weight(t, x)) seed(t, x, *w);

    // 7. Settle. Pops are nondecreasing in distance, so a parent is always
    // finalised (or stable from the previous run) before its child asks it
    // for a next hop.
    std::set<Vertex> touched(A.begin(), A.end());
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        Node& n = nodes_[v];
        if (n.processed_run == run_id_ || d > n.dist) continue;
        n.processed_run = run_id_;
        n.nexthop = n.has_parent ? first_hop(n.parent, v) : net::IPv4();
        touched.insert(v);
        relax(v, pq);
    }
    // 7b. Re-derive every vertex's equal-cost hop set from the finished
    // distance field. Settling only recomputes hops for re-settled
    // vertices, but hop sets are inherited along tight edges — an
    // ancestor re-parented at equal cost, or an edge change that created
    // a *new* equal-cost path without moving any distance, changes
    // descendants' hop sets although they are never re-popped. The pass
    // is the same one run_full uses on the same snapshot, so incremental
    // successor sets equal full ones by construction; any vertex whose
    // set moved joins `touched` so its prefix contributions refresh.
    derive_hops(&touched);

    // Stub-only changes never enter the graph phase but still move
    // prefixes.
    for (const Vertex& x : delta_vertices) touched.insert(x);
    stats_.last_visited = touched.size();

    // 8. Refresh prefix contributions for every vertex whose distance,
    // next hop, or LSA content moved; recompute winners for the prefixes
    // involved. Vertices that ended up unreachable are dropped.
    std::set<net::IPv4Net> touched_prefixes;
    for (const Vertex& v : touched) {
        drop_contributions(v, &touched_prefixes);
        auto nit = nodes_.find(v);
        if (nit == nodes_.end()) continue;
        if (nit->second.dist == kInf)
            nodes_.erase(nit);
        else
            add_contributions(v, &touched_prefixes);
    }
    recompute_winners(touched_prefixes);
    return routes_;
}

}  // namespace xrp::ospf
