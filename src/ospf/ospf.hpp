// OspfProcess: the OSPFv2 link-state routing protocol process (RFC 2328,
// reduced to what the simulated network exercises).
//
// Faithful to the paper's architecture the same way RIP is:
//   - all I/O rides the FEA's UDP relay (§7) — the process never touches
//     a socket, so it can run fully sandboxed;
//   - it is event-driven (§4): adjacency loss on link-down is immediate,
//     flooding is triggered, and SPF runs behind a short debounce plus a
//     hold-down instead of any periodic recompute.
//
// Every attached segment is modelled as a broadcast (transit) network: the
// highest router-id among fully adjacent routers is the Designated Router
// and originates the segment's Network LSA. Reliability comes from
// per-neighbour retransmit lists re-scanned on a timer: Update/Request/
// DbDesc packets lost to simnet loss are re-sent until acknowledged.
//
// Learned routes feed the RIB through the RibClient coupling ("ospf"
// protocol, admin distance 110).
#ifndef XRP_OSPF_OSPF_HPP
#define XRP_OSPF_OSPF_HPP

#include <memory>
#include <set>

#include "fea/fea.hpp"
#include "ospf/packet.hpp"
#include "ospf/spf.hpp"
#include "rib/rib.hpp"
#include "telemetry/metrics.hpp"

namespace xrp::ospf {

// Coupling to the RIB (abstract for standalone tests). SPF pushes full
// ECMP successor sets; the set overload defaults to forwarding the
// primary member so scalar-only clients keep working unchanged.
class RibClient {
public:
    virtual ~RibClient() = default;
    virtual void add_route(const net::IPv4Net& net, net::IPv4 nexthop,
                           uint32_t metric) = 0;
    virtual void add_route(const net::IPv4Net& net,
                           const net::NexthopSet4& nexthops, uint32_t metric) {
        add_route(net, nexthops.empty() ? net::IPv4() : nexthops.primary(),
                  metric);
    }
    virtual void delete_route(const net::IPv4Net& net) = 0;
};

class NullRibClient final : public RibClient {
public:
    void add_route(const net::IPv4Net&, net::IPv4, uint32_t) override {}
    void delete_route(const net::IPv4Net&) override {}
};

class DirectRibClient final : public RibClient {
public:
    explicit DirectRibClient(rib::Rib& rib) : rib_(rib) {}
    void add_route(const net::IPv4Net& net, net::IPv4 nexthop,
                   uint32_t metric) override {
        rib_.add_route("ospf", net, nexthop, metric);
    }
    void add_route(const net::IPv4Net& net, const net::NexthopSet4& nexthops,
                   uint32_t metric) override {
        rib_.add_route("ospf", net, nexthops, metric);
    }
    void delete_route(const net::IPv4Net& net) override {
        rib_.delete_route("ospf", net);
    }

private:
    rib::Rib& rib_;
};

enum class NeighborState : uint8_t {
    kDown = 0,
    kInit,      // heard their Hello; they haven't listed us yet
    kExchange,  // bidirectional; database descriptions exchanged
    kLoading,   // requesting the LSAs their summary showed fresher
    kFull,      // databases synchronized — the adjacency counts for SPF
};

const char* neighbor_state_name(NeighborState s);

class OspfProcess {
public:
    struct Config {
        net::IPv4 router_id{};  // 0 = derive from first enabled interface
        ev::Duration hello_interval = std::chrono::seconds(10);
        ev::Duration dead_interval = std::chrono::seconds(40);
        ev::Duration retransmit_interval = std::chrono::seconds(5);
        // SPF debounce: a burst of flooded LSAs costs one recompute...
        ev::Duration spf_delay = std::chrono::milliseconds(200);
        // ...and consecutive recomputes are at least this far apart.
        ev::Duration spf_holddown = std::chrono::seconds(1);
        ev::Duration lsa_refresh = std::chrono::minutes(30);
        ev::Duration age_scan_interval = std::chrono::seconds(30);
        uint16_t max_age_secs = 3600;
        // ECMP width: equal-cost successor sets are clamped to this many
        // members; 1 disables multipath. Config leaf "max-paths".
        uint32_t max_paths = 8;
    };

    OspfProcess(ev::EventLoop& loop, fea::Fea& fea, Config config,
                std::unique_ptr<RibClient> rib = nullptr);
    // Defaults-everything convenience (defined out of class: in-class
    // default args may not use Config's member initializers).
    OspfProcess(ev::EventLoop& loop, fea::Fea& fea);
    ~OspfProcess();
    OspfProcess(const OspfProcess&) = delete;
    OspfProcess& operator=(const OspfProcess&) = delete;

    // Pins the router id explicitly (config "router-id"). Only allowed
    // before the first interface is enabled — LSAs already flooded under
    // the old identity can't be recalled.
    bool set_router_id(net::IPv4 id);

    // Runs OSPF on an FEA interface with the given output cost.
    bool enable_interface(const std::string& ifname, uint32_t cost = 1);
    void disable_interface(const std::string& ifname);
    bool set_interface_cost(const std::string& ifname, uint32_t cost);
    // Changes the ECMP width at runtime; successor sets are re-derived by
    // a scheduled full SPF.
    void set_max_paths(uint32_t k);

    net::IPv4 router_id() const { return router_id_; }
    const Config& config() const { return config_; }

    const Lsdb& lsdb() const { return db_; }
    const SpfEngine& spf() const { return engine_; }
    // Routes currently injected into the RIB (nexthop-bearing only).
    const RouteMap& installed_routes() const { return installed_; }

    NeighborState neighbor_state(const std::string& ifname,
                                 net::IPv4 router_id) const;
    size_t neighbor_count() const { return neighbors_.size(); }
    size_t full_neighbor_count() const;
    // "ifname router_id state" lines, for the XRL target and diagnostics.
    std::string describe_neighbors() const;
    std::string describe_lsdb() const;

    struct Stats {
        uint64_t packets_in = 0;
        uint64_t bad_packets = 0;
        uint64_t hellos_sent = 0;
        uint64_t floods_sent = 0;   // LsUpdate transmissions (fan-out)
        uint64_t retransmits = 0;
        uint64_t spf_runs = 0;
    };
    const Stats& stats() const { return stats_; }

    // Router identity stamped on journal events; empty = unbound.
    void set_node(std::string node) { node_ = std::move(node); }
    const std::string& node() const { return node_; }

private:
    struct Neighbor {
        net::IPv4 router_id{};
        net::IPv4 addr{};  // their address on the segment
        std::string ifname;
        NeighborState state = NeighborState::kDown;
        bool got_dbdesc = false;  // processed their DbDesc this round
        std::set<LsaKey> requested;        // still needed from them
        std::map<LsaKey, Lsa> retransmit;  // sent, not yet acknowledged
        ev::Timer dead_timer;
    };
    using NeighborKey = std::pair<std::string, net::IPv4>;

    // -- packet handling -------------------------------------------------
    void on_datagram(const std::string& ifname, const fea::Datagram& dgram);
    void handle_hello(const std::string& ifname, const fea::Datagram& dgram,
                      const OspfPacket& pkt);
    void handle_dbdesc(Neighbor& n, const OspfPacket& pkt);
    void handle_lsrequest(Neighbor& n, const OspfPacket& pkt);
    void handle_lsupdate(Neighbor& n, const std::string& ifname,
                         const OspfPacket& pkt);
    void handle_lsack(Neighbor& n, const OspfPacket& pkt);

    // -- adjacency machinery ----------------------------------------------
    void send_hello(const std::string& ifname);
    void send_dbdesc(Neighbor& n);
    void send_lsrequest(Neighbor& n);
    void enter_exchange(Neighbor& n);
    void become_full(Neighbor& n);
    void reset_neighbor(Neighbor& n);  // regress to Init (one-way seen)
    void neighbor_dead(const NeighborKey& key);
    void drop_interface_neighbors(const std::string& ifname);
    void on_interface_change(const fea::Interface& itf, bool up);
    void restart_dead_timer(Neighbor& n);
    net::IPv4 dr_for(const std::string& ifname) const;

    // -- flooding ----------------------------------------------------------
    void flood(const Lsa& lsa, const std::string& except_ifname);
    void send_update(const std::string& ifname, net::IPv4 dst,
                     std::vector<Lsa> lsas);
    void retransmit_scan();

    // -- origination -------------------------------------------------------
    void schedule_origination();
    void run_origination();
    void premature_age(const LsaKey& key, uint32_t min_seq);
    uint32_t next_seq(const LsaKey& key);
    void refresh_own_lsas();
    void age_scan();

    // -- SPF ---------------------------------------------------------------
    void schedule_spf(const LsaKey& key);
    void run_spf();

    bool iface_active(const std::string& ifname) const;

    ev::EventLoop& loop_;
    fea::Fea& fea_;
    std::string node_;
    Config config_;
    std::unique_ptr<RibClient> rib_;
    net::IPv4 router_id_{};
    int sock_ = 0;
    uint64_t iftable_listener_ = 0;

    std::map<std::string, uint32_t> iface_cost_;  // enabled interfaces
    std::map<NeighborKey, Neighbor> neighbors_;
    Lsdb db_;
    SpfEngine engine_;
    RouteMap installed_;
    std::map<LsaKey, uint32_t> own_seq_;

    std::vector<LsaKey> pending_spf_;
    bool spf_scheduled_ = false;
    bool origination_scheduled_ = false;
    bool have_spf_time_ = false;
    ev::TimePoint last_spf_time_{};

    ev::Timer hello_timer_;
    ev::Timer retransmit_timer_;
    ev::Timer age_timer_;
    ev::Timer refresh_timer_;
    ev::Timer origination_timer_;
    ev::Timer spf_timer_;

    Stats stats_;
    telemetry::Counter* m_spf_full_ = nullptr;
    telemetry::Counter* m_spf_incr_ = nullptr;
    telemetry::Histogram* m_spf_latency_ = nullptr;
    telemetry::Gauge* m_lsa_count_ = nullptr;
    telemetry::Counter* m_flood_tx_ = nullptr;
};

}  // namespace xrp::ospf

#endif
