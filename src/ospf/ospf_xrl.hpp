// XRL plumbing for OSPF:
//   - bind_ospf_xrl(): exposes the ospf/1.0 interface (interface control
//     and observability) on an XrlRouter;
//   - XrlRibClient: the OSPF process's coupling to the RIB over XRLs, the
//     same decoupling RIP uses ("ospf" protocol, admin distance 110).
#ifndef XRP_OSPF_OSPF_XRL_HPP
#define XRP_OSPF_OSPF_XRL_HPP

#include "ipc/router.hpp"
#include "ospf/ospf.hpp"

namespace xrp::ospf {

inline constexpr const char* kOspfIdl = R"(
interface ospf/1.0 {
    enable_interface ? ifname:txt & cost:u32 -> ok:bool;
    disable_interface ? ifname:txt;
    set_interface_cost ? ifname:txt & cost:u32 -> ok:bool;
    get_status -> router_id:ipv4 & neighbors:u32 & full:u32 & lsas:u32 & routes:u32;
    list_neighbors -> text:txt;
    list_lsdb -> count:u32 & text:txt;
    get_spf_stats -> full_runs:u64 & incremental_runs:u64 & last_visited:u32;
}
)";

// Registers ospf/1.0 on `router` backed by `ospf`.
void bind_ospf_xrl(OspfProcess& ospf, ipc::XrlRouter& router);

class XrlRibClient final : public RibClient {
public:
    explicit XrlRibClient(ipc::XrlRouter& router, std::string rib_target = "rib")
        : router_(router), target_(std::move(rib_target)) {}

    void add_route(const net::IPv4Net& net, net::IPv4 nexthop,
                   uint32_t metric) override {
        xrl::XrlArgs args;
        args.add("protocol", std::string("ospf"))
            .add("net", net)
            .add("nexthop", nexthop)
            .add("metric", metric);
        // Route pushes are idempotent: mark them so the call contract may
        // retry through drops without risking double-execution harm.
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "add_route", args),
            ipc::CallOptions::reliable());
    }

    void add_route(const net::IPv4Net& net, const net::NexthopSet4& nexthops,
                   uint32_t metric) override {
        if (nexthops.size() <= 1) {
            add_route(net,
                      nexthops.empty() ? net::IPv4() : nexthops.primary(),
                      metric);
            return;
        }
        xrl::XrlArgs args;
        args.add("protocol", std::string("ospf"))
            .add("net", net)
            .add("nexthops", nexthops.str())
            .add("metric", metric);
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "add_route_multipath",
                              args),
            ipc::CallOptions::reliable());
    }

    void delete_route(const net::IPv4Net& net) override {
        xrl::XrlArgs args;
        args.add("protocol", std::string("ospf")).add("net", net);
        router_.call_oneway(
            xrl::Xrl::generic(target_, "rib", "1.0", "delete_route", args),
            ipc::CallOptions::reliable());
    }

private:
    ipc::XrlRouter& router_;
    std::string target_;
};

}  // namespace xrp::ospf

#endif
