#include "ospf/ospf.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/journal.hpp"

namespace xrp::ospf {

using net::IPv4;
using net::IPv4Net;

namespace {

uint16_t secs(ev::Duration d) {
    return static_cast<uint16_t>(
        std::chrono::duration_cast<std::chrono::seconds>(d).count());
}

}  // namespace

const char* neighbor_state_name(NeighborState s) {
    switch (s) {
        case NeighborState::kDown: return "Down";
        case NeighborState::kInit: return "Init";
        case NeighborState::kExchange: return "Exchange";
        case NeighborState::kLoading: return "Loading";
        case NeighborState::kFull: return "Full";
    }
    return "?";
}

OspfProcess::OspfProcess(ev::EventLoop& loop, fea::Fea& fea, Config config,
                         std::unique_ptr<RibClient> rib)
    : loop_(loop),
      fea_(fea),
      config_(config),
      rib_(std::move(rib)),
      router_id_(config.router_id),
      db_(loop, config.max_age_secs) {
    if (!rib_) rib_ = std::make_unique<NullRibClient>();
    auto& reg = telemetry::Registry::global();
    m_spf_full_ = reg.counter(
        telemetry::metric_key("ospf_spf_runs_total", {{"mode", "full"}}));
    m_spf_incr_ = reg.counter(telemetry::metric_key("ospf_spf_runs_total",
                                                    {{"mode", "incremental"}}));
    m_spf_latency_ = reg.histogram("ospf_spf_latency_ns");
    m_lsa_count_ = reg.gauge("ospf_lsa_count");
    m_flood_tx_ = reg.counter("ospf_flood_tx_total");

    sock_ = fea_.udp_open(kOspfPort, [this](const std::string& ifname,
                                            const fea::Datagram& d) {
        on_datagram(ifname, d);
    });
    iftable_listener_ = fea_.interfaces().add_listener(
        [this](const fea::Interface& itf, bool up) {
            on_interface_change(itf, up);
        });
    hello_timer_ = loop_.set_periodic(config_.hello_interval, [this] {
        for (const auto& [ifname, cost] : iface_cost_) {
            (void)cost;
            send_hello(ifname);
        }
        return true;
    });
    retransmit_timer_ =
        loop_.set_periodic(config_.retransmit_interval, [this] {
            retransmit_scan();
            return true;
        });
    age_timer_ = loop_.set_periodic(config_.age_scan_interval, [this] {
        age_scan();
        return true;
    });
    refresh_timer_ = loop_.set_periodic(config_.lsa_refresh, [this] {
        refresh_own_lsas();
        return true;
    });
}

OspfProcess::OspfProcess(ev::EventLoop& loop, fea::Fea& fea)
    : OspfProcess(loop, fea, Config{}, nullptr) {}

OspfProcess::~OspfProcess() {
    fea_.udp_close(sock_);
    fea_.interfaces().remove_listener(iftable_listener_);
}

bool OspfProcess::iface_active(const std::string& ifname) const {
    if (iface_cost_.find(ifname) == iface_cost_.end()) return false;
    const fea::Interface* itf = fea_.interfaces().find(ifname);
    return itf != nullptr && itf->enabled && itf->link_up;
}

bool OspfProcess::set_router_id(IPv4 id) {
    if (id == router_id_) return true;
    if (!iface_cost_.empty()) return false;
    router_id_ = id;
    return true;
}

bool OspfProcess::enable_interface(const std::string& ifname, uint32_t cost) {
    const fea::Interface* itf = fea_.interfaces().find(ifname);
    if (itf == nullptr || sock_ == 0) return false;
    if (cost == 0) cost = 1;
    // Derive the router id from the first enabled interface if the config
    // didn't pin one.
    if (router_id_ == IPv4()) router_id_ = itf->addr;
    iface_cost_[ifname] = cost;
    send_hello(ifname);
    schedule_origination();
    return true;
}

void OspfProcess::disable_interface(const std::string& ifname) {
    iface_cost_.erase(ifname);
    drop_interface_neighbors(ifname);
    schedule_origination();
}

bool OspfProcess::set_interface_cost(const std::string& ifname,
                                     uint32_t cost) {
    auto it = iface_cost_.find(ifname);
    if (it == iface_cost_.end()) return false;
    it->second = cost == 0 ? 1 : cost;
    schedule_origination();
    return true;
}

NeighborState OspfProcess::neighbor_state(const std::string& ifname,
                                          IPv4 id) const {
    auto it = neighbors_.find({ifname, id});
    return it == neighbors_.end() ? NeighborState::kDown : it->second.state;
}

size_t OspfProcess::full_neighbor_count() const {
    size_t n = 0;
    for (const auto& [k, nb] : neighbors_)
        if (nb.state == NeighborState::kFull) ++n;
    return n;
}

std::string OspfProcess::describe_neighbors() const {
    std::string out;
    for (const auto& [k, n] : neighbors_) {
        out += k.first + " " + n.router_id.str() + " " +
               neighbor_state_name(n.state) + "\n";
    }
    return out;
}

std::string OspfProcess::describe_lsdb() const {
    std::string out;
    db_.for_each([&](const Lsa& l) { out += l.str() + "\n"; });
    return out;
}

// ---- packet handling ----------------------------------------------------

void OspfProcess::on_datagram(const std::string& ifname,
                              const fea::Datagram& dgram) {
    if (iface_cost_.find(ifname) == iface_cost_.end()) return;
    ++stats_.packets_in;
    const fea::Interface* itf = fea_.interfaces().find(ifname);
    if (itf == nullptr) return;
    // Same neighbour-locality rules as RIP: packets must come from a
    // distinct host on the directly connected subnet, from the OSPF port.
    if (!itf->subnet.contains(dgram.src) || dgram.src == itf->addr) return;
    if (dgram.src_port != kOspfPort) return;
    auto pkt = decode_packet(dgram.payload.data(), dgram.payload.size());
    if (!pkt) {
        ++stats_.bad_packets;
        return;
    }
    if (pkt->router_id == router_id_) return;
    if (pkt->type == PacketType::kHello) {
        handle_hello(ifname, dgram, *pkt);
        return;
    }
    auto it = neighbors_.find({ifname, pkt->router_id});
    if (it == neighbors_.end()) return;
    Neighbor& n = it->second;
    switch (pkt->type) {
        case PacketType::kHello: break;
        case PacketType::kDbDesc: handle_dbdesc(n, *pkt); break;
        case PacketType::kLsRequest: handle_lsrequest(n, *pkt); break;
        case PacketType::kLsUpdate: handle_lsupdate(n, ifname, *pkt); break;
        case PacketType::kLsAck: handle_lsack(n, *pkt); break;
    }
}

void OspfProcess::handle_hello(const std::string& ifname,
                               const fea::Datagram& dgram,
                               const OspfPacket& pkt) {
    // RFC 2328 §10.5: timer parameters must match or the packet is ignored.
    if (pkt.hello.hello_interval != secs(config_.hello_interval) ||
        pkt.hello.dead_interval != secs(config_.dead_interval)) {
        ++stats_.bad_packets;
        return;
    }
    NeighborKey key{ifname, pkt.router_id};
    auto [it, inserted] = neighbors_.try_emplace(key);
    Neighbor& n = it->second;
    if (inserted) {
        n.router_id = pkt.router_id;
        n.ifname = ifname;
        n.state = NeighborState::kInit;
        // Answer at once so discovery doesn't wait out a hello interval.
        send_hello(ifname);
    }
    n.addr = dgram.src;
    restart_dead_timer(n);
    bool sees_us =
        std::find(pkt.hello.neighbors.begin(), pkt.hello.neighbors.end(),
                  router_id_) != pkt.hello.neighbors.end();
    if (sees_us) {
        if (n.state == NeighborState::kInit) enter_exchange(n);
    } else if (n.state > NeighborState::kInit) {
        // One-way: they restarted and forgot us. Regress and rebuild.
        reset_neighbor(n);
        schedule_origination();
    }
}

void OspfProcess::handle_dbdesc(Neighbor& n, const OspfPacket& pkt) {
    if (n.state == NeighborState::kDown) return;
    // A DbDesc from an Init neighbour implies bidirectionality.
    if (n.state == NeighborState::kInit) enter_exchange(n);
    if (n.got_dbdesc) {
        // Retransmission: they are stuck in Exchange because ours was
        // lost. Re-send ours; don't reprocess theirs.
        send_dbdesc(n);
        return;
    }
    n.got_dbdesc = true;
    n.requested.clear();
    for (const LsaHeader& h : pkt.headers) {
        Lsa probe;
        probe.type = h.type;
        probe.id = h.id;
        probe.adv_router = h.adv_router;
        probe.seq = h.seq;
        // Request instances fresher than ours; never request a MaxAge
        // instance we don't hold (RFC 2328 §13, it's being withdrawn).
        if (h.age < db_.max_age() &&
            db_.compare_with_stored(probe, h.age) > 0)
            n.requested.insert(h.key());
    }
    if (n.requested.empty()) {
        become_full(n);
    } else {
        n.state = NeighborState::kLoading;
        send_lsrequest(n);
    }
}

void OspfProcess::handle_lsrequest(Neighbor& n, const OspfPacket& pkt) {
    if (n.state < NeighborState::kExchange) return;
    std::vector<Lsa> out;
    for (const LsaKey& k : pkt.requests) {
        if (const Lsa* l = db_.lookup(k)) {
            Lsa copy = *l;
            copy.age = db_.current_age(k);
            out.push_back(std::move(copy));
        }
    }
    if (!out.empty()) send_update(n.ifname, n.addr, std::move(out));
}

void OspfProcess::handle_lsupdate(Neighbor& n, const std::string& ifname,
                                  const OspfPacket& pkt) {
    if (n.state < NeighborState::kExchange) return;
    std::vector<LsaHeader> acks;
    bool reoriginate = false;
    for (const Lsa& lsa : pkt.lsas) {
        acks.push_back(LsaHeader::of(lsa, lsa.age));
        int cmp = db_.compare_with_stored(lsa, lsa.age);
        if (cmp < 0) {
            // We hold something fresher: correct the sender directly.
            if (const Lsa* cur = db_.lookup(lsa.key())) {
                Lsa copy = *cur;
                copy.age = db_.current_age(lsa.key());
                send_update(n.ifname, n.addr, {std::move(copy)});
            }
            continue;
        }
        n.requested.erase(lsa.key());
        if (cmp == 0) continue;  // duplicate; the ack is all it needs
        if (lsa.adv_router == router_id_) {
            // A fresher instance of our own LSA is circulating — a remnant
            // of a previous incarnation or a premature-age kill. Record
            // its sequence number so re-origination jumps above it.
            uint32_t& s = own_seq_[lsa.key()];
            s = std::max(s, lsa.seq);
            reoriginate = true;
        }
        if (lsa.age >= db_.max_age()) {
            // Premature aging: drop any stored copy and propagate the kill.
            // With no database copy there is nothing to withdraw — ack and
            // discard (RFC 2328 §13 step 4); re-flooding would let the kill
            // circulate forever around any topology cycle.
            if (db_.lookup(lsa.key()) != nullptr) {
                db_.remove(lsa.key());
                schedule_spf(lsa.key());
                flood(lsa, ifname);
            }
        } else {
            auto res = db_.install(lsa);
            if (res.installed) {
                flood(lsa, ifname);
                if (res.content_changed) schedule_spf(lsa.key());
            }
        }
    }
    // Ack everything received — acks are what stop the sender's
    // retransmit list.
    if (!acks.empty()) {
        OspfPacket ack;
        ack.type = PacketType::kLsAck;
        ack.router_id = router_id_;
        ack.headers = std::move(acks);
        fea_.udp_send(sock_, n.ifname, n.addr, kOspfPort, encode_packet(ack));
    }
    if (n.state == NeighborState::kLoading && n.requested.empty())
        become_full(n);
    if (reoriginate) schedule_origination();
}

void OspfProcess::handle_lsack(Neighbor& n, const OspfPacket& pkt) {
    for (const LsaHeader& h : pkt.headers) {
        auto it = n.retransmit.find(h.key());
        if (it != n.retransmit.end() && h.seq >= it->second.seq)
            n.retransmit.erase(it);
    }
}

// ---- adjacency machinery -------------------------------------------------

void OspfProcess::send_hello(const std::string& ifname) {
    if (!iface_active(ifname) || router_id_ == IPv4()) return;
    OspfPacket p;
    p.type = PacketType::kHello;
    p.router_id = router_id_;
    p.hello.hello_interval = secs(config_.hello_interval);
    p.hello.dead_interval = secs(config_.dead_interval);
    p.hello.dr = dr_for(ifname);
    for (const auto& [k, n] : neighbors_)
        if (k.first == ifname) p.hello.neighbors.push_back(n.router_id);
    fea_.udp_send(sock_, ifname, kAllSpfRouters, kOspfPort, encode_packet(p));
    ++stats_.hellos_sent;
}

void OspfProcess::send_dbdesc(Neighbor& n) {
    OspfPacket p;
    p.type = PacketType::kDbDesc;
    p.router_id = router_id_;
    for (const auto& [k, e] : db_.entries())
        p.headers.push_back(LsaHeader::of(e.lsa, db_.current_age(k)));
    fea_.udp_send(sock_, n.ifname, n.addr, kOspfPort, encode_packet(p));
}

void OspfProcess::send_lsrequest(Neighbor& n) {
    OspfPacket p;
    p.type = PacketType::kLsRequest;
    p.router_id = router_id_;
    p.requests.assign(n.requested.begin(), n.requested.end());
    fea_.udp_send(sock_, n.ifname, n.addr, kOspfPort, encode_packet(p));
}

void OspfProcess::enter_exchange(Neighbor& n) {
    n.state = NeighborState::kExchange;
    n.got_dbdesc = false;
    send_dbdesc(n);
}

void OspfProcess::become_full(Neighbor& n) {
    n.state = NeighborState::kFull;
    // The adjacency changes our router LSA (stub → transit) and possibly
    // makes us DR; the origination path floods and schedules SPF.
    schedule_origination();
}

void OspfProcess::reset_neighbor(Neighbor& n) {
    n.state = NeighborState::kInit;
    n.requested.clear();
    n.retransmit.clear();
    n.got_dbdesc = false;
}

void OspfProcess::restart_dead_timer(Neighbor& n) {
    NeighborKey key{n.ifname, n.router_id};
    // Move-assignment cancels the previous deadline.
    n.dead_timer = loop_.set_timer(config_.dead_interval,
                                   [this, key] { neighbor_dead(key); });
}

void OspfProcess::neighbor_dead(const NeighborKey& key) {
    auto it = neighbors_.find(key);
    if (it == neighbors_.end()) return;
    neighbors_.erase(it);
    schedule_origination();
}

void OspfProcess::drop_interface_neighbors(const std::string& ifname) {
    for (auto it = neighbors_.begin(); it != neighbors_.end();) {
        if (it->first.first == ifname)
            it = neighbors_.erase(it);
        else
            ++it;
    }
}

void OspfProcess::on_interface_change(const fea::Interface& itf, bool up) {
    if (iface_cost_.find(itf.name) == iface_cost_.end()) return;
    if (!up) {
        // Event-driven reaction to link failure: the adjacencies are gone
        // now, not a dead-interval later.
        drop_interface_neighbors(itf.name);
    } else {
        send_hello(itf.name);
    }
    schedule_origination();
}

IPv4 OspfProcess::dr_for(const std::string& ifname) const {
    const fea::Interface* itf = fea_.interfaces().find(ifname);
    if (itf == nullptr) return {};
    IPv4 dr_id = router_id_;
    IPv4 dr_addr = itf->addr;
    for (const auto& [k, n] : neighbors_) {
        if (k.first == ifname && n.state == NeighborState::kFull &&
            n.router_id > dr_id) {
            dr_id = n.router_id;
            dr_addr = n.addr;
        }
    }
    return dr_addr;
}

// ---- flooding ------------------------------------------------------------

void OspfProcess::send_update(const std::string& ifname, IPv4 dst,
                              std::vector<Lsa> lsas) {
    OspfPacket p;
    p.type = PacketType::kLsUpdate;
    p.router_id = router_id_;
    p.lsas = std::move(lsas);
    fea_.udp_send(sock_, ifname, dst, kOspfPort, encode_packet(p));
    ++stats_.floods_sent;
    m_flood_tx_->inc();
}

void OspfProcess::flood(const Lsa& lsa, const std::string& except_ifname) {
    if (telemetry::journal_enabled())
        telemetry::Journal::current().record(
            loop_.now(), telemetry::JournalKind::kLsaFlood, node_, "ospf",
            lsa.key().str(), except_ifname, static_cast<int64_t>(lsa.seq));
    for (const auto& [ifname, cost] : iface_cost_) {
        (void)cost;
        if (ifname == except_ifname || !iface_active(ifname)) continue;
        bool any = false;
        for (auto& [k, n] : neighbors_) {
            if (k.first != ifname || n.state < NeighborState::kExchange)
                continue;
            n.retransmit[lsa.key()] = lsa;
            any = true;
        }
        // One multicast reaches every neighbour on the segment.
        if (any) send_update(ifname, kAllSpfRouters, {lsa});
    }
}

void OspfProcess::retransmit_scan() {
    for (auto& [key, n] : neighbors_) {
        if (n.state < NeighborState::kExchange || !iface_active(n.ifname))
            continue;
        if (n.state == NeighborState::kExchange) {
            // Their DbDesc never arrived (or ours didn't) — try again.
            send_dbdesc(n);
            ++stats_.retransmits;
        }
        if (n.state == NeighborState::kLoading && !n.requested.empty()) {
            send_lsrequest(n);
            ++stats_.retransmits;
        }
        if (!n.retransmit.empty()) {
            std::vector<Lsa> lsas;
            for (const auto& [k, l] : n.retransmit) {
                Lsa copy = l;
                // Re-send with the database's current age when the same
                // instance is still installed, so ages keep advancing.
                const Lsa* cur = db_.lookup(k);
                if (cur != nullptr && cur->seq == copy.seq)
                    copy.age = db_.current_age(k);
                lsas.push_back(std::move(copy));
            }
            send_update(n.ifname, n.addr, std::move(lsas));
            ++stats_.retransmits;
        }
    }
}

// ---- origination ----------------------------------------------------------

void OspfProcess::schedule_origination() {
    if (origination_scheduled_) return;
    origination_scheduled_ = true;
    // Short debounce: a burst of adjacency changes costs one origination.
    origination_timer_ =
        loop_.set_timer(std::chrono::milliseconds(10), [this] {
            origination_scheduled_ = false;
            run_origination();
        });
}

uint32_t OspfProcess::next_seq(const LsaKey& key) {
    uint32_t& s = own_seq_[key];
    const Lsa* cur = db_.lookup(key);
    s = std::max(s, cur != nullptr ? cur->seq : 0) + 1;
    return s;
}

void OspfProcess::premature_age(const LsaKey& key, uint32_t min_seq) {
    const Lsa* cur = db_.lookup(key);
    Lsa dead;
    if (cur != nullptr) {
        dead = *cur;
    } else {
        dead.type = key.type;
        dead.id = key.id;
        dead.adv_router = key.adv_router;
    }
    uint32_t& s = own_seq_[key];
    s = std::max({s, dead.seq, min_seq}) + 1;
    dead.seq = s;
    dead.age = db_.max_age();
    db_.remove(key);
    flood(dead, "");
    schedule_spf(key);
}

void OspfProcess::run_origination() {
    if (router_id_ == IPv4()) return;
    Lsa rl;
    rl.type = LsaType::kRouter;
    rl.id = rl.adv_router = router_id_;
    bool any_iface = false;
    std::set<LsaKey> desired_nets;
    std::vector<Lsa> net_lsas;
    for (const auto& [ifname, cost] : iface_cost_) {
        const fea::Interface* itf = fea_.interfaces().find(ifname);
        if (itf == nullptr || !itf->enabled || !itf->link_up) continue;
        any_iface = true;
        std::vector<const Neighbor*> full;
        for (const auto& [k, n] : neighbors_)
            if (k.first == ifname && n.state == NeighborState::kFull)
                full.push_back(&n);
        if (full.empty()) {
            // Lonely segment: a stub link carrying the connected prefix.
            rl.links.push_back(
                {LinkType::kStub, itf->subnet.masked_addr(),
                 IPv4::make_prefix(itf->subnet.prefix_len()), cost});
            continue;
        }
        // Transit segment; DR = highest router id among the fully
        // adjacent routers (self included).
        IPv4 dr_id = router_id_;
        IPv4 dr_addr = itf->addr;
        for (const Neighbor* n : full) {
            if (n->router_id > dr_id) {
                dr_id = n->router_id;
                dr_addr = n->addr;
            }
        }
        rl.links.push_back({LinkType::kTransit, dr_addr, itf->addr, cost});
        if (dr_id == router_id_) {
            Lsa nl;
            nl.type = LsaType::kNetwork;
            nl.id = itf->addr;
            nl.adv_router = router_id_;
            nl.mask_len = static_cast<uint8_t>(itf->subnet.prefix_len());
            nl.attached.push_back(router_id_);
            for (const Neighbor* n : full) nl.attached.push_back(n->router_id);
            std::sort(nl.attached.begin(), nl.attached.end());
            desired_nets.insert(nl.key());
            net_lsas.push_back(std::move(nl));
        }
    }
    std::sort(rl.links.begin(), rl.links.end());

    auto originate = [&](Lsa lsa) {
        const Lsa* cur = db_.lookup(lsa.key());
        if (cur != nullptr && cur->same_content(lsa)) return;
        lsa.seq = next_seq(lsa.key());
        lsa.age = 0;
        auto res = db_.install(lsa);
        if (res.installed) {
            flood(lsa, "");
            if (res.content_changed) schedule_spf(lsa.key());
        }
    };
    if (any_iface)
        originate(std::move(rl));
    else if (db_.lookup(rl.key()) != nullptr)
        premature_age(rl.key(), 0);
    for (Lsa& nl : net_lsas) originate(std::move(nl));

    // Withdraw own Network LSAs for segments we no longer speak for
    // (DR change, interface loss): flood a premature-aged instance.
    std::vector<LsaKey> unwanted;
    db_.for_each([&](const Lsa& l) {
        if (l.type == LsaType::kNetwork && l.adv_router == router_id_ &&
            desired_nets.find(l.key()) == desired_nets.end())
            unwanted.push_back(l.key());
    });
    for (const LsaKey& k : unwanted) premature_age(k, 0);
}

void OspfProcess::refresh_own_lsas() {
    std::vector<LsaKey> own;
    db_.for_each([&](const Lsa& l) {
        if (l.adv_router == router_id_) own.push_back(l.key());
    });
    for (const LsaKey& k : own) {
        Lsa copy = *db_.lookup(k);
        copy.seq = next_seq(k);
        copy.age = 0;
        db_.install(copy);  // same content — never triggers SPF
        flood(copy, "");
    }
}

void OspfProcess::age_scan() {
    for (const LsaKey& k : db_.purge_expired()) schedule_spf(k);
}

// ---- SPF -------------------------------------------------------------------

void OspfProcess::schedule_spf(const LsaKey& key) {
    pending_spf_.push_back(key);
    if (spf_scheduled_) return;
    spf_scheduled_ = true;
    ev::Duration delay = config_.spf_delay;
    if (have_spf_time_) {
        auto earliest = last_spf_time_ + config_.spf_holddown;
        auto now = loop_.now();
        if (earliest > now + delay) delay = earliest - now;
    }
    spf_timer_ = loop_.set_timer(delay, [this] { run_spf(); });
}

void OspfProcess::run_spf() {
    spf_scheduled_ = false;
    std::vector<LsaKey> changed = std::move(pending_spf_);
    pending_spf_.clear();
    engine_.set_root(router_id_);
    engine_.set_max_paths(config_.max_paths);
    uint64_t full_before = engine_.stats().full_runs;
    // Wall-clock timing: the latency histogram must be meaningful even on
    // a virtual event-loop clock.
    auto t0 = std::chrono::steady_clock::now();
    const RouteMap& computed = engine_.has_run()
                                   ? engine_.run_incremental(db_, changed)
                                   : engine_.run_full(db_);
    auto t1 = std::chrono::steady_clock::now();
    ++stats_.spf_runs;
    last_spf_time_ = loop_.now();
    have_spf_time_ = true;
    if (engine_.stats().full_runs > full_before)
        m_spf_full_->inc();
    else
        m_spf_incr_->inc();
    m_spf_latency_->observe(
        std::chrono::duration_cast<ev::Duration>(t1 - t0));
    m_lsa_count_->set(static_cast<int64_t>(db_.size()));

    // Diff into the RIB. Prefixes whose best path has no gateway are the
    // root's own or directly attached segments — the connected origin owns
    // those, OSPF must not shadow them.
    RouteMap next;
    for (const auto& [net, r] : computed)
        if (r.nexthop != IPv4()) next[net] = r;
    for (const auto& [net, r] : installed_) {
        (void)r;
        if (next.find(net) == next.end()) rib_->delete_route(net);
    }
    for (const auto& [net, r] : next) {
        auto it = installed_.find(net);
        // OriginStage add is replace-on-duplicate, so metric/nexthop
        // changes are a single add_route.
        if (it == installed_.end() || !(it->second == r))
            rib_->add_route(net, r.nexthops, r.cost);
    }
    installed_ = std::move(next);
}

void OspfProcess::set_max_paths(uint32_t k) {
    k = k == 0 ? 1 : k;
    if (config_.max_paths == k) return;
    config_.max_paths = k;
    engine_.set_max_paths(k);  // invalidates: next run is full
    schedule_spf(LsaKey{});
}

}  // namespace xrp::ospf
