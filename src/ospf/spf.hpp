// The SPF engine: Dijkstra over the link-state database (RFC 2328 §16),
// with an incremental recompute path for the common case — one LSA
// changed, most of the shortest-path tree still valid.
//
// Graph model: vertices are routers (Router LSAs) and multi-access
// networks (Network LSAs). Edges exist only when both endpoints agree
// (the §13.? back-link check): a one-way claim — router A lists B but B
// doesn't list A — contributes nothing, which is what makes flooding
// races and dead-router remnants safe to compute over. Stub links and
// network prefixes are not vertices; they are prefix contributions hung
// off reachable vertices after the tree is built.
//
// Incremental algorithm (the Ramalingam–Reps family, specialised to SPT
// maintenance): diff the changed LSAs' edges against the last run's
// snapshot; cost decreases seed relaxations, cost increases/removals on
// tree edges invalidate exactly the affected subtree, which is then
// re-settled by a Dijkstra restricted to candidates entering from the
// stable region. Work is proportional to the part of the tree that
// actually moves, not to the topology — bench_spf measures the gap.
// Refresh-only changes (same content, new seq) and pure stub-metric
// changes skip the graph phase entirely. When the engine has no prior
// state, the root moved, or the change set is too broad, it falls back
// to a full run; equivalence of the two paths is pinned by test_ospf's
// random-mutation test.
#ifndef XRP_OSPF_SPF_HPP
#define XRP_OSPF_SPF_HPP

#include <map>
#include <queue>
#include <set>
#include <vector>

#include "net/nexthop_set.hpp"
#include "ospf/lsdb.hpp"

namespace xrp::ospf {

struct SpfRoute {
    uint32_t cost = 0;
    // First-hop address; 0 for prefixes on the root itself or on a
    // directly attached segment (the RIB's connected origin owns those).
    net::IPv4 nexthop{};
    // Every equal-cost first hop (ECMP successor set), canonical order,
    // clamped to the engine's max_paths. Empty iff nexthop is 0 (root's
    // own / directly attached prefixes); otherwise nexthop ==
    // nexthops.primary(). Both SPF modes derive this from the finished
    // distance field with the same deterministic pass, so the sets are
    // identical between full and incremental runs by construction.
    net::NexthopSet4 nexthops;
    friend auto operator<=>(const SpfRoute&, const SpfRoute&) = default;
};

using RouteMap = std::map<net::IPv4Net, SpfRoute>;

class SpfEngine {
public:
    struct Stats {
        uint64_t full_runs = 0;
        uint64_t incremental_runs = 0;
        // Incremental requests that had to fall back to a full run.
        uint64_t fallbacks = 0;
        // Vertices settled by the most recent run.
        size_t last_visited = 0;
    };

    void set_root(net::IPv4 router_id) {
        if (root_ != router_id) {
            root_ = router_id;
            has_run_ = false;
        }
    }
    net::IPv4 root() const { return root_; }

    // ECMP width cap; 1 disables multipath. A change forces the next run
    // full so every successor set is re-derived under the new cap.
    void set_max_paths(size_t k) {
        k = k == 0 ? 1 : k;
        if (max_paths_ != k) {
            max_paths_ = k;
            has_run_ = false;
        }
    }
    size_t max_paths() const { return max_paths_; }
    bool has_run() const { return has_run_; }

    const RouteMap& run_full(const Lsdb& db);
    // `changed` are the LSDB keys whose instances were installed/removed
    // since the last run (refresh-only keys are fine — they are detected
    // and skipped).
    const RouteMap& run_incremental(const Lsdb& db,
                                    const std::vector<LsaKey>& changed);

    const RouteMap& routes() const { return routes_; }
    const Stats& stats() const { return stats_; }

private:
    static constexpr uint32_t kInf = 0xffffffffu;

    struct Vertex {
        LsaType kind = LsaType::kRouter;
        net::IPv4 id{};
        friend constexpr auto operator<=>(const Vertex&,
                                          const Vertex&) = default;
    };
    struct Node {
        uint32_t dist = kInf;
        Vertex parent{};
        bool has_parent = false;
        net::IPv4 nexthop{};
        // Full equal-cost hop set, rebuilt by derive_hops() each run;
        // nexthop is its primary (or 0 when the set is the direct-
        // attachment sentinel {0} / empty).
        net::NexthopSet4 hops;
        uint64_t processed_run = 0;
    };
    struct QueueEntry {
        uint32_t dist;
        Vertex v;
        bool operator>(const QueueEntry& o) const {
            if (dist != o.dist) return dist > o.dist;
            return o.v < v;
        }
    };

    const Lsa* router_lsa(net::IPv4 id) const;
    const Lsa* network_lsa(net::IPv4 id) const;
    // Directed edge weight under the current snapshot, with back-link
    // checks; nullopt if the edge does not (or no longer does) exist.
    std::optional<uint32_t> edge_weight(const Vertex& a,
                                        const Vertex& b) const;
    // Neighbour vertex set claimed by `v`'s LSA, no validity checks.
    std::vector<Vertex> raw_targets(const Vertex& v) const;
    net::IPv4 first_hop(const Vertex& parent, const Vertex& child) const;
    void relax(const Vertex& v,
               std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                   std::greater<QueueEntry>>& pq);
    void add_contributions(const Vertex& v, std::set<net::IPv4Net>* touched);
    void drop_contributions(const Vertex& v, std::set<net::IPv4Net>* touched);
    SpfRoute winner_for(const std::map<Vertex, SpfRoute>& contribs) const;
    void recompute_winners(const std::set<net::IPv4Net>& touched);
    // ECMP post-pass: rebuilds every settled vertex's equal-cost hop set
    // from the finished distance field (union over tight in-edges, in
    // topological order). Shared verbatim by both run modes — that is the
    // incremental==full successor-set guarantee. Vertices whose hop set
    // moved are added to `changed` (may be null).
    void derive_hops(std::set<Vertex>* changed);
    void rebuild_snapshot(const Lsdb& db);

    net::IPv4 root_{};
    bool has_run_ = false;
    uint64_t run_id_ = 0;
    size_t max_paths_ = 8;

    // Last-run snapshot: LSA contents, network-LSA index, the SPT, prefix
    // contributions per vertex, and the resulting routes.
    std::map<LsaKey, Lsa> snap_;
    std::map<net::IPv4, LsaKey> net_idx_;
    std::map<Vertex, Node> nodes_;
    std::map<net::IPv4Net, std::map<Vertex, SpfRoute>> contrib_;
    std::map<Vertex, std::vector<net::IPv4Net>> vertex_prefixes_;
    RouteMap routes_;
    Stats stats_;
};

}  // namespace xrp::ospf

#endif
