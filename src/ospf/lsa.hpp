// Link State Advertisements: the unit of OSPF's replicated topology
// database (RFC 2328 §12, reduced to the two LSA types the simulated
// network needs).
//
//   Router LSA   — one per router: its point-to-point links to other
//                  routers, transit links onto multi-access segments, and
//                  stub prefixes (the router's own subnets);
//   Network LSA  — one per multi-access segment, originated by the
//                  segment's Designated Router: the attached routers and
//                  the segment's prefix.
//
// Instances are ordered by sequence number (age breaks exact ties only so
// a prematurely-aged copy can displace its live twin during withdrawal).
// `same_content()` deliberately ignores seq/age: a periodic refresh
// carries a new sequence number but identical topology, and the SPF
// scheduler must be able to tell the difference — refreshes must not cost
// a Dijkstra run.
#ifndef XRP_OSPF_LSA_HPP
#define XRP_OSPF_LSA_HPP

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipnet.hpp"

namespace xrp::ospf {

enum class LsaType : uint8_t { kRouter = 1, kNetwork = 2 };

// Database key (RFC 2328 §12.1): type + link-state id + advertising
// router. For Router LSAs id == adv_router; for Network LSAs id is the
// DR's interface address on the segment.
struct LsaKey {
    LsaType type = LsaType::kRouter;
    net::IPv4 id{};
    net::IPv4 adv_router{};
    friend constexpr auto operator<=>(const LsaKey&, const LsaKey&) = default;
    std::string str() const;
};

enum class LinkType : uint8_t {
    kPointToPoint = 1,  // id = neighbour router id, data = own iface addr
    kTransit = 2,       // id = DR iface addr,       data = own iface addr
    kStub = 3,          // id = subnet prefix,       data = netmask
};

struct RouterLink {
    LinkType type = LinkType::kStub;
    net::IPv4 id{};
    net::IPv4 data{};
    uint32_t metric = 1;
    friend constexpr auto operator<=>(const RouterLink&,
                                      const RouterLink&) = default;
};

struct Lsa {
    LsaType type = LsaType::kRouter;
    net::IPv4 id{};
    net::IPv4 adv_router{};
    uint32_t seq = 0;
    // Age in seconds at the moment of encoding/installation; the LSDB adds
    // holding time on top (see Lsdb::current_age).
    uint16_t age = 0;

    // Router LSA payload.
    std::vector<RouterLink> links;

    // Network LSA payload: the segment's mask plus attached router ids.
    uint8_t mask_len = 0;
    std::vector<net::IPv4> attached;

    LsaKey key() const { return {type, id, adv_router}; }
    // Topology equality: everything except seq/age.
    bool same_content(const Lsa& o) const {
        return type == o.type && id == o.id && adv_router == o.adv_router &&
               links == o.links && mask_len == o.mask_len &&
               attached == o.attached;
    }
    bool operator==(const Lsa&) const = default;

    // The prefix a Network LSA describes.
    net::IPv4Net network() const { return {id, mask_len}; }

    std::string str() const;
};

// RFC 2328 §13.1, reduced: >0 if `a` is the fresher instance, <0 if `b`
// is, 0 for the same instance. Sequence number dominates; at equal seq a
// MaxAge copy (premature aging) counts as fresher.
int compare_freshness(const Lsa& a, uint16_t a_age, const Lsa& b,
                      uint16_t b_age, uint16_t max_age);

// Wire codec for one LSA (used inside Link State Update packets).
void encode_lsa(const Lsa& lsa, std::vector<uint8_t>& out);
// Decodes one LSA starting at `pos`; advances `pos` past it. nullopt (and
// `pos` unspecified) on malformed input.
std::optional<Lsa> decode_lsa(const uint8_t* data, size_t size, size_t& pos);

}  // namespace xrp::ospf

#endif
