#include "ospf/packet.hpp"

namespace xrp::ospf {

namespace {

inline constexpr uint8_t kVersion = 2;

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
}
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
    put_u16(out, static_cast<uint16_t>(v >> 16));
    put_u16(out, static_cast<uint16_t>(v));
}

struct Reader {
    const uint8_t* data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    uint8_t u8() {
        if (pos + 1 > size) {
            ok = false;
            return 0;
        }
        return data[pos++];
    }
    uint16_t u16() {
        uint16_t hi = u8(), lo = u8();
        return static_cast<uint16_t>(hi << 8 | lo);
    }
    uint32_t u32() {
        uint32_t hi = u16(), lo = u16();
        return hi << 16 | lo;
    }
    net::IPv4 addr() { return net::IPv4(u32()); }
};

void put_header(std::vector<uint8_t>& out, const LsaHeader& h) {
    out.push_back(static_cast<uint8_t>(h.type));
    out.push_back(0);
    put_u16(out, h.age);
    put_u32(out, h.id.to_host());
    put_u32(out, h.adv_router.to_host());
    put_u32(out, h.seq);
}

std::optional<LsaHeader> read_header(Reader& r) {
    LsaHeader h;
    uint8_t type = r.u8();
    if (type != 1 && type != 2) return std::nullopt;
    h.type = static_cast<LsaType>(type);
    r.u8();  // pad
    h.age = r.u16();
    h.id = r.addr();
    h.adv_router = r.addr();
    h.seq = r.u32();
    if (!r.ok) return std::nullopt;
    return h;
}

}  // namespace

std::vector<uint8_t> encode_packet(const OspfPacket& p) {
    std::vector<uint8_t> out;
    out.push_back(kVersion);
    out.push_back(static_cast<uint8_t>(p.type));
    put_u32(out, p.router_id.to_host());
    switch (p.type) {
        case PacketType::kHello:
            put_u16(out, p.hello.hello_interval);
            put_u16(out, p.hello.dead_interval);
            put_u32(out, p.hello.dr.to_host());
            put_u16(out, static_cast<uint16_t>(p.hello.neighbors.size()));
            for (net::IPv4 n : p.hello.neighbors) put_u32(out, n.to_host());
            break;
        case PacketType::kDbDesc:
        case PacketType::kLsAck:
            put_u16(out, static_cast<uint16_t>(p.headers.size()));
            for (const LsaHeader& h : p.headers) put_header(out, h);
            break;
        case PacketType::kLsRequest:
            put_u16(out, static_cast<uint16_t>(p.requests.size()));
            for (const LsaKey& k : p.requests) {
                out.push_back(static_cast<uint8_t>(k.type));
                out.push_back(0);
                put_u32(out, k.id.to_host());
                put_u32(out, k.adv_router.to_host());
            }
            break;
        case PacketType::kLsUpdate:
            put_u16(out, static_cast<uint16_t>(p.lsas.size()));
            for (const Lsa& l : p.lsas) encode_lsa(l, out);
            break;
    }
    return out;
}

std::optional<OspfPacket> decode_packet(const uint8_t* data, size_t size) {
    Reader r{data, size};
    OspfPacket p;
    if (r.u8() != kVersion) return std::nullopt;
    uint8_t type = r.u8();
    if (type < 1 || type > 5) return std::nullopt;
    p.type = static_cast<PacketType>(type);
    p.router_id = r.addr();
    if (!r.ok) return std::nullopt;
    switch (p.type) {
        case PacketType::kHello: {
            p.hello.hello_interval = r.u16();
            p.hello.dead_interval = r.u16();
            p.hello.dr = r.addr();
            uint16_t n = r.u16();
            if (!r.ok) return std::nullopt;
            for (uint16_t i = 0; i < n; ++i) {
                net::IPv4 a = r.addr();
                if (!r.ok) return std::nullopt;
                p.hello.neighbors.push_back(a);
            }
            break;
        }
        case PacketType::kDbDesc:
        case PacketType::kLsAck: {
            uint16_t n = r.u16();
            if (!r.ok) return std::nullopt;
            for (uint16_t i = 0; i < n; ++i) {
                auto h = read_header(r);
                if (!h) return std::nullopt;
                p.headers.push_back(*h);
            }
            break;
        }
        case PacketType::kLsRequest: {
            uint16_t n = r.u16();
            if (!r.ok) return std::nullopt;
            for (uint16_t i = 0; i < n; ++i) {
                LsaKey k;
                uint8_t t = r.u8();
                if (t != 1 && t != 2) return std::nullopt;
                k.type = static_cast<LsaType>(t);
                r.u8();  // pad
                k.id = r.addr();
                k.adv_router = r.addr();
                if (!r.ok) return std::nullopt;
                p.requests.push_back(k);
            }
            break;
        }
        case PacketType::kLsUpdate: {
            uint16_t n = r.u16();
            if (!r.ok) return std::nullopt;
            for (uint16_t i = 0; i < n; ++i) {
                auto l = decode_lsa(data, size, r.pos);
                if (!l) return std::nullopt;
                p.lsas.push_back(std::move(*l));
            }
            break;
        }
    }
    // Reject trailing garbage so a truncation bug can't hide.
    if (r.pos != size) return std::nullopt;
    return p;
}

}  // namespace xrp::ospf
