// OSPF packet encode/decode (RFC 2328 §A, reduced). Five packet types:
// Hello (neighbour discovery/keepalive), Database Description (LSDB
// header summary at adjacency formation), Link State Request, Link State
// Update (full LSAs — the flooding payload), and Link State Ack.
//
// Per the paper's §7 security design these travel over the FEA's UDP
// relay (port 89, the real OSPF protocol number) rather than raw IP, so
// the OSPF process needs no privileged sockets; AllSPFRouters multicast
// reaches every router on a simnet segment.
#ifndef XRP_OSPF_PACKET_HPP
#define XRP_OSPF_PACKET_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "ospf/lsa.hpp"

namespace xrp::ospf {

inline constexpr uint16_t kOspfPort = 89;
// 224.0.0.5, AllSPFRouters.
inline const net::IPv4 kAllSpfRouters = net::IPv4((224u << 24) | 5);

enum class PacketType : uint8_t {
    kHello = 1,
    kDbDesc = 2,
    kLsRequest = 3,
    kLsUpdate = 4,
    kLsAck = 5,
};

// The LSA instance summary carried by DbDesc and LsAck packets.
struct LsaHeader {
    LsaType type = LsaType::kRouter;
    net::IPv4 id{};
    net::IPv4 adv_router{};
    uint32_t seq = 0;
    uint16_t age = 0;
    LsaKey key() const { return {type, id, adv_router}; }
    friend constexpr auto operator<=>(const LsaHeader&,
                                      const LsaHeader&) = default;
    static LsaHeader of(const Lsa& lsa, uint16_t current_age) {
        return {lsa.type, lsa.id, lsa.adv_router, lsa.seq, current_age};
    }
};

struct HelloPayload {
    uint16_t hello_interval = 10;  // seconds, for sanity checks only
    uint16_t dead_interval = 40;
    net::IPv4 dr{};  // sender's current DR view (diagnostics)
    std::vector<net::IPv4> neighbors;  // router ids heard on this segment
    bool operator==(const HelloPayload&) const = default;
};

struct OspfPacket {
    PacketType type = PacketType::kHello;
    net::IPv4 router_id{};

    HelloPayload hello;              // kHello
    std::vector<LsaHeader> headers;  // kDbDesc, kLsAck
    std::vector<LsaKey> requests;    // kLsRequest
    std::vector<Lsa> lsas;           // kLsUpdate

    bool operator==(const OspfPacket&) const = default;
};

std::vector<uint8_t> encode_packet(const OspfPacket& p);
std::optional<OspfPacket> decode_packet(const uint8_t* data, size_t size);

}  // namespace xrp::ospf

#endif
