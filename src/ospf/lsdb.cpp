#include "ospf/lsdb.hpp"

#include <chrono>

namespace xrp::ospf {

uint16_t Lsdb::age_of(const Entry& e) const {
    auto held = std::chrono::duration_cast<std::chrono::seconds>(
        loop_.now() - e.installed);
    int64_t age = static_cast<int64_t>(e.lsa.age) + held.count();
    if (age >= max_age_) return max_age_;
    return static_cast<uint16_t>(age < 0 ? 0 : age);
}

uint16_t Lsdb::current_age(const LsaKey& key) const {
    auto it = db_.find(key);
    return it == db_.end() ? max_age_ : age_of(it->second);
}

int Lsdb::compare_with_stored(const Lsa& cand, uint16_t cand_age) const {
    auto it = db_.find(cand.key());
    if (it == db_.end()) return 1;
    return compare_freshness(cand, cand_age, it->second.lsa,
                             age_of(it->second), max_age_);
}

Lsdb::InstallResult Lsdb::install(const Lsa& lsa) {
    auto it = db_.find(lsa.key());
    if (it == db_.end()) {
        db_.emplace(lsa.key(), Entry{lsa, loop_.now()});
        return {true, true};
    }
    if (compare_freshness(lsa, lsa.age, it->second.lsa, age_of(it->second),
                          max_age_) <= 0)
        return {false, false};
    bool content_changed = !lsa.same_content(it->second.lsa);
    it->second = Entry{lsa, loop_.now()};
    return {true, content_changed};
}

std::vector<LsaKey> Lsdb::purge_expired() {
    std::vector<LsaKey> purged;
    for (auto it = db_.begin(); it != db_.end();) {
        if (age_of(it->second) >= max_age_) {
            purged.push_back(it->first);
            it = db_.erase(it);
        } else {
            ++it;
        }
    }
    return purged;
}

}  // namespace xrp::ospf
