#include "ospf/ospf_xrl.hpp"

namespace xrp::ospf {

using xrl::XrlArgs;
using xrl::XrlError;

void bind_ospf_xrl(OspfProcess& ospf, ipc::XrlRouter& router) {
    auto spec = xrl::InterfaceSpec::parse(kOspfIdl);
    router.add_interface(*spec);

    router.add_handler(
        "ospf/1.0/enable_interface", [&ospf](const XrlArgs& in, XrlArgs& out) {
            out.add("ok", ospf.enable_interface(*in.get_text("ifname"),
                                                *in.get_u32("cost")));
            return XrlError::okay();
        });
    router.add_handler(
        "ospf/1.0/disable_interface", [&ospf](const XrlArgs& in, XrlArgs&) {
            ospf.disable_interface(*in.get_text("ifname"));
            return XrlError::okay();
        });
    router.add_handler(
        "ospf/1.0/set_interface_cost",
        [&ospf](const XrlArgs& in, XrlArgs& out) {
            out.add("ok", ospf.set_interface_cost(*in.get_text("ifname"),
                                                  *in.get_u32("cost")));
            return XrlError::okay();
        });
    router.add_handler(
        "ospf/1.0/get_status", [&ospf](const XrlArgs&, XrlArgs& out) {
            out.add("router_id", ospf.router_id());
            out.add("neighbors", static_cast<uint32_t>(ospf.neighbor_count()));
            out.add("full", static_cast<uint32_t>(ospf.full_neighbor_count()));
            out.add("lsas", static_cast<uint32_t>(ospf.lsdb().size()));
            out.add("routes",
                    static_cast<uint32_t>(ospf.installed_routes().size()));
            return XrlError::okay();
        });
    router.add_handler(
        "ospf/1.0/list_neighbors", [&ospf](const XrlArgs&, XrlArgs& out) {
            out.add("text", ospf.describe_neighbors());
            return XrlError::okay();
        });
    router.add_handler(
        "ospf/1.0/list_lsdb", [&ospf](const XrlArgs&, XrlArgs& out) {
            out.add("count", static_cast<uint32_t>(ospf.lsdb().size()));
            out.add("text", ospf.describe_lsdb());
            return XrlError::okay();
        });
    router.add_handler(
        "ospf/1.0/get_spf_stats", [&ospf](const XrlArgs&, XrlArgs& out) {
            const auto& s = ospf.spf().stats();
            out.add("full_runs", s.full_runs);
            out.add("incremental_runs", s.incremental_runs);
            out.add("last_visited", static_cast<uint32_t>(s.last_visited));
            return XrlError::okay();
        });
}

}  // namespace xrp::ospf
