#include "ospf/lsa.hpp"

namespace xrp::ospf {

std::string LsaKey::str() const {
    return std::string(type == LsaType::kRouter ? "router" : "network") + " " +
           id.str() + " adv " + adv_router.str();
}

std::string Lsa::str() const {
    std::string s = key().str() + " seq " + std::to_string(seq);
    if (type == LsaType::kRouter) {
        s += " links " + std::to_string(links.size());
    } else {
        s += " net " + network().str() + " attached " +
             std::to_string(attached.size());
    }
    return s;
}

int compare_freshness(const Lsa& a, uint16_t a_age, const Lsa& b,
                      uint16_t b_age, uint16_t max_age) {
    if (a.seq != b.seq) return a.seq > b.seq ? 1 : -1;
    bool a_max = a_age >= max_age;
    bool b_max = b_age >= max_age;
    if (a_max != b_max) return a_max ? 1 : -1;
    return 0;
}

namespace {

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
}
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
    put_u16(out, static_cast<uint16_t>(v >> 16));
    put_u16(out, static_cast<uint16_t>(v));
}

struct Reader {
    const uint8_t* data;
    size_t size;
    size_t& pos;
    bool ok = true;

    uint8_t u8() {
        if (pos + 1 > size) {
            ok = false;
            return 0;
        }
        return data[pos++];
    }
    uint16_t u16() {
        uint16_t hi = u8(), lo = u8();
        return static_cast<uint16_t>(hi << 8 | lo);
    }
    uint32_t u32() {
        uint32_t hi = u16(), lo = u16();
        return hi << 16 | lo;
    }
    net::IPv4 addr() { return net::IPv4(u32()); }
};

}  // namespace

void encode_lsa(const Lsa& lsa, std::vector<uint8_t>& out) {
    out.push_back(static_cast<uint8_t>(lsa.type));
    out.push_back(lsa.mask_len);
    put_u16(out, lsa.age);
    put_u32(out, lsa.id.to_host());
    put_u32(out, lsa.adv_router.to_host());
    put_u32(out, lsa.seq);
    if (lsa.type == LsaType::kRouter) {
        put_u16(out, static_cast<uint16_t>(lsa.links.size()));
        for (const RouterLink& l : lsa.links) {
            out.push_back(static_cast<uint8_t>(l.type));
            out.push_back(0);
            put_u16(out, static_cast<uint16_t>(l.metric));
            put_u32(out, l.id.to_host());
            put_u32(out, l.data.to_host());
        }
    } else {
        put_u16(out, static_cast<uint16_t>(lsa.attached.size()));
        for (net::IPv4 r : lsa.attached) put_u32(out, r.to_host());
    }
}

std::optional<Lsa> decode_lsa(const uint8_t* data, size_t size, size_t& pos) {
    Reader r{data, size, pos};
    Lsa lsa;
    uint8_t type = r.u8();
    if (type != 1 && type != 2) return std::nullopt;
    lsa.type = static_cast<LsaType>(type);
    lsa.mask_len = r.u8();
    if (lsa.mask_len > net::IPv4::kAddrBits) return std::nullopt;
    lsa.age = r.u16();
    lsa.id = r.addr();
    lsa.adv_router = r.addr();
    lsa.seq = r.u32();
    uint16_t count = r.u16();
    if (!r.ok) return std::nullopt;
    if (lsa.type == LsaType::kRouter) {
        for (uint16_t i = 0; i < count; ++i) {
            RouterLink l;
            uint8_t lt = r.u8();
            if (lt < 1 || lt > 3) return std::nullopt;
            l.type = static_cast<LinkType>(lt);
            r.u8();  // pad
            l.metric = r.u16();
            l.id = r.addr();
            l.data = r.addr();
            if (!r.ok) return std::nullopt;
            lsa.links.push_back(l);
        }
    } else {
        for (uint16_t i = 0; i < count; ++i) {
            net::IPv4 a = r.addr();
            if (!r.ok) return std::nullopt;
            lsa.attached.push_back(a);
        }
    }
    return lsa;
}

}  // namespace xrp::ospf
