// The link-state database: every router's replicated copy of the area
// topology (RFC 2328 §12.2). Keyed by (type, id, adv_router); each entry
// remembers when it was installed so ages advance with the event-loop
// clock (virtual clocks age LSAs for free in tests).
//
// `install` is the single freshness gate: a packet-received or
// self-originated instance goes in only if it beats the stored copy, and
// the result says whether the *topology* changed — the SPF scheduler
// keys off content_changed, so periodic refreshes (new seq, same links)
// never trigger a recompute.
#ifndef XRP_OSPF_LSDB_HPP
#define XRP_OSPF_LSDB_HPP

#include <functional>
#include <map>

#include "ev/eventloop.hpp"
#include "ospf/lsa.hpp"

namespace xrp::ospf {

class Lsdb {
public:
    struct Entry {
        Lsa lsa;
        ev::TimePoint installed{};
    };
    struct InstallResult {
        bool installed = false;        // instance accepted (was fresher)
        bool content_changed = false;  // topology differs from old copy
    };

    Lsdb(ev::EventLoop& loop, uint16_t max_age_secs = 3600)
        : loop_(loop), max_age_(max_age_secs) {}

    uint16_t max_age() const { return max_age_; }

    InstallResult install(const Lsa& lsa);
    bool remove(const LsaKey& key) { return db_.erase(key) > 0; }
    const Lsa* lookup(const LsaKey& key) const {
        auto it = db_.find(key);
        return it == db_.end() ? nullptr : &it->second.lsa;
    }

    // Stored age plus holding time, saturated at max_age.
    uint16_t current_age(const LsaKey& key) const;

    size_t size() const { return db_.size(); }
    const std::map<LsaKey, Entry>& entries() const { return db_; }
    void for_each(const std::function<void(const Lsa&)>& fn) const {
        for (const auto& [k, e] : db_) fn(e.lsa);
    }

    // Drops every entry that reached max_age; returns the purged keys.
    std::vector<LsaKey> purge_expired();

    // >0 if `cand` (a received instance with its wire age) is fresher than
    // the stored copy; >0 also when no copy is stored.
    int compare_with_stored(const Lsa& cand, uint16_t cand_age) const;

private:
    uint16_t age_of(const Entry& e) const;

    ev::EventLoop& loop_;
    uint16_t max_age_;
    std::map<LsaKey, Entry> db_;
};

}  // namespace xrp::ospf

#endif
