// The single-threaded event loop at the core of every component (§4).
//
// Three event sources, strictly prioritized:
//   1. expired timers — fired in deadline order;
//   2. ready file descriptors — dispatched via poll(2);
//   3. background tasks — one cooperative slice per idle loop turn,
//      weighted round-robin.
//
// The loop never blocks while a background task has work, and on a virtual
// clock it never blocks at all: when nothing is runnable it advances the
// clock straight to the next timer deadline.
//
// Threading model: a loop is owned by exactly one thread — whichever
// thread drives run()/run_once() — and every API except post(),
// run_on(), and request_stop() must be called from that thread. The
// three exceptions are the cross-thread seam: post() enqueues a callback
// under a small mutex and wakes the owning thread through an eventfd, so
// an idle loop blocks in poll(2) instead of spinning and still reacts
// immediately. Ownership is asserted at runtime: once a thread has
// driven the loop, a timer/fd/task registration from any other thread
// aborts with a diagnostic instead of corrupting the heap silently.
#ifndef XRP_EV_EVENTLOOP_HPP
#define XRP_EV_EVENTLOOP_HPP

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "ev/clock.hpp"
#include "ev/task.hpp"
#include "ev/timer.hpp"

namespace xrp::ev {

class EventLoop {
public:
    explicit EventLoop(Clock& clock);
    ~EventLoop();

    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    Clock& clock() { return clock_; }
    TimePoint now() { return clock_.now(); }

    // ---- timers -----------------------------------------------------
    // One-shot timer. The returned handle owns the registration.
    [[nodiscard]] Timer set_timer(Duration delay, std::function<void()> cb);
    [[nodiscard]] Timer set_timer_at(TimePoint when, std::function<void()> cb);
    // Periodic timer; the callback returns false to stop.
    [[nodiscard]] Timer set_periodic(Duration period, std::function<bool()> cb);
    // Fire-and-forget: run `cb` from the loop as soon as possible. Used to
    // break call chains and keep event handlers shallow.
    void defer(std::function<void()> cb);
    // Fire-and-forget with a delay (simulated link latency, retry backoff).
    void defer_after(Duration delay, std::function<void()> cb);

    // ---- file descriptors --------------------------------------------
    void add_reader(int fd, std::function<void()> cb);
    void add_writer(int fd, std::function<void()> cb);
    void remove_reader(int fd);
    void remove_writer(int fd);

    // ---- background tasks --------------------------------------------
    // `slice` runs when the loop is otherwise idle; return true while more
    // work remains. Higher weight gets proportionally more slices.
    [[nodiscard]] Task add_background_task(std::function<bool()> slice,
                                           int weight = 1);
    size_t background_task_count() const;

    // On a virtual clock, each background slice advances time by this much
    // (real slices cost real time; without this, a hungry task would
    // freeze virtual time and starve every timer). Default 1us.
    void set_task_virtual_cost(Duration d) { task_virtual_cost_ = d; }

    // ---- cross-thread seam --------------------------------------------
    // Enqueues `cb` to run on the loop's owning thread and wakes it (the
    // only registration that is safe from any thread). Callbacks run in
    // post order, before timers, on the next loop turn.
    void post(std::function<void()> cb);
    // post(), except run inline when already on the owning thread (or when
    // no thread has claimed the loop yet). Use for callbacks that may
    // arrive from either side of a thread boundary — e.g. Finder
    // notifications — without perturbing single-threaded call order.
    void run_on(std::function<void()> cb);
    // Thread-safe stop: sets the flag and wakes a blocked poll.
    void request_stop();
    // True when the calling thread owns the loop (or nobody does yet).
    bool in_owner_thread() const;
    // Releases thread ownership. Call after join()ing the thread that ran
    // the loop, so teardown (or a new driver thread) may proceed from the
    // current thread; the join provides the happens-before edge.
    void release_owner() { owner_.store({}, std::memory_order_relaxed); }
    // Keeps run() alive when every event source is empty — a component
    // thread parks in poll(2) awaiting post()/ring wakeups instead of
    // falling out of run(); only stop()/request_stop() ends such a run().
    void hold_open(bool on) { hold_open_ = on; }

    // ---- running ------------------------------------------------------
    // Processes one batch of work. `may_block` permits a blocking poll when
    // nothing is due (real clocks only). Returns true if any callback ran.
    bool run_once(bool may_block = true);
    // Runs until stop() or until no event source could ever fire again.
    void run();
    void stop() { stopped_.store(true, std::memory_order_relaxed); }
    // Runs until `pred()` is true or `limit` elapses (loop-clock time).
    // Returns true if the predicate was satisfied.
    bool run_until(const std::function<bool()>& pred, Duration limit);
    // Runs for `d` of loop-clock time.
    void run_for(Duration d);

    bool timers_pending() const { return !heap_.empty(); }

private:
    using TimerSP = std::shared_ptr<detail::TimerState>;
    struct HeapCmp {
        bool operator()(const TimerSP& a, const TimerSP& b) const {
            if (a->expiry != b->expiry) return a->expiry > b->expiry;
            return a->seq > b->seq;
        }
    };

    Timer schedule(TimerSP state);
    bool fire_due_timers();
    bool dispatch_fds(int timeout_ms);
    bool run_one_task_slice();
    int poll_timeout_ms(bool may_block);
    void claim_owner();
    void check_owner(const char* what) const;
    bool drain_posted();
    void wake();

    Clock& clock_;
    std::atomic<bool> stopped_{false};
    bool hold_open_ = false;
    uint64_t timer_seq_ = 0;

    // Cross-thread post queue + eventfd wakeup. `owner_` is the id of the
    // thread currently driving the loop (claimed on each run_once).
    int wake_fd_ = -1;
    mutable std::mutex post_mu_;
    std::deque<std::function<void()>> posted_;
    std::atomic<bool> posted_pending_{false};
    std::atomic<std::thread::id> owner_{};
    // Virtual clocks never advance past this; run_for/run_until pin it to
    // their deadline so idle jumps stop exactly on time.
    TimePoint advance_cap_ = TimePoint::max();

    std::priority_queue<TimerSP, std::vector<TimerSP>, HeapCmp> heap_;
    std::vector<Timer> deferred_owned_;  // keeps defer() timers alive

    std::map<int, std::function<void()>> readers_;
    std::map<int, std::function<void()>> writers_;

    std::vector<std::shared_ptr<detail::TaskState>> tasks_;
    size_t task_rr_ = 0;   // round-robin cursor
    int task_credit_ = 0;  // remaining slices for current task
    Duration task_virtual_cost_ = std::chrono::microseconds(1);
};

}  // namespace xrp::ev

#endif
