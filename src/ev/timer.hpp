// Timer handles. A Timer is an owning handle: dropping it cancels the
// callback (the XORP XorpTimer contract). Fire-and-forget scheduling goes
// through EventLoop::defer(), which keeps its own reference.
#ifndef XRP_EV_TIMER_HPP
#define XRP_EV_TIMER_HPP

#include <functional>
#include <memory>

#include "ev/clock.hpp"

namespace xrp::ev {

class EventLoop;

namespace detail {
struct TimerState {
    TimePoint expiry{};
    Duration period{};  // zero for one-shot
    // One-shot callback; null if periodic_cb used instead.
    std::function<void()> cb;
    // Periodic callback; returning false stops the timer.
    std::function<bool()> periodic_cb;
    bool cancelled = false;
    bool scheduled = false;  // currently in the loop's heap
    uint64_t seq = 0;        // tie-break for stable firing order
};
}  // namespace detail

class Timer {
public:
    Timer() = default;
    Timer(Timer&&) noexcept = default;
    Timer& operator=(Timer&& o) noexcept {
        if (this != &o) {
            unschedule();
            state_ = std::move(o.state_);
        }
        return *this;
    }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;
    ~Timer() { unschedule(); }

    bool scheduled() const { return state_ && !state_->cancelled; }
    TimePoint expiry() const { return state_ ? state_->expiry : TimePoint{}; }

    void unschedule() {
        if (state_) {
            state_->cancelled = true;
            state_.reset();
        }
    }

private:
    friend class EventLoop;
    explicit Timer(std::shared_ptr<detail::TimerState> s)
        : state_(std::move(s)) {}
    std::shared_ptr<detail::TimerState> state_;
};

}  // namespace xrp::ev

#endif
