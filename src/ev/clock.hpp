// Time source abstraction for the event loop.
//
// Everything in the system reads time through a Clock so that whole-router
// simulations (bench/bench_convergence, examples/network_convergence) can
// run on a virtual clock: when the loop has nothing runnable it jumps the
// clock to the next timer deadline instead of sleeping, letting a 255-
// second BGP experiment finish in milliseconds without changing any
// protocol code.
#ifndef XRP_EV_CLOCK_HPP
#define XRP_EV_CLOCK_HPP

#include <chrono>
#include <cstdint>

namespace xrp::ev {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

class Clock {
public:
    virtual ~Clock() = default;
    virtual TimePoint now() = 0;
    virtual bool is_virtual() const = 0;
    // Virtual clocks move only when told; calling this on a real clock is a
    // programming error (asserts).
    virtual void advance_to(TimePoint t) = 0;
};

class RealClock final : public Clock {
public:
    TimePoint now() override;
    bool is_virtual() const override { return false; }
    void advance_to(TimePoint t) override;
};

class VirtualClock final : public Clock {
public:
    TimePoint now() override { return now_; }
    bool is_virtual() const override { return true; }
    void advance_to(TimePoint t) override {
        if (t > now_) now_ = t;
    }
    void advance_by(Duration d) { now_ += d; }

private:
    TimePoint now_{};
};

}  // namespace xrp::ev

#endif
