#include "ev/eventloop.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "telemetry/metrics.hpp"

namespace xrp::ev {

namespace {

// Cached handles, bound on first loop activity (see ipc/router.cpp).
struct EvMetrics {
    telemetry::Counter* timers_fired;
    telemetry::Counter* fd_dispatches;
    telemetry::Counter* task_slices;
    telemetry::Gauge* deferred_depth;
    telemetry::Histogram* timer_drift;   // fire time - deadline
    telemetry::Histogram* cb_timer;      // time spent inside timer callbacks
    telemetry::Histogram* cb_fd;         // time spent inside fd callbacks
    telemetry::Histogram* task_slice_ns;

    static const EvMetrics& get() {
        static EvMetrics m = [] {
            auto& r = telemetry::Registry::global();
            EvMetrics x;
            x.timers_fired = r.counter("ev_timers_fired_total");
            x.fd_dispatches = r.counter("ev_fd_dispatches_total");
            x.task_slices = r.counter("ev_task_slices_total");
            x.deferred_depth = r.gauge("ev_deferred_depth");
            x.timer_drift = r.histogram("ev_timer_drift_ns");
            x.cb_timer = r.histogram("ev_dispatch_ns{source=\"timer\"}");
            x.cb_fd = r.histogram("ev_dispatch_ns{source=\"fd\"}");
            x.task_slice_ns = r.histogram("ev_task_slice_ns");
            return x;
        }();
        return m;
    }
};

}  // namespace

EventLoop::EventLoop(Clock& clock) : clock_(clock) {
    // The wakeup eventfd exists for the loop's whole life so post() never
    // races fd creation; a loop that is never posted to pays one idle
    // pollfd for it.
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
}

EventLoop::~EventLoop() {
    // A pending timer's callback can own state whose destructor in turn
    // holds Timer handles on this loop — XrlRouter's in-flight CallState
    // does exactly that (retry/backoff timers capture the shared call
    // state, the call state owns the timer handles). Dropping the heap
    // wholesale would leave such cycles alive; clearing each callback
    // breaks them. Destructors run here may schedule further timers on
    // the dying loop, so drain until genuinely empty.
    while (!heap_.empty()) {
        TimerSP s = heap_.top();
        heap_.pop();
        s->cancelled = true;
        s->cb = nullptr;
        s->periodic_cb = nullptr;
    }
    if (wake_fd_ >= 0) ::close(wake_fd_);
    wake_fd_ = -1;
}

void EventLoop::claim_owner() {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

bool EventLoop::in_owner_thread() const {
    const std::thread::id own = owner_.load(std::memory_order_relaxed);
    return own == std::thread::id{} || own == std::this_thread::get_id();
}

void EventLoop::check_owner(const char* what) const {
    // Armed the moment any thread drives the loop. Before that (component
    // construction happens on the spawning thread, strictly before the
    // component thread starts running) everything is permitted.
    if (in_owner_thread()) return;
    std::fprintf(stderr,
                 "[ev] FATAL: %s called from a thread that does not own "
                 "this event loop (use post()/run_on() to cross threads)\n",
                 what);
    std::abort();
}

void EventLoop::wake() {
    if (wake_fd_ < 0) return;
    const uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::post(std::function<void()> cb) {
    {
        std::lock_guard<std::mutex> lock(post_mu_);
        posted_.push_back(std::move(cb));
        posted_pending_.store(true, std::memory_order_release);
    }
    wake();
}

void EventLoop::run_on(std::function<void()> cb) {
    if (in_owner_thread()) {
        cb();
        return;
    }
    post(std::move(cb));
}

void EventLoop::request_stop() {
    stopped_.store(true, std::memory_order_relaxed);
    wake();
}

bool EventLoop::drain_posted() {
    if (!posted_pending_.load(std::memory_order_acquire)) return false;
    // Swap out the whole batch: callbacks posted from inside a posted
    // callback run on the next turn, so a self-posting task cannot starve
    // timers and fds.
    std::deque<std::function<void()>> batch;
    {
        std::lock_guard<std::mutex> lock(post_mu_);
        batch.swap(posted_);
        posted_pending_.store(false, std::memory_order_release);
    }
    for (auto& cb : batch) cb();
    return !batch.empty();
}

Timer EventLoop::schedule(TimerSP state) {
    check_owner("set_timer");
    state->seq = ++timer_seq_;
    state->scheduled = true;
    heap_.push(state);
    return Timer(std::move(state));
}

Timer EventLoop::set_timer(Duration delay, std::function<void()> cb) {
    return set_timer_at(now() + delay, std::move(cb));
}

Timer EventLoop::set_timer_at(TimePoint when, std::function<void()> cb) {
    auto s = std::make_shared<detail::TimerState>();
    s->expiry = when;
    s->cb = std::move(cb);
    return schedule(std::move(s));
}

Timer EventLoop::set_periodic(Duration period, std::function<bool()> cb) {
    assert(period > Duration::zero());
    auto s = std::make_shared<detail::TimerState>();
    s->expiry = now() + period;
    s->period = period;
    s->periodic_cb = std::move(cb);
    return schedule(std::move(s));
}

void EventLoop::defer(std::function<void()> cb) {
    deferred_owned_.push_back(set_timer(Duration::zero(), std::move(cb)));
    EvMetrics::get().deferred_depth->set(
        static_cast<int64_t>(deferred_owned_.size()));
}

void EventLoop::defer_after(Duration delay, std::function<void()> cb) {
    deferred_owned_.push_back(set_timer(delay, std::move(cb)));
    EvMetrics::get().deferred_depth->set(
        static_cast<int64_t>(deferred_owned_.size()));
}

void EventLoop::add_reader(int fd, std::function<void()> cb) {
    check_owner("add_reader");
    readers_[fd] = std::move(cb);
}
void EventLoop::add_writer(int fd, std::function<void()> cb) {
    check_owner("add_writer");
    writers_[fd] = std::move(cb);
}
void EventLoop::remove_reader(int fd) {
    check_owner("remove_reader");
    readers_.erase(fd);
}
void EventLoop::remove_writer(int fd) {
    check_owner("remove_writer");
    writers_.erase(fd);
}

Task EventLoop::add_background_task(std::function<bool()> slice, int weight) {
    check_owner("add_background_task");
    auto s = std::make_shared<detail::TaskState>();
    s->slice = std::move(slice);
    s->weight = std::max(1, weight);
    s->running = true;
    tasks_.push_back(s);
    return Task(std::move(s));
}

size_t EventLoop::background_task_count() const {
    size_t n = 0;
    for (const auto& t : tasks_)
        if (!t->cancelled) ++n;
    return n;
}

bool EventLoop::fire_due_timers() {
    // Collect what is due *now*; timers armed by callbacks during this
    // batch wait for the next turn, so a self-rearming zero-delay timer
    // cannot starve fds and tasks.
    const TimePoint t = now();
    bool any = false;
    std::vector<TimerSP> due;
    while (!heap_.empty() && heap_.top()->expiry <= t) {
        due.push_back(heap_.top());
        heap_.pop();
    }
    const EvMetrics& m = EvMetrics::get();
    const bool timed = telemetry::enabled();
    for (TimerSP& s : due) {
        s->scheduled = false;
        if (s->cancelled) continue;
        any = true;
        m.timers_fired->inc();
        // Drift needs no extra clock read: `t` is this batch's fire time.
        m.timer_drift->observe(t - s->expiry);
        if (s->periodic_cb) {
            const TimePoint c0 = timed ? clock_.now() : TimePoint{};
            bool again = s->periodic_cb();
            if (timed) m.cb_timer->observe_always(clock_.now() - c0);
            if (again && !s->cancelled) {
                s->expiry += s->period;
                s->seq = ++timer_seq_;
                s->scheduled = true;
                heap_.push(s);
            } else {
                s->cancelled = true;
            }
        } else {
            auto cb = std::move(s->cb);
            s->cancelled = true;
            const TimePoint c0 = timed ? clock_.now() : TimePoint{};
            cb();
            if (timed) m.cb_timer->observe_always(clock_.now() - c0);
        }
    }
    if (!deferred_owned_.empty()) {
        // Drop handles of already-fired defer() timers.
        std::erase_if(deferred_owned_,
                      [](const Timer& t2) { return !t2.scheduled(); });
        m.deferred_depth->set(
            static_cast<int64_t>(deferred_owned_.size()));
    }
    return any;
}

bool EventLoop::dispatch_fds(int timeout_ms) {
    if (readers_.empty() && writers_.empty() && wake_fd_ < 0) return false;
    // Exactly one pollfd per fd, with merged interest bits: duplicate fd
    // entries confuse some poll(2) interposition layers (which also
    // rewrite `events`, so classification below re-checks our own maps
    // rather than trusting the returned events field).
    std::vector<pollfd> pfds;
    pfds.reserve(readers_.size() + writers_.size() + 1);
    // The cross-thread wakeup fd rides in slot 0 of every poll, so a
    // blocked idle loop reacts to post() immediately.
    if (wake_fd_ >= 0) pfds.push_back({wake_fd_, POLLIN, 0});
    {
        auto rit = readers_.begin();
        auto wit = writers_.begin();
        while (rit != readers_.end() || wit != writers_.end()) {
            if (wit == writers_.end() ||
                (rit != readers_.end() && rit->first < wit->first)) {
                pfds.push_back({rit->first, POLLIN, 0});
                ++rit;
            } else if (rit == readers_.end() || wit->first < rit->first) {
                pfds.push_back({wit->first, POLLOUT, 0});
                ++wit;
            } else {
                pfds.push_back({rit->first, POLLIN | POLLOUT, 0});
                ++rit;
                ++wit;
            }
        }
    }
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc <= 0) return false;
    bool any = false;
    for (const pollfd& p : pfds) {
        if (p.revents == 0) continue;
        if (p.fd == wake_fd_ && wake_fd_ >= 0) {
            uint64_t n;
            while (::read(wake_fd_, &n, sizeof n) > 0) {
            }
            any |= drain_posted();
            continue;
        }
        // Look the callbacks up at dispatch time: an earlier callback in
        // this batch may have removed (or replaced) this fd's handler.
        const EvMetrics& m = EvMetrics::get();
        const bool timed = telemetry::enabled();
        if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
            auto it = readers_.find(p.fd);
            if (it != readers_.end()) {
                // Copy before invoking: the handler may remove itself
                // (remove_reader from inside the callback), and the
                // callable plus everything it captures must stay alive
                // for the duration of the call.
                auto cb = it->second;
                any = true;
                m.fd_dispatches->inc();
                const TimePoint c0 = timed ? clock_.now() : TimePoint{};
                cb();
                if (timed) m.cb_fd->observe_always(clock_.now() - c0);
            }
        }
        if (p.revents & (POLLOUT | POLLHUP | POLLERR)) {
            auto it = writers_.find(p.fd);
            if (it != writers_.end()) {
                auto cb = it->second;  // same self-removal hazard
                any = true;
                m.fd_dispatches->inc();
                const TimePoint c0 = timed ? clock_.now() : TimePoint{};
                cb();
                if (timed) m.cb_fd->observe_always(clock_.now() - c0);
            }
        }
    }
    return any;
}

bool EventLoop::run_one_task_slice() {
    // Weighted round-robin over live tasks; one slice per idle loop turn
    // keeps timer/fd latency bounded while background work proceeds.
    std::erase_if(tasks_, [](const auto& t) { return t->cancelled; });
    if (tasks_.empty()) return false;
    if (task_rr_ >= tasks_.size()) task_rr_ = 0;
    auto t = tasks_[task_rr_];
    if (task_credit_ <= 0) task_credit_ = t->weight;
    const EvMetrics& m = EvMetrics::get();
    m.task_slices->inc();
    const bool timed = telemetry::enabled();
    const TimePoint c0 = timed ? clock_.now() : TimePoint{};
    bool more = t->slice && !t->cancelled ? t->slice() : false;
    if (timed) m.task_slice_ns->observe_always(clock_.now() - c0);
    if (clock_.is_virtual() && task_virtual_cost_ > Duration::zero())
        clock_.advance_to(now() + task_virtual_cost_);
    if (!more) {
        t->cancelled = true;
        task_credit_ = 0;
        return true;
    }
    if (--task_credit_ <= 0) ++task_rr_;
    return true;
}

int EventLoop::poll_timeout_ms(bool may_block) {
    if (!may_block || clock_.is_virtual()) return 0;
    if (background_task_count() > 0) return 0;
    if (posted_pending_.load(std::memory_order_acquire)) return 0;
    Duration d = Duration(std::chrono::milliseconds(100));
    if (!heap_.empty()) d = std::min(d, heap_.top()->expiry - now());
    // run_for/run_until pin advance_cap_ to their deadline on real clocks
    // too: a blocking poll must not overshoot the caller's time budget.
    if (advance_cap_ != TimePoint::max())
        d = std::min(d, advance_cap_ - now());
    if (d <= Duration::zero()) return 0;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
    return static_cast<int>(std::min<long long>(ms + 1, 100));
}

bool EventLoop::run_once(bool may_block) {
    claim_owner();
    bool any = drain_posted();
    any |= fire_due_timers();
    any |= dispatch_fds(any ? 0 : poll_timeout_ms(may_block));
    if (!any) any = run_one_task_slice();
    if (!any && clock_.is_virtual() && !heap_.empty()) {
        // Nothing runnable now: jump virtual time to the next deadline,
        // but never past the caller's cap (run_for/run_until deadline).
        TimePoint target = std::min(heap_.top()->expiry, advance_cap_);
        if (target > now()) {
            clock_.advance_to(target);
            any = fire_due_timers();
        }
    }
    return any;
}

void EventLoop::run() {
    stopped_.store(false, std::memory_order_relaxed);
    while (!stopped_.load(std::memory_order_relaxed)) {
        bool any = run_once(true);
        if (!any && !hold_open_ && heap_.empty() && readers_.empty() &&
            writers_.empty() && background_task_count() == 0 &&
            !posted_pending_.load(std::memory_order_acquire))
            break;  // nothing can ever fire again
    }
}

bool EventLoop::run_until(const std::function<bool()>& pred, Duration limit) {
    const TimePoint deadline = now() + limit;
    const TimePoint saved_cap = advance_cap_;
    advance_cap_ = std::min(saved_cap, deadline);
    bool ok = true;
    while (!pred()) {
        if (now() >= deadline) {
            ok = false;
            break;
        }
        bool any = run_once(true);
        if (!any && clock_.is_virtual() &&
            (heap_.empty() || heap_.top()->expiry > advance_cap_) &&
            background_task_count() == 0) {
            // Virtual time cannot usefully progress before the deadline.
            ok = pred();
            break;
        }
    }
    advance_cap_ = saved_cap;
    return ok;
}

void EventLoop::run_for(Duration d) {
    const TimePoint deadline = now() + d;
    const TimePoint saved_cap = advance_cap_;
    advance_cap_ = std::min(saved_cap, deadline);
    while (now() < deadline) {
        bool any = run_once(true);
        if (clock_.is_virtual() && !any && background_task_count() == 0 &&
            (heap_.empty() || heap_.top()->expiry > advance_cap_)) {
            clock_.advance_to(std::min(deadline, advance_cap_));
            break;
        }
    }
    advance_cap_ = saved_cap;
}

}  // namespace xrp::ev
