#include "ev/task.hpp"

// Task is header-only today; this TU anchors the header in the build.
namespace xrp::ev {}
