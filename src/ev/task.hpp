// Background tasks (§4): cooperative slices that run only when the event
// loop has no expired timers and no ready file descriptors. A task's
// callback does a bounded chunk of work and returns true if more remains.
// Dropping the Task handle cancels it; tasks that finish (return false)
// unschedule themselves.
//
// The paper leans on these for everything that is too big for one event:
// deleting 146k routes when a peer falls over (§5.1.2), re-filtering after
// a policy change, draining the BGP fanout queue toward slow peers.
#ifndef XRP_EV_TASK_HPP
#define XRP_EV_TASK_HPP

#include <functional>
#include <memory>

namespace xrp::ev {

class EventLoop;

namespace detail {
struct TaskState {
    std::function<bool()> slice;
    int weight = 1;  // relative share of idle slices
    bool cancelled = false;
    bool running = false;  // in the loop's run queue
};
}  // namespace detail

class Task {
public:
    Task() = default;
    Task(Task&&) noexcept = default;
    Task& operator=(Task&& o) noexcept {
        if (this != &o) {
            cancel();
            state_ = std::move(o.state_);
        }
        return *this;
    }
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { cancel(); }

    bool active() const { return state_ && !state_->cancelled; }

    void cancel() {
        if (state_) {
            state_->cancelled = true;
            state_.reset();
        }
    }

private:
    friend class EventLoop;
    explicit Task(std::shared_ptr<detail::TaskState> s) : state_(std::move(s)) {}
    std::shared_ptr<detail::TaskState> state_;
};

}  // namespace xrp::ev

#endif
