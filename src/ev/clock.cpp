#include "ev/clock.hpp"

#include <cassert>

namespace xrp::ev {

TimePoint RealClock::now() {
    return std::chrono::time_point_cast<Duration>(
        std::chrono::steady_clock::now());
}

void RealClock::advance_to(TimePoint) {
    assert(false && "advance_to called on a real clock");
}

}  // namespace xrp::ev
