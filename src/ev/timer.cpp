#include "ev/timer.hpp"

// Timer is header-only today; this TU anchors the header in the build so
// that any future out-of-line definitions have a home.
namespace xrp::ev {}
