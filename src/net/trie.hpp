// Path-compressed binary trie (Patricia tree) keyed by IpNet<A>, with the
// paper's "safe route iterators" (§5.3).
//
// Background tasks — a BGP deletion stage slicing through 146k routes, a
// policy re-filter pass — park an iterator in the table and resume later.
// Meanwhile event handlers may delete the very node the iterator points
// at. To keep parked iterators valid, every node carries a reference count
// of iterators currently resting on it. Erasing a route clears the node's
// value immediately (lookups no longer see it) but defers the structural
// unlink until the last iterator leaves; the departing iterator performs
// the deferred pruning. Users of the trie never see any of this: the rule
// they rely on is simply "an iterator never dangles across a pause".
//
// Node layout invariants:
//  - the root always exists and has key 0/0;
//  - a child's key strictly extends its parent's key;
//  - a valueless node with fewer than two children and no parked iterators
//    is pruned (spliced out or removed) eagerly;
//  - subtree_values counts valued nodes in each subtree, giving O(path)
//    "is there any route under this prefix" queries for the RegisterStage.
//
// Allocation: nodes live on a per-trie arena — contiguous blocks carved
// into node slots, recycled through a free list — so a million-route
// table costs one malloc per kArenaBlockNodes nodes instead of one per
// node, and neighbouring nodes share cache lines. The global toggle
// (set_trie_arena_enabled) is captured at construction; bench_memory
// flips it to measure the before/after footprint.
#ifndef XRP_NET_TRIE_HPP
#define XRP_NET_TRIE_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipnet.hpp"

namespace xrp::net {

// Process-wide default for whether new tries pool their nodes. Each trie
// snapshots the flag in its constructor, so flipping it never mixes
// allocators within one table.
inline bool& trie_arena_flag() {
    static bool enabled = true;
    return enabled;
}
inline void set_trie_arena_enabled(bool on) { trie_arena_flag() = on; }
inline bool trie_arena_enabled() { return trie_arena_flag(); }

inline constexpr size_t kArenaBlockNodes = 256;

template <class A, class T>
class RouteTrie {
    struct Node;

public:
    using Net = IpNet<A>;

    RouteTrie() : root_(arena_.create(Net{}, nullptr)) {}

    RouteTrie(const RouteTrie&) = delete;
    RouteTrie& operator=(const RouteTrie&) = delete;

    ~RouteTrie() {
        assert(live_iterators_ == 0);
        destroy_subtree(root_);
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    // Bytes held by the node arena (0 when the arena is disabled and
    // nodes come from the general-purpose allocator one by one).
    size_t arena_bytes() const { return arena_.bytes(); }

    // Inserts or overwrites. Returns true if the key was new.
    bool insert(const Net& net, T value) {
        Node* n = root_;
        while (true) {
            if (n->key == net) {
                bool was_new = !n->value.has_value();
                n->value = std::move(value);
                if (was_new) {
                    ++size_;
                    bump_counts(n, +1);
                }
                return was_new;
            }
            // Invariant: n->key contains net and is strictly shorter.
            bool b = net.masked_addr().bit(n->key.prefix_len());
            Node* c = n->child[b];
            if (c == nullptr) {
                Node* leaf = arena_.create(net, n);
                leaf->value = std::move(value);
                n->child[b] = leaf;
                ++size_;
                bump_counts(leaf, +1);
                return true;
            }
            if (c->key.contains(net)) {
                n = c;
                continue;
            }
            if (net.contains(c->key)) {
                // Interpose a node for `net` between n and c.
                Node* mid = arena_.create(net, n);
                mid->value = std::move(value);
                n->child[b] = mid;
                adopt(mid, c);
                ++size_;
                bump_counts(mid, +1);
                return true;
            }
            // Keys diverge: interpose a valueless fork at the common prefix.
            uint32_t d = A::common_prefix_len(net.masked_addr(),
                                              c->key.masked_addr());
            assert(d < net.prefix_len() && d < c->key.prefix_len());
            Node* fork = arena_.create(Net(net.masked_addr(), d), n);
            n->child[b] = fork;
            adopt(fork, c);
            Node* leaf = arena_.create(net, fork);
            leaf->value = std::move(value);
            fork->child[net.masked_addr().bit(d)] = leaf;
            ++size_;
            bump_counts(leaf, +1);
            return true;
        }
    }

    // Removes the exact prefix. Returns false if absent. If iterators are
    // parked on the node, the value disappears now but the node lingers
    // until they move on.
    bool erase(const Net& net) {
        Node* n = find_node(net);
        if (n == nullptr || !n->value.has_value()) return false;
        n->value.reset();
        --size_;
        bump_counts(n, -1);
        prune_upward(n);
        return true;
    }

    // Exact-match lookup.
    const T* find(const Net& net) const {
        const Node* n = find_node(net);
        return (n != nullptr && n->value.has_value()) ? &*n->value : nullptr;
    }
    T* find(const Net& net) {
        Node* n = find_node(net);
        return (n != nullptr && n->value.has_value()) ? &*n->value : nullptr;
    }

    // Longest-prefix match for a host address.
    const T* lookup(A addr, Net* matched_net = nullptr) const {
        const Node* best = nullptr;
        for (const Node* n = root_; n != nullptr;) {
            if (!n->key.contains(addr)) break;
            if (n->value.has_value()) best = n;
            if (n->key.prefix_len() == A::kAddrBits) break;
            n = n->child[addr.bit(n->key.prefix_len())];
        }
        if (best == nullptr) return nullptr;
        if (matched_net != nullptr) *matched_net = best->key;
        return &*best->value;
    }

    // Nearest strictly-less-specific route covering `net`.
    const T* find_less_specific(const Net& net, Net* matched_net = nullptr) const {
        const Node* best = nullptr;
        for (const Node* n = root_; n != nullptr;) {
            if (!n->key.contains(net) || n->key.prefix_len() >= net.prefix_len())
                break;
            if (n->value.has_value()) best = n;
            n = n->child[net.masked_addr().bit(n->key.prefix_len())];
        }
        if (best == nullptr) return nullptr;
        if (matched_net != nullptr) *matched_net = best->key;
        return &*best->value;
    }

    // True if any route exists that is equal to or more specific than `net`.
    bool has_route_within(const Net& net) const {
        const Node* n = root_;
        while (n != nullptr) {
            if (net.contains(n->key)) return n->subtree_values > 0;
            if (!n->key.contains(net)) return false;
            if (n->key.prefix_len() == A::kAddrBits) return false;
            n = n->child[net.masked_addr().bit(n->key.prefix_len())];
        }
        return false;
    }

    // The RegisterStage query (§5.2.1, Figure 8): for a host address,
    // report the matching route (if any) and the *largest enclosing subnet*
    // of `addr` within which that answer holds — the largest prefix
    // containing addr that is inside the matched route (if any) and is not
    // overlayed by any more-specific route. Clients may cache the answer
    // for every address in the returned subnet.
    struct RegisterResult {
        const T* route = nullptr;  // null if no route covers addr
        Net matched_net{};         // valid when route != null
        Net valid_subnet{};        // the largest enclosing cacheable subnet
    };
    RegisterResult register_lookup(A addr) const {
        RegisterResult r;
        // Phase 1: find the deepest valued node containing addr.
        const Node* vnode = nullptr;
        for (const Node* n = root_; n != nullptr;) {
            if (!n->key.contains(addr)) break;
            if (n->value.has_value()) vnode = n;
            if (n->key.prefix_len() == A::kAddrBits) break;
            n = n->child[addr.bit(n->key.prefix_len())];
        }
        uint32_t best = 0;
        const Node* n = root_;
        if (vnode != nullptr) {
            r.route = &*vnode->value;
            r.matched_net = vnode->key;
            best = vnode->key.prefix_len();
            n = vnode;
        }
        // Phase 2: descend below the match accumulating constraints from
        // every more-specific route that shares a partial path with addr.
        while (n->key.prefix_len() < A::kAddrBits) {
            bool b = addr.bit(n->key.prefix_len());
            const Node* sib = n->child[!b];
            if (sib != nullptr && sib->subtree_values > 0)
                best = std::max(best, n->key.prefix_len() + 1);
            const Node* c = n->child[b];
            if (c == nullptr) break;
            uint32_t d = std::min(
                A::common_prefix_len(addr, c->key.masked_addr()),
                c->key.prefix_len());
            if (d < c->key.prefix_len()) {
                if (c->subtree_values > 0) best = std::max(best, d + 1);
                break;
            }
            n = c;
        }
        r.valid_subnet = Net(addr.masked(best), best);
        return r;
    }

    // ---- Safe iterator ----------------------------------------------
    class iterator {
    public:
        iterator() = default;
        iterator(const iterator& o) : trie_(o.trie_), node_(o.node_) {
            acquire();
        }
        iterator(iterator&& o) noexcept : trie_(o.trie_), node_(o.node_) {
            o.trie_ = nullptr;
            o.node_ = nullptr;
        }
        iterator& operator=(const iterator& o) {
            if (this != &o) {
                release();
                trie_ = o.trie_;
                node_ = o.node_;
                acquire();
            }
            return *this;
        }
        iterator& operator=(iterator&& o) noexcept {
            if (this != &o) {
                release();
                trie_ = o.trie_;
                node_ = o.node_;
                o.trie_ = nullptr;
                o.node_ = nullptr;
            }
            return *this;
        }
        ~iterator() { release(); }

        bool at_end() const { return node_ == nullptr; }

        const Net& key() const { return node_->key; }
        // The pointed-at route may have been erased while we were parked;
        // valid() distinguishes "route still live" from "node lingering
        // solely for our benefit".
        bool valid() const {
            return node_ != nullptr && node_->value.has_value();
        }
        T& value() { return *node_->value; }
        const T& value() const { return *node_->value; }

        // Advance to the next live route in prefix order. If the current
        // route was erased underneath us, this still lands on the correct
        // successor, per the §5.3 contract.
        iterator& operator++() {
            assert(node_ != nullptr);
            Node* n = node_;
            do {
                n = RouteTrie::preorder_next(n);
            } while (n != nullptr && !n->value.has_value());
            move_to(n);
            return *this;
        }

        bool operator==(const iterator& o) const { return node_ == o.node_; }

    private:
        friend class RouteTrie;
        iterator(RouteTrie* trie, Node* node) : trie_(trie), node_(node) {
            acquire();
        }
        void acquire() {
            if (node_ != nullptr) {
                ++node_->iter_refs;
                ++trie_->live_iterators_;
            }
        }
        void release() {
            if (node_ != nullptr) {
                Node* n = node_;
                node_ = nullptr;
                --trie_->live_iterators_;
                assert(n->iter_refs > 0);
                if (--n->iter_refs == 0) trie_->prune_upward(n);
            }
        }
        void move_to(Node* n) {
            RouteTrie* t = trie_;
            release();
            trie_ = t;
            node_ = n;
            acquire();
        }

        RouteTrie* trie_ = nullptr;
        Node* node_ = nullptr;
    };

    iterator begin() {
        Node* n = root_;
        if (!n->value.has_value()) {
            do {
                n = preorder_next(n);
            } while (n != nullptr && !n->value.has_value());
        }
        return iterator(this, n);
    }
    iterator end() { return iterator(this, nullptr); }

    // Visits every live route in prefix order. `fn(net, value)`.
    template <class Fn>
    void for_each(Fn&& fn) const {
        for_each_node(root_, fn);
    }

    // Visits every live route equal to or more specific than `within`.
    template <class Fn>
    void for_each_within(const Net& within, Fn&& fn) const {
        const Node* n = root_;
        while (n != nullptr && !within.contains(n->key)) {
            if (!n->key.contains(within)) return;  // disjoint
            if (n->key.prefix_len() == A::kAddrBits) return;
            n = n->child[within.masked_addr().bit(n->key.prefix_len())];
        }
        if (n != nullptr) for_each_node(n, fn);
    }

    size_t node_count() const { return count_nodes(root_); }

private:
    struct Node {
        explicit Node(Net k, Node* p = nullptr) : key(k), parent(p) {}
        ~Node() { assert(iter_refs == 0); }

        Net key;
        std::optional<T> value;
        Node* parent = nullptr;
        Node* child[2] = {nullptr, nullptr};
        uint32_t iter_refs = 0;
        // Count of valued nodes in this subtree (including this node).
        uint32_t subtree_values = 0;
    };

    // Per-trie node pool: blocks carved into Node-sized slots threaded on
    // a free list. destroy() runs the destructor and recycles the slot;
    // block storage is released only when the trie itself dies, which is
    // exactly the lifetime a routing table wants (peak size is sticky).
    class Arena {
        union Slot {
            Slot* next;
            alignas(Node) std::byte storage[sizeof(Node)];
        };
        struct Block {
            Slot slots[kArenaBlockNodes];
        };

    public:
        Arena() : enabled_(trie_arena_enabled()) {}
        Arena(const Arena&) = delete;
        Arena& operator=(const Arena&) = delete;

        template <class... Args>
        Node* create(Args&&... args) {
            if (!enabled_) return new Node(std::forward<Args>(args)...);
            if (free_ == nullptr) grow();
            Slot* s = free_;
            free_ = s->next;
            return new (s->storage) Node(std::forward<Args>(args)...);
        }
        void destroy(Node* n) {
            if (!enabled_) {
                delete n;
                return;
            }
            n->~Node();
            Slot* s = reinterpret_cast<Slot*>(n);
            s->next = free_;
            free_ = s;
        }
        size_t bytes() const { return blocks_.size() * sizeof(Block); }

    private:
        void grow() {
            blocks_.push_back(std::make_unique<Block>());
            Block* b = blocks_.back().get();
            for (size_t i = kArenaBlockNodes; i-- > 0;) {
                b->slots[i].next = free_;
                free_ = &b->slots[i];
            }
        }

        bool enabled_;
        Slot* free_ = nullptr;
        std::vector<std::unique_ptr<Block>> blocks_;
    };

    static void adopt(Node* new_parent, Node* child) {
        child->parent = new_parent;
        new_parent->subtree_values += child->subtree_values;
        new_parent->child[child->key.masked_addr().bit(
            new_parent->key.prefix_len())] = child;
    }

    void bump_counts(Node* n, int delta) {
        for (Node* p = n; p != nullptr; p = p->parent)
            p->subtree_values =
                static_cast<uint32_t>(static_cast<int>(p->subtree_values) + delta);
    }

    Node* find_node(const Net& net) const {
        Node* n = root_;
        while (n != nullptr) {
            if (n->key == net) return n;
            if (!n->key.contains(net)) return nullptr;
            n = n->child[net.masked_addr().bit(n->key.prefix_len())];
        }
        return nullptr;
    }

    static Node* preorder_next(Node* n) {
        if (n->child[0] != nullptr) return n->child[0];
        if (n->child[1] != nullptr) return n->child[1];
        while (n->parent != nullptr) {
            Node* p = n->parent;
            if (p->child[0] == n && p->child[1] != nullptr) return p->child[1];
            n = p;
        }
        return nullptr;
    }

    // Removes structurally-unneeded nodes starting at `n` and walking up.
    // A node is removable when it has no value, no parked iterators, and
    // fewer than two children. Never removes the root.
    void prune_upward(Node* n) {
        while (n != nullptr && n->parent != nullptr && !n->value.has_value() &&
               n->iter_refs == 0 &&
               !(n->child[0] != nullptr && n->child[1] != nullptr)) {
            Node* parent = n->parent;
            Node*& slot = parent->child[parent->child[0] == n ? 0 : 1];
            assert(slot == n);
            Node* only_child =
                n->child[0] != nullptr ? n->child[0] : n->child[1];
            if (only_child != nullptr) {
                only_child->parent = parent;
                slot = only_child;  // splice n out
            } else {
                slot = nullptr;  // remove leaf
            }
            arena_.destroy(n);
            n = parent;
        }
    }

    void destroy_subtree(Node* n) {
        if (n == nullptr) return;
        destroy_subtree(n->child[0]);
        destroy_subtree(n->child[1]);
        arena_.destroy(n);
    }

    template <class Fn>
    static void for_each_node(const Node* n, Fn& fn) {
        if (n == nullptr) return;
        if (n->value.has_value()) fn(n->key, *n->value);
        for_each_node(n->child[0], fn);
        for_each_node(n->child[1], fn);
    }

    static size_t count_nodes(const Node* n) {
        if (n == nullptr) return 0;
        return 1 + count_nodes(n->child[0]) + count_nodes(n->child[1]);
    }

    Arena arena_;
    Node* root_;
    size_t size_ = 0;
    size_t live_iterators_ = 0;
};

}  // namespace xrp::net

#endif
