#include "net/mac.hpp"

#include <cstdio>
#include <cstdlib>

namespace xrp::net {

std::optional<Mac> Mac::parse(std::string_view text) {
    std::array<uint8_t, 6> o{};
    size_t pos = 0;
    for (int i = 0; i < 6; ++i) {
        uint32_t v = 0;
        size_t digits = 0;
        while (pos < text.size() && digits < 2) {
            char c = text[pos];
            uint32_t d;
            if (c >= '0' && c <= '9') d = static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f') d = static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') d = static_cast<uint32_t>(c - 'A' + 10);
            else break;
            v = (v << 4) | d;
            ++digits;
            ++pos;
        }
        if (digits == 0) return std::nullopt;
        o[static_cast<size_t>(i)] = static_cast<uint8_t>(v);
        if (i < 5) {
            if (pos >= text.size() || text[pos] != ':') return std::nullopt;
            ++pos;
        }
    }
    if (pos != text.size()) return std::nullopt;
    return Mac(o);
}

Mac Mac::must_parse(std::string_view text) {
    auto m = parse(text);
    if (!m) {
        std::fprintf(stderr, "Mac::must_parse: bad address '%.*s'\n",
                     static_cast<int>(text.size()), text.data());
        std::abort();
    }
    return *m;
}

std::string Mac::str() const {
    char buf[18];
    std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                  octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
    return buf;
}

}  // namespace xrp::net
