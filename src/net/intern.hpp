// Flyweight interning table: identical immutable values share one
// refcounted allocation.
//
// At million-route scale the same attribute payloads recur massively — a
// full BGP feed has ~1M prefixes but only tens of thousands of distinct
// AS-paths, and an ECMP deployment has a handful of distinct nexthop
// sets. Interning turns "one heap block per route" into "one heap block
// per distinct value, shared by handle". Handles are plain
// shared_ptr<const T>: lifetime is the ordinary refcount, and the table
// holds only weak_ptrs, so a value dies with its last route — no
// explicit release protocol, no leak when a table download is withdrawn.
//
// Buckets are keyed by the caller-supplied hash; collisions fall back to
// operator==. Expired weak entries are swept lazily: the bucket scan
// drops any it walks over, and a full purge runs every kPurgeInterval
// interns to bound the dead weight from never-revisited buckets.
//
// Threading: an InternTable is deliberately NOT thread-safe — it is a
// single-owner structure with component affinity. Each table belongs to
// exactly one component (BGP's attribute tables live on the BGP thread;
// in the threaded router every component keeps its own tables), so the
// hot intern path stays lock-free and branch-predictable at million-
// route scale. Releasing a handle from another thread is fine — that is
// shared_ptr's atomic refcount; only intern()/purge()/clear()/stats()
// must stay on the owning thread. The affinity is *checked*, not hoped
// for: the first intern() claims the table for its thread and calls
// from any other thread are counted in affinity_violations(), which
// tests assert is zero (an abort here would hide the bug from TSan
// runs; a counter lets both report).
#ifndef XRP_NET_INTERN_HPP
#define XRP_NET_INTERN_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

namespace xrp::net {

template <class T, class Hash>
class InternTable {
public:
    static constexpr size_t kPurgeInterval = 8192;

    explicit InternTable(Hash hash = Hash{}) : hash_(std::move(hash)) {}

    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        size_t live = 0;  // entries whose value is still referenced
    };

    std::shared_ptr<const T> intern(T value) {
        note_owner();
        if (++ops_ % kPurgeInterval == 0) purge();
        const uint64_t h = hash_(value);
        auto range = buckets_.equal_range(h);
        for (auto it = range.first; it != range.second;) {
            if (auto sp = it->second.lock()) {
                if (*sp == value) {
                    ++hits_;
                    return sp;
                }
                ++it;
            } else {
                it = buckets_.erase(it);
            }
        }
        ++misses_;
        auto sp = std::make_shared<const T>(std::move(value));
        buckets_.emplace(h, sp);
        return sp;
    }

    // Drops every expired entry. O(table size); called automatically
    // every kPurgeInterval interns.
    void purge() {
        for (auto it = buckets_.begin(); it != buckets_.end();)
            it = it->second.expired() ? buckets_.erase(it) : std::next(it);
    }

    Stats stats() const {
        Stats s;
        s.hits = hits_;
        s.misses = misses_;
        for (const auto& [h, wp] : buckets_)
            if (!wp.expired()) ++s.live;
        return s;
    }

    void clear() {
        buckets_.clear();
        hits_ = misses_ = 0;
        ops_ = 0;
    }

    // Interns observed from a thread other than the claiming one. Must
    // stay zero; tests and debug assertions read it from any thread.
    uint64_t affinity_violations() const {
        return violations_.load(std::memory_order_relaxed);
    }
    // Hands the table to a new owning thread (e.g. a component rebuilt
    // onto a different ComponentThread). The caller is responsible for
    // the handoff's happens-before edge (a thread join or run_sync).
    void rebind_owner() {
        owner_.store(std::thread::id{}, std::memory_order_relaxed);
    }

private:
    void note_owner() {
        std::thread::id expect{};
        const std::thread::id self = std::this_thread::get_id();
        if (!owner_.compare_exchange_strong(expect, self,
                                            std::memory_order_relaxed) &&
            expect != self)
            violations_.fetch_add(1, std::memory_order_relaxed);
    }

    Hash hash_;
    std::unordered_multimap<uint64_t, std::weak_ptr<const T>> buckets_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t ops_ = 0;
    std::atomic<std::thread::id> owner_{};
    std::atomic<uint64_t> violations_{0};
};

// 64-bit hash combiner for building the caller-side hash functors
// (boost-style, splitmix-strength mixing).
inline constexpr uint64_t hash_mix(uint64_t seed, uint64_t v) {
    v += 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return seed ^ (v ^ (v >> 31));
}

}  // namespace xrp::net

#endif
