// Flyweight interning table: identical immutable values share one
// refcounted allocation.
//
// At million-route scale the same attribute payloads recur massively — a
// full BGP feed has ~1M prefixes but only tens of thousands of distinct
// AS-paths, and an ECMP deployment has a handful of distinct nexthop
// sets. Interning turns "one heap block per route" into "one heap block
// per distinct value, shared by handle". Handles are plain
// shared_ptr<const T>: lifetime is the ordinary refcount, and the table
// holds only weak_ptrs, so a value dies with its last route — no
// explicit release protocol, no leak when a table download is withdrawn.
//
// Buckets are keyed by the caller-supplied hash; collisions fall back to
// operator==. Expired weak entries are swept lazily: the bucket scan
// drops any it walks over, and a full purge runs every kPurgeInterval
// interns to bound the dead weight from never-revisited buckets.
#ifndef XRP_NET_INTERN_HPP
#define XRP_NET_INTERN_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>

namespace xrp::net {

template <class T, class Hash>
class InternTable {
public:
    static constexpr size_t kPurgeInterval = 8192;

    explicit InternTable(Hash hash = Hash{}) : hash_(std::move(hash)) {}

    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        size_t live = 0;  // entries whose value is still referenced
    };

    std::shared_ptr<const T> intern(T value) {
        if (++ops_ % kPurgeInterval == 0) purge();
        const uint64_t h = hash_(value);
        auto range = buckets_.equal_range(h);
        for (auto it = range.first; it != range.second;) {
            if (auto sp = it->second.lock()) {
                if (*sp == value) {
                    ++hits_;
                    return sp;
                }
                ++it;
            } else {
                it = buckets_.erase(it);
            }
        }
        ++misses_;
        auto sp = std::make_shared<const T>(std::move(value));
        buckets_.emplace(h, sp);
        return sp;
    }

    // Drops every expired entry. O(table size); called automatically
    // every kPurgeInterval interns.
    void purge() {
        for (auto it = buckets_.begin(); it != buckets_.end();)
            it = it->second.expired() ? buckets_.erase(it) : std::next(it);
    }

    Stats stats() const {
        Stats s;
        s.hits = hits_;
        s.misses = misses_;
        for (const auto& [h, wp] : buckets_)
            if (!wp.expired()) ++s.live;
        return s;
    }

    void clear() {
        buckets_.clear();
        hits_ = misses_ = 0;
        ops_ = 0;
    }

private:
    Hash hash_;
    std::unordered_multimap<uint64_t, std::weak_ptr<const T>> buckets_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t ops_ = 0;
};

// 64-bit hash combiner for building the caller-side hash functors
// (boost-style, splitmix-strength mixing).
inline constexpr uint64_t hash_mix(uint64_t seed, uint64_t v) {
    v += 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return seed ^ (v ^ (v >> 31));
}

}  // namespace xrp::net

#endif
