// IPv6 address value type mirroring the IPv4 interface so that templated
// code (IpNet, RouteTrie, protocol pipelines) instantiates for both
// families from one source (§4 of the paper credits C++ templates for
// exactly this).
#ifndef XRP_NET_IPV6_HPP
#define XRP_NET_IPV6_HPP

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xrp::net {

class IPv6 {
public:
    static constexpr uint32_t kAddrBits = 128;

    constexpr IPv6() = default;
    // hi holds bits 0..63 (network order: the first 8 bytes), lo bits 64..127.
    constexpr IPv6(uint64_t hi, uint64_t lo) : hi_(hi), lo_(lo) {}

    // Parses RFC 4291 text: full form, "::" compression, embedded
    // dotted-quad tails ("::ffff:192.0.2.1").
    static std::optional<IPv6> parse(std::string_view text);
    static IPv6 must_parse(std::string_view text);

    static constexpr IPv6 any() { return IPv6(); }
    static constexpr IPv6 loopback() { return IPv6(0, 1); }

    static constexpr IPv6 make_prefix(uint32_t prefix_len) {
        uint64_t hi = 0, lo = 0;
        if (prefix_len >= 64) {
            hi = ~uint64_t{0};
            uint32_t rest = prefix_len - 64;
            lo = rest == 0 ? 0 : (~uint64_t{0} << (64 - rest));
        } else if (prefix_len > 0) {
            hi = ~uint64_t{0} << (64 - prefix_len);
        }
        return IPv6(hi, lo);
    }

    constexpr uint64_t hi() const { return hi_; }
    constexpr uint64_t lo() const { return lo_; }

    std::array<uint8_t, 16> to_bytes() const;
    static IPv6 from_bytes(const uint8_t* b);

    std::string str() const;

    constexpr bool bit(uint32_t i) const {
        return i < 64 ? (hi_ >> (63 - i)) & 1u : (lo_ >> (127 - i)) & 1u;
    }

    constexpr IPv6 masked(uint32_t prefix_len) const {
        IPv6 m = make_prefix(prefix_len);
        return IPv6(hi_ & m.hi_, lo_ & m.lo_);
    }

    // Length of the longest common prefix of two addresses, in bits.
    static uint32_t common_prefix_len(const IPv6& a, const IPv6& b) {
        uint64_t xh = a.hi_ ^ b.hi_;
        if (xh != 0) return static_cast<uint32_t>(__builtin_clzll(xh));
        uint64_t xl = a.lo_ ^ b.lo_;
        if (xl != 0) return 64 + static_cast<uint32_t>(__builtin_clzll(xl));
        return 128;
    }

    constexpr bool is_multicast() const { return (hi_ >> 56) == 0xff; }
    constexpr bool is_unicast() const {
        return !is_multicast() && !(hi_ == 0 && lo_ == 0);
    }

    friend constexpr auto operator<=>(const IPv6&, const IPv6&) = default;

    constexpr IPv6 operator&(const IPv6& o) const {
        return IPv6(hi_ & o.hi_, lo_ & o.lo_);
    }
    constexpr IPv6 operator|(const IPv6& o) const {
        return IPv6(hi_ | o.hi_, lo_ | o.lo_);
    }
    constexpr IPv6 operator~() const { return IPv6(~hi_, ~lo_); }

private:
    uint64_t hi_ = 0;
    uint64_t lo_ = 0;
};

}  // namespace xrp::net

template <>
struct std::hash<xrp::net::IPv6> {
    size_t operator()(const xrp::net::IPv6& a) const noexcept {
        return std::hash<uint64_t>{}(a.hi() * 1000003 ^ a.lo());
    }
};

#endif
