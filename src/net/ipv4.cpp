#include "net/ipv4.hpp"

#include <arpa/inet.h>

#include <cstdio>
#include <cstdlib>

namespace xrp::net {

std::optional<IPv4> IPv4::parse(std::string_view text) {
    uint32_t octets[4];
    size_t pos = 0;
    for (int i = 0; i < 4; ++i) {
        if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
            return std::nullopt;
        uint32_t v = 0;
        size_t digits = 0;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
            v = v * 10 + static_cast<uint32_t>(text[pos] - '0');
            if (v > 255 || ++digits > 3) return std::nullopt;
            ++pos;
        }
        octets[i] = v;
        if (i < 3) {
            if (pos >= text.size() || text[pos] != '.') return std::nullopt;
            ++pos;
        }
    }
    if (pos != text.size()) return std::nullopt;
    return IPv4((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                octets[3]);
}

IPv4 IPv4::must_parse(std::string_view text) {
    auto a = parse(text);
    if (!a) {
        std::fprintf(stderr, "IPv4::must_parse: bad address '%.*s'\n",
                     static_cast<int>(text.size()), text.data());
        std::abort();
    }
    return *a;
}

uint32_t IPv4::to_network() const { return htonl(addr_); }

IPv4 IPv4::from_network(uint32_t net_order) { return IPv4(ntohl(net_order)); }

std::string IPv4::str() const {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr_ >> 24) & 0xff,
                  (addr_ >> 16) & 0xff, (addr_ >> 8) & 0xff, addr_ & 0xff);
    return buf;
}

}  // namespace xrp::net
